# Negative-compilation test runner (cmake -P script mode).
#
# Each case under tests/compile_fail/ is one translation unit seeded with a
# contract misuse. The case file declares its expected outcome in comment
# markers:
#
#   // EXPECT: <substring>   -- the TU must FAIL to compile, and the
#                               compiler diagnostic must contain <substring>
#                               (every EXPECT line must match; this pins the
#                               *targeted* message, not just "some error")
#   // EXPECT-OK             -- positive control: the TU must compile clean
#                               (guards against the harness passing because
#                               the include paths or flags are broken)
#
# A case with no marker is a harness error: silent cases rot into tests
# that assert nothing.
#
# Invoked per-case from tests/compile_fail/CMakeLists.txt as
#   cmake -DCASE=<file> -DCXX=<compiler> -DINCLUDE_DIR=<src>
#         -P tools/check_compile_fail.cmake
# Compilation is -fsyntax-only: diagnostics are the product, no objects.

foreach(required CASE CXX INCLUDE_DIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "check_compile_fail.cmake: missing -D${required}=")
    endif()
endforeach()

file(READ "${CASE}" case_source)

string(REGEX MATCHALL "// EXPECT: [^\n]*" expect_lines "${case_source}")
string(FIND "${case_source}" "// EXPECT-OK" expect_ok_pos)

if(expect_ok_pos EQUAL -1 AND NOT expect_lines)
    message(FATAL_ERROR
            "compile-fail case ${CASE} declares no expectation: add "
            "'// EXPECT: <diagnostic substring>' (must fail with that "
            "message) or '// EXPECT-OK' (positive control, must compile)")
endif()

# No PSPL_ENABLE_OPENMP on purpose: DefaultExecutionSpace falls back to
# Serial, so the cases run anywhere without an OpenMP runtime.
execute_process(
        COMMAND "${CXX}" -std=c++20 -fsyntax-only "-I${INCLUDE_DIR}" "${CASE}"
        RESULT_VARIABLE compile_result
        OUTPUT_VARIABLE compile_stdout
        ERROR_VARIABLE compile_stderr)

set(diagnostics "${compile_stdout}${compile_stderr}")

if(NOT expect_ok_pos EQUAL -1)
    if(NOT compile_result EQUAL 0)
        message(FATAL_ERROR
                "positive control ${CASE} failed to compile -- the harness "
                "flags/include paths are broken, so every compile-fail "
                "'pass' is suspect:\n${diagnostics}")
    endif()
    return()
endif()

if(compile_result EQUAL 0)
    message(FATAL_ERROR
            "compile-fail case ${CASE} unexpectedly COMPILED: the contract "
            "it misuses is no longer enforced at compile time")
endif()

foreach(expect_line ${expect_lines})
    string(REGEX REPLACE "^// EXPECT: " "" expected "${expect_line}")
    string(FIND "${diagnostics}" "${expected}" found_pos)
    if(found_pos EQUAL -1)
        message(FATAL_ERROR
                "compile-fail case ${CASE} failed to compile (good), but "
                "the diagnostic does not contain the targeted message\n"
                "  expected substring: ${expected}\n"
                "  actual diagnostics:\n${diagnostics}")
    endif()
endforeach()
