#!/usr/bin/env python3
"""Diff two bench --json artifacts (BENCH_*.json) for CI gating.

Design for the bench-smoke job: CI runs the benches at *reduced* sizes while
the committed baselines are full-scale, so records are matched by identity
fields that exclude the problem size. Concretely, every record is keyed by
its bench name plus all non-metric fields except SIZE_FIELDS (n, batch) and
INFO_FIELDS (isa, pspl_check, threads, pinned, tile, numa_nodes). Severity
is split in three:

  * structural / schema drift -> HARD FAIL (exit 1): a record identity that
    exists on one side only, a metric or identity field *removed*, a field
    changing JSON type, or nested-object schemas losing keys. This is what
    the gate protects: the shape of the artifact, which downstream tooling
    and the committed baselines rely on.
  * additive drift -> WARN: new record fields (identity or metric) and new
    nested-schema keys in the current artifact are forward-compatible --
    an old baseline must not block a run that merely *adds* information.
    Unmatched identities are re-matched under this relaxation: a current
    record whose identity is a strict field-superset of exactly one
    unmatched baseline identity pairs with it (ambiguity is an error).
  * metric drift -> WARN by default: numeric perf values (seconds,
    bandwidth, speedup, ulp, ...) outside --tolerance are reported but do
    not fail the run, and are only compared at all when both sides ran the
    same problem size. --fail-on-timing upgrades these to errors for
    same-machine diffs.

The comparison core is importable (`compare(baseline, current, ...)`);
tools/test_compare_bench.py exercises it directly and runs in CI lint.

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json [--tolerance 0.25]
                         [--fail-on-timing] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Problem-size fields: excluded from record identity so reduced-size smoke
# runs still match full-scale baselines; metric values are only compared
# when these agree on both sides.
SIZE_FIELDS = {"n", "batch"}

# Informational provenance: reported on mismatch, never an error. The
# execution-configuration fields (threads, pinned, tile, numa_nodes; bench
# schema v2), the timing-harness repeat count (repeats; schema v3) and the
# executing backend (backend; schema v4) vary legitimately between the
# committed full-scale runs and the CI smoke / nightly matrix runners --
# the nightly compares every PSPL_BACKEND leg against one committed
# baseline, so the backend stamp must not split record identity. (The
# per-backend rows bench_table3 emits carry their own `space` identity
# field instead, which does gate.)
INFO_FIELDS = {
    "isa",
    "pspl_check",
    "backend",
    "threads",
    "pinned",
    "tile",
    "numa_nodes",
    "repeats",
}

# Schema v3 identity fields, listed explicitly because the gate depends on
# them: `precision` (string) and `refine_iters` (numeric, but no metric
# name part) both classify as record identity -- a mixed-precision run can
# never satisfy a double baseline, and a change in converged refinement
# iterations is a behavioural regression, not timing jitter.
ASSERT_IDENTITY_FIELDS = {"precision", "refine_iters"}

# A numeric field whose name contains one of these substrings is a measured
# metric (compared within tolerance); any other field is identity.
METRIC_NAME_PARTS = (
    "seconds",
    "bytes",
    "flops",
    "count",
    "gbs",
    "gflops",
    "speedup",
    "percent",
    "ulp",
    "bandwidth",
    "time",
    "error",
)


def is_metric_field(key, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    lower = key.lower()
    return any(part in lower for part in METRIC_NAME_PARTS)


def schema_signature(value):
    """Recursive shape of a JSON value: key sets for objects, element shape
    for arrays, type name for scalars. Nested objects (e.g. the embedded
    perf_report) are compared by this signature only, never by value."""
    if isinstance(value, dict):
        return {k: schema_signature(v) for k, v in sorted(value.items())}
    if isinstance(value, list):
        element_sigs = [schema_signature(v) for v in value]
        unique = []
        for sig in element_sigs:
            if sig not in unique:
                unique.append(sig)
        return ["array", unique]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


def signature_is_additive_superset(old, new):
    """True when `new` differs from `old` only by *added* object keys (at
    any nesting depth): the forward-compatible direction of schema drift."""
    if old == new:
        return True
    if isinstance(old, dict) and isinstance(new, dict):
        return all(
            k in new and signature_is_additive_superset(v, new[k])
            for k, v in old.items()
        )
    if (
        isinstance(old, list)
        and isinstance(new, list)
        and len(old) == 2
        and len(new) == 2
        and old[0] == "array"
        and new[0] == "array"
    ):
        return all(
            any(signature_is_additive_superset(o, n) for n in new[1])
            for o in old[1]
        )
    return False


def check_counter_only(records, side):
    """Validate the v5 counter-only contract inside embedded perf reports.

    Schema v5 marks attribution-only counter children -- spans whose
    bytes/flops were booked by a cost model but never timed (count == 0,
    seconds == 0) -- with `counter_only: true`, because their derived
    achieved_bw_gbs / achieved_gflops are structurally zero, not measured
    zeros. Three inconsistencies are structural errors: a v5 span missing
    the flag, a flag that contradicts the count/seconds/bytes/flops rule,
    and a counter-only span claiming a nonzero achieved rate. Pre-v5
    reports (no flag) are skipped: old committed baselines must not fail a
    newer checker."""
    errors = []
    for record in records:
        report = record.get("report")
        if not isinstance(report, dict):
            continue
        if report.get("schema") != "pspl-perf-report-v5":
            continue
        for span in report.get("spans", []):
            if not isinstance(span, dict):
                continue
            path = span.get("path", "<unnamed>")
            if "counter_only" not in span:
                errors.append(
                    f"{side}: v5 span missing counter_only flag: {path}"
                )
                continue
            flag = span["counter_only"]
            expected = (
                span.get("count", 0) == 0
                and span.get("seconds", 0.0) == 0.0
                and (span.get("bytes", 0.0) > 0.0
                     or span.get("flops", 0.0) > 0.0)
            )
            if bool(flag) != expected:
                errors.append(
                    f"{side}: counter_only={flag} contradicts "
                    f"count/seconds/bytes/flops: {path}"
                )
            if bool(flag) and (
                span.get("achieved_bw_gbs", 0.0) != 0.0
                or span.get("achieved_gflops", 0.0) != 0.0
            ):
                errors.append(
                    f"{side}: counter-only span reports a nonzero "
                    f"achieved rate: {path}"
                )
    return errors


def record_identity(record):
    """Hashable identity: every field that is not a metric, a size, or
    informational. Nested values contribute their schema signature so two
    perf_report records collapse onto one identity."""
    parts = []
    for key, value in sorted(record.items()):
        if key in ASSERT_IDENTITY_FIELDS:
            parts.append((key, value))
            continue
        if key in SIZE_FIELDS or key in INFO_FIELDS:
            continue
        if is_metric_field(key, value):
            continue
        if isinstance(value, (dict, list)):
            parts.append((key, json.dumps(schema_signature(value))))
        else:
            parts.append((key, value))
    return tuple(parts)


def identity_extends(base_identity, cur_identity):
    """If `cur_identity` is a forward-compatible extension of
    `base_identity` -- every baseline field present with an equal value, or
    with an additive-superset nested schema -- return the sorted list of
    field names added by the current side. Otherwise return None."""
    base = dict(base_identity)
    cur = dict(cur_identity)
    for key, base_value in base.items():
        if key not in cur:
            return None
        cur_value = cur[key]
        if base_value == cur_value:
            continue
        # Nested schemas are stored as JSON-dumped signatures; additive key
        # growth inside them is the same forward-compatible direction.
        try:
            base_sig = json.loads(base_value)
            cur_sig = json.loads(cur_value)
        except (TypeError, ValueError):
            return None
        if not isinstance(base_sig, (dict, list)) or not isinstance(
            cur_sig, (dict, list)
        ):
            return None
        if not signature_is_additive_superset(base_sig, cur_sig):
            return None
    return sorted(set(cur) - set(base))


def identity_label(identity):
    return ", ".join(
        f"{k}={v if not isinstance(v, str) or len(v) < 48 else v[:45] + '...'}"
        for k, v in identity
        if k != "report"
    ) or "<nested report>"


def load_records(path):
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_bench: cannot read {path}: {exc}")
    if not isinstance(data, list) or not all(
        isinstance(r, dict) for r in data
    ):
        sys.exit(f"compare_bench: {path} is not a JSON array of objects")
    return data


def relative_delta(old, new):
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new), 1e-300)
    return abs(new - old) / denom


class Report:
    """Accumulated comparison outcome (the testable result object)."""

    def __init__(self):
        self.errors = []
        self.warnings = []
        self.infos = []
        self.matched_records = 0
        self.compared_metrics = 0

    def exit_code(self):
        return 1 if self.errors else 0


def compare_record_pair(report, label, base_rec, cur_rec, tolerance, verbose):
    report.matched_records += 1

    base_metrics = {k for k, v in base_rec.items() if is_metric_field(k, v)}
    cur_metrics = {k for k, v in cur_rec.items() if is_metric_field(k, v)}
    for key in sorted(base_metrics - cur_metrics):
        report.errors.append(f"metric field removed: {key} [{label}]")
    # Additive metric fields are forward-compatible: a newer binary may
    # measure more than the committed baseline knew about.
    for key in sorted(cur_metrics - base_metrics):
        report.warnings.append(
            f"metric field added (not in baseline): {key} [{label}]"
        )

    for key in INFO_FIELDS & base_rec.keys() & cur_rec.keys():
        if base_rec[key] != cur_rec[key]:
            report.infos.append(
                f"{key}: {base_rec[key]} -> {cur_rec[key]} [{label}]"
            )

    sizes_match = all(
        base_rec.get(f) == cur_rec.get(f) for f in SIZE_FIELDS
    )
    if not sizes_match:
        report.infos.append(
            "sizes differ, metric values not compared: "
            + ", ".join(
                f"{f}={base_rec.get(f)}->{cur_rec.get(f)}"
                for f in sorted(SIZE_FIELDS)
                if base_rec.get(f) != cur_rec.get(f)
            )
            + f" [{label}]"
        )
        return

    for key in sorted(base_metrics & cur_metrics):
        delta = relative_delta(base_rec[key], cur_rec[key])
        report.compared_metrics += 1
        if delta > tolerance:
            report.warnings.append(
                f"{key}: {base_rec[key]:.6g} -> "
                f"{cur_rec[key]:.6g} ({delta * 100.0:.1f}% drift, "
                f"tolerance {tolerance * 100.0:.0f}%) [{label}]"
            )
        elif verbose:
            report.infos.append(
                f"{key}: {base_rec[key]:.6g} -> "
                f"{cur_rec[key]:.6g} ({delta * 100.0:.1f}%) [{label}]"
            )


def compare_record_lists(report, identity, base_recs, cur_recs, tolerance,
                         verbose):
    label = identity_label(identity)
    if len(base_recs) != len(cur_recs):
        report.errors.append(
            f"record multiplicity changed "
            f"({len(base_recs)} -> {len(cur_recs)}): {label}"
        )
    for base_rec, cur_rec in zip(base_recs, cur_recs):
        compare_record_pair(report, label, base_rec, cur_rec, tolerance,
                            verbose)


def compare(baseline, current, tolerance=0.25, fail_on_timing=False,
            verbose=False):
    """Compare two record lists; returns a Report. Pure function of its
    inputs (no I/O), so the self-test drives it with literal records."""
    report = Report()

    # Internal-consistency gate on both artifacts before any matching: a
    # malformed counter_only flag is a producer bug, not drift.
    report.errors.extend(check_counter_only(baseline, "baseline"))
    report.errors.extend(check_counter_only(current, "current"))

    base_by_id = {}
    for rec in baseline:
        base_by_id.setdefault(record_identity(rec), []).append(rec)
    cur_by_id = {}
    for rec in current:
        cur_by_id.setdefault(record_identity(rec), []).append(rec)

    for identity, base_recs in base_by_id.items():
        if identity in cur_by_id:
            compare_record_lists(report, identity, base_recs,
                                 cur_by_id[identity], tolerance, verbose)

    # Relaxed second phase: pair leftover identities whose only difference
    # is additive fields on the current side (forward-compatible growth).
    unmatched_base = [i for i in base_by_id if i not in cur_by_id]
    unmatched_cur = [i for i in cur_by_id if i not in base_by_id]
    claimed = set()
    for base_id in unmatched_base:
        label = identity_label(base_id)
        candidates = [
            cur_id
            for cur_id in unmatched_cur
            if cur_id not in claimed
            and identity_extends(base_id, cur_id) is not None
        ]
        if len(candidates) == 1:
            cur_id = candidates[0]
            claimed.add(cur_id)
            added = identity_extends(base_id, cur_id)
            report.warnings.append(
                "identity matched with additive fields "
                f"({', '.join(added) if added else 'nested schema keys'}): "
                f"{label}"
            )
            compare_record_lists(report, cur_id, base_by_id[base_id],
                                 cur_by_id[cur_id], tolerance, verbose)
        elif len(candidates) > 1:
            report.errors.append(
                f"ambiguous additive match ({len(candidates)} candidates): "
                f"{label}"
            )
        elif any(
            identity_extends(cur_id, base_id) is not None
            for cur_id in unmatched_cur
        ):
            report.errors.append(
                f"record lost identity fields (schema regression): {label}"
            )
        else:
            report.errors.append(
                f"record missing from current: {label}"
            )
    for cur_id in unmatched_cur:
        if cur_id not in claimed:
            report.errors.append(
                f"record not in baseline (new/renamed): "
                f"{identity_label(cur_id)}"
            )

    if fail_on_timing:
        report.errors.extend(report.warnings)
        report.warnings = []
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative drift for metric fields (default 0.25)",
    )
    parser.add_argument(
        "--fail-on-timing",
        action="store_true",
        help="treat out-of-tolerance metrics as errors, not warnings",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    report = compare(
        load_records(args.baseline),
        load_records(args.current),
        tolerance=args.tolerance,
        fail_on_timing=args.fail_on_timing,
        verbose=args.verbose,
    )

    for line in report.infos:
        print(f"info: {line}")
    for line in report.warnings:
        print(f"WARNING: {line}")
    for line in report.errors:
        print(f"ERROR: {line}")

    print(
        f"compare_bench: {report.matched_records} records matched, "
        f"{report.compared_metrics} metric values compared, "
        f"{len(report.warnings)} warnings, {len(report.errors)} errors "
        f"({args.baseline} vs {args.current})"
    )
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
