#!/usr/bin/env python3
"""Diff two bench --json artifacts (BENCH_*.json) for CI gating.

Design for the bench-smoke job: CI runs the benches at *reduced* sizes while
the committed baselines are full-scale, so records are matched by identity
fields that exclude the problem size. Concretely, every record is keyed by
its bench name plus all non-metric fields except SIZE_FIELDS (n, batch) and
INFO_FIELDS (isa, pspl_check). Severity is split in two:

  * structural / schema drift -> HARD FAIL (exit 1): a record identity that
    exists on one side only, a metric field added or removed, a field
    changing JSON type, or nested-object schemas diverging. This is what the
    gate protects: the shape of the artifact, which downstream tooling and
    the committed baselines rely on.
  * metric drift -> WARN by default: numeric perf values (seconds, bandwidth,
    speedup, ulp, ...) outside --tolerance are reported but do not fail the
    run, and are only compared at all when both sides ran the same problem
    size. --fail-on-timing upgrades these to errors for same-machine diffs.

Usage:
  tools/compare_bench.py BASELINE.json CURRENT.json [--tolerance 0.25]
                         [--fail-on-timing] [--verbose]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Problem-size fields: excluded from record identity so reduced-size smoke
# runs still match full-scale baselines; metric values are only compared
# when these agree on both sides.
SIZE_FIELDS = {"n", "batch"}

# Informational provenance: reported on mismatch, never an error.
INFO_FIELDS = {"isa", "pspl_check"}

# A numeric field whose name contains one of these substrings is a measured
# metric (compared within tolerance); any other field is identity.
METRIC_NAME_PARTS = (
    "seconds",
    "bytes",
    "flops",
    "count",
    "gbs",
    "gflops",
    "speedup",
    "percent",
    "ulp",
    "bandwidth",
    "time",
)


def is_metric_field(key, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    lower = key.lower()
    return any(part in lower for part in METRIC_NAME_PARTS)


def schema_signature(value):
    """Recursive shape of a JSON value: key sets for objects, element shape
    for arrays, type name for scalars. Nested objects (e.g. the embedded
    perf_report) are compared by this signature only, never by value."""
    if isinstance(value, dict):
        return {k: schema_signature(v) for k, v in sorted(value.items())}
    if isinstance(value, list):
        element_sigs = [schema_signature(v) for v in value]
        unique = []
        for sig in element_sigs:
            if sig not in unique:
                unique.append(sig)
        return ["array", unique]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if value is None:
        return "null"
    return "string"


def record_identity(record):
    """Hashable identity: every field that is not a metric, a size, or
    informational. Nested values contribute their schema signature so two
    perf_report records collapse onto one identity."""
    parts = []
    for key, value in sorted(record.items()):
        if key in SIZE_FIELDS or key in INFO_FIELDS:
            continue
        if is_metric_field(key, value):
            continue
        if isinstance(value, (dict, list)):
            parts.append((key, json.dumps(schema_signature(value))))
        else:
            parts.append((key, value))
    return tuple(parts)


def identity_label(identity):
    return ", ".join(
        f"{k}={v if not isinstance(v, str) or len(v) < 48 else v[:45] + '...'}"
        for k, v in identity
        if k != "report"
    ) or "<nested report>"


def load_records(path):
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_bench: cannot read {path}: {exc}")
    if not isinstance(data, list) or not all(
        isinstance(r, dict) for r in data
    ):
        sys.exit(f"compare_bench: {path} is not a JSON array of objects")
    return data


def relative_delta(old, new):
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new), 1e-300)
    return abs(new - old) / denom


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative drift for metric fields (default 0.25)",
    )
    parser.add_argument(
        "--fail-on-timing",
        action="store_true",
        help="treat out-of-tolerance metrics as errors, not warnings",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    base_by_id = {}
    for rec in baseline:
        base_by_id.setdefault(record_identity(rec), []).append(rec)
    cur_by_id = {}
    for rec in current:
        cur_by_id.setdefault(record_identity(rec), []).append(rec)

    errors = []
    warnings = []
    infos = []
    compared_metrics = 0
    matched_records = 0

    for identity in base_by_id:
        if identity not in cur_by_id:
            errors.append(
                f"record missing from current: {identity_label(identity)}"
            )
    for identity in cur_by_id:
        if identity not in base_by_id:
            errors.append(
                f"record not in baseline (new/renamed): "
                f"{identity_label(identity)}"
            )

    for identity, base_recs in base_by_id.items():
        cur_recs = cur_by_id.get(identity)
        if cur_recs is None:
            continue
        if len(base_recs) != len(cur_recs):
            errors.append(
                f"record multiplicity changed "
                f"({len(base_recs)} -> {len(cur_recs)}): "
                f"{identity_label(identity)}"
            )
        for base_rec, cur_rec in zip(base_recs, cur_recs):
            matched_records += 1
            label = identity_label(identity)

            base_metrics = {
                k for k, v in base_rec.items() if is_metric_field(k, v)
            }
            cur_metrics = {
                k for k, v in cur_rec.items() if is_metric_field(k, v)
            }
            for key in sorted(base_metrics - cur_metrics):
                errors.append(f"metric field removed: {key} [{label}]")
            for key in sorted(cur_metrics - base_metrics):
                errors.append(f"metric field added: {key} [{label}]")

            for key in INFO_FIELDS & base_rec.keys() & cur_rec.keys():
                if base_rec[key] != cur_rec[key]:
                    infos.append(
                        f"{key}: {base_rec[key]} -> {cur_rec[key]} [{label}]"
                    )

            sizes_match = all(
                base_rec.get(f) == cur_rec.get(f) for f in SIZE_FIELDS
            )
            if not sizes_match:
                infos.append(
                    "sizes differ, metric values not compared: "
                    + ", ".join(
                        f"{f}={base_rec.get(f)}->{cur_rec.get(f)}"
                        for f in sorted(SIZE_FIELDS)
                        if base_rec.get(f) != cur_rec.get(f)
                    )
                    + f" [{label}]"
                )
                continue

            for key in sorted(base_metrics & cur_metrics):
                delta = relative_delta(base_rec[key], cur_rec[key])
                compared_metrics += 1
                if delta > args.tolerance:
                    warnings.append(
                        f"{key}: {base_rec[key]:.6g} -> "
                        f"{cur_rec[key]:.6g} ({delta * 100.0:.1f}% drift, "
                        f"tolerance {args.tolerance * 100.0:.0f}%) [{label}]"
                    )
                elif args.verbose:
                    infos.append(
                        f"{key}: {base_rec[key]:.6g} -> "
                        f"{cur_rec[key]:.6g} ({delta * 100.0:.1f}%) [{label}]"
                    )

    if args.fail_on_timing:
        errors.extend(warnings)
        warnings = []

    for line in infos:
        print(f"info: {line}")
    for line in warnings:
        print(f"WARNING: {line}")
    for line in errors:
        print(f"ERROR: {line}")

    print(
        f"compare_bench: {matched_records} records matched, "
        f"{compared_metrics} metric values compared, "
        f"{len(warnings)} warnings, {len(errors)} errors "
        f"({args.baseline} vs {args.current})"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
