#!/usr/bin/env python3
"""Plot the Fig. 2 analogue from the benchmark harness output.

Mirrors the paper artifact's `comparison.py` workflow: run the Fig. 2
benches with table output captured to text files, then render the GLUPS
curves per (solver path, mesh, degree).

Usage:
    ./build/bench/bench_fig2_direct    > fig2_direct.txt
    ./build/bench/bench_fig2_iterative > fig2_iterative.txt
    python3 tools/plot_fig2.py fig2_direct.txt fig2_iterative.txt -o fig2.png

Only needs matplotlib; the parser reads the aligned '|'-separated summary
tables the benches print.
"""
from __future__ import annotations

import argparse
import collections
import re
import sys


def parse_table(path: str):
    """Yield dict rows from the '|'-delimited summary table in `path`."""
    rows = []
    header = None
    with open(path) as fh:
        for line in fh:
            if not line.startswith("|"):
                continue
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if header is None:
                header = cells
                continue
            if set(line.strip()) <= {"|", "-", " "}:
                continue
            if len(cells) == len(header):
                rows.append(dict(zip(header, cells)))
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("tables", nargs="+", help="bench summary output files")
    ap.add_argument("-o", "--output", default="fig2.png")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing parsed rows instead")
        for path in args.tables:
            for row in parse_table(path):
                print(path, row)
        return 0

    fig, axes = plt.subplots(1, len(args.tables), figsize=(6 * len(args.tables), 4.5), squeeze=False)
    for ax, path in zip(axes[0], args.tables):
        series = collections.defaultdict(list)
        for row in parse_table(path):
            if "GLUPS" not in row or "Nv" not in row:
                continue
            key_parts = [row.get("solver", ""), row.get("mesh", ""), "deg " + row.get("degree", "?")]
            key = " ".join(p for p in key_parts if p)
            series[key].append((int(row["Nv"]), float(row["GLUPS"])))
        for key, pts in sorted(series.items()):
            pts.sort()
            style = "-o" if "uniform" in key and "non" not in key else "--x"
            ax.plot([p[0] for p in pts], [p[1] for p in pts], style, label=key)
        ax.set_xscale("log")
        ax.set_xlabel("Nv (batch size)")
        ax.set_ylabel("GLUPS")
        ax.set_title(re.sub(r"\.txt$", "", path))
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(args.output, dpi=150)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
