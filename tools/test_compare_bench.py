#!/usr/bin/env python3
"""Self-test for tools/compare_bench.py's comparison core.

pytest-style test_* functions over the importable compare() API, but with a
zero-dependency fallback runner so CI lint can execute it directly:

  python3 tools/test_compare_bench.py

Covers the severity model the bench-smoke gate relies on: identical runs
pass; additive record fields, metric additions and nested-schema key growth
warn without failing; removals, renames, type changes and ambiguous
additive matches hard-fail; reduced-size runs skip metric comparison; and
--fail-on-timing promotes drift warnings to errors.
"""

from __future__ import annotations

import copy
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from compare_bench import (  # noqa: E402
    check_counter_only,
    compare,
    identity_extends,
    record_identity,
    signature_is_additive_superset,
)


def rec(**fields):
    base = {
        "bench": "ablation_tile",
        "isa": "AVX-512 (512-bit, 8 fp64 lanes)",
        "pspl_check": False,
        "n": 1000,
        "batch": 100000,
        "seconds": 0.35,
        "bandwidth_gbs": 2.3,
    }
    base.update(fields)
    return base


def test_identical_runs_are_clean():
    baseline = [rec(tile_request="off"), rec(tile_request="128")]
    report = compare(baseline, copy.deepcopy(baseline))
    assert report.errors == []
    assert report.warnings == []
    assert report.matched_records == 2
    assert report.compared_metrics == 4
    assert report.exit_code() == 0


def test_metric_drift_warns_and_fail_on_timing_promotes():
    baseline = [rec(seconds=0.30)]
    current = [rec(seconds=0.60)]
    report = compare(baseline, current, tolerance=0.25)
    assert report.errors == []
    assert len(report.warnings) == 1 and "seconds" in report.warnings[0]

    strict = compare(baseline, current, tolerance=0.25, fail_on_timing=True)
    assert strict.exit_code() == 1
    assert strict.warnings == []


def test_metric_drift_within_tolerance_is_silent():
    report = compare([rec(seconds=0.30)], [rec(seconds=0.33)],
                     tolerance=0.25)
    assert report.errors == [] and report.warnings == []


def test_reduced_size_run_skips_metric_comparison():
    # The CI smoke configuration: same identity, smaller batch, wildly
    # different timings -- must pass with an informational note only.
    baseline = [rec(batch=100000, seconds=0.35)]
    current = [rec(batch=4096, seconds=0.012)]
    report = compare(baseline, current)
    assert report.errors == [] and report.warnings == []
    assert report.compared_metrics == 0
    assert any("sizes differ" in line for line in report.infos)


def test_info_field_changes_never_fail():
    baseline = [rec()]
    current = [rec(isa="scalar (1 fp64 lane)", pspl_check=True, threads=8,
                   pinned=True, tile="128", numa_nodes=2)]
    report = compare(baseline, current)
    assert report.errors == []
    assert report.exit_code() == 0


def test_additive_record_field_matches_with_warning():
    # A v2 artifact gains identity-shaped fields the committed v1 baseline
    # never had; the relaxed second phase must pair the records and warn.
    baseline = [rec(tile_request="off"), rec(tile_request="128")]
    current = [
        rec(tile_request="off", variant="arena"),
        rec(tile_request="128", variant="arena"),
    ]
    report = compare(baseline, current)
    assert report.errors == []
    assert report.matched_records == 2
    assert sum("additive fields (variant)" in w for w in report.warnings) == 2


def test_additive_metric_field_warns_only():
    report = compare([rec()], [rec(flops_total=1.5e9)])
    assert report.errors == []
    assert any("metric field added" in w for w in report.warnings)


def test_removed_metric_field_is_error():
    report = compare([rec()], [{k: v for k, v in rec().items()
                                if k != "bandwidth_gbs"}])
    assert any("metric field removed" in e for e in report.errors)
    assert report.exit_code() == 1


def test_removed_identity_field_is_schema_regression():
    baseline = [rec(tile_request="off")]
    current = [rec()]  # tile_request dropped
    report = compare(baseline, current)
    assert any("lost identity fields" in e for e in report.errors)
    assert report.exit_code() == 1


def test_renamed_record_is_error():
    report = compare([rec(tile_request="off")], [rec(tile_request="none")])
    assert any("missing from current" in e for e in report.errors)
    assert any("not in baseline" in e for e in report.errors)


def test_ambiguous_additive_match_is_error():
    baseline = [rec(tile_request="off")]
    current = [
        rec(tile_request="off", variant="a"),
        rec(tile_request="off", variant="b"),
    ]
    report = compare(baseline, current)
    assert any("ambiguous additive match" in e for e in report.errors)


def test_identity_type_change_is_error():
    # "96" (string) vs 96 (number, non-metric name) -> different identity.
    report = compare([rec(stage="96")], [rec(stage=96)])
    assert report.exit_code() == 1


def test_multiplicity_change_is_error():
    report = compare([rec(), rec()], [rec()])
    assert any("multiplicity" in e for e in report.errors)


def test_nested_schema_additive_superset_warns():
    baseline = [{"bench": "perf_report",
                 "report": {"schema": "v1", "spans": [{"path": "a",
                                                       "seconds": 1.0}]}}]
    current = [{"bench": "perf_report",
                "report": {"schema": "v2", "threads": 8,
                           "spans": [{"path": "a", "seconds": 1.0,
                                      "bytes": 64.0}]}}]
    report = compare(baseline, current)
    assert report.errors == []
    assert any("additive fields" in w for w in report.warnings)


def test_nested_schema_key_removal_is_error():
    baseline = [{"bench": "perf_report",
                 "report": {"schema": "v2", "threads": 8}}]
    current = [{"bench": "perf_report", "report": {"schema": "v2"}}]
    report = compare(baseline, current)
    assert report.exit_code() == 1


def test_v2_baseline_matches_v3_run_with_warning():
    # A committed v2 baseline (no precision / refine_iters / repeats)
    # against a current v3 artifact: the new identity fields are additive,
    # so the records pair up with a warning, never an error; `repeats` is
    # informational and contributes nothing.
    baseline = [rec(tile_request="off"), rec(tile_request="128")]
    current = [
        rec(tile_request="off", precision="double", refine_iters=0,
            repeats=5),
        rec(tile_request="128", precision="double", refine_iters=0,
            repeats=5),
    ]
    report = compare(baseline, current)
    assert report.errors == []
    assert report.matched_records == 2
    assert sum("additive fields" in w for w in report.warnings) == 2


def test_v3_precision_change_is_identity_mismatch():
    # Same bench, same sizes, but the run precision changed: a mixed run
    # must never be accepted against a double baseline.
    baseline = [rec(precision="double", refine_iters=0)]
    current = [rec(precision="mixed", refine_iters=1)]
    report = compare(baseline, current)
    assert report.exit_code() == 1
    assert any("missing from current" in e for e in report.errors)


def test_v3_refine_iters_is_identity_not_metric():
    # refine_iters is numeric but behavioural: drifting from 1 to 3
    # converged iterations is a regression, not timing jitter.
    baseline = [rec(precision="mixed", refine_iters=1)]
    current = [rec(precision="mixed", refine_iters=3)]
    report = compare(baseline, current)
    assert report.exit_code() == 1


def test_v3_repeats_change_never_fails():
    baseline = [rec(precision="mixed", refine_iters=1, repeats=3)]
    current = [rec(precision="mixed", refine_iters=1, repeats=20)]
    report = compare(baseline, current)
    assert report.errors == [] and report.warnings == []


def test_v4_backend_stamp_is_informational():
    # Schema v4: every record carries the executing backend. The nightly
    # matrix compares each PSPL_BACKEND leg against the one committed
    # baseline, so a backend change must pair records cleanly (info note
    # at most), and gaining the stamp over a v3 baseline is additive.
    baseline = [rec(backend="OpenMP", threads=32)]
    current = [rec(backend="Threads", threads=8)]
    report = compare(baseline, current)
    assert report.errors == [] and report.warnings == []
    assert report.matched_records == 1
    assert any("backend" in line for line in report.infos)

    v3_baseline = [rec(tile_request="off")]
    v4_current = [rec(tile_request="off", backend="Threads")]
    report = compare(v3_baseline, v4_current)
    assert report.errors == [] and report.warnings == []
    assert report.matched_records == 1


def test_v4_space_identity_field_gates():
    # The per-backend rows bench_table3 emits key on `space`: dropping a
    # backend from the matrix is a structural regression, not jitter.
    baseline = [rec(space="Serial"), rec(space="Threads")]
    current = [rec(space="Serial")]
    report = compare(baseline, current)
    assert report.exit_code() == 1
    assert any("missing from current" in e for e in report.errors)


def span(path, count, seconds, bytes_, flops, counter_only, bw=0.0):
    return {
        "path": path,
        "count": count,
        "seconds": seconds,
        "bytes": bytes_,
        "flops": flops,
        "counter_only": counter_only,
        "achieved_bw_gbs": bw,
        "achieved_gflops": 0.0,
        "bw_percent_of_peak": 0.0,
    }


def perf_report_rec(spans, schema="pspl-perf-report-v5"):
    return {"bench": "perf_report", "report": {"schema": schema,
                                               "spans": spans}}


def test_v5_counter_only_flag_is_validated():
    # A well-formed v5 report: a timed span with counters and an
    # attribution-only child (count 0, seconds 0, bytes > 0) -> clean.
    good = [perf_report_rec([
        span("pspl::advection::advect_fused", 3, 0.2, 4.0e9, 1.0e9, False,
             bw=20.0),
        span("pspl::advection::advect_fused/pttrs", 0, 0.0, 2.0e9, 5.0e8,
             True),
    ])]
    assert check_counter_only(good, "current") == []
    report = compare(copy.deepcopy(good), copy.deepcopy(good))
    assert report.errors == []

    # An attribution-only child mislabelled as measured: producer bug.
    mislabelled = [perf_report_rec([
        span("pttrs_child", 0, 0.0, 2.0e9, 0.0, False),
    ])]
    errors = check_counter_only(mislabelled, "current")
    assert any("contradicts" in e for e in errors)
    assert compare(copy.deepcopy(good), mislabelled).exit_code() == 1

    # A timed span flagged counter-only is equally inconsistent.
    inverted = [perf_report_rec([
        span("timed", 5, 0.1, 1.0e9, 0.0, True),
    ])]
    assert any(
        "contradicts" in e for e in check_counter_only(inverted, "baseline")
    )

    # A counter-only span must not claim a measured bandwidth.
    phantom = [perf_report_rec([
        span("ghost_bw", 0, 0.0, 1.0e9, 0.0, True, bw=12.5),
    ])]
    assert any(
        "nonzero achieved rate" in e
        for e in check_counter_only(phantom, "current")
    )

    # The flag is mandatory on every v5 span (uniform array signature).
    missing = [perf_report_rec([{"path": "bare", "count": 0, "seconds": 0.0,
                                 "bytes": 1.0, "flops": 0.0}])]
    assert any(
        "missing counter_only" in e
        for e in check_counter_only(missing, "current")
    )


def test_pre_v5_reports_skip_counter_only_validation():
    # v4 baselines carry no flag; the checker must not retro-fail them --
    # including the bare zero-duration counter children that motivated v5.
    v4 = [perf_report_rec(
        [{"path": "pttrs", "count": 0, "seconds": 0.0, "bytes": 2.0e9,
          "flops": 0.0, "achieved_bw_gbs": 0.0}],
        schema="pspl-perf-report-v4",
    )]
    assert check_counter_only(v4, "baseline") == []


def test_signature_superset_helper():
    assert signature_is_additive_superset("number", "number")
    assert not signature_is_additive_superset("number", "string")
    assert signature_is_additive_superset({"a": "number"},
                                          {"a": "number", "b": "string"})
    assert not signature_is_additive_superset({"a": "number", "b": "string"},
                                              {"a": "number"})
    assert signature_is_additive_superset(
        ["array", [{"a": "number"}]],
        ["array", [{"a": "number", "b": "bool"}]])


def test_identity_extends_helper():
    base = record_identity(rec(tile_request="off"))
    ext = record_identity(rec(tile_request="off", variant="x"))
    other = record_identity(rec(tile_request="128"))
    assert identity_extends(base, ext) == ["variant"]
    assert identity_extends(ext, base) is None
    assert identity_extends(base, other) is None


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failed += 1
            print(f"FAIL {name}: {exc}")
    print(f"test_compare_bench: {len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
