#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py's rule engine.

pytest-style test_* functions over the importable check_* API, with the same
zero-dependency fallback runner as tools/test_compare_bench.py so CI lint
can execute it directly:

  python3 tools/test_lint_invariants.py

Every numbered rule (1-9, 11) gets at least one fixture proving it FIRES on
a seeded violation and one proving its documented exemption HOLDS -- the lint
is a gate, so a silently dead rule is as bad as a false positive.  The
final integration tests run main() over a synthetic src/ tree to prove the
path-level wiring (allocation choke point, src/parallel capture exemption,
profiling I/O exemption) rather than just the per-function regexes.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint_invariants as lint  # noqa: E402


def run_check(check, fixture: str, *, raw: bool = False) -> list[str]:
    """Run one check_* function over a fixture string, return its errors."""
    errors: list[str] = []
    code = fixture if raw else lint.strip_comments(fixture)
    check(Path("src/fixture.hpp"), code, errors)
    return errors


# ---------------------------------------------------------------------------
# Rule 1: #pragma once.
# ---------------------------------------------------------------------------
def test_rule1_missing_pragma_once_fires():
    errors = run_check(lint.check_pragma_once,
                       "#include <cstddef>\nint x;\n", raw=True)
    assert len(errors) == 1 and "#pragma once" in errors[0]


def test_rule1_empty_header_fires():
    errors = run_check(lint.check_pragma_once, "// only a comment\n",
                       raw=True)
    assert len(errors) == 1 and "empty header" in errors[0]


def test_rule1_pragma_after_license_comment_is_clean():
    fixture = "// SPDX-License-Identifier: MIT\n/* banner\n */\n" \
              "#pragma once\nint x;\n"
    assert run_check(lint.check_pragma_once, fixture, raw=True) == []


# ---------------------------------------------------------------------------
# Rule 2: raw allocation outside the View choke point.
# ---------------------------------------------------------------------------
def test_rule2_raw_new_fires():
    errors = run_check(lint.check_raw_allocation,
                       "double* p = new double[n];\n")
    assert len(errors) == 1 and "raw new" in errors[0]


def test_rule2_malloc_family_fires():
    fixture = "void* a = malloc(n);\nvoid* b = realloc(a, n);\nfree(b);\n"
    errors = run_check(lint.check_raw_allocation, fixture)
    assert len(errors) == 3
    assert all("malloc-family" in e for e in errors)


def test_rule2_comments_and_identifiers_are_exempt():
    # "a new allocation" in prose, a member function named renew(), and a
    # string literal must not trip the expression-position regex.
    fixture = ("// grab a new allocation from the arena\n"
               "obj.renew(slot);\n"
               'debug::fail("new Buffer[n] is banned here");\n')
    assert run_check(lint.check_raw_allocation, fixture) == []


# ---------------------------------------------------------------------------
# Rule 3: serial kernel headers stay allocation-free.
# ---------------------------------------------------------------------------
def test_rule3_std_container_in_kernel_fires():
    errors = run_check(lint.check_serial_kernel,
                       "std::vector<double> scratch;\n")
    assert len(errors) == 1 and "allocation-free" in errors[0]


def test_rule3_std_array_is_exempt():
    # Fixed-size, stack-resident std::array is the sanctioned scratch.
    assert run_check(lint.check_serial_kernel,
                     "std::array<double, 8> scratch{};\n") == []


# ---------------------------------------------------------------------------
# Rule 4: invoke() pointer parameters carry PSPL_RESTRICT.
# ---------------------------------------------------------------------------
def test_rule4_unrestricted_pointer_fires():
    fixture = "static int invoke(double* d, const double* e) { return 0; }\n"
    errors = run_check(lint.check_serial_kernel, fixture)
    assert len(errors) == 2
    assert all("PSPL_RESTRICT" in e for e in errors)


def test_rule4_restricted_pointers_and_views_are_clean():
    fixture = ("static int invoke(double* PSPL_RESTRICT d,\n"
               "                  const double* PSPL_RESTRICT e,\n"
               "                  const BView& b, int n) { return 0; }\n")
    assert run_check(lint.check_serial_kernel, fixture) == []


# ---------------------------------------------------------------------------
# Rule 5: kernel lambdas capture by value.
# ---------------------------------------------------------------------------
def test_rule5_reference_capture_fires():
    fixture = 'parallel_for("fill", n, [&](std::size_t i) { y(i) = 0.0; });\n'
    errors = run_check(lint.check_kernel_captures, fixture)
    assert len(errors) == 1 and "[&]" in errors[0]


def test_rule5_named_capture_fires():
    fixture = ('parallel_for("fill", n,\n'
               '             [&y](std::size_t i) { y(i) = 0.0; });\n')
    errors = run_check(lint.check_kernel_captures, fixture)
    assert len(errors) == 1 and "capture by" in errors[0]


def test_rule5_value_capture_is_clean():
    fixture = ('parallel_for("fill", n, [=](std::size_t i) '
               "{ y(i) = 0.0; });\n")
    assert run_check(lint.check_kernel_captures, fixture) == []


# ---------------------------------------------------------------------------
# Rule 6: no stdout I/O in library code.
# ---------------------------------------------------------------------------
def test_rule6_cout_and_printf_fire():
    fixture = ('std::cout << x;\nprintf("%d", x);\n')
    errors = run_check(lint.check_io, fixture)
    assert len(errors) == 2


def test_rule6_fprintf_and_snprintf_are_exempt():
    # stderr / buffer formatting is allowed; only stdout chatter is banned.
    fixture = ('fprintf(stderr, "%d", x);\n'
               "std::snprintf(buf, sizeof buf, \"%d\", x);\n")
    assert run_check(lint.check_io, fixture) == []


# ---------------------------------------------------------------------------
# Rule 7: dispatch labels are non-empty.
# ---------------------------------------------------------------------------
def test_rule7_empty_label_fires():
    fixture = 'parallel_for("", n, [=](std::size_t) {});\n'
    errors = run_check(lint.check_kernel_labels, fixture)
    assert len(errors) == 1 and "empty label" in errors[0]


def test_rule7_descriptive_and_forwarded_labels_are_clean():
    fixture = ('parallel_for("spline.fill", n, [=](std::size_t) {});\n'
               "parallel_for(label, n, [=](std::size_t) {});\n")
    assert run_check(lint.check_kernel_labels, fixture) == []


# ---------------------------------------------------------------------------
# Rule 8: no heap allocation inside dispatch bodies.
# ---------------------------------------------------------------------------
def test_rule8_vector_growth_in_body_fires():
    fixture = ('parallel_for("bad", n, [=](std::size_t i) {\n'
               "    std::vector<double> tmp;\n"
               "    tmp.push_back(1.0);\n"
               "});\n")
    errors = run_check(lint.check_dispatch_allocation, fixture)
    assert len(errors) == 2
    assert all("WorkspaceArena" in e for e in errors)


def test_rule8_arena_staging_outside_body_is_clean():
    fixture = ("auto slot = arena.reserve<double>(n);\n"
               'parallel_for("good", n, [=](std::size_t i) {\n'
               "    slot[i] = 0.0;\n"
               "});\n")
    assert run_check(lint.check_dispatch_allocation, fixture) == []


def test_rule8_tile_dispatch_allocation_fires():
    # The fused advection driver's dispatch shape: a per-tile body staging
    # RHS + output strips. Scratch must come from the pre-reserved arena
    # slot, never a per-tile allocation.
    fixture = ('for_each_batch_tile("pspl::advection::advect_fused", policy,\n'
               "                    tile, [=](const BatchTile& t) {\n"
               "    double* strip = new double[rows * t.cols()];\n"
               "    solve_tile(t, strip);\n"
               "});\n")
    errors = run_check(lint.check_dispatch_allocation, fixture)
    assert len(errors) == 1
    assert "heap allocation" in errors[0]


def test_rule8_fused_advection_arena_strips_are_clean():
    # The real driver: strips reserved from the WorkspaceArena before the
    # dispatch, the tile body only indexes into its rank's slot.
    fixture = (
        "auto& arena = host_workspace_arena();\n"
        "arena.reserve(Exec::concurrency() * slot_bytes, label);\n"
        'for_each_batch_tile("pspl::advection::advect_fused", policy,\n'
        "                    tile, [=](const BatchTile& t) {\n"
        "    double* strip = slot_for(t.thread_rank);\n"
        "    gather_strip_from_rows(f, t.begin, t.cols(), rows, stride,\n"
        "                           strip);\n"
        "    core::schur_solve_staged_strip<W>(s, strip, packs, use_spmv);\n"
        "    evaluator.evaluate_shifted(points, shift, col, out_row);\n"
        "});\n")
    assert run_check(lint.check_dispatch_allocation, fixture) == []


# ---------------------------------------------------------------------------
# Rule 9: no implicit double promotion in batched kernel bodies.
# ---------------------------------------------------------------------------
def test_rule9_bare_double_literal_fires():
    fixture = ("static int invoke(const AView& a) {\n"
               "    auto x = a(0, 0) * 1.0;\n"
               "    return 0;\n"
               "}\n")
    errors = run_check(lint.check_kernel_narrowing, fixture)
    assert len(errors) == 1 and "bare double literal" in errors[0]


def test_rule9_hard_coded_float_fires():
    fixture = ("static int invoke(const AView& a) {\n"
               "    float x = a(0, 0);\n"
               "    return 0;\n"
               "}\n")
    errors = run_check(lint.check_kernel_narrowing, fixture)
    assert len(errors) == 1 and "hard-coded 'float'" in errors[0]


def test_rule9_wrapped_literal_and_suffix_are_clean():
    fixture = ("static int invoke(const AView& a) {\n"
               "    auto x = a(0, 0) * T(1.0) + static_cast<T>(0.5);\n"
               "    auto y = 1.0f * 2;\n"
               "    return 0;\n"
               "}\n")
    assert run_check(lint.check_kernel_narrowing, fixture) == []


def test_rule9_cost_model_outside_invoke_is_exempt():
    fixture = ("static constexpr KernelCost cost(std::size_t n) {\n"
               "    return {2.0 / 3.0 * nd * nd * nd, 16.0 * nd * nd};\n"
               "}\n")
    assert run_check(lint.check_kernel_narrowing, fixture) == []


def test_rule9_declaration_without_body_is_skipped():
    fixture = "static int invoke(const AView& a);\n"
    assert run_check(lint.check_kernel_narrowing, fixture) == []


# ---------------------------------------------------------------------------
# Rule 11: raw atomics stay inside the sync-policy seam.
# ---------------------------------------------------------------------------
def run_atomics(fixture: str) -> list[str]:
    # check_raw_atomics takes both the raw text (exemption markers live in
    # comments) and the stripped code (matching), so run_check does not fit.
    errors: list[str] = []
    lint.check_raw_atomics(Path("src/fixture.hpp"), fixture,
                           lint.strip_comments(fixture), errors)
    return errors


def test_rule11_raw_atomic_fires():
    errors = run_atomics("std::atomic<int> counter{0};\n")
    assert len(errors) == 1 and "sync-policy seam" in errors[0]


def test_rule11_memory_order_and_aliases_fire():
    fixture = ("x.store(1, std::memory_order_release);\n"
               "std::atomic_int n{0};\n"
               "std::atomic_thread_fence(std::memory_order_seq_cst);\n")
    errors = run_atomics(fixture)
    assert len(errors) == 4  # fence line carries two tokens


def test_rule11_comments_and_strings_are_exempt():
    fixture = ("// replaced the raw std::atomic<int> with Sync::atomic\n"
               'debug::fail("std::memory_order misuse");\n'
               "typename Sync::template atomic<int> n{0};\n")
    assert run_atomics(fixture) == []


def test_rule11_marker_on_same_or_preceding_line_holds():
    fixture = (
        "std::atomic<int> a{0};  "
        "// pspl-lint: allow-raw-atomics -- ABI fixture\n"
        "// pspl-lint: allow-raw-atomics -- vendor header interop\n"
        "std::atomic<int> b{0};\n")
    assert run_atomics(fixture) == []


def test_rule11_bare_marker_without_reason_does_not_exempt():
    fixture = ("// pspl-lint: allow-raw-atomics\n"
               "std::atomic<int> a{0};\n")
    errors = run_atomics(fixture)
    assert len(errors) == 1


# ---------------------------------------------------------------------------
# strip_comments underpins every rule: static_assert message strings must
# never feed the pattern matchers (the contract-layer diagnostics quote the
# very constructs the lint bans).
# ---------------------------------------------------------------------------
def test_strip_comments_blanks_strings_and_preserves_lines():
    fixture = ('static_assert(ok, "never call malloc(n) or new double[8]");\n'
               "int y; // new double[4] in prose\n")
    code = lint.strip_comments(fixture)
    assert run_check(lint.check_raw_allocation, code, raw=True) == []
    assert code.count("\n") == fixture.count("\n")


# ---------------------------------------------------------------------------
# Integration: main() over a synthetic tree proves the path-level wiring --
# the choke-point, src/parallel and profiling exemptions live in main(),
# not in the per-function checks.
# ---------------------------------------------------------------------------
def run_main_over(files: dict[str, str]) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        repo = Path(tmp)
        for rel, content in files.items():
            path = repo / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content, encoding="utf-8")
        saved = lint.REPO, lint.SRC, lint.ALLOC_CHOKE_POINT
        lint.REPO = repo
        lint.SRC = repo / "src"
        lint.ALLOC_CHOKE_POINT = lint.SRC / "parallel" / "view.hpp"
        try:
            return lint.main()
        finally:
            lint.REPO, lint.SRC, lint.ALLOC_CHOKE_POINT = saved


def test_main_exemptions_hold_on_a_clean_tree():
    exit_code = run_main_over({
        # Choke point: the ONE file allowed to malloc.
        "src/parallel/view.hpp":
            "#pragma once\ninline void* grab(std::size_t n) "
            "{ return malloc(n); }\n",
        # Dispatcher internals: reference captures allowed in src/parallel.
        "src/parallel/parallel.hpp":
            "#pragma once\ntemplate <class F>\nvoid dispatch(F f) {\n"
            '    parallel_for("trampoline", 1,\n'
            "                 [&](std::size_t i) { f(i); });\n}\n",
        # Measurement machinery: printf allowed in profiling/report/hardware.
        "src/parallel/profiling.cpp":
            '#include <cstdio>\nvoid dump() { printf("spans\\n"); }\n',
        # Sync seam: the ONE header allowed to spell std::atomic.
        "src/parallel/sync_policy.hpp":
            "#pragma once\ntemplate <class T>\n"
            "using atomic = std::atomic<T>;\n",
        # The model checker's implementation is the other legal home.
        "src/debug/modelcheck/mc.cpp":
            "#include <atomic>\n"
            "std::memory_order weaken() "
            "{ return std::memory_order_relaxed; }\n",
    })
    assert exit_code == 0


def test_main_flags_a_dirty_tree():
    exit_code = run_main_over({
        "src/core/solver.hpp":
            "#pragma once\ninline double* leak(std::size_t n) "
            "{ return new double[n]; }\n",
        "src/core/driver.cpp":
            '#include <cstdio>\nvoid chat() { printf("hi\\n"); }\n',
        # Raw atomic outside the seam: rule 11 must flag it.
        "src/core/counter.hpp":
            "#pragma once\n#include <atomic>\n"
            "inline std::atomic<int> hits{0};\n",
    })
    assert exit_code == 1


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failed += 1
            print(f"FAIL {name}: {exc}")
    print(f"test_lint_invariants: {len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
