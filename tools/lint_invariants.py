#!/usr/bin/env python3
"""Repo-invariant lint for the portaspline source tree.

Enforces the structural rules the runtime instrumentation layer (src/debug/)
assumes and the batched-kernel design depends on:

  1. Every header under src/ starts with `#pragma once`.
  2. Raw allocation (`new`, `malloc`, `calloc`, `realloc`, `free`) appears
     only in src/parallel/view.hpp -- the single choke point the allocation
     registry instruments.  Everything else must allocate through View.
  3. Batched serial kernels (src/batched/serial_*.hpp) are header-only and
     allocation-free: no `new`/`malloc`, no std::vector/std::string/std::map
     members -- they run inside parallel regions on every backend.
  4. Pointer parameters of `invoke(...)` in serial_*.hpp carry PSPL_RESTRICT
     (the no-alias contract the SIMD codegen relies on).
  5. Kernel lambdas passed to parallel_for / parallel_reduce /
     for_each_batch_simd in src/ capture by value (`[=]`) -- reference
     captures dangle on offloading backends.  src/parallel/ itself is
     exempt: the dispatcher's internal trampolines and reduce combiners
     are host-side implementation, not kernels.
  6. No std::cout / printf in src/ library code (stderr via debug::fail or
     profiling hooks only); keeps library output parseable.
  7. Every parallel_for / parallel_reduce / for_each_batch_simd /
     for_each_batch_tile call site passes a non-empty label: labels key
     the profiling spans and the PSPL_CHECK region guards, and an empty
     label collapses distinct kernels into one unattributable bucket.
  8. Kernel lambda bodies passed to the dispatch entry points contain no
     heap allocation: no `new`, no malloc-family call, no std::vector
     construction or growth (push_back / emplace_back / resize).  Hot
     dispatch bodies must stage through the persistent WorkspaceArena
     (src/parallel/arena.hpp) reserved *before* the dispatch -- a hidden
     per-iteration allocation is exactly the regression the tile-resident
     pipeline removed.
  9. Batched kernel bodies (`invoke(...)` in src/batched/) never narrow
     through double implicitly: an unsuffixed floating literal promotes
     T=float arithmetic to double and narrows back on assignment, silently
     discarding the FP32 pipeline's precision contract -- wrap literals in
     an explicit T(...) / static_cast.  Hard-coded `float` types inside a
     generic kernel body are flagged for the same reason: the element type
     belongs to the template parameter.  (clang-tidy's
     bugprone-narrowing-conversions backstops the cases a regex cannot
     see; see .clang-tidy.)  Cost-model functions outside invoke() are
     exempt -- flops/bytes estimates are honestly double.
 10. Every public header under src/ is self-contained (compiles as the sole
     include of a TU).  This rule is enforced by the `pspl_header_check`
     CMake target (one generated TU per header; built by the CI lint job),
     not by this script -- a compiler is the only honest checker for it.
 11. Raw `std::atomic` / `std::memory_order` appear only in the sync-policy
     seam (src/parallel/sync_policy.hpp) and the model checker's own
     implementation (src/debug/modelcheck/).  Everything else goes through
     `Sync::atomic<T>` + `Sync::order(Site, dflt)` so every synchronisation
     site is (a) swappable for the model-checked policy and (b) weakened by
     the mutation matrix.  A raw atomic elsewhere is a protocol the checker
     cannot see.  Escape hatch for genuinely unportable cases: a comment
     `pspl-lint: allow-raw-atomics -- <reason>` on the same or the
     preceding line.

Rules 1-9 and 11 are self-tested by tools/test_lint_invariants.py (fixtures
prove each rule fires and each exemption holds); run it after editing a
pattern.

Exit code 0 when clean, 1 with one `file:line: message` per violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

ALLOC_CHOKE_POINT = SRC / "parallel" / "view.hpp"

# `new` as an expression (not "a new allocation" in a comment, not
# placement-new tokens inside words).
RAW_NEW = re.compile(r"(?<![\w.])new\s+[A-Za-z_:][\w:<>,\s]*[\[(]")
RAW_CALLOC = re.compile(r"(?<![\w.])(?:malloc|calloc|realloc|free)\s*\(")
STD_CONTAINER = re.compile(r"std::(?:vector|string|map|set|deque|list)\b")
KERNEL_DISPATCH = re.compile(
    r"(?:parallel_for|parallel_reduce|"
    r"for_each_batch_(?:simd|tile)(?:<[^>]*>)?)\s*\(")
LAMBDA_CAPTURE = re.compile(r"\[(?P<cap>[^\]]*)\]\s*\(")
IO_CALL = re.compile(r"std::cout|(?<![\w:.])printf\s*\(")
# Heap activity that must never appear inside a kernel lambda body (rule 8):
# raw allocation plus std::vector construction or growth.
DISPATCH_ALLOC = re.compile(
    r"(?<![\w.])new\s+[A-Za-z_:]"
    r"|(?<![\w.])(?:malloc|calloc|realloc)\s*\("
    r"|std::vector\s*<"
    r"|\.(?:push_back|emplace_back|resize)\s*\(")
# Rule 11: synchronisation primitives outside the sync-policy seam.  The
# \w* tail catches the convenience aliases (std::atomic_int, the
# std::memory_order_* constants) and std::atomic_thread_fence alike.
RAW_ATOMIC = re.compile(r"std::(?:atomic|memory_order)\w*")
# The exemption marker lives in a comment, so it is matched against the RAW
# file text (strip_comments blanks it out of `code`).
ATOMIC_EXEMPT = re.compile(r"pspl-lint:\s*allow-raw-atomics\s*--\s*\S")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay valid."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def check_pragma_once(path: Path, raw: str, errors: list[str]) -> None:
    for line in raw.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//") or stripped.startswith("*") \
                or stripped.startswith("/*"):
            continue
        if stripped != "#pragma once":
            errors.append(f"{path}:1: header does not start with "
                          "'#pragma once'")
        return
    errors.append(f"{path}:1: empty header (no '#pragma once')")


def check_raw_allocation(path: Path, code: str, errors: list[str]) -> None:
    for pat, what in ((RAW_NEW, "raw new"), (RAW_CALLOC, "malloc-family call")):
        for m in pat.finditer(code):
            errors.append(
                f"{path}:{line_of(code, m.start())}: {what} outside "
                f"{ALLOC_CHOKE_POINT.relative_to(REPO)} -- allocate through "
                "View so the debug registry sees it")


def check_serial_kernel(path: Path, code: str, errors: list[str]) -> None:
    for m in STD_CONTAINER.finditer(code):
        errors.append(
            f"{path}:{line_of(code, m.start())}: allocating std:: container "
            "in a batched serial kernel header (must stay allocation-free)")
    # Every pointer parameter in an invoke(...) signature needs
    # PSPL_RESTRICT: find parameter lists and inspect `*` declarators.
    for m in re.finditer(r"\binvoke\s*\(", code):
        depth, j = 1, m.end()
        while j < len(code) and depth:
            depth += code[j] == "("
            depth -= code[j] == ")"
            j += 1
        params = code[m.end():j - 1]
        for param in params.split(","):
            if "*" in param and "PSPL_RESTRICT" not in param \
                    and "(*" not in param:
                errors.append(
                    f"{path}:{line_of(code, m.start())}: invoke() pointer "
                    f"parameter '{param.strip()}' lacks PSPL_RESTRICT")


def check_kernel_captures(path: Path, code: str, errors: list[str]) -> None:
    for m in KERNEL_DISPATCH.finditer(code):
        # Look for the first lambda inside this call's argument window.
        window = code[m.end():m.end() + 400]
        lam = LAMBDA_CAPTURE.search(window)
        if lam is None:
            continue
        cap = lam.group("cap").strip()
        if cap != "=":
            errors.append(
                f"{path}:{line_of(code, m.end() + lam.start())}: kernel "
                f"lambda captures '[{cap}]' -- kernels must capture by "
                "value ('[=]') to stay portable to offloading backends")


def check_kernel_labels(path: Path, code: str, errors: list[str]) -> None:
    for m in KERNEL_DISPATCH.finditer(code):
        j = m.end()
        while j < len(code) and code[j].isspace():
            j += 1
        if j >= len(code) or code[j] != '"':
            # Label forwarded through a variable/expression; nothing to
            # verify statically.
            continue
        # strip_comments blanks string *contents* but keeps the quotes, so
        # an empty label literal survives as two adjacent quotes.
        if j + 1 < len(code) and code[j + 1] == '"':
            errors.append(
                f"{path}:{line_of(code, m.start())}: kernel dispatch with an "
                "empty label -- labels key profiling spans and PSPL_CHECK "
                "region guards, pass a descriptive one")


def kernel_lambda_body(code: str, dispatch_end: int) -> tuple[int, int] | None:
    """Locate the body of the first lambda inside a dispatch call: returns
    (open_brace_pos, close_brace_pos) or None when no lambda is in range."""
    window_end = min(len(code), dispatch_end + 400)
    lam = LAMBDA_CAPTURE.search(code, dispatch_end, window_end)
    if lam is None:
        return None
    # Skip the parameter list, then balance the body braces.
    j, depth = lam.end(), 1
    while j < len(code) and depth:
        depth += code[j] == "("
        depth -= code[j] == ")"
        j += 1
    while j < len(code) and code[j] != "{":
        j += 1
    if j >= len(code):
        return None
    open_brace, depth = j, 1
    j += 1
    while j < len(code) and depth:
        depth += code[j] == "{"
        depth -= code[j] == "}"
        j += 1
    return open_brace, j


def check_dispatch_allocation(path: Path, code: str,
                              errors: list[str]) -> None:
    for m in KERNEL_DISPATCH.finditer(code):
        body = kernel_lambda_body(code, m.end())
        if body is None:
            continue
        open_brace, close_brace = body
        for alloc in DISPATCH_ALLOC.finditer(code, open_brace, close_brace):
            errors.append(
                f"{path}:{line_of(code, alloc.start())}: heap allocation "
                f"('{alloc.group().strip()}') inside a kernel dispatch body "
                "-- reserve a WorkspaceArena slot before the dispatch "
                "instead (hot kernels must not allocate)")


def check_io(path: Path, code: str, errors: list[str]) -> None:
    for m in IO_CALL.finditer(code):
        errors.append(
            f"{path}:{line_of(code, m.start())}: stdout I/O in library code "
            "(use debug::fail / profiling hooks)")


# Rule 9: bare floating literal (no f suffix) and hard-coded float types.
BARE_FP_LITERAL = re.compile(
    r"(?<![\w.])(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+)(?![fF\w.])")
FLOAT_TYPE_TOKEN = re.compile(r"(?<![\w:])float\b")
# An explicit conversion wrapping the literal: `T(`, `Scalar(`,
# `static_cast<...>(` directly before it.
EXPLICIT_WRAP = re.compile(r"(?:[A-Za-z_]\w*|static_cast<[^<>]*>)\s*\(\s*$")


def invoke_body(code: str, args_start: int) -> tuple[int, int] | None:
    """Span of the function body following an `invoke(` argument list, or
    None for declarations without a body."""
    depth, j = 1, args_start
    while j < len(code) and depth:
        depth += code[j] == "("
        depth -= code[j] == ")"
        j += 1
    while j < len(code) and code[j] not in "{;":
        j += 1
    if j >= len(code) or code[j] != "{":
        return None
    open_brace, depth = j, 1
    j += 1
    while j < len(code) and depth:
        depth += code[j] == "{"
        depth -= code[j] == "}"
        j += 1
    return open_brace, j


def check_kernel_narrowing(path: Path, code: str, errors: list[str]) -> None:
    for m in re.finditer(r"\binvoke\s*\(", code):
        body = invoke_body(code, m.end())
        if body is None:
            continue
        open_brace, close_brace = body
        for lit in BARE_FP_LITERAL.finditer(code, open_brace, close_brace):
            if EXPLICIT_WRAP.search(code[max(0, lit.start() - 60):
                                         lit.start()]):
                continue
            errors.append(
                f"{path}:{line_of(code, lit.start())}: bare double literal "
                f"'{lit.group()}' in a batched kernel body -- promotes "
                "T=float arithmetic to double and narrows implicitly; wrap "
                "in T(...) or suffix with f")
        for tok in FLOAT_TYPE_TOKEN.finditer(code, open_brace, close_brace):
            errors.append(
                f"{path}:{line_of(code, tok.start())}: hard-coded 'float' "
                "in a generic batched kernel body -- the element type "
                "belongs to the template parameter")


def check_raw_atomics(path: Path, raw: str, code: str,
                      errors: list[str]) -> None:
    raw_lines = raw.splitlines()
    for m in RAW_ATOMIC.finditer(code):
        ln = line_of(code, m.start())
        # Marker on the violating line or the line above exempts it.
        context = raw_lines[max(0, ln - 2):ln]
        if any(ATOMIC_EXEMPT.search(line) for line in context):
            continue
        errors.append(
            f"{path}:{ln}: raw '{m.group()}' outside the sync-policy seam "
            "-- route it through Sync::atomic / Sync::order "
            "(src/parallel/sync_policy.hpp) so the model checker and the "
            "mutation matrix can see the site, or annotate the line with "
            "'pspl-lint: allow-raw-atomics -- <reason>'")


def main() -> int:
    errors: list[str] = []
    sync_seam = SRC / "parallel" / "sync_policy.hpp"
    modelcheck_dir = SRC / "debug" / "modelcheck"
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        raw = path.read_text(encoding="utf-8")
        code = strip_comments(raw)
        rel = path.relative_to(REPO)
        if path.suffix == ".hpp":
            check_pragma_once(rel, raw, errors)
        if path != ALLOC_CHOKE_POINT:
            check_raw_allocation(rel, code, errors)
        if path.parent.name == "batched" and path.name.startswith("serial_"):
            check_serial_kernel(rel, code, errors)
        if path.parent.name == "batched":
            check_kernel_narrowing(rel, code, errors)
        if path.parent.name != "parallel":
            check_kernel_captures(rel, code, errors)
        check_kernel_labels(rel, code, errors)
        check_dispatch_allocation(rel, code, errors)
        if "profiling" not in path.name and "report" not in path.name \
                and "hardware" not in path.name:
            check_io(rel, code, errors)
        if path != sync_seam and modelcheck_dir not in path.parents:
            check_raw_atomics(rel, raw, code, errors)
    if errors:
        print(f"lint_invariants: {len(errors)} violation(s)", file=sys.stderr)
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    n_files = sum(1 for p in SRC.rglob("*") if p.suffix in (".hpp", ".cpp"))
    print(f"lint_invariants: OK ({n_files} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
