#include "hostlapack/pbtrf.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::hostlapack {

SymBandMatrix pack_sym_band(const View2D<double>& a, std::size_t kd)
{
    const std::size_t n = a.extent(0);
    PSPL_EXPECT(a.extent(1) == n, "pack_sym_band: matrix must be square");
    SymBandMatrix m(n, kd);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t ihi = std::min(n - 1, j + kd);
        for (std::size_t i = j; i <= ihi; ++i) {
            m.at(i, j) = a(i, j);
        }
    }
    return m;
}

int pbtrf(SymBandMatrix& m)
{
    const std::size_t n = m.n;
    const std::size_t kd = m.kd;
    auto& ab = m.ab;

    for (std::size_t j = 0; j < n; ++j) {
        const double ajj = ab(0, j);
        if (ajj <= 0.0) {
            return static_cast<int>(j) + 1;
        }
        const double ljj = std::sqrt(ajj);
        ab(0, j) = ljj;
        const std::size_t km = std::min(kd, n - 1 - j);
        if (km > 0) {
            const double inv = 1.0 / ljj;
            for (std::size_t i = 1; i <= km; ++i) {
                ab(i, j) *= inv;
            }
            // Symmetric rank-1 update of the trailing band (lower part only).
            for (std::size_t k = 1; k <= km; ++k) {
                const double ljk = ab(k, j);
                if (ljk != 0.0) {
                    for (std::size_t i = k; i <= km; ++i) {
                        ab(i - k, j + k) -= ab(i, j) * ljk;
                    }
                }
            }
        }
    }
    return 0;
}

} // namespace pspl::hostlapack
