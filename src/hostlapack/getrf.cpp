#include "hostlapack/getrf.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::hostlapack {

int getrf(View2D<double>& a, View1D<int>& ipiv)
{
    const std::size_t n = a.extent(0);
    PSPL_EXPECT(a.extent(1) == n, "getrf: matrix must be square");
    PSPL_EXPECT(ipiv.extent(0) >= n, "getrf: ipiv too small");

    int info = 0;
    for (std::size_t k = 0; k < n; ++k) {
        // Pivot search in column k.
        std::size_t p = k;
        double pmax = std::abs(a(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(a(i, k));
            if (v > pmax) {
                pmax = v;
                p = i;
            }
        }
        ipiv(k) = static_cast<int>(p);
        if (pmax == 0.0) {
            if (info == 0) {
                info = static_cast<int>(k) + 1;
            }
            continue;
        }
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) {
                const double t = a(k, j);
                a(k, j) = a(p, j);
                a(p, j) = t;
            }
        }
        const double inv_piv = 1.0 / a(k, k);
        for (std::size_t i = k + 1; i < n; ++i) {
            a(i, k) *= inv_piv;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = a(i, k);
            if (lik != 0.0) {
                for (std::size_t j = k + 1; j < n; ++j) {
                    a(i, j) -= lik * a(k, j);
                }
            }
        }
    }
    return info;
}

} // namespace pspl::hostlapack
