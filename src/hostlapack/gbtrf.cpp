#include "hostlapack/gbtrf.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::hostlapack {

BandMatrix pack_band(const View2D<double>& a, std::size_t kl, std::size_t ku)
{
    const std::size_t n = a.extent(0);
    PSPL_EXPECT(a.extent(1) == n, "pack_band: matrix must be square");
    BandMatrix m(n, kl, ku);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t ilo = j > ku ? j - ku : 0;
        const std::size_t ihi = std::min(n - 1, j + kl);
        for (std::size_t i = ilo; i <= ihi; ++i) {
            m.at(i, j) = a(i, j);
        }
    }
    return m;
}

int gbtrf(BandMatrix& m, View1D<int>& ipiv)
{
    const std::size_t n = m.n;
    const std::size_t kl = m.kl;
    const std::size_t kv = m.kl + m.ku;
    auto& ab = m.ab;
    PSPL_EXPECT(ipiv.extent(0) >= n, "gbtrf: ipiv too small");

    int info = 0;
    for (std::size_t j = 0; j < n; ++j) {
        // Pivot search among rows j .. j+km in column j.
        const std::size_t km = std::min(kl, n - 1 - j);
        std::size_t jp = 0; // offset of pivot row from j
        double pmax = std::abs(ab(kv, j));
        for (std::size_t i = 1; i <= km; ++i) {
            const double v = std::abs(ab(kv + i, j));
            if (v > pmax) {
                pmax = v;
                jp = i;
            }
        }
        ipiv(j) = static_cast<int>(j + jp);
        if (pmax == 0.0) {
            if (info == 0) {
                info = static_cast<int>(j) + 1;
            }
            continue;
        }
        // Columns reachable by row j+jp within the (widened) band.
        const std::size_t ju = std::min(n - 1, j + kv);
        if (jp != 0) {
            // Swap rows j and j+jp across columns j..ju.
            for (std::size_t jj = j; jj <= ju; ++jj) {
                const double t = ab(kv + j - jj, jj);
                ab(kv + j - jj, jj) = ab(kv + j + jp - jj, jj);
                ab(kv + j + jp - jj, jj) = t;
            }
        }
        if (km > 0) {
            const double inv_piv = 1.0 / ab(kv, j);
            for (std::size_t i = 1; i <= km; ++i) {
                ab(kv + i, j) *= inv_piv;
            }
            // Rank-1 update of the trailing band.
            for (std::size_t jj = j + 1; jj <= ju; ++jj) {
                const double t = ab(kv + j - jj, jj);
                if (t != 0.0) {
                    for (std::size_t i = 1; i <= km; ++i) {
                        ab(kv + j - jj + i, jj) -= ab(kv + i, j) * t;
                    }
                }
            }
        }
    }
    return info;
}

} // namespace pspl::hostlapack
