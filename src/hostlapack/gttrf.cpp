#include "hostlapack/gttrf.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::hostlapack {

int gttrf(View1D<double>& dl, View1D<double>& d, View1D<double>& du,
          View1D<double>& du2, View1D<int>& ipiv)
{
    const std::size_t n = d.extent(0);
    PSPL_EXPECT(n == 0
                        || (dl.extent(0) >= n - 1 && du.extent(0) >= n - 1
                            && (n < 2 || du2.extent(0) >= n - 2)
                            && ipiv.extent(0) >= n),
                "gttrf: array extents too small");
    if (n == 0) {
        return 0;
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
        du2(i) = 0.0;
    }

    int info = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (std::abs(d(i)) >= std::abs(dl(i))) {
            // No interchange.
            ipiv(i) = static_cast<int>(i);
            if (d(i) != 0.0) {
                const double fact = dl(i) / d(i);
                dl(i) = fact;
                d(i + 1) -= fact * du(i);
            }
        } else {
            // Interchange rows i and i+1.
            ipiv(i) = static_cast<int>(i + 1);
            const double fact = d(i) / dl(i);
            d(i) = dl(i);
            dl(i) = fact;
            const double temp = du(i);
            du(i) = d(i + 1);
            d(i + 1) = temp - fact * d(i + 1);
            if (i + 2 < n) {
                du2(i) = du(i + 1);
                du(i + 1) = -fact * du(i + 1);
            }
        }
        if (d(i) == 0.0 && info == 0) {
            info = static_cast<int>(i) + 1;
        }
    }
    ipiv(n - 1) = static_cast<int>(n - 1);
    if (d(n - 1) == 0.0 && info == 0) {
        info = static_cast<int>(n);
    }
    return info;
}

} // namespace pspl::hostlapack
