// General tridiagonal LU factorization with partial pivoting (LAPACK
// gttrf/gttrs subset). Complements pttrf for tridiagonal matrices that are
// not symmetric positive definite -- e.g. a non-symmetric spline matrix
// whose band happens to be tridiagonal, or as the pivoted fallback when
// pttrf rejects an indefinite matrix.
//
// Storage: dl(n-1) subdiagonal, d(n) diagonal, du(n-1) superdiagonal;
// the factorization adds a second superdiagonal du2(n-2) from pivoting.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::hostlapack {

/// In-place LU with partial pivoting of a tridiagonal matrix.
/// ipiv(i) in {i, i+1} records the interchange at step i.
/// Returns 0, or k+1 if U(k,k) is exactly zero.
int gttrf(View1D<double>& dl, View1D<double>& d, View1D<double>& du,
          View1D<double>& du2, View1D<int>& ipiv);

/// Solve A x = b in place given the gttrf factorization; `b` may be strided.
template <class DLView, class DView, class DUView, class DU2View,
          class PivView, class BView>
void gttrs(const DLView& dl, const DView& d, const DUView& du,
           const DU2View& du2, const PivView& ipiv, const BView& b)
{
    const std::size_t n = d.extent(0);
    // Forward: apply L and the interchanges.
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (static_cast<std::size_t>(ipiv(i)) == i) {
            b(i + 1) -= dl(i) * b(i);
        } else {
            const double temp = b(i);
            b(i) = b(i + 1);
            b(i + 1) = temp - dl(i) * b(i);
        }
    }
    // Backward with U (diagonal d, first superdiagonal du, second du2).
    b(n - 1) /= d(n - 1);
    if (n > 1) {
        b(n - 2) = (b(n - 2) - du(n - 2) * b(n - 1)) / d(n - 2);
    }
    for (std::size_t i = (n >= 2 ? n - 2 : 0); i-- > 0;) {
        b(i) = (b(i) - du(i) * b(i + 1) - du2(i) * b(i + 2)) / d(i);
    }
}

} // namespace pspl::hostlapack
