// Positive-definite symmetric tridiagonal LDL^T factorization (LAPACK
// pttrf/pttrs subset). This is the factorization behind the paper's
// SerialPttrs kernel (Listing 1): d holds D, e holds the unit subdiagonal
// multipliers of L after factorization.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::hostlapack {

/// In-place LDL^T of a SPD tridiagonal matrix. On entry d(0..n-1) is the
/// diagonal and e(0..n-2) the off-diagonal; on exit they hold the factors.
/// Returns 0, or k+1 if the leading minor of order k+1 is not positive.
int pttrf(View1D<double>& d, View1D<double>& e);

/// Solve A x = b in-place given the pttrf factorization; `b` may be strided.
/// This mirrors the paper's Listing 1 exactly (L D L^T solve).
template <class DView, class EView, class BView>
void pttrs(const DView& d, const EView& e, const BView& b)
{
    const std::size_t n = d.extent(0);
    // L y = b
    for (std::size_t i = 1; i < n; ++i) {
        b(i) -= e(i - 1) * b(i - 1);
    }
    // D L^T x = y
    b(n - 1) = b(n - 1) / d(n - 1);
    for (std::size_t i = n - 1; i-- > 0;) {
        b(i) = b(i) / d(i) - b(i + 1) * e(i);
    }
}

} // namespace pspl::hostlapack
