// Positive-definite symmetric banded Cholesky (LAPACK pbtrf/pbtrs subset,
// lower storage, unblocked dpbtf2 algorithm).
//
// Storage: `ab` has shape (kd + 1, n); entry A(i,j) of the lower triangle
// (j <= i <= j+kd) lives at ab(i - j, j).
#pragma once

#include "parallel/view.hpp"

#include <algorithm>
#include <cstddef>

namespace pspl::hostlapack {

/// SPD banded matrix, lower band storage.
struct SymBandMatrix {
    std::size_t n = 0;
    std::size_t kd = 0; ///< number of subdiagonals
    View2D<double> ab;  ///< (kd+1, n)

    SymBandMatrix() = default;
    SymBandMatrix(std::size_t n_, std::size_t kd_)
        : n(n_), kd(kd_), ab("sym_band_ab", kd_ + 1, n_)
    {
    }

    double& at(std::size_t i, std::size_t j) { return ab(i - j, j); }
    double at(std::size_t i, std::size_t j) const { return ab(i - j, j); }
};

/// Pack the lower band of a dense SPD matrix.
SymBandMatrix pack_sym_band(const View2D<double>& a, std::size_t kd);

/// In-place Cholesky A = L*L^T. Returns 0, or k+1 if the leading minor of
/// order k+1 is not positive definite.
int pbtrf(SymBandMatrix& m);

/// Solve A x = b in-place given the pbtrf factorization; `b` may be strided.
template <class ABView, class BView>
void pbtrs(const ABView& ab, std::size_t n, std::size_t kd, const BView& b)
{
    // L y = b
    for (std::size_t j = 0; j < n; ++j) {
        const double bj = b(j) / ab(0, j);
        b(j) = bj;
        const std::size_t km = std::min(kd, n - 1 - j);
        for (std::size_t i = 1; i <= km; ++i) {
            b(j + i) -= ab(i, j) * bj;
        }
    }
    // L^T x = y
    for (std::size_t j = n; j-- > 0;) {
        double acc = b(j);
        const std::size_t km = std::min(kd, n - 1 - j);
        for (std::size_t i = 1; i <= km; ++i) {
            acc -= ab(i, j) * b(j + i);
        }
        b(j) = acc / ab(0, j);
    }
}

template <class BView>
void pbtrs(const SymBandMatrix& m, const BView& b)
{
    pbtrs(m.ab, m.n, m.kd, b);
}

} // namespace pspl::hostlapack
