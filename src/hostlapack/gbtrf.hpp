// General banded LU factorization with partial pivoting (LAPACK gbtrf/gbtrs
// subset, unblocked dgbtf2 algorithm) in LAPACK band storage.
//
// Storage: `ab` has shape (2*kl + ku + 1, n); entry A(i,j) lives at
// ab(kl + ku + i - j, j). The top `kl` rows hold fill-in produced by row
// interchanges and MUST be zero on entry (pack_band guarantees this).
#pragma once

#include "parallel/view.hpp"

#include <algorithm>
#include <cstddef>

namespace pspl::hostlapack {

/// General banded matrix in LAPACK band storage with factorization headroom.
struct BandMatrix {
    std::size_t n = 0;
    std::size_t kl = 0; ///< number of subdiagonals
    std::size_t ku = 0; ///< number of superdiagonals
    View2D<double> ab;  ///< (2*kl+ku+1, n)

    BandMatrix() = default;
    BandMatrix(std::size_t n_, std::size_t kl_, std::size_t ku_)
        : n(n_), kl(kl_), ku(ku_), ab("band_ab", 2 * kl_ + ku_ + 1, n_)
    {
    }

    double& at(std::size_t i, std::size_t j)
    {
        return ab(kl + ku + i - j, j);
    }
    double at(std::size_t i, std::size_t j) const
    {
        return ab(kl + ku + i - j, j);
    }
    bool in_band(std::size_t i, std::size_t j) const
    {
        return (j <= i + ku) && (i <= j + kl);
    }
};

/// Pack the band of a dense matrix into LAPACK band storage.
BandMatrix pack_band(const View2D<double>& a, std::size_t kl, std::size_t ku);

/// In-place banded LU with partial pivoting. Returns 0, or k+1 if the k-th
/// pivot is exactly zero.
int gbtrf(BandMatrix& m, View1D<int>& ipiv);

/// Solve A x = b in-place given the gbtrf factorization; `b` may be strided.
template <class ABView, class PivView, class BView>
void gbtrs(const ABView& ab, std::size_t n, std::size_t kl, std::size_t ku,
           const PivView& ipiv, const BView& b)
{
    const std::size_t kv = kl + ku;
    // Forward: apply interchanges and L (unit lower, bandwidth kl).
    if (kl > 0) {
        for (std::size_t j = 0; j + 1 < n; ++j) {
            const auto p = static_cast<std::size_t>(ipiv(j));
            if (p != j) {
                const double t = b(j);
                b(j) = b(p);
                b(p) = t;
            }
            const std::size_t km = std::min(kl, n - 1 - j);
            const double bj = b(j);
            for (std::size_t i = 1; i <= km; ++i) {
                b(j + i) -= ab(kv + i, j) * bj;
            }
        }
    }
    // Backward: U has bandwidth kv.
    for (std::size_t j = n; j-- > 0;) {
        double acc = b(j);
        const std::size_t reach = std::min(kv, n - 1 - j);
        for (std::size_t i = 1; i <= reach; ++i) {
            acc -= ab(kv - i, j + i) * b(j + i);
        }
        b(j) = acc / ab(kv, j);
    }
}

/// Convenience overload taking the factorized BandMatrix.
template <class PivView, class BView>
void gbtrs(const BandMatrix& m, const PivView& ipiv, const BView& b)
{
    gbtrs(m.ab, m.n, m.kl, m.ku, ipiv, b);
}

} // namespace pspl::hostlapack
