#include "hostlapack/pttrf.hpp"

#include "parallel/macros.hpp"

namespace pspl::hostlapack {

int pttrf(View1D<double>& d, View1D<double>& e)
{
    const std::size_t n = d.extent(0);
    PSPL_EXPECT(n == 0 || e.extent(0) >= n - 1, "pttrf: e too small");
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (d(i) <= 0.0) {
            return static_cast<int>(i) + 1;
        }
        const double ei = e(i) / d(i);
        d(i + 1) -= ei * e(i);
        e(i) = ei;
    }
    if (n > 0 && d(n - 1) <= 0.0) {
        return static_cast<int>(n);
    }
    return 0;
}

} // namespace pspl::hostlapack
