// Dense LU factorization with partial pivoting (LAPACK getrf/getrs subset).
//
// The factorization runs once on the host at solver-setup time (the paper's
// strategy: "take advantage of existing CPU libraries to factorize the
// matrix and copy the result to the device"). The templated solve is also
// used as the host reference against which the batched device-side
// SerialGetrs is validated.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::hostlapack {

/// In-place LU with partial pivoting: A = P*L*U, unit-diagonal L below,
/// U on/above the diagonal. `ipiv(k)` is the row swapped with row k.
/// Returns 0 on success, k+1 if U(k,k) is exactly zero (singular).
int getrf(View2D<double>& a, View1D<int>& ipiv);

/// Solve A x = b in-place on `b` given the getrf factorization.
/// `b` may be any rank-1 view (e.g. a strided column subview).
template <class LUView, class PivView, class BView>
void getrs(const LUView& lu, const PivView& ipiv, const BView& b)
{
    const std::size_t n = lu.extent(0);
    // Apply row interchanges.
    for (std::size_t k = 0; k < n; ++k) {
        const auto p = static_cast<std::size_t>(ipiv(k));
        if (p != k) {
            const double t = b(k);
            b(k) = b(p);
            b(p) = t;
        }
    }
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 1; i < n; ++i) {
        double acc = b(i);
        for (std::size_t j = 0; j < i; ++j) {
            acc -= lu(i, j) * b(j);
        }
        b(i) = acc;
    }
    // Backward substitution with U.
    for (std::size_t i = n; i-- > 0;) {
        double acc = b(i);
        for (std::size_t j = i + 1; j < n; ++j) {
            acc -= lu(i, j) * b(j);
        }
        b(i) = acc / lu(i, i);
    }
}

} // namespace pspl::hostlapack
