#include "hostlapack/dense.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::hostlapack {

void gemm(double alpha, const View2D<double>& a, const View2D<double>& b,
          double beta, View2D<double>& c)
{
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    const std::size_t n = b.extent(1);
    PSPL_EXPECT(b.extent(0) == k && c.extent(0) == m && c.extent(1) == n,
                "gemm: extent mismatch");
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t l = 0; l < k; ++l) {
                acc += a(i, l) * b(l, j);
            }
            c(i, j) = alpha * acc + beta * c(i, j);
        }
    }
}

double norm_frobenius(const View2D<double>& a)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            acc += a(i, j) * a(i, j);
        }
    }
    return std::sqrt(acc);
}

double max_abs(const View2D<double>& a)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            const double v = std::abs(a(i, j));
            if (v > m) {
                m = v;
            }
        }
    }
    return m;
}

View2D<double> identity(std::size_t n)
{
    View2D<double> id("identity", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        id(i, i) = 1.0;
    }
    return id;
}

} // namespace pspl::hostlapack
