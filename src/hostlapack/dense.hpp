// Dense host helpers: small-matrix products, norms and utilities used by the
// one-off host factorization step and by tests as reference implementations.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::hostlapack {

/// c = alpha * a(op) * b + beta * c for small host matrices (reference GEMM).
void gemm(double alpha, const View2D<double>& a, const View2D<double>& b,
          double beta, View2D<double>& c);

/// y = alpha * a * x + beta * y (reference GEMV); x/y may be strided.
template <class XView, class YView>
void gemv(double alpha, const View2D<double>& a, const XView& x, double beta,
          const YView& y)
{
    const std::size_t m = a.extent(0);
    const std::size_t n = a.extent(1);
    for (std::size_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            acc += a(i, j) * x(j);
        }
        y(i) = alpha * acc + beta * y(i);
    }
}

/// Frobenius norm.
double norm_frobenius(const View2D<double>& a);

/// max_ij |a_ij|.
double max_abs(const View2D<double>& a);

/// max_i |x_i| for a rank-1 view.
template <class XView>
double max_abs_vec(const XView& x)
{
    double m = 0.0;
    for (std::size_t i = 0; i < x.extent(0); ++i) {
        const double v = x(i) < 0 ? -x(i) : x(i);
        if (v > m) {
            m = v;
        }
    }
    return m;
}

/// Identity matrix of size n.
View2D<double> identity(std::size_t n);

/// ||a*x - b||_inf for rank-1 x, b (residual check helper).
template <class XView, class BView>
double residual_inf(const View2D<double>& a, const XView& x, const BView& b)
{
    double r = 0.0;
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            acc += a(i, j) * x(j);
        }
        const double d = acc - b(i);
        const double v = d < 0 ? -d : d;
        if (v > r) {
            r = v;
        }
    }
    return r;
}

} // namespace pspl::hostlapack
