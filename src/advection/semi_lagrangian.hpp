// 1-D batched semi-Lagrangian advection solver (paper Algorithm 2 and
// §III-C): one time step of
//     df/dt + v df/dx = 0
// on an (Nv, Nx) phase-space block, periodic in x. Each velocity row is an
// independent 1-D advection: splines are built along x batched over v, then
// f is interpolated at the feet of the backward characteristics
// x* = x - v*dt.
//
// This is the paper's benchmark application; GLUPS (Eq. 7) is measured over
// whole calls to step().
#pragma once

#include "advection/advection_plan.hpp"
#include "advection/transpose.hpp"
#include "bsplines/basis.hpp"
#include "core/iterative_spline_builder.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/profiling.hpp"

#include <optional>
#include <utility>

namespace pspl::advection {

class BatchedAdvection1D
{
public:
    enum class Method {
        Direct,    ///< Schur/batched-serial path (Kokkos-kernels analogue)
        Iterative, ///< chunked Krylov path (Ginkgo analogue)
    };

    struct Config {
        Method method = Method::Direct;
        core::BuilderVersion version = core::BuilderVersion::FusedSpmv;
        core::IterativeSplineBuilder::Options iterative{};
        /// Skip the two physical transposes of Algorithm 2 (the paper's
        /// §V-C future-work idea): copy f contiguously into the coefficient
        /// buffer and run the batched solve through a zero-copy transposed
        /// view, so each RHS is a contiguous row. Direct method only.
        bool fuse_transpose = false;
        /// Fused build->evaluate pipeline (AdvectionPlan): build each tile
        /// of spline coefficients in the workspace arena and evaluate at
        /// the feet straight from the L2-resident strip, never writing the
        /// coefficient array to memory. Auto consults PSPL_ADVECT_FUSED
        /// (unset -> on) but yields to an explicit fuse_transpose request;
        /// On forces the fused path (requires a fusable configuration:
        /// Direct method, non-Baseline version, Precision::Double); Off
        /// keeps the unfused Algorithm 2 pipeline.
        enum class Fuse { Auto, On, Off };
        Fuse fuse_build_eval = Fuse::Auto;
    };

    /// `velocities(j)` is the constant advection speed of row j; `dt` the
    /// time-step length.
    BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                       View1D<double> velocities, double dt);
    BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                       View1D<double> velocities, double dt, Config config);

    std::size_t nx() const { return m_basis.nbasis(); }
    std::size_t nv() const { return m_velocities.extent(0); }
    const bsplines::BSplineBasis& basis() const { return m_basis; }
    /// Interpolation points (the x grid); position of column i of f.
    const View1D<double>& points() const { return m_points; }
    const View1D<double>& velocities() const { return m_velocities; }
    double dt() const { return m_dt; }

    /// Whether the fused build->evaluate pipeline (AdvectionPlan) is
    /// driving step(): resolved once at construction from the config, the
    /// PSPL_ADVECT_FUSED environment toggle and the builder's coverage.
    bool fused_active() const { return m_fused; }
    /// The cached fused-pipeline plan, when fused_active().
    const std::optional<AdvectionPlan>& plan() const { return m_plan; }

    /// Advance f (shape (Nv, Nx), x contiguous) by one time step in place.
    /// Returns iteration statistics when the iterative method is active.
    template <class Exec = DefaultExecutionSpace>
    iterative::SolveStats step(const View2D<double>& f) const
    {
        return step_to<Exec>(f, f);
    }

    /// General form: read values from f (Nv, Nx), write the advected
    /// values to `out` -- f itself (in place), or a zero-copy
    /// transposed_view of an (Nx, Nv) block so the 2-D Strang chain can
    /// hand the next dimension its layout with no physical transpose.
    template <class Exec = DefaultExecutionSpace, class OutView>
    iterative::SolveStats step_to(const View2D<double>& f,
                                  const OutView& out) const
    {
        PSPL_EXPECT(f.extent(0) == nv() && f.extent(1) == nx(),
                    "step: f must be (Nv, Nx)");
        PSPL_EXPECT(out.extent(0) == nv() && out.extent(1) == nx(),
                    "step: out must be (Nv, Nx)");
        profiling::ScopedRegion region("pspl_advection_step");
        iterative::SolveStats stats;

        if (m_fused) {
            // Fused build->evaluate pipeline: per batch tile, stage the
            // RHS strip in the workspace arena, solve, evaluate at the
            // feet from the L2-resident coefficients. No transposes, no
            // full-size coefficient array.
            m_plan->template advect_to<Exec>(f, out);
            return stats;
        }

        if (m_config.fuse_transpose
            && m_config.method == Method::Direct) {
            // Transpose-free variant: contiguous copy f -> eta, then solve
            // through a zero-copy transposed view so each RHS is a
            // contiguous row of eta. Replaces two strided transposes with
            // one streaming copy.
            const auto f_src = f;
            const auto eta = m_eta;
            parallel_for("pspl::advection::copy_f", RangePolicy<Exec>(nv()),
                         [=](std::size_t j) {
                             for (std::size_t i = 0; i < f_src.extent(1);
                                  ++i) {
                                 eta(j, i) = f_src(j, i);
                             }
                         });
            if (profiling::enabled()) {
                profiling::add_counters(
                        "pspl::advection::copy_f",
                        2.0 * static_cast<double>(nv())
                                * static_cast<double>(nx())
                                * static_cast<double>(sizeof(double)),
                        0.0);
            }
            m_builder->template build_inplace<Exec>(transposed_view(m_eta));
        } else {
            // 1. Transpose so the batch (v) index is contiguous.
            transpose<Exec>("pspl::advection::transpose_fwd", f, m_ft);

            // 2. Build spline coefficients in place, batched over v.
            if (m_config.method == Method::Direct) {
                m_builder->template build_inplace<Exec>(m_ft);
            } else {
                stats = m_iterative_builder->build_inplace(m_ft);
            }

            // 3. Transpose coefficients back to the x-contiguous layout.
            transpose<Exec>("pspl::advection::transpose_bwd", m_ft, m_eta);
        }

        // 4. Interpolate at the feet of the backward characteristics.
        const auto eta = m_eta;
        const auto points = m_points;
        const auto velocities = m_velocities;
        const double dt = m_dt;
        const auto evaluator = m_evaluator;
        const std::size_t nx_ = nx();
        // Feet go through evaluate_shifted -- the same entry point the
        // fused AdvectionPlan uses -- so the foot arithmetic (shift
        // rounded once, then subtracted) is identical code on both paths
        // and cannot drift apart under FMA contraction.
        const bool rows_contiguous = out.stride(1) == 1;
        parallel_for("pspl::advection::interpolate",
                     RangePolicy<Exec>(nv()), [=](std::size_t j) {
                         const auto coeffs = subview(eta, j, ALL);
                         const double shift = velocities(j) * dt;
                         if (rows_contiguous) {
                             evaluator.evaluate_shifted(points, shift, coeffs,
                                                        &out(j, 0));
                             return;
                         }
                         for (std::size_t i = 0; i < nx_; ++i) {
                             out(j, i) = evaluator(points(i) - shift, coeffs);
                         }
                     });
        if (profiling::enabled()) {
            // Unfused interpolate traffic: the coefficient array streams
            // back in from DRAM and the advected values stream out --
            // exactly the round-trip the fused pipeline removes.
            const double rows = static_cast<double>(nv());
            profiling::add_counters(
                    "pspl::advection::interpolate",
                    rows * 2.0 * static_cast<double>(nx_)
                            * static_cast<double>(sizeof(double)),
                    rows * static_cast<double>(nx_)
                            * eval_point_flops(m_basis.degree()));
        }
        return stats;
    }

private:
    bsplines::BSplineBasis m_basis;
    View1D<double> m_velocities;
    double m_dt = 0.0;
    Config m_config;
    std::optional<core::SplineBuilder> m_builder;
    std::optional<core::IterativeSplineBuilder> m_iterative_builder;
    core::SplineEvaluator m_evaluator;
    std::optional<AdvectionPlan> m_plan; ///< fused pipeline, when active
    bool m_fused = false;
    View1D<double> m_points;
    // Scratch blocks reused across steps (allocated once, like the paper's
    // persistent device buffers).
    View2D<double> m_ft;  ///< (Nx, Nv) transposed values / coefficients
    View2D<double> m_eta; ///< (Nv, Nx) coefficients, x contiguous
};

/// Uniformly spaced velocity grid on [vmin, vmax] with nv points.
View1D<double> uniform_velocities(std::size_t nv, double vmin, double vmax);

} // namespace pspl::advection
