// 1-D batched semi-Lagrangian advection solver (paper Algorithm 2 and
// §III-C): one time step of
//     df/dt + v df/dx = 0
// on an (Nv, Nx) phase-space block, periodic in x. Each velocity row is an
// independent 1-D advection: splines are built along x batched over v, then
// f is interpolated at the feet of the backward characteristics
// x* = x - v*dt.
//
// This is the paper's benchmark application; GLUPS (Eq. 7) is measured over
// whole calls to step().
#pragma once

#include "advection/transpose.hpp"
#include "bsplines/basis.hpp"
#include "core/iterative_spline_builder.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/profiling.hpp"

#include <optional>
#include <utility>

namespace pspl::advection {

class BatchedAdvection1D
{
public:
    enum class Method {
        Direct,    ///< Schur/batched-serial path (Kokkos-kernels analogue)
        Iterative, ///< chunked Krylov path (Ginkgo analogue)
    };

    struct Config {
        Method method = Method::Direct;
        core::BuilderVersion version = core::BuilderVersion::FusedSpmv;
        core::IterativeSplineBuilder::Options iterative{};
        /// Skip the two physical transposes of Algorithm 2 (the paper's
        /// §V-C future-work idea): copy f contiguously into the coefficient
        /// buffer and run the batched solve through a zero-copy transposed
        /// view, so each RHS is a contiguous row. Direct method only.
        bool fuse_transpose = false;
    };

    /// `velocities(j)` is the constant advection speed of row j; `dt` the
    /// time-step length.
    BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                       View1D<double> velocities, double dt);
    BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                       View1D<double> velocities, double dt, Config config);

    std::size_t nx() const { return m_basis.nbasis(); }
    std::size_t nv() const { return m_velocities.extent(0); }
    const bsplines::BSplineBasis& basis() const { return m_basis; }
    /// Interpolation points (the x grid); position of column i of f.
    const View1D<double>& points() const { return m_points; }
    const View1D<double>& velocities() const { return m_velocities; }
    double dt() const { return m_dt; }

    /// Advance f (shape (Nv, Nx), x contiguous) by one time step in place.
    /// Returns iteration statistics when the iterative method is active.
    template <class Exec = DefaultExecutionSpace>
    iterative::SolveStats step(const View2D<double>& f) const
    {
        PSPL_EXPECT(f.extent(0) == nv() && f.extent(1) == nx(),
                    "step: f must be (Nv, Nx)");
        profiling::ScopedRegion region("pspl_advection_step");
        iterative::SolveStats stats;

        if (m_config.fuse_transpose
            && m_config.method == Method::Direct) {
            // Transpose-free variant: contiguous copy f -> eta, then solve
            // through a zero-copy transposed view so each RHS is a
            // contiguous row of eta. Replaces two strided transposes with
            // one streaming copy.
            const auto f_src = f;
            const auto eta = m_eta;
            parallel_for("pspl::advection::copy_f", RangePolicy<Exec>(nv()),
                         [=](std::size_t j) {
                             for (std::size_t i = 0; i < f_src.extent(1);
                                  ++i) {
                                 eta(j, i) = f_src(j, i);
                             }
                         });
            m_builder->template build_inplace<Exec>(transposed_view(m_eta));
        } else {
            // 1. Transpose so the batch (v) index is contiguous.
            transpose<Exec>("pspl::advection::transpose_fwd", f, m_ft);

            // 2. Build spline coefficients in place, batched over v.
            if (m_config.method == Method::Direct) {
                m_builder->template build_inplace<Exec>(m_ft);
            } else {
                stats = m_iterative_builder->build_inplace(m_ft);
            }

            // 3. Transpose coefficients back to the x-contiguous layout.
            transpose<Exec>("pspl::advection::transpose_bwd", m_ft, m_eta);
        }

        // 4. Interpolate at the feet of the backward characteristics.
        const auto eta = m_eta;
        const auto points = m_points;
        const auto velocities = m_velocities;
        const double dt = m_dt;
        const auto evaluator = m_evaluator;
        const std::size_t nx_ = nx();
        parallel_for("pspl::advection::interpolate",
                     RangePolicy<Exec>(nv()), [=](std::size_t j) {
                         const auto coeffs = subview(eta, j, ALL);
                         const double v = velocities(j);
                         for (std::size_t i = 0; i < nx_; ++i) {
                             const double foot = points(i) - v * dt;
                             f(j, i) = evaluator(foot, coeffs);
                         }
                     });
        return stats;
    }

private:
    bsplines::BSplineBasis m_basis;
    View1D<double> m_velocities;
    double m_dt = 0.0;
    Config m_config;
    std::optional<core::SplineBuilder> m_builder;
    std::optional<core::IterativeSplineBuilder> m_iterative_builder;
    core::SplineEvaluator m_evaluator;
    View1D<double> m_points;
    // Scratch blocks reused across steps (allocated once, like the paper's
    // persistent device buffers).
    View2D<double> m_ft;  ///< (Nx, Nv) transposed values / coefficients
    View2D<double> m_eta; ///< (Nv, Nx) coefficients, x contiguous
};

/// Uniformly spaced velocity grid on [vmin, vmax] with nv points.
View1D<double> uniform_velocities(std::size_t nv, double vmin, double vmax);

} // namespace pspl::advection
