// 2-D semi-Lagrangian advection by Strang-split batched 1-D advections:
//     df/dt + vx(y) df/dx + vy(x) df/dy = 0
// for separable velocity fields (vx constant along x, vy constant along y),
// which covers rigid rotation (vx = -omega*y, vy = +omega*x) and shear
// flows -- the guiding-center-like motions of GYSELA's poloidal plane.
//
// One step is x-half / y-full / x-half, each a batched 1-D spline
// interpolation exactly as in the paper's Algorithm 2.
#pragma once

#include "advection/semi_lagrangian.hpp"
#include "advection/transpose.hpp"
#include "bsplines/basis.hpp"
#include "parallel/view.hpp"

#include <utility>

namespace pspl::advection {

class BatchedAdvection2D
{
public:
    struct Config {
        core::BuilderVersion version = core::BuilderVersion::FusedSpmv;
        bool fuse_transpose = false;
        /// Forwarded to both 1-D passes. When the fused build->evaluate
        /// pipeline is active on both, step() chains the passes through
        /// zero-copy transposed views and the whole Strang step runs with
        /// no physical transpose at all.
        BatchedAdvection1D::Config::Fuse fuse_build_eval =
                BatchedAdvection1D::Config::Fuse::Auto;
    };

    /// `vx_of_y(j)` is the x-speed on row y_j; `vy_of_x(i)` the y-speed on
    /// column x_i. The views are referenced, not copied: updating them
    /// between steps (time-dependent fields) is supported.
    BatchedAdvection2D(bsplines::BSplineBasis basis_x,
                       bsplines::BSplineBasis basis_y, View1D<double> vx_of_y,
                       View1D<double> vy_of_x, double dt);
    BatchedAdvection2D(bsplines::BSplineBasis basis_x,
                       bsplines::BSplineBasis basis_y, View1D<double> vx_of_y,
                       View1D<double> vy_of_x, double dt, Config config);

    std::size_t nx() const { return m_adv_x->nx(); }
    std::size_t ny() const { return m_adv_y->nx(); }
    const View1D<double>& points_x() const { return m_adv_x->points(); }
    const View1D<double>& points_y() const { return m_adv_y->points(); }

    /// Whether both 1-D passes run the fused build->evaluate pipeline
    /// (and step() therefore needs no physical transpose).
    bool fused_active() const
    {
        return m_adv_x->fused_active() && m_adv_y->fused_active();
    }

    /// Advance f (shape (ny, nx), x contiguous) by one Strang-split step.
    template <class Exec = DefaultExecutionSpace>
    void step(const View2D<double>& f) const
    {
        PSPL_EXPECT(f.extent(0) == ny() && f.extent(1) == nx(),
                    "step: f must be (Ny, Nx)");
        if (fused_active()) {
            // Transpose-free chain: each fused pass scatters its advected
            // tile straight into the next dimension's layout through a
            // zero-copy transposed view, so the inter-dimension
            // permutations ride inside the tile pipeline and no full-size
            // intermediate is ever streamed.
            m_adv_x->template step_to<Exec>(f, transposed_view(m_ft));
            m_adv_y->template step_to<Exec>(m_ft, transposed_view(f));
            m_adv_x->template step<Exec>(f); // x half step, in place
            return;
        }
        m_adv_x->template step<Exec>(f); // x half step, batch over y
        transpose<Exec>("pspl::advection2d::transpose_fwd", f, m_ft);
        m_adv_y->template step<Exec>(m_ft); // y full step, batch over x
        transpose<Exec>("pspl::advection2d::transpose_bwd", m_ft, f);
        m_adv_x->template step<Exec>(f); // x half step
    }

private:
    std::optional<BatchedAdvection1D> m_adv_x; ///< dt/2, batch over y
    std::optional<BatchedAdvection1D> m_adv_y; ///< dt, batch over x
    mutable View2D<double> m_ft;               ///< (nx, ny) scratch
};

} // namespace pspl::advection
