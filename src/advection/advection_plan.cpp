#include "advection/advection_plan.hpp"

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>

namespace pspl::advection {

namespace {

/// Resident factor footprint of the Schur device data (bytes): what the
/// solve re-sweeps once per strip column and the tile model must keep in
/// L2 next to the strips. Summing every Q-factor flavour is safe -- only
/// the active one has non-zero extents.
std::size_t factor_footprint_bytes(const core::SchurDeviceData& s)
{
    auto vec = [](const auto& v) { return v.extent(0) * sizeof(double); };
    std::size_t bytes = vec(s.pt_d) + vec(s.pt_e) + vec(s.gt_dl) + vec(s.gt_d)
                        + vec(s.gt_du) + vec(s.gt_du2)
                        + s.gt_ipiv.extent(0) * sizeof(int)
                        + s.pb_ab.extent(0) * s.pb_ab.extent(1)
                                  * sizeof(double)
                        + s.gb_ab.extent(0) * s.gb_ab.extent(1)
                                  * sizeof(double)
                        + s.gb_ipiv.extent(0) * sizeof(int)
                        + s.ge_lu.extent(0) * s.ge_lu.extent(1)
                                  * sizeof(double)
                        + s.ge_ipiv.extent(0) * sizeof(int)
                        + s.delta_lu.extent(0) * s.delta_lu.extent(1)
                                  * sizeof(double)
                        + s.delta_ipiv.extent(0) * sizeof(int);
    // Corner blocks: the spmv chain walks the COO triplets, the gemv chain
    // the dense blocks; count the denser of the two representations.
    const std::size_t dense =
            (s.lambda_dense.extent(0) * s.lambda_dense.extent(1)
             + s.beta_dense.extent(0) * s.beta_dense.extent(1))
            * sizeof(double);
    const std::size_t coo = (s.lambda_coo.nnz() + s.beta_coo.nnz())
                            * (sizeof(double) + 2 * sizeof(int));
    bytes += dense > coo ? dense : coo;
    return bytes;
}

} // namespace

AdvectionPlan::AdvectionPlan(const core::SplineBuilder& builder,
                             core::SplineEvaluator evaluator,
                             View1D<double> points,
                             View1D<double> velocities, double dt)
    : m_builder(builder)
    , m_evaluator(std::move(evaluator))
    , m_points(std::move(points))
    , m_velocities(std::move(velocities))
    , m_dt(dt)
{
    const core::BuilderVersion v = m_builder.version();
    m_fusable = v != core::BuilderVersion::Baseline
                && m_builder.precision() == core::Precision::Double;
    if (!m_fusable) {
        return;
    }
    m_use_spmv = v == core::BuilderVersion::FusedSpmv
                 || v == core::BuilderVersion::FusedSpmvSimd;
    const bool simd_solve = v == core::BuilderVersion::FusedSimd
                            || v == core::BuilderVersion::FusedSpmvSimd;
    m_width = simd_solve ? simd_preferred_width<double> : 1;
    const std::size_t n = m_builder.basis().nbasis();
    const std::size_t npts = m_points.extent(0);
    const std::size_t nv = m_velocities.extent(0);
    const std::size_t fixed =
            factor_footprint_bytes(m_builder.solver().device_data())
            + npts * sizeof(double);
    m_tile = m_builder.tile_policy().fused_advect_tile_cols(
            n, npts, nv, static_cast<std::size_t>(m_width), fixed);
}

bool fused_advect_enabled(const char* text)
{
    if (text == nullptr || *text == '\0') {
        return true;
    }
    std::string s;
    for (const char* p = text; *p != '\0'; ++p) {
        s += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*p)));
    }
    return s != "0" && s != "off" && s != "false" && s != "no";
}

bool fused_advect_env()
{
    return fused_advect_enabled(std::getenv("PSPL_ADVECT_FUSED"));
}

} // namespace pspl::advection
