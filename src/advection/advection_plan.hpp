// Fused build->evaluate advection driver: the tile-resident coefficient
// streaming pipeline of the semi-Lagrangian hot path.
//
// The unfused Algorithm 2 round-trips a full-size coefficient View through
// DRAM every step: transpose f, solve the batched collocation system in
// place, transpose back, then re-read every coefficient row to interpolate
// at the feet of the backward characteristics. The span cost models show
// the fused solve already memory-bound, so this driver cuts the traffic
// instead: per batch tile it stages the RHS strip in the per-thread
// WorkspaceArena, runs the fused Schur chain on it while it is L2-resident
// (core::schur_solve_staged_strip -- the same per-column arithmetic as the
// batched solvers, hence bitwise-identical coefficients), then evaluates
// the splines at the displaced feet straight out of the arena-resident
// strip. Only f itself is read and only the advected values are written;
// the coefficient array never exists in main memory.
//
// An AdvectionPlan is built once and reused every step: the knots (basis),
// the Schur factors (shared with the builder), the interpolation points,
// the resolved tile width and the arena slot sizing are all cached, so a
// repeated advect() does zero setup work -- no factorization, no knot or
// tile-model recomputation, and (after the first call sized the grow-only
// arena) no allocation.
//
// Scope: the fused path covers the Direct method's fused builder versions
// (Fused/FusedSpmv run the strip at W = 1, FusedSimd/FusedSpmvSimd at the
// native pack width) at Precision::Double. Baseline (multi-pass GEMM) and
// the reduced-precision pipelines keep the unfused path -- fusable()
// reports false and BatchedAdvection1D falls back transparently.
#pragma once

#include "advection/transpose.hpp"
#include "bsplines/basis.hpp"
#include "core/batched_solve.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "debug/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/profiling.hpp"
#include "parallel/simd.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::advection {

/// Modeled flop count of one spline evaluation at one point: wrap and
/// cell-local rescale, the Cox-de Boor triangle (one divide, two multiplies
/// and two adds per inner iteration, plus the left/right setup per level),
/// and the (degree+1)-tap coefficient combination.
inline double eval_point_flops(int degree)
{
    const double d = static_cast<double>(degree);
    return 2.5 * d * (d + 1.0) + 2.0 * d + 2.0 * (d + 1.0) + 4.0;
}

/// Modeled DRAM bytes of one fused advection step: the value strip read
/// once, the advected values written once. The coefficients never travel.
inline double advect_stream_bytes(std::size_t n, std::size_t npts,
                                  std::size_t nv)
{
    return static_cast<double>(nv)
           * static_cast<double>(n + npts)
           * static_cast<double>(sizeof(double));
}

class AdvectionPlan
{
public:
    AdvectionPlan() = default;

    /// Cache everything `advect()` needs from the builder (the Schur
    /// factors are shared, not copied), the evaluator, the interpolation
    /// points of the basis and the per-row velocities. The batch tile
    /// width is resolved here, once, from the builder's tile policy
    /// through the fused-advection L2 model (strips + factors + points).
    AdvectionPlan(const core::SplineBuilder& builder,
                  core::SplineEvaluator evaluator, View1D<double> points,
                  View1D<double> velocities, double dt);

    /// Whether the fused driver covers this configuration (fused builder
    /// version at Precision::Double).
    bool fusable() const { return m_fusable; }
    /// Resolved batch tile width (a multiple of pack_width()).
    std::size_t tile_cols() const { return m_tile; }
    /// Pack width of the strip solve: 1 for the scalar fused versions,
    /// the native SIMD width for the Simd versions.
    int pack_width() const { return m_width; }
    bool use_spmv() const { return m_use_spmv; }
    const View1D<double>& points() const { return m_points; }
    const View1D<double>& velocities() const { return m_velocities; }
    double dt() const { return m_dt; }

    /// Per-slot staging footprint in bytes: the coefficient strip, plus
    /// the output strip when the destination is transposed.
    std::size_t slot_bytes(bool transposed_out) const
    {
        const std::size_t n = m_builder.basis().nbasis();
        const std::size_t strip = n * m_tile * sizeof(double);
        const std::size_t outs =
                transposed_out ? m_points.extent(0) * m_tile * sizeof(double)
                               : 0;
        return strip + outs;
    }

    /// One fused semi-Lagrangian step in place: f (nv, n) holds values on
    /// entry and the advected values f(j, i) = s_j(points(i) - v_j*dt) on
    /// exit.
    template <class Exec = DefaultExecutionSpace>
    void advect(const View2D<double>& f) const
    {
        advect_to<Exec>(f, f);
    }

    /// General form: read values from `f` (nv rows of n contiguous
    /// values), write the advected values to `out(j, i)`. `out` may be f
    /// itself (in place: each tile owns its rows exclusively), or a
    /// zero-copy transposed_view of an (npts, nv) block -- the 2-D Strang
    /// chain passes the next dimension's scratch directly and the
    /// inter-dimension transpose happens inside the tile (blocked
    /// contiguous writes), with no intermediate full-size array.
    template <class Exec = DefaultExecutionSpace, class OutView>
    void advect_to(const View2D<double>& f, const OutView& out) const
    {
        PSPL_EXPECT(m_fusable,
                    "AdvectionPlan::advect: configuration is not fusable "
                    "(Baseline version or reduced precision) -- use the "
                    "unfused step");
        const std::size_t n = m_builder.basis().nbasis();
        const std::size_t nv = m_velocities.extent(0);
        const std::size_t npts = m_points.extent(0);
        PSPL_EXPECT(f.extent(0) == nv && f.extent(1) == n,
                    "AdvectionPlan::advect: f must be (nv, n)");
        PSPL_EXPECT(out.extent(0) == nv && out.extent(1) == npts,
                    "AdvectionPlan::advect: out must be (nv, npts)");
        if (m_width == 1) {
            if (m_use_spmv) {
                advect_impl<1, true, Exec>(f, out);
            } else {
                advect_impl<1, false, Exec>(f, out);
            }
            return;
        }
        constexpr int native = simd_preferred_width<double>;
        if (m_use_spmv) {
            advect_impl<native, true, Exec>(f, out);
        } else {
            advect_impl<native, false, Exec>(f, out);
        }
    }

private:
    template <int W, bool UseSpmv, class Exec, class OutView>
    void advect_impl(const View2D<double>& f, const OutView& out) const
    {
        using Pack = simd<double, W>;
        const core::SchurDeviceData s = m_builder.solver().device_data();
        const std::size_t n = s.n;
        const std::size_t nv = m_velocities.extent(0);
        const std::size_t npts = m_points.extent(0);
        const auto wide = static_cast<std::size_t>(W);
        const std::size_t tile = m_tile;
        const std::size_t tile_packs = tile / wide;
        // A transposed destination cannot take contiguous per-column
        // writes, so the evaluated tile is staged in an output strip and
        // scattered blockwise (contiguous tile-wide runs) instead.
        const bool out_rowwise = out.stride(1) == 1;
        const std::size_t strip_bytes = n * tile_packs * sizeof(Pack);
        const std::size_t out_bytes =
                out_rowwise ? 0 : tile * npts * sizeof(double);
        WorkspaceArena& arena = host_workspace_arena();
        arena.reserve(static_cast<std::size_t>(Exec::concurrency()),
                      strip_bytes + out_bytes);
        debug::ScratchGuard scratch(arena.data(), arena.size_bytes());
        std::byte* const abase = arena.data();
        const std::size_t astride = arena.slot_stride_bytes();
        const auto evaluator = m_evaluator;
        const auto points = m_points;
        const auto velocities = m_velocities;
        const double dt = m_dt;
        for_each_batch_tile("pspl::advection::advect_fused",
                            RangePolicy<Exec>(nv), tile,
                            [=](const BatchTile& t) {
            std::byte* const slot =
                    abase
                    + astride * static_cast<std::size_t>(Exec::thread_rank());
            Pack* PSPL_RESTRICT buf = reinterpret_cast<Pack*>(slot);
            double* const bufd = reinterpret_cast<double*>(slot);
            const std::size_t cols = t.cols();
            const std::size_t packs = (cols + wide - 1) / wide;
            const std::size_t row_stride = packs * wide;
            // 1. Stage the RHS strip: contiguous row reads of f, tail
            //    lanes zero-filled like the untiled SIMD drivers'.
            gather_strip_from_rows(f, t.begin, cols, n, row_stride, bufd);
            // 2. Fused Schur chain on the L2-resident strip -- bitwise
            //    the coefficients the unfused build would have produced.
            core::schur_solve_staged_strip<W>(s, buf, packs, UseSpmv);
            // 3. Evaluate at the feet straight from the strip; stream
            //    only the advected values out.
            if (out_rowwise) {
                for (std::size_t c = 0; c < cols; ++c) {
                    const std::size_t j = t.begin + c;
                    const core::StripColumn coeffs{bufd + c, n, row_stride};
                    evaluator.evaluate_shifted(points, velocities(j) * dt,
                                               coeffs, &out(j, 0));
                }
            } else {
                double* const obuf =
                        reinterpret_cast<double*>(slot + strip_bytes);
                for (std::size_t c = 0; c < cols; ++c) {
                    const std::size_t j = t.begin + c;
                    const core::StripColumn coeffs{bufd + c, n, row_stride};
                    evaluator.evaluate_shifted(points, velocities(j) * dt,
                                               coeffs, obuf + c * npts);
                }
                // 4. Blocked transpose out of the tile: the 2-D chain's
                //    inter-dimension permutation, fused into the pass.
                scatter_strip_transposed(obuf, t.begin, cols, npts, out);
            }
        });
        if (profiling::enabled()) {
            // Cost attribution: the solve stages decompose onto their
            // counter children exactly as in the standalone batched solve,
            // the evaluation flops and the value/advected streams land on
            // their own children, and the whole-launch total merges with
            // the timed advect_fused span so the report derives achieved
            // bandwidth for the fused pipeline as one unit.
            core::attribute_schur_solve_cost(
                    s, "pspl::advection::advect_fused", nv, UseSpmv);
            const double eflops =
                    static_cast<double>(nv) * static_cast<double>(npts)
                    * eval_point_flops(m_builder.basis().degree());
            const double sbytes = advect_stream_bytes(n, npts, nv);
            profiling::add_counters("advect_eval", 0.0, eflops);
            profiling::add_counters("advect_stream", sbytes, 0.0);
            profiling::add_counters("pspl::advection::advect_fused", sbytes,
                                    eflops);
        }
    }

    core::SplineBuilder m_builder; ///< shares the Schur factors
    core::SplineEvaluator m_evaluator;
    View1D<double> m_points;
    View1D<double> m_velocities;
    double m_dt = 0.0;
    bool m_fusable = false;
    bool m_use_spmv = true;
    int m_width = 1;
    std::size_t m_tile = 0;
};

/// Pure parse of a PSPL_ADVECT_FUSED-style value: "0"/"off"/"false" (any
/// case) disable, anything else (including unset = nullptr) enables. The
/// fused pipeline is the default; the toggle exists for ablation and
/// fallback.
bool fused_advect_enabled(const char* text);

/// Live read of PSPL_ADVECT_FUSED.
bool fused_advect_env();

} // namespace pspl::advection
