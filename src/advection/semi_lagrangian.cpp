#include "advection/semi_lagrangian.hpp"

namespace pspl::advection {

BatchedAdvection1D::BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                                       View1D<double> velocities, double dt)
    : BatchedAdvection1D(std::move(basis_x), std::move(velocities), dt,
                         Config())
{
}

BatchedAdvection1D::BatchedAdvection1D(bsplines::BSplineBasis basis_x,
                                       View1D<double> velocities, double dt,
                                       Config config)
    : m_basis(std::move(basis_x))
    , m_velocities(std::move(velocities))
    , m_dt(dt)
    , m_config(config)
    , m_evaluator(m_basis)
{
    if (m_config.method == Method::Direct) {
        m_builder.emplace(m_basis, m_config.version);
    } else {
        m_iterative_builder.emplace(m_basis, m_config.iterative);
    }

    const std::size_t nx_ = m_basis.nbasis();
    const std::size_t nv_ = m_velocities.extent(0);
    m_points = View1D<double>("advection_points", nx_);
    const auto pts = m_basis.interpolation_points();
    for (std::size_t i = 0; i < nx_; ++i) {
        m_points(i) = pts[i];
    }

    // Resolve the fused build->evaluate pipeline: Auto defers to the
    // PSPL_ADVECT_FUSED toggle (unset -> on) and yields to an explicit
    // fuse_transpose ablation request; On must find a fusable builder.
    if (m_config.method == Method::Direct
        && m_config.fuse_build_eval != Config::Fuse::Off) {
        const bool wanted =
                m_config.fuse_build_eval == Config::Fuse::On
                || (!m_config.fuse_transpose && fused_advect_env());
        if (wanted) {
            AdvectionPlan plan(*m_builder, m_evaluator, m_points,
                               m_velocities, m_dt);
            if (plan.fusable()) {
                m_plan.emplace(std::move(plan));
                m_fused = true;
            } else {
                PSPL_EXPECT(m_config.fuse_build_eval != Config::Fuse::On,
                            "BatchedAdvection1D: fuse_build_eval = On "
                            "requires a fusable configuration (Direct "
                            "method, non-Baseline version, "
                            "Precision::Double)");
            }
        }
    }

    if (!m_fused) {
        // Persistent scratch for every unfused step(): first-touched from
        // a parallel region so on NUMA systems the pages of each batch
        // slice land on the node of the thread that processes it (the
        // transposes and the batched solve all use static schedules over
        // the same index spaces). The fused pipeline never materializes
        // either array and skips the allocation entirely.
        m_ft = View2D<double>(FirstTouch, "advection_ft", nx_, nv_);
        m_eta = View2D<double>(FirstTouch, "advection_eta", nv_, nx_);
    }
}

View1D<double> uniform_velocities(std::size_t nv, double vmin, double vmax)
{
    View1D<double> v("velocities", nv);
    if (nv == 1) {
        v(0) = 0.5 * (vmin + vmax);
        return v;
    }
    const double dv = (vmax - vmin) / static_cast<double>(nv - 1);
    for (std::size_t j = 0; j < nv; ++j) {
        v(j) = vmin + dv * static_cast<double>(j);
    }
    return v;
}

} // namespace pspl::advection
