#include "advection/semi_lagrangian_2d.hpp"

namespace pspl::advection {

BatchedAdvection2D::BatchedAdvection2D(bsplines::BSplineBasis basis_x,
                                       bsplines::BSplineBasis basis_y,
                                       View1D<double> vx_of_y,
                                       View1D<double> vy_of_x, double dt)
    : BatchedAdvection2D(std::move(basis_x), std::move(basis_y),
                         std::move(vx_of_y), std::move(vy_of_x), dt, Config())
{
}

BatchedAdvection2D::BatchedAdvection2D(bsplines::BSplineBasis basis_x,
                                       bsplines::BSplineBasis basis_y,
                                       View1D<double> vx_of_y,
                                       View1D<double> vy_of_x, double dt,
                                       Config config)
{
    PSPL_EXPECT(vx_of_y.extent(0) == basis_y.nbasis(),
                "BatchedAdvection2D: vx_of_y must have ny entries");
    PSPL_EXPECT(vy_of_x.extent(0) == basis_x.nbasis(),
                "BatchedAdvection2D: vy_of_x must have nx entries");
    BatchedAdvection1D::Config cfg1;
    cfg1.version = config.version;
    cfg1.fuse_transpose = config.fuse_transpose;
    cfg1.fuse_build_eval = config.fuse_build_eval;
    m_adv_x.emplace(std::move(basis_x), std::move(vx_of_y), 0.5 * dt, cfg1);
    m_adv_y.emplace(std::move(basis_y), std::move(vy_of_x), dt, cfg1);
    m_ft = View2D<double>("advection2d_ft", m_adv_x->nx(), m_adv_y->nx());
}

} // namespace pspl::advection
