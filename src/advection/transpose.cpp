#include "advection/transpose.hpp"

namespace pspl::advection {

void transpose_host(const View2D<double>& in, const View2D<double>& out)
{
    transpose<Serial>("pspl::advection::transpose_host", in, out);
}

} // namespace pspl::advection
