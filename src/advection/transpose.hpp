// Parallel 2-D transpose kernels (Algorithm 2 lines 3 and 5): the
// distribution function is stored x-contiguous per velocity, while the
// spline solver wants the batch (velocity) index contiguous, so each step
// packs/unpacks across layouts.
#pragma once

#include "debug/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/profiling.hpp"
#include "parallel/view.hpp"

#include <cstddef>
#include <string_view>

namespace pspl::advection {

/// Square block edge of the tiled transpose: a 32 x 32 double tile is 8 KB
/// of staging per thread -- L1-resident on every target.
inline constexpr std::size_t transpose_block = 32;

/// out(j, i) = in(i, j).
///
/// Cache-blocked: each iteration stages one (B, B) block of `in` into a
/// per-thread workspace-arena slot with contiguous row reads, then writes
/// it back transposed with contiguous row writes, so neither side of the
/// copy issues the 8-byte strided accesses the naive element-wise kernel
/// is bound by. No heap allocation occurs inside (or per call of) the
/// dispatch: the staging lives in the persistent arena.
template <class Exec = DefaultExecutionSpace, class InView, class OutView>
void transpose(std::string_view label, const InView& in, const OutView& out)
{
    using T = std::remove_cv_t<typename InView::value_type>;
    constexpr std::size_t B = transpose_block;
    const std::size_t n0 = in.extent(0);
    const std::size_t n1 = in.extent(1);
    PSPL_EXPECT(out.extent(0) == n1 && out.extent(1) == n0,
                "transpose: extent mismatch");
    const std::size_t bt0 = (n0 + B - 1) / B;
    const std::size_t bt1 = (n1 + B - 1) / B;
    WorkspaceArena& arena = host_workspace_arena();
    arena.reserve(static_cast<std::size_t>(Exec::concurrency()),
                  B * B * sizeof(T));
    debug::ScratchGuard scratch(arena.data(), arena.size_bytes());
    std::byte* const abase = arena.data();
    const std::size_t astride = arena.slot_stride_bytes();
    parallel_for(label, RangePolicy<Exec>(bt0 * bt1), [=](std::size_t t) {
        T* PSPL_RESTRICT buf = reinterpret_cast<T*>(
                abase
                + astride * static_cast<std::size_t>(Exec::thread_rank()));
        const std::size_t i0 = (t / bt1) * B;
        const std::size_t j0 = (t % bt1) * B;
        const std::size_t i1 = i0 + B < n0 ? i0 + B : n0;
        const std::size_t j1 = j0 + B < n1 ? j0 + B : n1;
        for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t j = j0; j < j1; ++j) {
                buf[(i - i0) * B + (j - j0)] = in(i, j);
            }
        }
        for (std::size_t j = j0; j < j1; ++j) {
            for (std::size_t i = i0; i < i1; ++i) {
                out(j, i) = buf[(i - i0) * B + (j - j0)];
            }
        }
    });
    if (profiling::enabled()) {
        // Modeled DRAM traffic of the permutation (read + write every
        // element once): lands on the timed span so the perf report can
        // put the transposes' byte cost next to the solve/evaluate stages
        // -- the traffic the fused advection pipeline eliminates.
        const double moved = 2.0 * static_cast<double>(n0)
                             * static_cast<double>(n1)
                             * static_cast<double>(sizeof(T));
        profiling::add_counters(label, moved, 0.0);
    }
}

/// Rank-3 permutation of the two leading dimensions, keeping the batch
/// index contiguous: out(j, i, k) = in(i, j, k).
template <class Exec = DefaultExecutionSpace, class InView, class OutView>
void transpose_01(std::string_view label, const InView& in,
                  const OutView& out)
{
    const std::size_t n0 = in.extent(0);
    const std::size_t n1 = in.extent(1);
    const std::size_t nb = in.extent(2);
    PSPL_EXPECT(out.extent(0) == n1 && out.extent(1) == n0
                        && out.extent(2) == nb,
                "transpose_01: extent mismatch");
    parallel_for(label, MDRangePolicy<2, Exec>({n0, n1}),
                 [=](std::size_t i, std::size_t j) {
                     for (std::size_t k = 0; k < nb; ++k) {
                         out(j, i, k) = in(i, j, k);
                     }
                 });
    if (profiling::enabled()) {
        using T = std::remove_cv_t<typename InView::value_type>;
        const double moved = 2.0 * static_cast<double>(n0)
                             * static_cast<double>(n1)
                             * static_cast<double>(nb)
                             * static_cast<double>(sizeof(T));
        profiling::add_counters(label, moved, 0.0);
    }
}

/// Stage one batch tile of row-contiguous values into the row-major strip
/// layout the tile-resident solvers consume: strip element (r, c) lands at
/// strip[r * row_stride + c] and holds in(col0 + c, r). The reads sweep
/// whole contiguous rows of `in` (DRAM-friendly); the strided writes stay
/// inside the L2-resident strip. Lanes [cols, row_stride) of every row are
/// zero-filled so tail packs match the untiled SIMD drivers' zero-filled
/// dead lanes. Kernel-callable: runs inside one tile task of the fused
/// advection dispatch.
template <class InView>
PSPL_INLINE_FUNCTION void
gather_strip_from_rows(const InView& in, std::size_t col0, std::size_t cols,
                       std::size_t rows, std::size_t row_stride,
                       double* PSPL_RESTRICT strip)
{
    for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            strip[r * row_stride + c] = in(col0 + c, r);
        }
    }
    for (std::size_t l = cols; l < row_stride; ++l) {
        for (std::size_t r = 0; r < rows; ++r) {
            strip[r * row_stride + l] = 0.0;
        }
    }
}

/// Inverse side of the fused pipeline for transposed destinations: scatter
/// one evaluated output strip (`cols` columns of `npts` contiguous values
/// each) into `out(col0 + c, i)` with the point index innermost in the
/// strip but the column index innermost in the writes -- for a destination
/// that is a transposed_view of an (npts, nv) block, every i-iteration
/// writes one contiguous tile-wide run, so the 2-D Strang chain gets its
/// inter-dimension transpose for free out of the tile. Kernel-callable.
template <class OutView>
PSPL_INLINE_FUNCTION void
scatter_strip_transposed(const double* PSPL_RESTRICT strip, std::size_t col0,
                         std::size_t cols, std::size_t npts,
                         const OutView& out)
{
    for (std::size_t i = 0; i < npts; ++i) {
        for (std::size_t c = 0; c < cols; ++c) {
            out(col0 + c, i) = strip[c * npts + i];
        }
    }
}

/// Concrete host instantiation used by tools and tests.
void transpose_host(const View2D<double>& in, const View2D<double>& out);

} // namespace pspl::advection
