// Parallel 2-D transpose kernels (Algorithm 2 lines 3 and 5): the
// distribution function is stored x-contiguous per velocity, while the
// spline solver wants the batch (velocity) index contiguous, so each step
// packs/unpacks across layouts.
#pragma once

#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <string_view>

namespace pspl::advection {

/// out(j, i) = in(i, j).
template <class Exec = DefaultExecutionSpace, class InView, class OutView>
void transpose(std::string_view label, const InView& in, const OutView& out)
{
    const std::size_t n0 = in.extent(0);
    const std::size_t n1 = in.extent(1);
    PSPL_EXPECT(out.extent(0) == n1 && out.extent(1) == n0,
                "transpose: extent mismatch");
    parallel_for(label, MDRangePolicy<2, Exec>({n0, n1}),
                 [=](std::size_t i, std::size_t j) { out(j, i) = in(i, j); });
}

/// Rank-3 permutation of the two leading dimensions, keeping the batch
/// index contiguous: out(j, i, k) = in(i, j, k).
template <class Exec = DefaultExecutionSpace, class InView, class OutView>
void transpose_01(std::string_view label, const InView& in,
                  const OutView& out)
{
    const std::size_t n0 = in.extent(0);
    const std::size_t n1 = in.extent(1);
    const std::size_t nb = in.extent(2);
    PSPL_EXPECT(out.extent(0) == n1 && out.extent(1) == n0
                        && out.extent(2) == nb,
                "transpose_01: extent mismatch");
    parallel_for(label, MDRangePolicy<2, Exec>({n0, n1}),
                 [=](std::size_t i, std::size_t j) {
                     for (std::size_t k = 0; k < nb; ++k) {
                         out(j, i, k) = in(i, j, k);
                     }
                 });
}

/// Concrete host instantiation used by tools and tests.
void transpose_host(const View2D<double>& in, const View2D<double>& out);

} // namespace pspl::advection
