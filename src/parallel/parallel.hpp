// Parallel dispatch: parallel_for / parallel_reduce over range and
// multi-dimensional range policies, templated on the execution space.
//
// When profiling is enabled (pspl::profiling::set_enabled(true)) every
// labeled kernel accumulates wall time into the global registry, exactly how
// the paper collects per-kernel times with Kokkos-tools.
#pragma once

#include "core/concepts.hpp"
#include "debug/instrument.hpp"
#include "parallel/execution.hpp"
#include "parallel/macros.hpp"
#include "parallel/profiling.hpp"
#include "parallel/threadpool.hpp"

#include <array>
#include <cstddef>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace pspl {

template <class Exec = DefaultExecutionSpace>
struct RangePolicy {
    using execution_space = Exec;
    std::size_t begin = 0;
    std::size_t end = 0;
    explicit RangePolicy(std::size_t n) : end(n) {}
    RangePolicy(std::size_t b, std::size_t e) : begin(b), end(e) {}
};

template <std::size_t R, class Exec = DefaultExecutionSpace>
struct MDRangePolicy {
    using execution_space = Exec;
    static constexpr std::size_t rank = R;
    std::array<std::size_t, R> upper{};
    explicit MDRangePolicy(std::array<std::size_t, R> u) : upper(u) {}
};

namespace detail {

template <class F>
void dispatch_range(Serial, std::size_t b, std::size_t e, const F& f)
{
    for (std::size_t i = b; i < e; ++i) {
        f(i);
    }
}

template <class F>
void dispatch_md2(Serial, std::size_t n0, std::size_t n1, const F& f)
{
    for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
            f(i, j);
        }
    }
}

template <class F>
void dispatch_md3(Serial, std::size_t n0, std::size_t n1, std::size_t n2, const F& f)
{
    for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n1; ++j) {
            for (std::size_t k = 0; k < n2; ++k) {
                f(i, j, k);
            }
        }
    }
}

template <class F, class T, class Combine>
void dispatch_reduce(Serial, std::size_t b, std::size_t e, const F& f, T& result,
                     T identity, Combine combine)
{
    T acc = identity;
    for (std::size_t i = b; i < e; ++i) {
        f(i, acc);
    }
    result = combine(result, acc);
}

#if defined(PSPL_ENABLE_OPENMP)
template <class F>
void dispatch_range(OpenMP, std::size_t b, std::size_t e, const F& f)
{
    OpenMP::ensure_pinned();
#pragma omp parallel for schedule(static)
    for (long long i = static_cast<long long>(b); i < static_cast<long long>(e);
         ++i) {
        f(static_cast<std::size_t>(i));
    }
}

template <class F>
void dispatch_md2(OpenMP, std::size_t n0, std::size_t n1, const F& f)
{
    OpenMP::ensure_pinned();
#pragma omp parallel for collapse(2) schedule(static)
    for (long long i = 0; i < static_cast<long long>(n0); ++i) {
        for (long long j = 0; j < static_cast<long long>(n1); ++j) {
            f(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        }
    }
}

template <class F>
void dispatch_md3(OpenMP, std::size_t n0, std::size_t n1, std::size_t n2, const F& f)
{
    OpenMP::ensure_pinned();
#pragma omp parallel for collapse(3) schedule(static)
    for (long long i = 0; i < static_cast<long long>(n0); ++i) {
        for (long long j = 0; j < static_cast<long long>(n1); ++j) {
            for (long long k = 0; k < static_cast<long long>(n2); ++k) {
                f(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                  static_cast<std::size_t>(k));
            }
        }
    }
}

template <class F, class T, class Combine>
void dispatch_reduce(OpenMP, std::size_t b, std::size_t e, const F& f, T& result,
                     T identity, Combine combine)
{
    OpenMP::ensure_pinned();
    T acc = identity;
#pragma omp parallel
    {
        T local = identity;
#pragma omp for schedule(static) nowait
        for (long long i = static_cast<long long>(b);
             i < static_cast<long long>(e); ++i) {
            f(static_cast<std::size_t>(i), local);
        }
#pragma omp critical(pspl_reduce)
        acc = combine(acc, local);
    }
    result = combine(result, acc);
}
#endif

// ---------------------------------------------------------------------------
// Threads backend: trampolines from the templated dispatch onto the
// type-erased ThreadPool::Task interface. One virtual call per chunk; the
// user functor inlines into the chunk loop. Chunk boundaries come from the
// pool's PSPL_SCHEDULE partition and depend only on (range, pool size), so
// per-iteration arithmetic -- and therefore results -- are bitwise
// identical to the Serial backend. A dispatch from inside a pool task runs
// inline on the calling worker (nested parallelism is sequentialized, as
// with nested OpenMP regions at default settings).
// ---------------------------------------------------------------------------

template <class F>
void dispatch_range(Threads, std::size_t b, std::size_t e, const F& f)
{
    if (ThreadPool::in_task()) {
        for (std::size_t i = b; i < e; ++i) {
            f(i);
        }
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    struct Body final : ThreadPool::Task {
        const F& f;
        explicit Body(const F& fn) : f(fn) {}
        void run_chunk(std::size_t cb, std::size_t ce, std::size_t,
                       int) const override
        {
            for (std::size_t i = cb; i < ce; ++i) {
                f(i);
            }
        }
    };
    const Body body(f);
    const std::vector<std::size_t> bounds = pool.partition(b, e);
    pool.run(bounds, body);
}

template <class F>
void dispatch_md2(Threads, std::size_t n0, std::size_t n1, const F& f)
{
    // Flattened like an OpenMP collapse(2): one index space, row-major
    // unflattening per iteration.
    dispatch_range(Threads{}, 0, n0 * n1, [&f, n1](std::size_t i) {
        f(i / n1, i % n1);
    });
}

template <class F>
void dispatch_md3(Threads, std::size_t n0, std::size_t n1, std::size_t n2,
                  const F& f)
{
    const std::size_t n12 = n1 * n2;
    dispatch_range(Threads{}, 0, n0 * n12, [&f, n1, n2, n12](std::size_t i) {
        const std::size_t j = i % n12;
        f(i / n12, j / n2, j % n2);
    });
}

template <class F, class T, class Combine>
void dispatch_reduce(Threads, std::size_t b, std::size_t e, const F& f,
                     T& result, T identity, Combine combine)
{
    if (ThreadPool::in_task()) {
        T acc = identity;
        for (std::size_t i = b; i < e; ++i) {
            f(i, acc);
        }
        result = combine(result, acc);
        return;
    }
    ThreadPool& pool = ThreadPool::instance();
    const std::vector<std::size_t> bounds = pool.partition(b, e);
    const std::size_t nchunks = bounds.empty() ? 0 : bounds.size() - 1;
    // One partial per chunk, combined in chunk order on the dispatching
    // thread: the combine tree is a function of the partition alone, so
    // floating-point reductions are bitwise reproducible run-to-run (which
    // the OpenMP backend's arrival-ordered critical section is not).
    std::vector<T> partials(nchunks, identity);
    struct Body final : ThreadPool::Task {
        const F& f;
        T* slots;
        T init;
        Body(const F& fn, T* s, T id) : f(fn), slots(s), init(id) {}
        void run_chunk(std::size_t cb, std::size_t ce, std::size_t chunk,
                       int) const override
        {
            T local = init;
            for (std::size_t i = cb; i < ce; ++i) {
                f(i, local);
            }
            slots[chunk] = local;
        }
    };
    const Body body(f, partials.data(), identity);
    pool.run(bounds, body);
    T acc = identity;
    for (std::size_t c = 0; c < nchunks; ++c) {
        acc = combine(acc, partials[c]);
    }
    result = combine(result, acc);
}

// ---------------------------------------------------------------------------
// Host backend: runtime forwarding to the PSPL_BACKEND-selected space.
// Declared after every concrete backend so unqualified lookup from these
// definitions sees them all.
// ---------------------------------------------------------------------------

template <class F>
void dispatch_range(Host, std::size_t b, std::size_t e, const F& f)
{
    switch (default_backend()) {
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        dispatch_range(OpenMP{}, b, e, f);
        return;
#endif
    case Backend::Threads:
        dispatch_range(Threads{}, b, e, f);
        return;
    case Backend::Serial:
    default:
        dispatch_range(Serial{}, b, e, f);
        return;
    }
}

template <class F>
void dispatch_md2(Host, std::size_t n0, std::size_t n1, const F& f)
{
    switch (default_backend()) {
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        dispatch_md2(OpenMP{}, n0, n1, f);
        return;
#endif
    case Backend::Threads:
        dispatch_md2(Threads{}, n0, n1, f);
        return;
    case Backend::Serial:
    default:
        dispatch_md2(Serial{}, n0, n1, f);
        return;
    }
}

template <class F>
void dispatch_md3(Host, std::size_t n0, std::size_t n1, std::size_t n2,
                  const F& f)
{
    switch (default_backend()) {
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        dispatch_md3(OpenMP{}, n0, n1, n2, f);
        return;
#endif
    case Backend::Threads:
        dispatch_md3(Threads{}, n0, n1, n2, f);
        return;
    case Backend::Serial:
    default:
        dispatch_md3(Serial{}, n0, n1, n2, f);
        return;
    }
}

template <class F, class T, class Combine>
void dispatch_reduce(Host, std::size_t b, std::size_t e, const F& f,
                     T& result, T identity, Combine combine)
{
    switch (default_backend()) {
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        dispatch_reduce(OpenMP{}, b, e, f, result, identity, combine);
        return;
#endif
    case Backend::Threads:
        dispatch_reduce(Threads{}, b, e, f, result, identity, combine);
        return;
    case Backend::Serial:
    default:
        dispatch_reduce(Serial{}, b, e, f, result, identity, combine);
        return;
    }
}

/// Reduce dispatch with the same region/iteration instrumentation as
/// parallel_for (reduce functors may write Views besides the accumulator).
template <class Exec, class F, class T, class Combine>
void dispatch_reduce_checked(std::string_view label, std::size_t b,
                             std::size_t e, const F& f, T& result, T identity,
                             Combine combine)
{
    if constexpr (debug::check_enabled) {
        const std::string label_str(label);
        debug::RegionGuard region(label_str.c_str());
        if (region.owner()) {
            dispatch_reduce(
                    Exec{}, b, e,
                    [&f](std::size_t i, T& acc) {
                        debug::set_iteration(i);
                        f(i, acc);
                    },
                    result, identity, combine);
        } else {
            dispatch_reduce(Exec{}, b, e, f, result, identity, combine);
        }
        return;
    }
    dispatch_reduce(Exec{}, b, e, f, result, identity, combine);
}

/// Every labeled dispatch opens a span: the kernel nests under whatever
/// ScopedSpan/ScopedRegion the calling thread currently has open, which is
/// how "pspl_splines_solve" decomposes into its child kernels.
using KernelTimer = profiling::ScopedSpan;

} // namespace detail

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

template <class Exec, class F>
    requires DispatchBody<F>
void parallel_for(std::string_view label, RangePolicy<Exec> policy, const F& f)
{
    detail::KernelTimer t(label);
    if constexpr (debug::check_enabled) {
        // Open a write-conflict region and tag every functor invocation
        // with its iteration index; only the outermost dispatch owns the
        // region (nested dispatches keep the outer attribution).
        const std::string label_str(label);
        debug::RegionGuard region(label_str.c_str());
        if (region.owner()) {
            detail::dispatch_range(Exec{}, policy.begin, policy.end,
                                   [&f](std::size_t i) {
                                       debug::set_iteration(i);
                                       f(i);
                                   });
        } else {
            detail::dispatch_range(Exec{}, policy.begin, policy.end, f);
        }
        return;
    }
    detail::dispatch_range(Exec{}, policy.begin, policy.end, f);
}

/// Diagnostic fallback, selected only when the body breaks the dispatch
/// contract; the static_asserts name which clause broke.
template <class Exec, class F>
    requires(!DispatchBody<F>)
void parallel_for(std::string_view, RangePolicy<Exec>, const F&)
{
    static_assert(std::is_invocable_v<const F&, std::size_t>,
                  "parallel_for range body must be invocable as "
                  "f(std::size_t) on a const functor -- a mutable lambda "
                  "(or non-const operator()) breaks the value-capture "
                  "dispatch contract: bodies are copied into the parallel "
                  "region, so per-call mutable state would be lost");
    static_assert(std::is_copy_constructible_v<std::remove_cvref_t<F>>,
                  "parallel_for body must be copy-constructible: dispatch "
                  "captures the functor by value so it can be replicated "
                  "across workers (and, on an offloading backend, copied to "
                  "the device)");
}

/// Shorthand: iterate [0, n) on the default execution space.
template <class F>
void parallel_for(std::string_view label, std::size_t n, const F& f)
{
    parallel_for(label, RangePolicy<DefaultExecutionSpace>(n), f);
}

template <class Exec, class F>
    requires DispatchBody2<F>
void parallel_for(std::string_view label, MDRangePolicy<2, Exec> policy,
                  const F& f)
{
    detail::KernelTimer t(label);
    if constexpr (debug::check_enabled) {
        const std::string label_str(label);
        debug::RegionGuard region(label_str.c_str());
        if (region.owner()) {
            const std::size_t n1 = policy.upper[1];
            detail::dispatch_md2(Exec{}, policy.upper[0], policy.upper[1],
                                 [&f, n1](std::size_t i, std::size_t j) {
                                     debug::set_iteration(i * n1 + j);
                                     f(i, j);
                                 });
        } else {
            detail::dispatch_md2(Exec{}, policy.upper[0], policy.upper[1], f);
        }
        return;
    }
    detail::dispatch_md2(Exec{}, policy.upper[0], policy.upper[1], f);
}

template <class Exec, class F>
    requires(!DispatchBody2<F>)
void parallel_for(std::string_view, MDRangePolicy<2, Exec>, const F&)
{
    static_assert(std::is_invocable_v<const F&, std::size_t, std::size_t>,
                  "parallel_for MDRangePolicy<2> body must be invocable as "
                  "f(std::size_t, std::size_t) on a const functor (one index "
                  "per policy dimension)");
    static_assert(std::is_copy_constructible_v<std::remove_cvref_t<F>>,
                  "parallel_for body must be copy-constructible (value "
                  "capture dispatch contract)");
}

template <class Exec, class F>
    requires DispatchBody3<F>
void parallel_for(std::string_view label, MDRangePolicy<3, Exec> policy,
                  const F& f)
{
    detail::KernelTimer t(label);
    if constexpr (debug::check_enabled) {
        const std::string label_str(label);
        debug::RegionGuard region(label_str.c_str());
        if (region.owner()) {
            const std::size_t n1 = policy.upper[1];
            const std::size_t n2 = policy.upper[2];
            detail::dispatch_md3(Exec{}, policy.upper[0], policy.upper[1],
                                 policy.upper[2],
                                 [&f, n1, n2](std::size_t i, std::size_t j,
                                              std::size_t k) {
                                     debug::set_iteration((i * n1 + j) * n2
                                                          + k);
                                     f(i, j, k);
                                 });
        } else {
            detail::dispatch_md3(Exec{}, policy.upper[0], policy.upper[1],
                                 policy.upper[2], f);
        }
        return;
    }
    detail::dispatch_md3(Exec{}, policy.upper[0], policy.upper[1],
                         policy.upper[2], f);
}

template <class Exec, class F>
    requires(!DispatchBody3<F>)
void parallel_for(std::string_view, MDRangePolicy<3, Exec>, const F&)
{
    static_assert(
            std::is_invocable_v<const F&, std::size_t, std::size_t,
                                std::size_t>,
            "parallel_for MDRangePolicy<3> body must be invocable as "
            "f(std::size_t, std::size_t, std::size_t) on a const functor "
            "(one index per policy dimension)");
    static_assert(std::is_copy_constructible_v<std::remove_cvref_t<F>>,
                  "parallel_for body must be copy-constructible (value "
                  "capture dispatch contract)");
}

// ---------------------------------------------------------------------------
// for_each_batch_simd: SIMD-across-batch dispatch.
//
// The batch range is carved into chunks of W adjacent batch entries; the
// functor receives one BatchChunk per iteration and is expected to process
// its W entries as the W lanes of simd<T, W> packs (simd_view.hpp has the
// load/store glue). The last chunk may be partial (chunk.lanes < W); all
// full chunks start at a multiple of W so contiguous-layout pack loads
// never read past the block.
// ---------------------------------------------------------------------------

template <int W>
struct BatchChunk {
    static constexpr int width = W;
    std::size_t begin = 0; ///< first batch index of this chunk
    int lanes = W;         ///< live lanes: W, or the tail remainder

    bool full() const { return lanes == W; }
};

template <int W, class Exec, class F>
void for_each_batch_simd(std::string_view label, RangePolicy<Exec> policy,
                         const F& f)
{
    static_assert(SimdLaneCount<W>,
                  "for_each_batch_simd pack width must be a positive power "
                  "of two (simd<T, W> lane counts)");
    static_assert(BatchSimdBody<F, W>,
                  "for_each_batch_simd body must be invocable as "
                  "f(const BatchChunk<W>&) on a const functor -- the "
                  "dispatch hands the body one chunk of W adjacent batch "
                  "entries, not a bare index");
    const std::size_t begin = policy.begin;
    const std::size_t end = policy.end;
    const std::size_t total = end > begin ? end - begin : 0;
    const std::size_t nchunks = (total + W - 1) / W;
    parallel_for(label, RangePolicy<Exec>(nchunks), [=](std::size_t c) {
        const std::size_t j0 = begin + c * static_cast<std::size_t>(W);
        const int lanes = j0 + W <= end ? W : static_cast<int>(end - j0);
        PSPL_DEBUG_ASSERT(j0 < end && lanes >= 1 && lanes <= W,
                          "for_each_batch_simd: chunk outside batch range");
        f(BatchChunk<W>{j0, lanes});
    });
}

/// Shorthand: chunk [0, batch) on the default execution space.
template <int W, class F>
void for_each_batch_simd(std::string_view label, std::size_t batch,
                         const F& f)
{
    for_each_batch_simd<W>(label, RangePolicy<DefaultExecutionSpace>(batch), f);
}

// ---------------------------------------------------------------------------
// parallel_reduce with Sum/Max/Min reducers. The functor signature is
// f(index, accumulator&).
// ---------------------------------------------------------------------------

template <class T>
struct Sum {
    T& value;
    explicit Sum(T& v) : value(v) {}
};

template <class T>
struct Max {
    T& value;
    explicit Max(T& v) : value(v) {}
};

template <class T>
struct Min {
    T& value;
    explicit Min(T& v) : value(v) {}
};

template <class Exec, class F, class T>
void parallel_reduce(std::string_view label, RangePolicy<Exec> policy,
                     const F& f, Sum<T> reducer)
{
    static_assert(ReduceBody<F, T>,
                  "parallel_reduce body must be invocable as "
                  "f(std::size_t, T&) on a const functor, with T the "
                  "reducer's value type");
    detail::KernelTimer t(label);
    reducer.value = T{};
    detail::dispatch_reduce_checked<Exec>(label, policy.begin, policy.end, f,
                                          reducer.value, T{},
                                          [](T a, T b) { return a + b; });
}

template <class Exec, class F, class T>
void parallel_reduce(std::string_view label, RangePolicy<Exec> policy,
                     const F& f, Max<T> reducer)
{
    static_assert(ReduceBody<F, T>,
                  "parallel_reduce body must be invocable as "
                  "f(std::size_t, T&) on a const functor, with T the "
                  "reducer's value type");
    detail::KernelTimer t(label);
    const T identity = std::numeric_limits<T>::lowest();
    reducer.value = identity;
    detail::dispatch_reduce_checked<Exec>(
            label, policy.begin, policy.end, f, reducer.value, identity,
            [](T a, T b) { return a > b ? a : b; });
}

template <class Exec, class F, class T>
void parallel_reduce(std::string_view label, RangePolicy<Exec> policy,
                     const F& f, Min<T> reducer)
{
    static_assert(ReduceBody<F, T>,
                  "parallel_reduce body must be invocable as "
                  "f(std::size_t, T&) on a const functor, with T the "
                  "reducer's value type");
    detail::KernelTimer t(label);
    const T identity = std::numeric_limits<T>::max();
    reducer.value = identity;
    detail::dispatch_reduce_checked<Exec>(
            label, policy.begin, policy.end, f, reducer.value, identity,
            [](T a, T b) { return a < b ? a : b; });
}

/// Shorthand: sum-reduce [0, n) on the default execution space.
template <class F, class T>
void parallel_reduce(std::string_view label, std::size_t n, const F& f,
                     Sum<T> reducer)
{
    parallel_reduce(label, RangePolicy<DefaultExecutionSpace>(n), f, reducer);
}

} // namespace pspl
