// Persistent per-thread workspace arenas.
//
// Hot batched kernels need per-thread staging memory (SIMD pack buffers,
// transpose tiles).  Allocating a fresh View per solve call puts a heap
// allocation on every dispatch; the arena instead keeps one grow-only
// allocation per *host* thread and hands out fixed-stride slots, one per
// worker thread rank.  The backing memory is an ordinary View, so the
// allocation registry, NaN poisoning and the memory high-water mark all see
// it; callers wrap their dispatch in a debug::ScratchGuard over the arena
// so PSPL_CHECK treats slot reuse across iterations as staging, not a race.
//
// Growth invalidates previously returned slot pointers -- generation() lets
// tests (and assertions) detect stale pointers, and under PSPL_CHECK the
// old allocation is tombstoned so a stale access aborts with provenance.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>
#include <cstdint>

namespace pspl {

class WorkspaceArena
{
public:
    /// Ensure capacity for `slots` slots of `bytes_per_slot` each.
    /// Grow-only in both dimensions (the maxima over all requests are
    /// kept), so alternating callers with different shapes reuse one
    /// allocation. Reallocation bumps generation().
    void reserve(std::size_t slots, std::size_t bytes_per_slot);

    /// Base of slot `rank`, typed. Valid until the next growing reserve().
    template <class T>
    T* slot(int rank) const
    {
        PSPL_DEBUG_ASSERT(static_cast<std::size_t>(rank) < m_slots,
                          "WorkspaceArena: slot rank out of range");
        return reinterpret_cast<T*>(m_buf.data()
                                    + static_cast<std::size_t>(rank)
                                              * m_stride);
    }

    std::byte* data() const { return m_buf.data(); }
    std::size_t size_bytes() const { return m_slots * m_stride; }
    std::size_t slot_stride_bytes() const { return m_stride; }
    std::size_t slots() const { return m_slots; }

    /// Incremented on every reallocation; a cached slot pointer is only
    /// valid while the generation it was taken under is current.
    std::uint64_t generation() const { return m_generation; }

private:
    View1D<std::byte> m_buf;
    std::size_t m_slots = 0;
    std::size_t m_stride = 0;
    std::uint64_t m_generation = 0;
};

/// The calling host thread's arena (thread-local, so two host threads
/// driving solves concurrently never share slots). Worker threads inside a
/// dispatch index into the dispatching thread's arena by thread rank.
WorkspaceArena& host_workspace_arena();

} // namespace pspl
