// Portable fixed-width SIMD pack type for vectorizing *across the batch
// dimension* of the batched solvers.
//
// The paper's "one small matrix x huge batch" mapping gives every batch
// entry identical control flow (same shared factorization, only the RHS
// differs), so W adjacent batch entries can ride in the W lanes of one
// vector register: a kernel written against a generic ValueType executes
// unchanged with ValueType = simd<double, W>, turning its scalar recurrences
// into W independent recurrences advanced by one vector instruction each.
// This is the host-side image of the warp-level SIMT execution the paper
// gets for free on GPUs.
//
// Two implementations sit behind one interface:
//   - a GCC/Clang vector-extension pack (native_pack specializations) that
//     lowers to SSE/AVX/AVX-512 or NEON instructions, and
//   - a scalar std::array fallback for any other compiler, written as
//     fixed-trip-count lane loops that auto-vectorizers handle well.
// Define PSPL_SIMD_FORCE_SCALAR to force the fallback (used by the unit
// tests to cross-check both implementations).
//
// Tail handling (batch % W != 0) uses prefix masks: load_partial zero-fills
// the dead lanes (all kernel operations are lane-wise, so dead lanes can
// never contaminate live ones and 0/d stays finite) and store_partial
// writes only the live lanes back. where()-masked assignment and select()
// cover the general masked-update case.
#pragma once

#include "core/concepts.hpp"
#include "parallel/macros.hpp"

#include <array>
#include <cstddef>
#include <cstring>
#include <type_traits>

#if !defined(PSPL_SIMD_FORCE_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define PSPL_SIMD_VECTOR_EXT 1
#else
#define PSPL_SIMD_VECTOR_EXT 0
#endif

namespace pspl {

namespace detail {

/// Native pack storage. Explicit specializations rather than a dependent
/// vector_size attribute: the attribute does not accept template-dependent
/// sizes on all supported compilers.
template <class T, int W>
struct native_pack {
    static constexpr bool available = false;
    using type = std::array<T, W>;
};

#if PSPL_SIMD_VECTOR_EXT
// aligned(alignof(T)) drops the pack alignment to the element alignment so
// packs can be loaded from any element-aligned address (the RHS block gives
// no stronger guarantee); may_alias exempts pack accesses from strict
// aliasing against the underlying element arrays.
#define PSPL_DEFINE_NATIVE_PACK(T, W, name)                                   \
    typedef T name __attribute__((vector_size(W * sizeof(T)),                 \
                                  aligned(alignof(T)), may_alias));           \
    template <>                                                               \
    struct native_pack<T, W> {                                                \
        static constexpr bool available = true;                               \
        using type = name;                                                    \
    };

PSPL_DEFINE_NATIVE_PACK(double, 2, pack_storage_d2)
PSPL_DEFINE_NATIVE_PACK(double, 4, pack_storage_d4)
PSPL_DEFINE_NATIVE_PACK(double, 8, pack_storage_d8)
PSPL_DEFINE_NATIVE_PACK(float, 4, pack_storage_f4)
PSPL_DEFINE_NATIVE_PACK(float, 8, pack_storage_f8)
PSPL_DEFINE_NATIVE_PACK(float, 16, pack_storage_f16)
// Same-width integer packs: used only by the broadcast constructor to splat
// a scalar's bit pattern with a single instruction (see simd(T)).
PSPL_DEFINE_NATIVE_PACK(long long, 2, pack_storage_i64x2)
PSPL_DEFINE_NATIVE_PACK(long long, 4, pack_storage_i64x4)
PSPL_DEFINE_NATIVE_PACK(long long, 8, pack_storage_i64x8)
PSPL_DEFINE_NATIVE_PACK(int, 4, pack_storage_i32x4)
PSPL_DEFINE_NATIVE_PACK(int, 8, pack_storage_i32x8)
PSPL_DEFINE_NATIVE_PACK(int, 16, pack_storage_i32x16)
#undef PSPL_DEFINE_NATIVE_PACK
#endif

} // namespace detail

/// Widest vector register the current translation unit is compiled for, in
/// bits. Header-inline on purpose: a benchmark TU built with -march=native
/// sees its own ISA here, independent of how the library objects were built.
inline constexpr int simd_native_bits =
#if defined(__AVX512F__)
        512;
#elif defined(__AVX__)
        256;
#elif defined(__SSE2__) || defined(__ARM_NEON) || defined(__VSX__)
        128;
#else
        64;
#endif

/// Preferred pack width (lane count) for element type T on this TU's ISA.
template <class T>
inline constexpr int simd_preferred_width =
        simd_native_bits / 8 / static_cast<int>(sizeof(T)) >= 1
                ? simd_native_bits / 8 / static_cast<int>(sizeof(T))
                : 1;

template <class T, int W>
struct simd {
    static_assert(SimdPackable<T>,
                  "simd requires an arithmetic type (and never bool: masked "
                  "lanes are spelled simd_mask, not a bool pack)");
    static_assert(SimdLaneCount<W>,
                  "simd width must be a power of two (the tail masks and the "
                  "2:1 f32/f64 conversion shapes assume it)");

    using value_type = T;
    static constexpr int width = W;
    static constexpr bool has_native = detail::native_pack<T, W>::available;
    using storage_type = typename detail::native_pack<T, W>::type;

    storage_type v;

    simd() = default;

    /// Broadcast; intentionally implicit so scalar factors mix into pack
    /// expressions the way they do in the ValueType-generic kernels.
    PSPL_FORCEINLINE_FUNCTION simd(T s)
    {
        using bits_t = std::conditional_t<sizeof(T) == 8, long long, int>;
        if constexpr (has_native && std::is_floating_point_v<T>
                      && sizeof(bits_t) == sizeof(T)
                      && detail::native_pack<bits_t, W>::available) {
            // The naive lane loop compiles to W masked single-lane inserts
            // on GCC/AVX-512 instead of one broadcast, which dominates the
            // pack-sweep inner loops. Splatting the *bit pattern* through a
            // same-width integer vector OR is bit-exact (arithmetic splat
            // idioms like `vec{} + s` would turn -0.0 into +0.0) and lowers
            // to one vpbroadcast.
            using ivec = typename detail::native_pack<bits_t, W>::type;
            bits_t b;
            std::memcpy(&b, &s, sizeof(T));
            const ivec t = ivec{} | b;
            std::memcpy(&v, &t, sizeof(v));
        } else {
            for (int l = 0; l < W; ++l) {
                v[l] = s;
            }
        }
    }

    /// Broadcast from a different scalar type. Widening (float scalar into a
    /// double pack) and integer literals (`acc = 0` in ValueType-generic
    /// kernels) stay implicit; a floating-point scalar wider than the lane
    /// type (double into a float pack) is rejected -- that is a silent
    /// round-off injected into every lane, the defect class the
    /// mixed-precision pipeline confines to simd_narrow().
    template <class U>
        requires(std::is_arithmetic_v<U> && !std::is_same_v<U, T>)
    PSPL_FORCEINLINE_FUNCTION simd(U s) : simd(static_cast<T>(s))
    {
        static_assert(!(std::is_floating_point_v<U>
                        && std::is_floating_point_v<T>
                        && sizeof(U) > sizeof(T)),
                      "simd broadcast narrows a floating-point scalar "
                      "(e.g. double -> float lanes): narrowing must be "
                      "explicit -- static_cast the scalar or convert whole "
                      "packs with simd_narrow()");
    }

    PSPL_FORCEINLINE_FUNCTION T operator[](int l) const { return v[l]; }
    PSPL_FORCEINLINE_FUNCTION void set(int l, T s) { v[l] = s; }

    // -- contiguous load/store (unaligned; memcpy lowers to vector moves) --

    PSPL_FORCEINLINE_FUNCTION static simd load(const T* p)
    {
        simd r;
        std::memcpy(&r.v, p, sizeof(storage_type));
        return r;
    }

    PSPL_FORCEINLINE_FUNCTION void store(T* p) const
    {
        std::memcpy(p, &v, sizeof(storage_type));
    }

    // -- strided (gather/scatter) load/store -------------------------------

    PSPL_FORCEINLINE_FUNCTION static simd load(const T* p, std::ptrdiff_t stride)
    {
        simd r;
        for (int l = 0; l < W; ++l) {
            r.v[l] = p[static_cast<std::ptrdiff_t>(l) * stride];
        }
        return r;
    }

    PSPL_FORCEINLINE_FUNCTION void store(T* p, std::ptrdiff_t stride) const
    {
        for (int l = 0; l < W; ++l) {
            p[static_cast<std::ptrdiff_t>(l) * stride] = v[l];
        }
    }

    // -- masked tail load/store: first `lanes` lanes only ------------------

    /// Loads lanes [0, lanes) and zero-fills the rest, so tail packs stay
    /// finite through any sequence of lane-wise solves.
    PSPL_FORCEINLINE_FUNCTION static simd load_partial(const T* p,
                                                       std::ptrdiff_t stride,
                                                       int lanes)
    {
        simd r(T(0));
        for (int l = 0; l < lanes; ++l) {
            r.v[l] = p[static_cast<std::ptrdiff_t>(l) * stride];
        }
        return r;
    }

    PSPL_FORCEINLINE_FUNCTION void store_partial(T* p, std::ptrdiff_t stride,
                                                 int lanes) const
    {
        for (int l = 0; l < lanes; ++l) {
            p[static_cast<std::ptrdiff_t>(l) * stride] = v[l];
        }
    }

    // -- arithmetic --------------------------------------------------------

#define PSPL_SIMD_BINOP(op)                                                   \
    PSPL_FORCEINLINE_FUNCTION friend simd operator op(simd a, const simd& b)  \
    {                                                                         \
        if constexpr (has_native) {                                           \
            a.v = a.v op b.v;                                                 \
        } else {                                                              \
            for (int l = 0; l < W; ++l) {                                     \
                a.v[l] = a.v[l] op b.v[l];                                    \
            }                                                                 \
        }                                                                     \
        return a;                                                             \
    }                                                                         \
    /* Scalar operands deduce U instead of converting to T up front: the   */ \
    /* broadcast constructor then owns the one narrowing diagnostic, so    */ \
    /* `float_pack * 2.0` fails loudly instead of rounding silently.       */ \
    template <class U>                                                        \
        requires(std::is_arithmetic_v<U>)                                     \
    PSPL_FORCEINLINE_FUNCTION friend simd operator op(simd a, U s)            \
    {                                                                         \
        return a op simd(s);                                                  \
    }                                                                         \
    template <class U>                                                        \
        requires(std::is_arithmetic_v<U>)                                     \
    PSPL_FORCEINLINE_FUNCTION friend simd operator op(U s, const simd& b)     \
    {                                                                         \
        return simd(s) op b;                                                  \
    }                                                                         \
    PSPL_FORCEINLINE_FUNCTION simd& operator op##=(const simd& b)             \
    {                                                                         \
        *this = *this op b;                                                   \
        return *this;                                                         \
    }                                                                         \
    template <class U>                                                        \
        requires(std::is_arithmetic_v<U>)                                     \
    PSPL_FORCEINLINE_FUNCTION simd& operator op##=(U s)                       \
    {                                                                         \
        *this = *this op simd(s);                                             \
        return *this;                                                         \
    }

    PSPL_SIMD_BINOP(+)
    PSPL_SIMD_BINOP(-)
    PSPL_SIMD_BINOP(*)
    PSPL_SIMD_BINOP(/)
#undef PSPL_SIMD_BINOP

    PSPL_FORCEINLINE_FUNCTION simd operator-() const
    {
        return simd(T(0)) - *this;
    }
};

// ---------------------------------------------------------------------------
// Masks and where()-style masked assignment (tail handling vocabulary).
// ---------------------------------------------------------------------------

template <class T, int W>
struct simd_mask {
    std::array<bool, W> m{};

    /// Prefix mask: lanes [0, n) active -- the shape of every batch tail.
    PSPL_FORCEINLINE_FUNCTION static simd_mask first(int n)
    {
        simd_mask k;
        for (int l = 0; l < W && l < n; ++l) {
            k.m[l] = true;
        }
        return k;
    }

    PSPL_FORCEINLINE_FUNCTION static simd_mask all() { return first(W); }

    PSPL_FORCEINLINE_FUNCTION bool operator[](int l) const { return m[l]; }

    PSPL_FORCEINLINE_FUNCTION int count() const
    {
        int c = 0;
        for (int l = 0; l < W; ++l) {
            c += m[l] ? 1 : 0;
        }
        return c;
    }
};

/// Lane-wise k ? a : b.
template <class T, int W>
PSPL_FORCEINLINE_FUNCTION simd<T, W> select(const simd_mask<T, W>& k,
                                            const simd<T, W>& a,
                                            const simd<T, W>& b)
{
    simd<T, W> r;
    for (int l = 0; l < W; ++l) {
        r.set(l, k[l] ? a[l] : b[l]);
    }
    return r;
}

namespace detail {

template <class T, int W>
struct where_expr {
    simd_mask<T, W> k;
    simd<T, W>& x;

    PSPL_FORCEINLINE_FUNCTION void operator=(const simd<T, W>& rhs) const
    {
        x = select(k, rhs, x);
    }
    PSPL_FORCEINLINE_FUNCTION void operator+=(const simd<T, W>& rhs) const
    {
        x = select(k, x + rhs, x);
    }
    PSPL_FORCEINLINE_FUNCTION void operator-=(const simd<T, W>& rhs) const
    {
        x = select(k, x - rhs, x);
    }
    PSPL_FORCEINLINE_FUNCTION void operator*=(const simd<T, W>& rhs) const
    {
        x = select(k, x * rhs, x);
    }
};

} // namespace detail

/// Kokkos::Experimental::where-style masked view of a pack:
/// `where(mask, x) = y` assigns y only in the active lanes.
template <class T, int W>
PSPL_FORCEINLINE_FUNCTION detail::where_expr<T, W> where(const simd_mask<T, W>& k,
                                                         simd<T, W>& x)
{
    return {k, x};
}

// ---------------------------------------------------------------------------
// f32 <-> f64 pack conversion -- the sanctioned precision-change helpers of
// the mixed-precision pipeline. A float pack covers twice the lanes of a
// double pack at equal register width, so the natural conversion shapes are
// 2:1: two double packs narrow into one float pack, and one float pack
// widens into its low / high double-pack halves. Lane order is preserved
// (lane l of `lo` -> lane l, lane l of `hi` -> lane W + l), which is what
// keeps the row-major tile layouts of the two precisions interchangeable.
// ---------------------------------------------------------------------------

/// Narrow two W-wide double packs into one 2W-wide float pack
/// (round-to-nearest, the hardware cvtpd2ps semantics).
template <int W>
PSPL_FORCEINLINE_FUNCTION simd<float, 2 * W> simd_narrow(const simd<double, W>& lo,
                                                         const simd<double, W>& hi)
{
    simd<float, 2 * W> r;
#if PSPL_SIMD_VECTOR_EXT
    if constexpr (simd<double, W>::has_native
                  && detail::native_pack<float, W>::available) {
        using half_t = typename detail::native_pack<float, W>::type;
        const half_t a = __builtin_convertvector(lo.v, half_t);
        const half_t b = __builtin_convertvector(hi.v, half_t);
        std::memcpy(reinterpret_cast<char*>(&r.v), &a, sizeof(half_t));
        std::memcpy(reinterpret_cast<char*>(&r.v) + sizeof(half_t), &b,
                    sizeof(half_t));
        return r;
    }
#endif
    for (int l = 0; l < W; ++l) {
        r.set(l, static_cast<float>(lo[l]));
        r.set(W + l, static_cast<float>(hi[l]));
    }
    return r;
}

/// Widen the low W lanes of a 2W-wide float pack into a double pack
/// (exact: every float is representable as a double).
template <int W>
PSPL_FORCEINLINE_FUNCTION simd<double, W / 2> simd_widen_lo(const simd<float, W>& x)
{
    static_assert(W >= 2, "simd_widen_lo needs at least two float lanes");
    constexpr int H = W / 2;
    simd<double, H> r;
#if PSPL_SIMD_VECTOR_EXT
    if constexpr (simd<double, H>::has_native
                  && detail::native_pack<float, H>::available) {
        using half_t = typename detail::native_pack<float, H>::type;
        half_t a;
        std::memcpy(&a, reinterpret_cast<const char*>(&x.v), sizeof(half_t));
        r.v = __builtin_convertvector(
                a, typename detail::native_pack<double, H>::type);
        return r;
    }
#endif
    for (int l = 0; l < H; ++l) {
        r.set(l, static_cast<double>(x[l]));
    }
    return r;
}

/// Widen the high W lanes of a 2W-wide float pack into a double pack.
template <int W>
PSPL_FORCEINLINE_FUNCTION simd<double, W / 2> simd_widen_hi(const simd<float, W>& x)
{
    static_assert(W >= 2, "simd_widen_hi needs at least two float lanes");
    constexpr int H = W / 2;
    simd<double, H> r;
#if PSPL_SIMD_VECTOR_EXT
    if constexpr (simd<double, H>::has_native
                  && detail::native_pack<float, H>::available) {
        using half_t = typename detail::native_pack<float, H>::type;
        half_t a;
        std::memcpy(&a, reinterpret_cast<const char*>(&x.v) + sizeof(half_t),
                    sizeof(half_t));
        r.v = __builtin_convertvector(
                a, typename detail::native_pack<double, H>::type);
        return r;
    }
#endif
    for (int l = 0; l < H; ++l) {
        r.set(l, static_cast<double>(x[H + l]));
    }
    return r;
}

// ---------------------------------------------------------------------------
// Traits, so generic code can ask "is this a pack, and how wide?"
// ---------------------------------------------------------------------------

template <class X>
struct is_simd : std::false_type {
};
template <class T, int W>
struct is_simd<simd<T, W>> : std::true_type {
};
template <class X>
inline constexpr bool is_simd_v = is_simd<X>::value;

template <class X>
struct simd_width : std::integral_constant<int, 1> {
};
template <class T, int W>
struct simd_width<simd<T, W>> : std::integral_constant<int, W> {
};
template <class X>
inline constexpr int simd_width_v = simd_width<X>::value;

} // namespace pspl
