// A rank-templated, reference-counted multi-dimensional array view.
//
// This is the data-structure substrate of the library: a small, from-scratch
// analogue of Kokkos::View.  A View owns (or aliases, after subviewing) a
// contiguous allocation and exposes strided indexing.  Copies are shallow and
// cheap; the last copy releases the allocation.  All indexing members are
// usable inside parallel kernels.
#pragma once

#include "core/concepts.hpp"
#include "debug/instrument.hpp"
#include "parallel/execution.hpp"
#include "parallel/layout.hpp"
#include "parallel/macros.hpp"
#include "parallel/profiling.hpp"

#include <array>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <utility>

namespace pspl {

namespace detail {

template <class... Is>
inline constexpr bool all_integral_v = (std::is_convertible_v<Is, std::size_t> && ...);

} // namespace detail

/// Tag selecting the NUMA-aware allocating constructor: pages are
/// first-touched (zero-filled) from inside a parallel region instead of
/// serially, so on a first-touch NUMA system each page lands on the node
/// of the thread that will work on it under a static schedule.
struct FirstTouchTag {
    explicit FirstTouchTag() = default;
};
inline constexpr FirstTouchTag FirstTouch{};

template <class T, std::size_t Rank, class Layout = LayoutRight>
class View
{
    static_assert(Rank >= 1 && Rank <= 4, "View supports rank 1..4");
    static_assert(ViewLayout<Layout>,
                  "View layout must be LayoutRight, LayoutLeft, or "
                  "LayoutStride (see parallel/layout.hpp)");
    static_assert(!std::is_reference_v<T> && !std::is_const_v<T>,
                  "View element type must be a plain object type -- "
                  "const/reference element types break the shared-ownership "
                  "allocation contract");

public:
    using value_type = T;
    using layout_type = Layout;
    static constexpr std::size_t rank = Rank;

    View() = default;

    /// Allocating constructor: zero-initializes `extents...` elements.
    template <class... Extents>
        requires(sizeof...(Extents) == Rank
                 && detail::all_integral_v<Extents...>
                 && RegularLayout<Layout>)
    explicit View(std::string label, Extents... extents)
        : m_label(std::move(label))
        , m_extent{static_cast<std::size_t>(extents)...}
        , m_stride(Layout::strides(m_extent))
    {
        const std::size_t n = size();
        // Every allocation is reported to the profiling layer: View is the
        // library's only allocation choke point, so this is the process-wide
        // memory high-water mark.
        profiling::note_alloc(n * sizeof(T));
        if constexpr (debug::check_enabled) {
            T* p = new T[n]();
            debug::register_allocation(p, n * sizeof(T), m_label.c_str());
            debug::poison_fill(p, n);
            m_alloc = std::shared_ptr<T[]>(p, [n](T* q) {
                debug::release_allocation(q);
                profiling::note_free(n * sizeof(T));
                delete[] q;
            });
        } else {
            m_alloc = std::shared_ptr<T[]>(new T[n](), [n](T* q) {
                profiling::note_free(n * sizeof(T));
                delete[] q;
            });
        }
        m_data = m_alloc.get();
    }

    /// NUMA-aware allocating constructor: same contract as the allocating
    /// constructor (zero-initialized elements), but the zero fill runs
    /// inside a parallel region of the selected default backend (OpenMP or
    /// the thread pool, whichever PSPL_BACKEND resolves to) under its
    /// static split, so the first touch distributes pages across NUMA
    /// nodes to match the compute kernels. Under PSPL_CHECK the serial
    /// registered/poisoned path is kept -- placement fidelity is a
    /// performance property, not a semantic one.
    template <class... Extents>
        requires(sizeof...(Extents) == Rank
                 && detail::all_integral_v<Extents...>
                 && RegularLayout<Layout>)
    View(FirstTouchTag, std::string label, Extents... extents)
        : m_label(std::move(label))
        , m_extent{static_cast<std::size_t>(extents)...}
        , m_stride(Layout::strides(m_extent))
    {
        static_assert(std::is_trivially_default_constructible_v<T>,
                      "FirstTouch requires a trivially constructible "
                      "element type (the fill is the initialization)");
        const std::size_t n = size();
        profiling::note_alloc(n * sizeof(T));
        if constexpr (debug::check_enabled) {
            T* p = new T[n]();
            debug::register_allocation(p, n * sizeof(T), m_label.c_str());
            debug::poison_fill(p, n);
            m_alloc = std::shared_ptr<T[]>(p, [n](T* q) {
                debug::release_allocation(q);
                profiling::note_free(n * sizeof(T));
                delete[] q;
            });
        } else {
            T* p = new T[n]; // uninitialized: the parallel fill touches it
            // T is trivially default constructible, so T{} per element is
            // zero-initialization: a byte-wise zero fill is the same
            // initialization, parallelized by whichever backend will run
            // the compute.
            detail::first_touch_zero(p, n * sizeof(T));
            m_alloc = std::shared_ptr<T[]>(p, [n](T* q) {
                profiling::note_free(n * sizeof(T));
                delete[] q;
            });
        }
        m_data = m_alloc.get();
    }

    /// Aliasing constructor used by subview(): shares ownership with the
    /// parent allocation but indexes a window of it.
    View(std::shared_ptr<T[]> alloc,
         T* data,
         std::array<std::size_t, Rank> extent,
         std::array<std::size_t, Rank> stride,
         std::string label)
        : m_label(std::move(label))
        , m_extent(extent)
        , m_stride(stride)
        , m_alloc(std::move(alloc))
        , m_data(data)
    {
    }

    /// Unmanaged wrapper around caller-owned memory (no ownership taken).
    View(T* data, std::array<std::size_t, Rank> extent)
        requires RegularLayout<Layout>
        : m_extent(extent), m_stride(Layout::strides(extent)), m_data(data)
    {
    }

    PSPL_FORCEINLINE_FUNCTION T& operator()(std::size_t i0) const
    {
        static_assert(Rank == 1);
        bounds_check(i0, 0);
        T& ref = m_data[i0 * m_stride[0]];
        instrument_access(ref);
        return ref;
    }

    PSPL_FORCEINLINE_FUNCTION T& operator()(std::size_t i0, std::size_t i1) const
    {
        static_assert(Rank == 2);
        bounds_check(i0, 0);
        bounds_check(i1, 1);
        T& ref = m_data[i0 * m_stride[0] + i1 * m_stride[1]];
        instrument_access(ref);
        return ref;
    }

    PSPL_FORCEINLINE_FUNCTION T&
    operator()(std::size_t i0, std::size_t i1, std::size_t i2) const
    {
        static_assert(Rank == 3);
        bounds_check(i0, 0);
        bounds_check(i1, 1);
        bounds_check(i2, 2);
        T& ref = m_data[i0 * m_stride[0] + i1 * m_stride[1] + i2 * m_stride[2]];
        instrument_access(ref);
        return ref;
    }

    PSPL_FORCEINLINE_FUNCTION T&
    operator()(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const
    {
        static_assert(Rank == 4);
        bounds_check(i0, 0);
        bounds_check(i1, 1);
        bounds_check(i2, 2);
        bounds_check(i3, 3);
        T& ref = m_data[i0 * m_stride[0] + i1 * m_stride[1] + i2 * m_stride[2]
                        + i3 * m_stride[3]];
        instrument_access(ref);
        return ref;
    }

    PSPL_FORCEINLINE_FUNCTION std::size_t extent(std::size_t r) const
    {
        return m_extent[r];
    }

    PSPL_FORCEINLINE_FUNCTION std::size_t stride(std::size_t r) const
    {
        return m_stride[r];
    }

    std::size_t size() const
    {
        std::size_t n = 1;
        for (std::size_t r = 0; r < Rank; ++r) {
            n *= m_extent[r];
        }
        return n;
    }

    PSPL_FORCEINLINE_FUNCTION T* data() const { return m_data; }

    const std::string& label() const { return m_label; }

    bool is_allocated() const { return m_data != nullptr; }

    /// True when elements are laid out without gaps (subviews usually not).
    bool span_is_contiguous() const
    {
        // Sort-free check: the extent/stride pairs must tile [0, size).
        std::size_t expect_right = 1;
        bool right = true;
        for (std::size_t r = Rank; r-- > 0;) {
            if (m_stride[r] != expect_right) {
                right = false;
            }
            expect_right *= m_extent[r];
        }
        std::size_t expect_left = 1;
        bool left = true;
        for (std::size_t r = 0; r < Rank; ++r) {
            if (m_stride[r] != expect_left) {
                left = false;
            }
            expect_left *= m_extent[r];
        }
        return right || left;
    }

    const std::shared_ptr<T[]>& allocation() const { return m_alloc; }

private:
    PSPL_FORCEINLINE_FUNCTION void bounds_check([[maybe_unused]] std::size_t i,
                                                [[maybe_unused]] std::size_t r) const
    {
        if constexpr (debug::check_enabled) {
            if (i >= m_extent[r]) {
                fail_out_of_bounds(i, r);
            }
        } else if constexpr (bounds_check_enabled) {
            if (i >= m_extent[r]) {
                abort_with("View index out of bounds");
            }
        }
    }

    /// Cold path: out-of-bounds diagnostic with full extent provenance
    /// (label, offending rank/index, and every extent of the view).
    [[noreturn]] __attribute__((noinline, cold)) void
    fail_out_of_bounds(std::size_t i, std::size_t r) const
    {
        char extents[64];
        int pos = 0;
        for (std::size_t d = 0; d < Rank; ++d) {
            pos += std::snprintf(extents + pos,
                                 sizeof(extents) - static_cast<size_t>(pos),
                                 d == 0 ? "%zu" : " x %zu", m_extent[d]);
        }
        debug::fail("View '%s' rank-%zu index %zu = %zu is out of bounds "
                    "(extent %zu, view extents [%s])",
                    m_label.empty() ? "<unmanaged>" : m_label.c_str(),
                    Rank, r, i, m_extent[r], extents);
    }

    PSPL_FORCEINLINE_FUNCTION void instrument_access([[maybe_unused]] T& ref) const
    {
        if constexpr (debug::check_enabled) {
            debug::on_access(&ref, sizeof(T),
                             m_label.empty() ? "<unmanaged>"
                                             : m_label.c_str());
        }
    }

    std::string m_label;
    std::array<std::size_t, Rank> m_extent{};
    std::array<std::size_t, Rank> m_stride{};
    std::shared_ptr<T[]> m_alloc;
    T* m_data = nullptr;
};

/// Convenience aliases mirroring the naming used throughout the paper.
template <class T, class Layout = LayoutRight>
using View1D = View<T, 1, Layout>;
template <class T, class Layout = LayoutRight>
using View2D = View<T, 2, Layout>;
template <class T, class Layout = LayoutRight>
using View3D = View<T, 3, Layout>;
template <class T, class Layout = LayoutRight>
using View4D = View<T, 4, Layout>;

} // namespace pspl
