// deep_copy: elementwise copy between views of identical extents, and fill
// of a view with a scalar. Host-only build, so no memory-space conversions
// are needed; the API matches Kokkos::deep_copy so user code keeps its shape.
#pragma once

#include "core/concepts.hpp"
#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <cstring>

namespace pspl {

namespace detail {

template <class TDst, class TSrc, std::size_t Rank, class LDst, class LSrc>
void check_same_extents(const View<TDst, Rank, LDst>& dst,
                        const View<TSrc, Rank, LSrc>& src)
{
    for (std::size_t r = 0; r < Rank; ++r) {
        if (dst.extent(r) != src.extent(r)) {
            if constexpr (debug::check_enabled) {
                debug::fail("deep_copy: extent mismatch in dimension %zu: "
                            "dst '%s' has extent %zu, src '%s' has extent "
                            "%zu",
                            r, dst.label().c_str(), dst.extent(r),
                            src.label().c_str(), src.extent(r));
            }
            abort_with("deep_copy: extent mismatch");
        }
    }
}

/// Smallest byte interval covering every addressable element of `v`
/// (strides are non-negative, so data() is the low end).  Empty views map
/// to an empty interval.
template <class T, std::size_t Rank, class L>
std::pair<const unsigned char*, const unsigned char*>
byte_span(const View<T, Rank, L>& v)
{
    const auto* base = reinterpret_cast<const unsigned char*>(v.data());
    std::size_t last = 0;
    for (std::size_t r = 0; r < Rank; ++r) {
        if (v.extent(r) == 0) {
            return {base, base};
        }
        last += (v.extent(r) - 1) * v.stride(r);
    }
    return {base, base + (last + 1) * sizeof(T)};
}

/// Checked builds reject aliasing copies: with any overlap between source
/// and destination spans the elementwise loops read elements the copy has
/// already clobbered (or will clobber), which is order-dependent garbage.
template <class TDst, class TSrc, std::size_t Rank, class LDst, class LSrc>
void check_no_overlap([[maybe_unused]] const View<TDst, Rank, LDst>& dst,
                      [[maybe_unused]] const View<TSrc, Rank, LSrc>& src)
{
    if constexpr (debug::check_enabled) {
        if (dst.data() == nullptr || src.data() == nullptr) {
            return;
        }
        const auto [d_lo, d_hi] = byte_span(dst);
        const auto [s_lo, s_hi] = byte_span(src);
        if (d_lo < s_hi && s_lo < d_hi) {
            debug::fail("deep_copy: destination '%s' [%p, %p) overlaps "
                        "source '%s' [%p, %p); aliasing copies are "
                        "order-dependent",
                        dst.label().c_str(),
                        static_cast<const void*>(d_lo),
                        static_cast<const void*>(d_hi), src.label().c_str(),
                        static_cast<const void*>(s_lo),
                        static_cast<const void*>(s_hi));
        }
    }
}

/// With poisoning active, a poison payload flowing through deep_copy means
/// the source element was never written since allocation.
template <class T>
PSPL_FORCEINLINE_FUNCTION void
check_initialized_read([[maybe_unused]] const T& value,
                       [[maybe_unused]] const char* src_label)
{
    if constexpr (debug::check_enabled) {
        if (debug::poison_enabled() && debug::is_poison(value)) {
            debug::fail("deep_copy: reading uninitialized (NaN-poisoned) "
                        "element of '%s'",
                        src_label);
        }
    }
}

} // namespace detail

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 1, LDst>& dst, const View<T, 1, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    detail::check_no_overlap(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        const T& v = src(i);
        detail::check_initialized_read(v, src.label().c_str());
        dst(i) = v;
    }
}

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 2, LDst>& dst, const View<T, 2, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    detail::check_no_overlap(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            const T& v = src(i, j);
            detail::check_initialized_read(v, src.label().c_str());
            dst(i, j) = v;
        }
    }
}

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 3, LDst>& dst, const View<T, 3, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    detail::check_no_overlap(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            for (std::size_t k = 0; k < dst.extent(2); ++k) {
                const T& v = src(i, j, k);
                detail::check_initialized_read(v, src.label().c_str());
                dst(i, j, k) = v;
            }
        }
    }
}

/// Diagnostic catch-all: a view-to-view copy that matches no exact overload
/// above (mismatched rank, mismatched element type, or rank 4) lands here,
/// where partial ordering guarantees it is never selected for a valid copy,
/// and reports which compatibility contract broke (DeepCopyCompatible in
/// core/concepts.hpp names the valid shape).
template <class TDst, std::size_t RDst, class LDst, class TSrc,
          std::size_t RSrc, class LSrc>
void deep_copy(const View<TDst, RDst, LDst>&, const View<TSrc, RSrc, LSrc>&)
{
    static_assert(RDst == RSrc,
                  "deep_copy rank mismatch: source and destination views "
                  "must have identical rank -- reshape with subview or "
                  "transposed_view first");
    static_assert(std::is_same_v<TDst, TSrc>,
                  "deep_copy element type mismatch: deep_copy never "
                  "converts precision implicitly (a double -> float copy "
                  "narrows); convert through the sanctioned f32<->f64 "
                  "helpers in parallel/simd.hpp instead");
    static_assert(RDst != RSrc || !std::is_same_v<TDst, TSrc>,
                  "deep_copy supports views of rank 1..3");
}

template <class T, class L>
void deep_copy(const View<T, 1, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        dst(i) = value;
    }
}

template <class T, class L>
void deep_copy(const View<T, 2, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            dst(i, j) = value;
        }
    }
}

template <class T, class L>
void deep_copy(const View<T, 3, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            for (std::size_t k = 0; k < dst.extent(2); ++k) {
                dst(i, j, k) = value;
            }
        }
    }
}

/// Allocate a deep copy of `src` with identical extents (LayoutRight).
template <class T, class L>
View<T, 1> clone(const View<T, 1, L>& src)
{
    View<T, 1> out(src.label() + "_clone", src.extent(0));
    deep_copy(out, src);
    return out;
}

template <class T, class L>
View<T, 2> clone(const View<T, 2, L>& src)
{
    View<T, 2> out(src.label() + "_clone", src.extent(0), src.extent(1));
    deep_copy(out, src);
    return out;
}

} // namespace pspl
