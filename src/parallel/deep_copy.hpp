// deep_copy: elementwise copy between views of identical extents, and fill
// of a view with a scalar. Host-only build, so no memory-space conversions
// are needed; the API matches Kokkos::deep_copy so user code keeps its shape.
#pragma once

#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <cstring>

namespace pspl {

namespace detail {

template <class TDst, class TSrc, std::size_t Rank, class LDst, class LSrc>
void check_same_extents(const View<TDst, Rank, LDst>& dst,
                        const View<TSrc, Rank, LSrc>& src)
{
    for (std::size_t r = 0; r < Rank; ++r) {
        PSPL_EXPECT(dst.extent(r) == src.extent(r),
                    "deep_copy: extent mismatch");
    }
}

} // namespace detail

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 1, LDst>& dst, const View<T, 1, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        dst(i) = src(i);
    }
}

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 2, LDst>& dst, const View<T, 2, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            dst(i, j) = src(i, j);
        }
    }
}

template <class T, class LDst, class LSrc>
void deep_copy(const View<T, 3, LDst>& dst, const View<T, 3, LSrc>& src)
{
    detail::check_same_extents(dst, src);
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            for (std::size_t k = 0; k < dst.extent(2); ++k) {
                dst(i, j, k) = src(i, j, k);
            }
        }
    }
}

template <class T, class L>
void deep_copy(const View<T, 1, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        dst(i) = value;
    }
}

template <class T, class L>
void deep_copy(const View<T, 2, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            dst(i, j) = value;
        }
    }
}

template <class T, class L>
void deep_copy(const View<T, 3, L>& dst, const T& value)
{
    for (std::size_t i = 0; i < dst.extent(0); ++i) {
        for (std::size_t j = 0; j < dst.extent(1); ++j) {
            for (std::size_t k = 0; k < dst.extent(2); ++k) {
                dst(i, j, k) = value;
            }
        }
    }
}

/// Allocate a deep copy of `src` with identical extents (LayoutRight).
template <class T, class L>
View<T, 1> clone(const View<T, 1, L>& src)
{
    View<T, 1> out(src.label() + "_clone", src.extent(0));
    deep_copy(out, src);
    return out;
}

template <class T, class L>
View<T, 2> clone(const View<T, 2, L>& src)
{
    View<T, 2> out(src.label() + "_clone", src.extent(0), src.extent(1));
    deep_copy(out, src);
    return out;
}

} // namespace pspl
