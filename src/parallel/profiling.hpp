// Kokkos-tools-style profiling: every labeled kernel and region accumulates
// (call count, total seconds) into a global registry that benchmarks read
// back, mirroring the paper's `kp_reader *.dat` workflow (Appendix D).
//
// Profiling is off by default; benchmarks switch it on around the section
// they measure so unit tests pay no timing overhead.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pspl::profiling {

struct RecordStats {
    std::uint64_t count = 0;
    double total_seconds = 0.0;
    double avg_seconds() const { return count ? total_seconds / double(count) : 0.0; }
};

/// Globally enable/disable timing of labeled kernels and regions.
void set_enabled(bool on);
bool enabled();

/// Reset all accumulated statistics.
void clear();

/// Record `seconds` against `label` (used by the parallel dispatch layer).
void record(const std::string& label, double seconds);

/// Snapshot of the registry, ordered by label.
std::map<std::string, RecordStats> snapshot();

/// Stats for one label (zeroes if never recorded).
RecordStats stats_for(const std::string& label);

/// Sum of total_seconds over every label containing `needle`.
double total_seconds_matching(const std::string& needle);

/// RAII region timer: `ScopedRegion r("ddc_splines_solve");` accumulates the
/// enclosed wall time under the given name, like Kokkos profiling regions.
class ScopedRegion
{
public:
    explicit ScopedRegion(std::string name);
    ~ScopedRegion();
    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;

private:
    std::string m_name;
    bool m_active = false;
    std::chrono::steady_clock::time_point m_start;
};

/// Simple monotonic timer used by benches that measure one section directly.
class Timer
{
public:
    Timer() : m_start(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                             - m_start)
                .count();
    }
    void reset() { m_start = std::chrono::steady_clock::now(); }

private:
    std::chrono::steady_clock::time_point m_start;
};

} // namespace pspl::profiling
