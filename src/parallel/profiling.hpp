// Structured tracing and metrics: the observability layer behind the
// paper's per-kernel profiling workflow (Kokkos-tools kp_reader, Appendix D),
// grown into nested spans with derived per-kernel metrics.
//
//   - Spans nest: a ScopedSpan (or a labeled parallel_for dispatched inside
//     one) records its full parent path, so "pspl_splines_solve" decomposes
//     into its pttrs / gemv / spmv_coo children in the snapshot tree.
//   - Events land in lock-free per-thread buffers (single-producer chunk
//     lists, release/acquire counters) merged only on snapshot, so tracing
//     adds negligible overhead around parallel_for launches.
//   - Labels are interned string_view keys; the hot path never copies or
//     hashes a std::string per call, and the disabled path is one relaxed
//     atomic load with zero allocation.
//   - Kernels attribute modeled bytes/flops to spans (add_counters); the
//     snapshot derives achieved bandwidth against the peak model in
//     src/perf/hardware.*.
//   - write_chrome_trace() exports the raw event stream as a
//     chrome://tracing / Perfetto JSON file.
//   - The View allocator reports every allocation (note_alloc/note_free),
//     giving a process-wide memory high-water mark.
//
// Profiling is off by default; benchmarks switch it on around the section
// they measure so unit tests pay no timing overhead.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pspl::profiling {

/// Aggregated statistics for one label (or one span path).
struct RecordStats {
    std::uint64_t count = 0;      ///< closed spans / record() calls
    double total_seconds = 0.0;   ///< summed wall time of those spans
    double bytes = 0.0;           ///< modeled bytes moved (add_counters)
    double flops = 0.0;           ///< modeled flops (add_counters)
    double avg_seconds() const { return count ? total_seconds / double(count) : 0.0; }
    /// Achieved bandwidth in GB/s under the modeled byte count.
    double achieved_bw_gbs() const
    {
        return total_seconds > 0.0 ? bytes * 1e-9 / total_seconds : 0.0;
    }
    /// Achieved GFlops under the modeled flop count.
    double achieved_gflops() const
    {
        return total_seconds > 0.0 ? flops * 1e-9 / total_seconds : 0.0;
    }
};

/// Globally enable/disable timing of labeled kernels and regions.
void set_enabled(bool on);
bool enabled();

/// Reset all accumulated statistics (events recorded before the call are
/// dropped from snapshots and traces).
void clear();

/// Record `seconds` against `label` as a leaf span under the calling
/// thread's currently open span (used by the parallel dispatch layer and
/// by user code that times a section manually).
void record(std::string_view label, double seconds);

/// Attribute modeled costs to `label` as a zero-duration child of the
/// calling thread's currently open span. The dispatch drivers use this to
/// decompose a fused kernel into its per-algorithm bytes/flops.
void add_counters(std::string_view label, double bytes, double flops);

/// Snapshot aggregated by *leaf* label (a kernel dispatched under several
/// parents aggregates into one entry) -- the pre-span behaviour every
/// existing bench and example relies on.
std::map<std::string, RecordStats> snapshot();

/// Snapshot aggregated by full span path ("parent/child/leaf").
std::map<std::string, RecordStats> snapshot_tree();

/// Stats for one leaf label (zeroes if never recorded).
RecordStats stats_for(std::string_view label);

/// Sum of total_seconds over every leaf label containing `needle`.
double total_seconds_matching(std::string_view needle);

/// Number of events recorded since the last clear() (test/diagnostic aid).
std::size_t event_count();

/// Export every recorded event as a Chrome trace ("chrome://tracing" /
/// Perfetto JSON): spans become complete ("X") events on their recording
/// thread's track, counter attributions become instant events carrying
/// bytes/flops args. Returns false if the file cannot be written.
bool write_chrome_trace(const std::string& path);

// ---------------------------------------------------------------------------
// Memory accounting: the View allocator (parallel/view.hpp) is the single
// allocation choke point of the library; it reports every allocation and
// release here. Always on -- two relaxed atomic ops per *allocation* are
// noise next to the allocation itself.
// ---------------------------------------------------------------------------

struct MemoryStats {
    std::uint64_t live_bytes = 0;  ///< currently allocated through View
    std::uint64_t peak_bytes = 0;  ///< high-water mark since process start / reset
    std::uint64_t allocations = 0; ///< cumulative allocation count
};

void note_alloc(std::size_t bytes);
void note_free(std::size_t bytes);
MemoryStats memory_stats();
/// Reset the high-water mark to the current live size.
void reset_memory_peak();

// ---------------------------------------------------------------------------
// RAII spans
// ---------------------------------------------------------------------------

/// Nested span: opens a child of the calling thread's innermost open span,
/// closes (and records) it on destruction. `ScopedRegion` is the historical
/// name; the dispatch layer opens one of these around every labeled kernel.
class ScopedSpan
{
public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attribute modeled costs to this span itself.
    void add_counters(double bytes, double flops);

private:
    double m_t0 = 0.0;
    std::uint32_t m_path = 0;
    bool m_active = false;
};

using ScopedRegion = ScopedSpan;

/// Simple monotonic timer used by benches that measure one section directly.
class Timer
{
public:
    Timer() : m_start(std::chrono::steady_clock::now()) {}
    double seconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                             - m_start)
                .count();
    }
    void reset() { m_start = std::chrono::steady_clock::now(); }

private:
    std::chrono::steady_clock::time_point m_start;
};

} // namespace pspl::profiling
