// Persistent work-stealing thread pool backing the pspl::Threads execution
// space.
//
// One process-wide pool is created lazily on first dispatch, sized by
// PSPL_NUM_THREADS (default: hardware concurrency) and optionally pinned by
// PSPL_PIN=1 exactly like the OpenMP backend. Dispatch carves the iteration
// range into chunks under the PSPL_SCHEDULE policy (static / dynamic /
// guided, mirroring the OpenMP schedule kinds), deals the chunks round-robin
// onto per-worker Chase-Lev deques, and publishes an epoch: workers drain
// their own deque bottom-first and steal from the top of their neighbours'
// when empty. The dispatching thread participates as worker 0 and the epoch
// completes when every chunk has executed, so a dispatch can finish even if
// no worker thread ever wakes (this is what keeps fork-based death tests
// safe: the child re-runs all chunks on its only thread).
//
// Epoch protocol, and why it is data-race-free: deques are refilled by the
// dispatching thread while the pool is quiescent -- after the previous
// epoch's chunks have all executed and every worker has checked out -- and
// the new epoch is published with one release store of the remaining-chunk
// counter. A worker only touches deque buffers or the bounds table after an
// acquire load of that counter observes the new epoch, so every plain access
// is ordered by the release/acquire pair (or by the wakeup mutex). Unlike
// the general Chase-Lev algorithm there are no owner pushes or buffer grows
// during an epoch; the buffers are immutable until the next refill.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pspl {

namespace detail {

/// Parsed PSPL_SCHEDULE value: "static[,chunk]", "dynamic[,chunk]" or
/// "guided[,min_chunk]" (case-insensitive), mirroring OMP_SCHEDULE. chunk=0
/// means the policy default (static: one chunk per worker; dynamic:
/// total/(8*workers); guided: minimum chunk of 1).
struct ScheduleSpec {
    enum class Kind { Static, Dynamic, Guided };
    Kind kind = Kind::Static;
    std::size_t chunk = 0;

    /// Pure parser (testable without env juggling); nullptr, empty or
    /// unrecognized text yields the default static spec.
    static ScheduleSpec parse(const char* text);
};

/// Chunk boundaries for [begin, end): bounds[c] .. bounds[c+1] is chunk c.
/// Empty when the range is empty. Depends only on (range, nworkers, spec) --
/// never on timing -- which is what makes reductions over the chunks
/// bitwise deterministic.
std::vector<std::size_t> partition_range(std::size_t begin, std::size_t end,
                                         int nworkers, ScheduleSpec spec);

/// Single-owner work-stealing deque (Chase-Lev), specialized for the epoch
/// protocol above: reset() is only called while the pool is quiescent, so
/// there are no concurrent pushes or grows and the buffer is immutable for
/// the whole epoch. The owner pops from the bottom (its chunks in ascending
/// order), thieves take from the top. seq_cst on the contended operations:
/// chunk granularity makes the barrier cost irrelevant and it avoids the
/// standalone-fence formulation that ThreadSanitizer models poorly.
class ChaseLevDeque
{
public:
    /// Quiescent refill; chunks[count-1] is popped first by the owner,
    /// chunks[0] is stolen first. Not safe against concurrent pop/steal.
    void reset(const std::size_t* chunks, std::size_t count)
    {
        m_buf.assign(chunks, chunks + count);
        m_top.store(0, std::memory_order_relaxed);
        m_bottom.store(static_cast<std::int64_t>(count),
                       std::memory_order_relaxed);
    }

    /// Owner-only take from the bottom.
    bool pop(std::size_t& out)
    {
        const std::int64_t b
                = m_bottom.load(std::memory_order_relaxed) - 1;
        m_bottom.store(b, std::memory_order_seq_cst);
        std::int64_t t = m_top.load(std::memory_order_seq_cst);
        if (t <= b) {
            out = m_buf[static_cast<std::size_t>(b)];
            if (t == b) {
                // Last element: race the thieves for it, then restore the
                // canonical empty state either way.
                const bool won = m_top.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed);
                m_bottom.store(b + 1, std::memory_order_relaxed);
                return won;
            }
            return true;
        }
        m_bottom.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    /// Thief-side take from the top.
    bool steal(std::size_t& out)
    {
        std::int64_t t = m_top.load(std::memory_order_seq_cst);
        const std::int64_t b = m_bottom.load(std::memory_order_seq_cst);
        if (t < b) {
            out = m_buf[static_cast<std::size_t>(t)];
            return m_top.compare_exchange_strong(t, t + 1,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_relaxed);
        }
        return false;
    }

private:
    alignas(64) std::atomic<std::int64_t> m_top{0};
    alignas(64) std::atomic<std::int64_t> m_bottom{0};
    std::vector<std::size_t> m_buf;
};

} // namespace detail

/// The process-wide pool. User code never talks to it directly -- the
/// pspl::Threads execution space and the dispatch layer in parallel.hpp do.
class ThreadPool
{
public:
    /// One chunk of a dispatched range. Implementations are stateless
    /// trampolines over the user functor; `chunk` is the chunk's index in
    /// the epoch's partition (reductions key their partial slots on it) and
    /// `worker` the executing worker rank in [0, concurrency()).
    struct Task {
        virtual void run_chunk(std::size_t begin, std::size_t end,
                               std::size_t chunk, int worker) const = 0;

    protected:
        ~Task() = default;
    };

    /// Lazily created singleton; the first call spawns the workers.
    static ThreadPool& instance();

    /// Rank of the calling thread: its worker id while executing a pool
    /// task, 0 otherwise (the dispatching thread is worker 0).
    static int worker_rank() noexcept;

    /// True while the calling thread is executing a pool task; nested
    /// dispatches test this and run inline instead of re-entering the pool.
    static bool in_task() noexcept;

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    int concurrency() const noexcept { return m_size; }

    /// Worker threads actually spawned (concurrency() - 1; the dispatching
    /// thread is the remaining worker). Exposed for tests.
    int workers_spawned() const noexcept
    {
        return static_cast<int>(m_threads.size());
    }

    /// Dispatch epochs started so far; a reused pool keeps counting up.
    std::uint64_t epochs() const noexcept
    {
        return m_epochs_started.load(std::memory_order_relaxed);
    }

    detail::ScheduleSpec schedule() const noexcept { return m_schedule; }

    /// Chunk boundaries for [begin, end) under this pool's PSPL_SCHEDULE.
    std::vector<std::size_t> partition(std::size_t begin,
                                       std::size_t end) const
    {
        return detail::partition_range(begin, end, m_size, m_schedule);
    }

    /// Execute `task` over every chunk of `bounds` (a partition() result,
    /// which the caller keeps alive for the duration). The calling thread
    /// participates as worker 0; returns once all chunks have executed and
    /// every worker has left the epoch. Concurrent run() calls from
    /// different host threads serialize; a call from inside a pool task
    /// executes inline on the calling worker. The first exception thrown by
    /// a chunk is rethrown here after the epoch completes (remaining chunks
    /// still execute).
    void run(const std::vector<std::size_t>& bounds, const Task& task);

private:
    ThreadPool();

    void worker_loop(int rank);
    void work(int rank);
    bool steal_any(int rank, std::size_t& chunk);
    void record_exception();
    void run_inline(const std::vector<std::size_t>& bounds, const Task& task);

    int m_size = 1;
    detail::ScheduleSpec m_schedule;

    std::mutex m_run_mutex; ///< serializes epochs across host threads

    std::mutex m_mutex; ///< guards m_epoch / m_shutdown and the wakeup cv
    std::condition_variable m_cv;
    std::uint64_t m_epoch = 0;
    bool m_shutdown = false;

    std::vector<std::thread> m_threads;
    std::vector<detail::ChaseLevDeque> m_deques;
    std::vector<std::size_t> m_fill; ///< per-worker refill scratch

    // Epoch state, written during the quiescent refill and published by the
    // release store of m_remaining (see the file comment for the protocol).
    const std::size_t* m_bounds = nullptr;
    const Task* m_task = nullptr;
    std::atomic<std::int64_t> m_remaining{0};
    std::atomic<int> m_in_epoch{0};
    std::atomic<std::uint64_t> m_epochs_started{0};

    std::mutex m_exc_mutex;
    std::exception_ptr m_exception;
};

} // namespace pspl
