// Persistent work-stealing thread pool backing the pspl::Threads execution
// space.
//
// One process-wide pool is created lazily on first dispatch, sized by
// PSPL_NUM_THREADS (default: hardware concurrency) and optionally pinned by
// PSPL_PIN=1 exactly like the OpenMP backend. Dispatch carves the iteration
// range into chunks under the PSPL_SCHEDULE policy (static / dynamic /
// guided, mirroring the OpenMP schedule kinds), deals the chunks round-robin
// onto per-worker Chase-Lev deques, and publishes an epoch: workers drain
// their own deque bottom-first and steal from the top of their neighbours'
// when empty. The dispatching thread participates as worker 0 and the epoch
// completes when every chunk has executed, so a dispatch can finish even if
// no worker thread ever wakes (this is what keeps fork-based death tests
// safe: the child re-runs all chunks on its only thread).
//
// Epoch protocol, and why it is data-race-free: deques are refilled by the
// dispatching thread while the pool is quiescent -- after the previous
// epoch's chunks have all executed and every worker has checked out -- and
// the new epoch is published with one release store of the remaining-chunk
// counter. A worker only touches deque buffers or the bounds table after an
// acquire load of that counter observes the new epoch, so every plain access
// is ordered by the release/acquire pair (or by the wakeup mutex). Unlike
// the general Chase-Lev algorithm there are no owner pushes or buffer grows
// during an epoch; the buffers are immutable until the next refill.
//
// The lock-free pieces -- the deque (parallel/chase_lev.hpp) and the epoch
// gate (parallel/epoch_gate.hpp) -- are templated on the sync policy
// (parallel/sync_policy.hpp): this pool instantiates sync::StdSync
// (std::atomic, bitwise identical to the hand-written version), while the
// model checker (src/debug/modelcheck/) instantiates the same templates
// with mc::ModelSync and explores every interleaving of the protocol at
// small bounds. TSan stress runs sample schedules; the checker proves the
// annotations -- see docs/STATIC_ANALYSIS.md.
#pragma once

#include "parallel/chase_lev.hpp"
#include "parallel/epoch_gate.hpp"
#include "parallel/sync_policy.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pspl {

namespace detail {

/// Parsed PSPL_SCHEDULE value: "static[,chunk]", "dynamic[,chunk]" or
/// "guided[,min_chunk]" (case-insensitive), mirroring OMP_SCHEDULE. chunk=0
/// means the policy default (static: one chunk per worker; dynamic:
/// total/(8*workers); guided: minimum chunk of 1).
struct ScheduleSpec {
    enum class Kind { Static, Dynamic, Guided };
    Kind kind = Kind::Static;
    std::size_t chunk = 0;

    /// Pure parser (testable without env juggling); nullptr, empty or
    /// unrecognized text yields the default static spec.
    static ScheduleSpec parse(const char* text);
};

/// Chunk boundaries for [begin, end): bounds[c] .. bounds[c+1] is chunk c.
/// Empty when the range is empty. Depends only on (range, nworkers, spec) --
/// never on timing -- which is what makes reductions over the chunks
/// bitwise deterministic.
std::vector<std::size_t> partition_range(std::size_t begin, std::size_t end,
                                         int nworkers, ScheduleSpec spec);

/// Production instantiation of the policy-templated work-stealing deque.
using ChaseLevDeque = BasicChaseLevDeque<sync::StdSync>;

} // namespace detail

/// The process-wide pool. User code never talks to it directly -- the
/// pspl::Threads execution space and the dispatch layer in parallel.hpp do.
class ThreadPool
{
public:
    /// One chunk of a dispatched range. Implementations are stateless
    /// trampolines over the user functor; `chunk` is the chunk's index in
    /// the epoch's partition (reductions key their partial slots on it) and
    /// `worker` the executing worker rank in [0, concurrency()).
    struct Task {
        virtual void run_chunk(std::size_t begin, std::size_t end,
                               std::size_t chunk, int worker) const = 0;

    protected:
        ~Task() = default;
    };

    /// Lazily created singleton; the first call spawns the workers.
    static ThreadPool& instance();

    /// Rank of the calling thread: its worker id while executing a pool
    /// task, 0 otherwise (the dispatching thread is worker 0).
    static int worker_rank() noexcept;

    /// True while the calling thread is executing a pool task; nested
    /// dispatches test this and run inline instead of re-entering the pool.
    static bool in_task() noexcept;

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    int concurrency() const noexcept { return m_size; }

    /// Worker threads actually spawned (concurrency() - 1; the dispatching
    /// thread is the remaining worker). Exposed for tests.
    int workers_spawned() const noexcept
    {
        return static_cast<int>(m_threads.size());
    }

    /// Dispatch epochs started so far; a reused pool keeps counting up.
    std::uint64_t epochs() const noexcept
    {
        return m_epochs_started.load(sync::relaxed);
    }

    detail::ScheduleSpec schedule() const noexcept { return m_schedule; }

    /// Chunk boundaries for [begin, end) under this pool's PSPL_SCHEDULE.
    std::vector<std::size_t> partition(std::size_t begin,
                                       std::size_t end) const
    {
        return detail::partition_range(begin, end, m_size, m_schedule);
    }

    /// Execute `task` over every chunk of `bounds` (a partition() result,
    /// which the caller keeps alive for the duration). The calling thread
    /// participates as worker 0; returns once all chunks have executed and
    /// every worker has left the epoch. Concurrent run() calls from
    /// different host threads serialize; a call from inside a pool task
    /// executes inline on the calling worker. The first exception thrown by
    /// a chunk is rethrown here after the epoch completes (remaining chunks
    /// still execute).
    void run(const std::vector<std::size_t>& bounds, const Task& task);

private:
    ThreadPool();

    void worker_loop(int rank);
    void work(int rank);
    bool steal_any(int rank, std::size_t& chunk);
    void record_exception();
    void run_inline(const std::vector<std::size_t>& bounds, const Task& task);

    int m_size = 1;
    detail::ScheduleSpec m_schedule;

    std::mutex m_run_mutex; ///< serializes epochs across host threads

    std::mutex m_mutex; ///< guards m_epoch / m_shutdown and the wakeup cv
    std::condition_variable m_cv;
    std::uint64_t m_epoch = 0;
    bool m_shutdown = false;

    std::vector<std::thread> m_threads;
    std::vector<detail::ChaseLevDeque> m_deques;
    std::vector<std::size_t> m_fill; ///< per-worker refill scratch

    // Epoch state, written during the quiescent refill and published by the
    // gate's release store (see the file comment for the protocol).
    const std::size_t* m_bounds = nullptr;
    const Task* m_task = nullptr;
    detail::EpochGate<sync::StdSync> m_gate;
    sync::atomic<std::uint64_t> m_epochs_started{0};

    std::mutex m_exc_mutex;
    std::exception_ptr m_exception;
};

} // namespace pspl
