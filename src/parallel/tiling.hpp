// Batch tiling: partition the batch index into L2-sized column tiles so
// every pipeline stage of a batched solve runs over one cache-resident tile
// before the next tile is touched.
//
// The cache model is deliberately simple: one tile of a (n, batch) RHS
// block costs n * value_bytes per column, and the tile is sized so the
// staged tile fills about half of L2 (the other half is left for the
// factorized matrix data and the stack).  The width is rounded to a
// multiple of the SIMD pack width so tile boundaries coincide with pack
// chunk boundaries -- that is what makes the tiled path bitwise identical
// to the untiled one.
//
// Streaming guard: staging pays when the working set is cache-resident
// (it converts the untiled path's strided pack loads into contiguous
// sweeps), but once the whole block exceeds the last-level cache every
// pass streams from DRAM anyway -- the fused chain is already single-pass
// per pack, so the gather/scatter would only add copy traffic.  Auto mode
// therefore falls back to the untiled dispatch when
// rows * batch * value_bytes > l3_cache_bytes(); explicit widths are
// always honored (that is what ablations are for).
//
// PSPL_TILE overrides the model at runtime:
//   unset / "auto"  -> cache model (default)
//   "off" / "0"     -> untiled legacy path (the 0-ULP reference)
//   <positive int>  -> explicit tile width in batch columns
#pragma once

#include "parallel/parallel.hpp"

#include <cstddef>
#include <string>
#include <string_view>

namespace pspl {

/// Detected L2 data-cache capacity of cpu0 (sysfs), cached after the first
/// call; falls back to 1 MiB when the hierarchy cannot be read.
std::size_t l2_cache_bytes();

/// Detected last-level (L3) cache capacity of cpu0 (sysfs), cached after
/// the first call; falls back to 32 MiB when the hierarchy cannot be read.
/// The auto tile model's streaming guard keys on this.
std::size_t l3_cache_bytes();

struct TilePolicy {
    enum class Mode {
        Auto,     ///< size tiles from the L2 cache model
        Off,      ///< untiled: one dispatch over the whole batch
        Explicit, ///< honor `tile` (rounded to a pack multiple)
    };

    Mode mode = Mode::Auto;
    std::size_t tile = 0; ///< requested width (Explicit mode only)

    /// Parse PSPL_TILE (read live on every call so tests can setenv).
    static TilePolicy from_env();
    static TilePolicy off() { return {Mode::Off, 0}; }
    static TilePolicy automatic() { return {Mode::Auto, 0}; }
    static TilePolicy explicit_width(std::size_t w)
    {
        return {Mode::Explicit, w};
    }

    bool tiled() const { return mode != Mode::Off; }

    /// Tile width in batch columns for a (rows, batch_cols) block of
    /// `value_bytes`-sized elements processed `pack_width` columns at a
    /// time. A non-zero result is always a multiple of pack_width, at
    /// least pack_width, and capped so per-thread staging stays bounded.
    /// Returns 0 -- run the untiled dispatch -- in Off mode, and in Auto
    /// mode when the whole block exceeds the last-level cache (the
    /// streaming guard: beyond L3 the fused single-pass chain streams
    /// from DRAM either way and staging would only add copy traffic).
    std::size_t tile_cols(std::size_t rows, std::size_t batch_cols,
                          std::size_t value_bytes,
                          std::size_t pack_width) const;

    /// Tile width for a pipeline that *must* stage (the mixed-precision
    /// driver keeps FP32 and FP64 mirrors of every staged element, so
    /// running untiled is not an option). `staging_bytes` is the summed
    /// per-element footprint of all staging buffers -- 4 for a pure FP32
    /// tile (tiles widen vs FP64, the element-size dependence of the
    /// model), ~20 for the mixed loop's f32 + f64 + residual mirrors.
    /// Differences from tile_cols: the streaming guard does not apply
    /// (staging is the point, not an optimization), and Off/degenerate
    /// requests still yield a usable width from the L2 model.
    std::size_t staged_tile_cols(std::size_t rows, std::size_t batch_cols,
                                 std::size_t staging_bytes,
                                 std::size_t pack_width) const;

    /// Tile width for the fused build->evaluate advection pipeline, whose
    /// per-thread slot must hold *two* strips per batch column -- the
    /// staged RHS/coefficient strip (rows values) and the evaluated output
    /// strip (npts values) -- while the Schur factors plus the
    /// interpolation-point array (`fixed_bytes`, swept once per column by
    /// the solve and the basis evaluation) stay resident next to them.
    /// The L2 model budgets half the cache for the strips after carving
    /// out the fixed working set (capped at a quarter of L2 so degenerate
    /// factor sizes cannot zero the budget). Like staged_tile_cols, there
    /// is no streaming guard and Off still yields a usable width: the
    /// fused pipeline must stage (evaluation needs the whole coefficient
    /// column), so the only question is how wide a tile fits.
    std::size_t fused_advect_tile_cols(std::size_t rows, std::size_t npts,
                                       std::size_t batch_cols,
                                       std::size_t pack_width,
                                       std::size_t fixed_bytes) const;

    /// Human/JSON form: "auto", "off", or the explicit width.
    std::string describe() const;
};

/// One tile of the batch range: columns [begin, end), tile number `index`.
struct BatchTile {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t index = 0;

    std::size_t cols() const { return end - begin; }
};

/// Tile scheduler: carve [policy.begin, policy.end) into tiles of `tile`
/// columns (the last tile may be narrower) and dispatch one functor call
/// per tile through the ordinary labeled parallel_for machinery, so tiles
/// inherit profiling spans and PSPL_CHECK region guards unchanged.
template <class Exec, class F>
void for_each_batch_tile(std::string_view label, RangePolicy<Exec> policy,
                         std::size_t tile, const F& f)
{
    static_assert(BatchTileBody<F>,
                  "for_each_batch_tile body must be invocable as "
                  "f(const BatchTile&) on a const functor -- the scheduler "
                  "hands the body one [begin, end) column tile, not a bare "
                  "index");
    PSPL_EXPECT(tile >= 1, "for_each_batch_tile: tile width must be >= 1");
    const std::size_t begin = policy.begin;
    const std::size_t end = policy.end;
    const std::size_t total = end > begin ? end - begin : 0;
    const std::size_t ntiles = (total + tile - 1) / tile;
    parallel_for(label, RangePolicy<Exec>(ntiles), [=](std::size_t t) {
        const std::size_t t0 = begin + t * tile;
        const std::size_t t1 = t0 + tile < end ? t0 + tile : end;
        PSPL_DEBUG_ASSERT(t0 < t1 && t1 <= end,
                          "for_each_batch_tile: tile outside batch range");
        f(BatchTile{t0, t1, t});
    });
}

/// Shorthand: tile [0, batch) on the default execution space.
template <class F>
void for_each_batch_tile(std::string_view label, std::size_t batch,
                         std::size_t tile, const F& f)
{
    for_each_batch_tile(label, RangePolicy<DefaultExecutionSpace>(batch),
                        tile, f);
}

} // namespace pspl
