// Sync policy: the one seam between the lock-free protocol code and the
// memory model it runs against.
//
// Every atomic operation in the concurrency runtime (the Chase-Lev deques
// and epoch protocol behind the Threads backend, the profiler's per-thread
// event chunks) is expressed against a *policy* type instead of std::atomic
// directly:
//
//   - `sync::StdSync` (this header) maps `Sync::atomic<T>` to std::atomic,
//     `Sync::plain<T>` to plain T, and `Sync::order(site, dflt)` to the
//     constexpr passthrough of `dflt` -- production instantiations are
//     bitwise identical to writing std::atomic by hand (the 0-ULP suites
//     assert the behaviour, the generated code has no extra indirection).
//   - `mc::ModelSync` (src/debug/modelcheck/mc.hpp) maps the same aliases
//     to the model checker's instrumented types, so the *same template
//     code* is explored exhaustively under the C++ memory model, and
//     `order()` consults a mutation table so each annotation can be
//     deliberately weakened one site at a time (the mutation matrix).
//
// Every memory_order decision in the protocols is annotated with a
// `sync::Site` enumerator. That is what makes the annotations auditable:
// the mutation matrix in tests/test_modelcheck_mutations.cpp enumerates,
// per site, the weakenings the checker must catch -- see
// docs/STATIC_ANALYSIS.md ("Dynamic verification vs model checking").
//
// This header (and the modelcheck implementation) are the only places raw
// std::atomic / std::memory_order may appear in src/ -- enforced by
// tools/lint_invariants.py rule 11.
#pragma once

#include <atomic>
#include <mutex>

namespace pspl::sync {

// Named order constants so protocol code never spells std::memory_order_*
// (the raw tokens are lint-banned outside the sync-policy headers).
inline constexpr std::memory_order relaxed = std::memory_order_relaxed;
inline constexpr std::memory_order acquire = std::memory_order_acquire;
inline constexpr std::memory_order release = std::memory_order_release;
inline constexpr std::memory_order acq_rel = std::memory_order_acq_rel;
inline constexpr std::memory_order seq_cst = std::memory_order_seq_cst;

/// Every annotated memory-order decision in the lock-free protocols. One
/// enumerator per *site* (a specific operation in a specific algorithm),
/// not per location: the mutation matrix weakens exactly one site at a
/// time and asserts the model checker catches it.
enum class Site : int {
    // Epoch protocol (parallel/epoch_gate.hpp): quiescent refill published
    // by one release store, consumed by acquire polls.
    epoch_publish = 0,   ///< release store of the remaining-chunk counter
    epoch_poll,          ///< acquire load of remaining (workers + drain wait)
    epoch_chunk_done,    ///< acq_rel fetch_sub after executing a chunk
    epoch_enter,         ///< acq_rel fetch_add of the in-epoch worker count
    epoch_leave,         ///< release fetch_sub checking a worker out
    epoch_quiescent_poll, ///< acquire load waiting for in-epoch == 0
    // Chase-Lev deque (parallel/chase_lev.hpp), specialized for the epoch
    // protocol: no owner pushes or grows during an epoch.
    deque_pop_bottom_store, ///< seq_cst store reserving the bottom slot
    deque_pop_top_load,     ///< seq_cst load sizing the deque after reserve
    deque_pop_cas,          ///< seq_cst CAS racing thieves for the last slot
    deque_steal_top_load,   ///< seq_cst load of top starting a steal
    deque_steal_bottom_load, ///< seq_cst load of bottom sizing the steal
    deque_steal_cas,        ///< seq_cst CAS claiming the top slot
    // Profiler event chunks (parallel/event_chunks.hpp): single-producer
    // chunk lists published by release stores of the count / next link.
    chunk_count_publish, ///< release store publishing an appended event
    chunk_count_read,    ///< acquire load of the published count (readers)
    chunk_link_publish,  ///< release store linking a freshly filled chunk
    chunk_link_read,     ///< acquire load following the chunk link
    site_count
};

/// Production policy: std::atomic, plain data stays plain, annotated
/// orders compile to their defaults. Zero codegen difference from writing
/// the std:: types by hand.
struct StdSync {
    template <class T>
    using atomic = std::atomic<T>;

    /// Non-atomic payload ordered by the protocol's release/acquire pairs
    /// (deque buffers, event payloads). The model policy wraps these in
    /// race-checked cells; production keeps the bare type.
    template <class T>
    using plain = T;

    using mutex = std::mutex;

    static constexpr std::memory_order order(Site /*site*/,
                                             std::memory_order dflt)
    {
        return dflt;
    }

    static void fence(std::memory_order mo) { std::atomic_thread_fence(mo); }
};

/// Convenience aliases for non-templated runtime code (profiling counters,
/// debug registry, backend bookkeeping): same std::atomic, routed through
/// the policy header so lint rule 11 has a single choke point.
template <class T>
using atomic = StdSync::atomic<T>;

} // namespace pspl::sync
