#include "parallel/execution.hpp"

#if defined(PSPL_ENABLE_OPENMP)
#include <omp.h>

namespace pspl {

int OpenMP::concurrency()
{
    return omp_get_max_threads();
}

} // namespace pspl
#endif
