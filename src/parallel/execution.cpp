#include "parallel/execution.hpp"

#include <atomic>
#include <cstdlib>

#if defined(PSPL_ENABLE_OPENMP)
#include <omp.h>
#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#endif

namespace pspl {

namespace {

std::atomic<bool> g_pinned{false};

} // namespace

bool threads_pinned()
{
    return g_pinned.load(std::memory_order_relaxed);
}

#if defined(PSPL_ENABLE_OPENMP)

int OpenMP::concurrency()
{
    return omp_get_max_threads();
}

int OpenMP::thread_rank()
{
    return omp_get_thread_num();
}

namespace {

void pin_openmp_threads()
{
#if defined(__linux__)
    const char* env = std::getenv("PSPL_PIN");
    if (env == nullptr || env[0] != '1') {
        return;
    }
    // Enumerate the CPUs this process may run on; pinning round-robins the
    // OpenMP workers over that set (respecting an outer taskset/cgroup).
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
        return;
    }
    int cpus[CPU_SETSIZE];
    int ncpu = 0;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &allowed)) {
            cpus[ncpu++] = c;
        }
    }
    if (ncpu == 0) {
        return;
    }
    bool ok = true;
#pragma omp parallel reduction(&& : ok)
    {
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(cpus[omp_get_thread_num() % ncpu], &one);
        ok = pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
    }
    g_pinned.store(ok, std::memory_order_relaxed);
#endif
}

} // namespace

void OpenMP::ensure_pinned()
{
    static const bool once = (pin_openmp_threads(), true);
    (void)once;
}

#endif // PSPL_ENABLE_OPENMP

} // namespace pspl
