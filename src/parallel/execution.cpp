#include "parallel/execution.hpp"

#if defined(PSPL_ENABLE_OPENMP)
#include <omp.h>

namespace pspl {

int OpenMP::concurrency()
{
    return omp_get_max_threads();
}

int OpenMP::thread_rank()
{
    return omp_get_thread_num();
}

} // namespace pspl
#endif
