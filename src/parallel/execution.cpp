#include "parallel/execution.hpp"

#include "parallel/threadpool.hpp"

#include "parallel/sync_policy.hpp"
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(PSPL_ENABLE_OPENMP)
#include <omp.h>
#endif
#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pspl {

namespace {

pspl::sync::atomic<bool> g_pinned{false};

} // namespace

bool threads_pinned()
{
    return g_pinned.load(pspl::sync::relaxed);
}

namespace detail {

void note_threads_pinned(bool pinned)
{
    if (pinned) {
        g_pinned.store(true, pspl::sync::relaxed);
    }
}

int allowed_cpus(int* cpus, int cap)
{
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) {
        return 0;
    }
    int ncpu = 0;
    for (int c = 0; c < CPU_SETSIZE && ncpu < cap; ++c) {
        if (CPU_ISSET(c, &allowed)) {
            cpus[ncpu++] = c;
        }
    }
    return ncpu;
#else
    (void)cpus;
    (void)cap;
    return 0;
#endif
}

} // namespace detail

// ---------------------------------------------------------------------------
// Runtime backend selection (PSPL_BACKEND).
// ---------------------------------------------------------------------------

const char* backend_name(Backend b)
{
    switch (b) {
    case Backend::Serial:
        return "serial";
    case Backend::OpenMP:
        return "openmp";
    case Backend::Threads:
        return "threads";
    }
    return "serial";
}

bool parse_backend(const char* text, Backend& out)
{
    if (text == nullptr || text[0] == '\0') {
        return false;
    }
    std::string s(text);
    for (char& c : s) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (s == "serial") {
        out = Backend::Serial;
        return true;
    }
    if (s == "openmp" || s == "omp") {
        out = Backend::OpenMP;
        return true;
    }
    if (s == "threads" || s == "threadpool") {
        out = Backend::Threads;
        return true;
    }
    return false;
}

Backend default_backend()
{
    static const Backend selected = [] {
#if defined(PSPL_ENABLE_OPENMP)
        const Backend build_default = Backend::OpenMP;
#else
        const Backend build_default = Backend::Threads;
#endif
        const char* env = std::getenv("PSPL_BACKEND");
        if (env == nullptr || env[0] == '\0') {
            return build_default;
        }
        Backend parsed = build_default;
        if (!parse_backend(env, parsed)) {
            std::fprintf(stderr,
                         "pspl: unknown PSPL_BACKEND '%s' "
                         "(serial|openmp|threads); using %s\n",
                         env, backend_name(build_default));
            return build_default;
        }
#if !defined(PSPL_ENABLE_OPENMP)
        if (parsed == Backend::OpenMP) {
            std::fprintf(stderr,
                         "pspl: PSPL_BACKEND=openmp requested but this "
                         "build has no OpenMP; using %s\n",
                         backend_name(build_default));
            return build_default;
        }
#endif
        return parsed;
    }();
    return selected;
}

const char* Host::name()
{
    switch (default_backend()) {
    case Backend::Serial:
        return Serial::name();
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        return OpenMP::name();
#endif
    case Backend::Threads:
        return Threads::name();
    default:
        return Serial::name();
    }
}

int Host::concurrency()
{
    switch (default_backend()) {
    case Backend::Serial:
        return Serial::concurrency();
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        return OpenMP::concurrency();
#endif
    case Backend::Threads:
        return Threads::concurrency();
    default:
        return Serial::concurrency();
    }
}

int Host::thread_rank()
{
    switch (default_backend()) {
    case Backend::Serial:
        return Serial::thread_rank();
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP:
        return OpenMP::thread_rank();
#endif
    case Backend::Threads:
        return Threads::thread_rank();
    default:
        return Serial::thread_rank();
    }
}

// ---------------------------------------------------------------------------
// OpenMP backend.
// ---------------------------------------------------------------------------

#if defined(PSPL_ENABLE_OPENMP)

int OpenMP::concurrency()
{
    return omp_get_max_threads();
}

int OpenMP::thread_rank()
{
    return omp_get_thread_num();
}

namespace {

void pin_openmp_threads()
{
#if defined(__linux__)
    const char* env = std::getenv("PSPL_PIN");
    if (env == nullptr || env[0] != '1') {
        return;
    }
    // Round-robin the OpenMP workers over the process affinity mask
    // (respecting an outer taskset/cgroup).
    int cpus[detail::max_pin_cpus];
    const int ncpu = detail::allowed_cpus(cpus, detail::max_pin_cpus);
    if (ncpu == 0) {
        return;
    }
    bool ok = true;
#pragma omp parallel reduction(&& : ok)
    {
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(cpus[omp_get_thread_num() % ncpu], &one);
        ok = pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
    }
    detail::note_threads_pinned(ok);
#endif
}

} // namespace

void OpenMP::ensure_pinned()
{
    static const bool once = (pin_openmp_threads(), true);
    (void)once;
}

#endif // PSPL_ENABLE_OPENMP

// ---------------------------------------------------------------------------
// First-touch fill, routed through whichever backend will run the compute.
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/// memset one partition chunk; the executing worker's first touch decides
/// the page's NUMA home.
struct FirstTouchTask final : ThreadPool::Task {
    unsigned char* base;
    explicit FirstTouchTask(unsigned char* p) : base(p) {}
    void run_chunk(std::size_t begin, std::size_t end, std::size_t,
                   int) const override
    {
        std::memset(base + begin, 0, end - begin);
    }
};

} // namespace

void first_touch_zero(void* data, std::size_t bytes)
{
    if (bytes == 0) {
        return;
    }
    unsigned char* p = static_cast<unsigned char*>(data);
    switch (default_backend()) {
#if defined(PSPL_ENABLE_OPENMP)
    case Backend::OpenMP: {
        OpenMP::ensure_pinned();
        // Same contiguous per-thread split as schedule(static) over the
        // element range the kernels will use.
#pragma omp parallel
        {
            const std::size_t nt
                    = static_cast<std::size_t>(omp_get_num_threads());
            const std::size_t r
                    = static_cast<std::size_t>(omp_get_thread_num());
            const std::size_t lo = bytes * r / nt;
            const std::size_t hi = bytes * (r + 1) / nt;
            std::memset(p + lo, 0, hi - lo);
        }
        break;
    }
#endif
    case Backend::Threads: {
        ThreadPool& pool = ThreadPool::instance();
        const FirstTouchTask task(p);
        const std::vector<std::size_t> bounds = pool.partition(0, bytes);
        pool.run(bounds, task);
        break;
    }
    default:
        std::memset(p, 0, bytes);
        break;
    }
}

} // namespace detail

} // namespace pspl
