// Chase-Lev work-stealing deque, templated on the sync policy
// (parallel/sync_policy.hpp) so the exact production algorithm is also the
// litmus program the model checker explores.
//
// Specialized for the thread pool's epoch protocol: reset() is only called
// while the pool is quiescent, so there are no concurrent pushes or buffer
// grows and the buffer is immutable for the whole epoch. The owner pops
// from the bottom (its chunks in ascending order), thieves take from the
// top. seq_cst on the contended operations: chunk granularity makes the
// barrier cost irrelevant and it avoids the standalone-fence formulation
// that ThreadSanitizer models poorly. Which of those seq_cst annotations
// is load-bearing -- and which survive weakening because the epoch
// specialization removed the owner-push races they guard in the general
// algorithm -- is established by the mutation matrix
// (tests/test_modelcheck_mutations.cpp, docs/STATIC_ANALYSIS.md).
#pragma once

#include "parallel/sync_policy.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pspl::detail {

template <class Sync>
class BasicChaseLevDeque
{
    using Site = sync::Site;

public:
    /// Quiescent refill; chunks[count-1] is popped first by the owner,
    /// chunks[0] is stolen first. Not safe against concurrent pop/steal.
    void reset(const std::size_t* chunks, std::size_t count)
    {
        m_buf.assign(chunks, chunks + count);
        m_top.store(0, sync::relaxed);
        m_bottom.store(static_cast<std::int64_t>(count), sync::relaxed);
    }

    /// Owner-only take from the bottom.
    bool pop(std::size_t& out)
    {
        const std::int64_t b = m_bottom.load(sync::relaxed) - 1;
        m_bottom.store(b, Sync::order(Site::deque_pop_bottom_store,
                                      sync::seq_cst));
        std::int64_t t = m_top.load(Sync::order(Site::deque_pop_top_load,
                                                sync::seq_cst));
        if (t <= b) {
            out = m_buf[static_cast<std::size_t>(b)];
            if (t == b) {
                // Last element: race the thieves for it, then restore the
                // canonical empty state either way.
                const bool won = m_top.compare_exchange_strong(
                        t, t + 1,
                        Sync::order(Site::deque_pop_cas, sync::seq_cst),
                        sync::relaxed);
                m_bottom.store(b + 1, sync::relaxed);
                return won;
            }
            return true;
        }
        m_bottom.store(b + 1, sync::relaxed);
        return false;
    }

    /// Thief-side take from the top.
    bool steal(std::size_t& out)
    {
        std::int64_t t = m_top.load(Sync::order(Site::deque_steal_top_load,
                                                sync::seq_cst));
        const std::int64_t b = m_bottom.load(
                Sync::order(Site::deque_steal_bottom_load, sync::seq_cst));
        if (t < b) {
            out = m_buf[static_cast<std::size_t>(t)];
            return m_top.compare_exchange_strong(
                    t, t + 1,
                    Sync::order(Site::deque_steal_cas, sync::seq_cst),
                    sync::relaxed);
        }
        return false;
    }

private:
    alignas(64) typename Sync::template atomic<std::int64_t> m_top{0};
    alignas(64) typename Sync::template atomic<std::int64_t> m_bottom{0};
    std::vector<typename Sync::template plain<std::size_t>> m_buf;
};

} // namespace pspl::detail
