// Subview slicing, mirroring Kokkos::subview semantics.
//
// Slicer vocabulary:
//   pspl::ALL                      -- keep the whole dimension
//   std::pair{begin, end}          -- keep the half-open range [begin, end)
//   an integer                     -- fix the index, dropping the dimension
//
// The result aliases the parent allocation (shared ownership) with
// LayoutStride, so e.g. one right-hand-side column of a (n, batch) block is
// a rank-1 view with stride `batch` -- exactly the access pattern the paper's
// batched serial solvers are written against.
#pragma once

#include "core/concepts.hpp"
#include "parallel/view.hpp"

#include <type_traits>
#include <utility>

namespace pspl {

// all_t / ALL and the SubviewSlicer concept live in core/concepts.hpp (the
// slicer vocabulary is part of the compile-time contract layer).

namespace detail {

template <class S>
inline constexpr bool slice_keeps_dim_v =
        std::is_same_v<std::decay_t<S>, all_t>
        || is_slice_pair<std::decay_t<S>>::value;

} // namespace detail

template <class T, std::size_t Rank, class Layout, class... Slicers>
auto subview(const View<T, Rank, Layout>& v, Slicers... slicers)
{
    static_assert(sizeof...(Slicers) == Rank,
                  "subview needs one slicer per dimension (pspl::ALL, a "
                  "std::pair{begin, end} range, or an integral index)");
    static_assert((SubviewSlicer<Slicers> && ...),
                  "subview slicer must be pspl::ALL, a std::pair{begin, end} "
                  "range, or an integral index");
    constexpr std::size_t NewRank =
            (std::size_t{detail::slice_keeps_dim_v<Slicers>} + ...);
    static_assert(NewRank >= 1,
                  "subview must keep at least one dimension (ALL or a "
                  "range); use operator() to read a single element");

    std::array<std::size_t, NewRank> ext{};
    std::array<std::size_t, NewRank> str{};
    std::size_t offset = 0;
    std::size_t out = 0;
    std::size_t r = 0;

    auto process = [&](auto&& s) {
        using S = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<S, all_t>) {
            ext[out] = v.extent(r);
            str[out] = v.stride(r);
            ++out;
        } else if constexpr (detail::is_slice_pair<S>::value) {
            const auto begin = static_cast<std::size_t>(s.first);
            const auto end = static_cast<std::size_t>(s.second);
            if (!(begin <= end && end <= v.extent(r))) {
                if constexpr (debug::check_enabled) {
                    debug::fail("subview of '%s': range [%zu, %zu) invalid "
                                "for dimension %zu of rank-%zu view "
                                "(extent %zu)",
                                v.label().c_str(), begin, end, r, Rank,
                                v.extent(r));
                }
                abort_with("subview range out of bounds");
            }
            offset += begin * v.stride(r);
            ext[out] = end - begin;
            str[out] = v.stride(r);
            ++out;
        } else {
            const auto i = static_cast<std::size_t>(s);
            if (i >= v.extent(r)) {
                if constexpr (debug::check_enabled) {
                    debug::fail("subview of '%s': index %zu out of bounds "
                                "for dimension %zu of rank-%zu view "
                                "(extent %zu)",
                                v.label().c_str(), i, r, Rank, v.extent(r));
                }
                abort_with("subview index out of bounds");
            }
            offset += i * v.stride(r);
        }
        ++r;
    };
    (process(slicers), ...);

    return View<T, NewRank, LayoutStride>(
            v.allocation(), v.data() + offset, ext, str, v.label());
}

/// Zero-copy logical transpose of a rank-2 view: extents and strides are
/// swapped, the data is shared. This is the "layout abstraction" tool that
/// lets batched kernels run against either dimension of a block without a
/// physical transpose (paper §V-C future work: "fusing transpose kernels
/// with spline building kernels").
template <class T, class Layout>
View<T, 2, LayoutStride> transposed_view(const View<T, 2, Layout>& v)
{
    return View<T, 2, LayoutStride>(v.allocation(), v.data(),
                                    {v.extent(1), v.extent(0)},
                                    {v.stride(1), v.stride(0)}, v.label());
}

/// Diagnostic overload: selected only for non-rank-2 views, where it
/// carries the human-readable rank-compatibility message.
template <class T, std::size_t Rank, class Layout>
    requires(Rank != 2)
void transposed_view(const View<T, Rank, Layout>&)
{
    static_assert(Rank == 2,
                  "transposed_view requires a rank-2 view -- only a matrix "
                  "has a zero-copy transpose; permute higher-rank views "
                  "with explicit subviews");
}

} // namespace pspl
