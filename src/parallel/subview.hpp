// Subview slicing, mirroring Kokkos::subview semantics.
//
// Slicer vocabulary:
//   pspl::ALL                      -- keep the whole dimension
//   std::pair{begin, end}          -- keep the half-open range [begin, end)
//   an integer                     -- fix the index, dropping the dimension
//
// The result aliases the parent allocation (shared ownership) with
// LayoutStride, so e.g. one right-hand-side column of a (n, batch) block is
// a rank-1 view with stride `batch` -- exactly the access pattern the paper's
// batched serial solvers are written against.
#pragma once

#include "parallel/view.hpp"

#include <type_traits>
#include <utility>

namespace pspl {

struct all_t {
    explicit all_t() = default;
};
inline constexpr all_t ALL{};

namespace detail {

template <class S>
struct is_pair : std::false_type {
};
template <class A, class B>
struct is_pair<std::pair<A, B>> : std::true_type {
};

template <class S>
inline constexpr bool slice_keeps_dim_v =
        std::is_same_v<std::decay_t<S>, all_t> || is_pair<std::decay_t<S>>::value;

} // namespace detail

template <class T, std::size_t Rank, class Layout, class... Slicers>
auto subview(const View<T, Rank, Layout>& v, Slicers... slicers)
{
    static_assert(sizeof...(Slicers) == Rank,
                  "subview needs one slicer per dimension");
    constexpr std::size_t NewRank =
            (std::size_t{detail::slice_keeps_dim_v<Slicers>} + ...);
    static_assert(NewRank >= 1, "subview must keep at least one dimension");

    std::array<std::size_t, NewRank> ext{};
    std::array<std::size_t, NewRank> str{};
    std::size_t offset = 0;
    std::size_t out = 0;
    std::size_t r = 0;

    auto process = [&](auto&& s) {
        using S = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<S, all_t>) {
            ext[out] = v.extent(r);
            str[out] = v.stride(r);
            ++out;
        } else if constexpr (detail::is_pair<S>::value) {
            const auto begin = static_cast<std::size_t>(s.first);
            const auto end = static_cast<std::size_t>(s.second);
            if (!(begin <= end && end <= v.extent(r))) {
                if constexpr (debug::check_enabled) {
                    debug::fail("subview of '%s': range [%zu, %zu) invalid "
                                "for dimension %zu of rank-%zu view "
                                "(extent %zu)",
                                v.label().c_str(), begin, end, r, Rank,
                                v.extent(r));
                }
                abort_with("subview range out of bounds");
            }
            offset += begin * v.stride(r);
            ext[out] = end - begin;
            str[out] = v.stride(r);
            ++out;
        } else {
            const auto i = static_cast<std::size_t>(s);
            if (i >= v.extent(r)) {
                if constexpr (debug::check_enabled) {
                    debug::fail("subview of '%s': index %zu out of bounds "
                                "for dimension %zu of rank-%zu view "
                                "(extent %zu)",
                                v.label().c_str(), i, r, Rank, v.extent(r));
                }
                abort_with("subview index out of bounds");
            }
            offset += i * v.stride(r);
        }
        ++r;
    };
    (process(slicers), ...);

    return View<T, NewRank, LayoutStride>(
            v.allocation(), v.data() + offset, ext, str, v.label());
}

/// Zero-copy logical transpose of a rank-2 view: extents and strides are
/// swapped, the data is shared. This is the "layout abstraction" tool that
/// lets batched kernels run against either dimension of a block without a
/// physical transpose (paper §V-C future work: "fusing transpose kernels
/// with spline building kernels").
template <class T, class Layout>
View<T, 2, LayoutStride> transposed_view(const View<T, 2, Layout>& v)
{
    return View<T, 2, LayoutStride>(v.allocation(), v.data(),
                                    {v.extent(1), v.extent(0)},
                                    {v.stride(1), v.stride(0)}, v.label());
}

} // namespace pspl
