// Core macros shared by every subsystem.
//
// The paper's kernels are written against Kokkos' macro vocabulary
// (KOKKOS_INLINE_FUNCTION, KOKKOS_RESTRICT, ...).  We keep the same shape so
// the batched solvers read like their Kokkos-kernels counterparts and could
// be ported back verbatim.
#pragma once

#include <cstdio>
#include <cstdlib>

// On a CUDA/HIP build these would expand to __host__ __device__ inline; the
// host-only build keeps the annotation so kernels stay single-source.
#define PSPL_INLINE_FUNCTION inline
#define PSPL_FUNCTION
#define PSPL_RESTRICT __restrict__

#define PSPL_FORCEINLINE_FUNCTION inline __attribute__((always_inline))

namespace pspl {

/// Abort with a message; used for precondition violations that are
/// programming errors (mismatched extents, invalid solver configuration).
[[noreturn]] inline void abort_with(const char* msg)
{
    std::fprintf(stderr, "pspl: fatal: %s\n", msg);
    std::abort();
}

#if defined(PSPL_BOUNDS_CHECK)
inline constexpr bool bounds_check_enabled = true;
#else
inline constexpr bool bounds_check_enabled = false;
#endif

} // namespace pspl

#define PSPL_EXPECT(cond, msg)          \
    do {                                \
        if (!(cond)) {                  \
            ::pspl::abort_with(msg);    \
        }                               \
    } while (0)

// Internal-consistency assertion for hot kernels: active in checked
// (PSPL_CHECK) and unoptimized (no NDEBUG) builds, compiled out of release
// builds so the kernels keep their measured cost.
#if defined(PSPL_CHECK) || !defined(NDEBUG)
#define PSPL_DEBUG_ASSERT(cond, msg) PSPL_EXPECT(cond, msg)
#else
#define PSPL_DEBUG_ASSERT(cond, msg) ((void)0)
#endif
