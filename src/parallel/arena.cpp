#include "parallel/arena.hpp"

namespace pspl {

namespace {

/// Slot strides are rounded up so every slot base is suitably aligned for
/// any pack type and slots land on distinct cache lines (no false sharing
/// between worker threads).
constexpr std::size_t slot_align = 128;

} // namespace

void WorkspaceArena::reserve(std::size_t slots, std::size_t bytes_per_slot)
{
    const std::size_t stride =
            (bytes_per_slot + slot_align - 1) / slot_align * slot_align;
    if (slots <= m_slots && stride <= m_stride) {
        return; // current allocation already covers the request
    }
    const std::size_t new_slots = slots > m_slots ? slots : m_slots;
    const std::size_t new_stride = stride > m_stride ? stride : m_stride;
    // The View constructor zero-fills (first touch happens here, on the
    // owning host thread) and registers the allocation with the debug
    // registry; dropping the previous View tombstones the old range, so a
    // stale slot pointer from before this grow is caught under PSPL_CHECK.
    m_buf = View1D<std::byte>("pspl::workspace_arena",
                              new_slots * new_stride);
    m_slots = new_slots;
    m_stride = new_stride;
    ++m_generation;
}

WorkspaceArena& host_workspace_arena()
{
    thread_local WorkspaceArena arena;
    return arena;
}

} // namespace pspl
