// Epoch gate: the release/acquire protocol that publishes a quiescently
// refilled epoch of work to the pool's workers, templated on the sync
// policy so the production instantiation and the model-checked litmus
// programs share one implementation.
//
// Protocol (see parallel/threadpool.hpp for the surrounding pool):
//
//   dispatcher                         worker
//   ----------                        ------
//   refill deques (plain writes)
//   publish(nchunks)   [release] --->  active()  [acquire]  > 0
//                                      ... pop/steal, run chunk ...
//                                      chunk_done()          [acq_rel]
//   active() == false  [acquire] <---
//                                      leave()               [release]
//   quiescent()        [acquire] <---
//   next refill's plain writes are now ordered after every worker access.
//
// Every plain access to the deque buffers, bounds table and task pointer
// is ordered by one of these edges (or by the wakeup mutex); the model
// checker verifies exactly that, and the mutation matrix proves each
// annotation is load-bearing by weakening it and asserting the checker
// reports the resulting race (docs/STATIC_ANALYSIS.md).
#pragma once

#include "parallel/sync_policy.hpp"

#include <cstdint>

namespace pspl::detail {

template <class Sync>
class EpochGate
{
    using Site = sync::Site;

public:
    /// Publish a refilled epoch of `nchunks` chunks. The one release store
    /// that makes every plain write of the quiescent refill visible to
    /// workers whose acquire poll observes it.
    void publish(std::int64_t nchunks)
    {
        m_remaining.store(nchunks,
                          Sync::order(Site::epoch_publish, sync::release));
    }

    /// True while the current epoch still has unexecuted chunks. The
    /// acquire half of the publish edge: a worker that observes the epoch
    /// here may touch the deque buffers and bounds table.
    bool active() const
    {
        return m_remaining.load(Sync::order(Site::epoch_poll, sync::acquire))
               > 0;
    }

    /// Retire one executed chunk. acq_rel: the release half orders the
    /// chunk's writes (results, recorded exceptions) before the dispatcher
    /// observing remaining == 0; the acquire half keeps the counter's
    /// modification order a synchronization chain across workers.
    void chunk_done()
    {
        m_remaining.fetch_sub(1,
                              Sync::order(Site::epoch_chunk_done,
                                          sync::acq_rel));
    }

    /// Worker checks into the epoch before touching any epoch state.
    void enter()
    {
        m_in_epoch.fetch_add(1,
                             Sync::order(Site::epoch_enter, sync::acq_rel));
    }

    /// Worker checks out after its last access to epoch state. The release
    /// half is what licenses the dispatcher's next quiescent refill.
    void leave()
    {
        m_in_epoch.fetch_sub(1,
                             Sync::order(Site::epoch_leave, sync::release));
    }

    /// True once every worker has checked out: the dispatcher may mutate
    /// deque buffers and retire the epoch's task/bounds storage.
    bool quiescent() const
    {
        return m_in_epoch.load(Sync::order(Site::epoch_quiescent_poll,
                                           sync::acquire))
               == 0;
    }

private:
    typename Sync::template atomic<std::int64_t> m_remaining{0};
    typename Sync::template atomic<int> m_in_epoch{0};
};

} // namespace pspl::detail
