#include "parallel/profiling.hpp"

#include "parallel/event_chunks.hpp"
#include "parallel/sync_policy.hpp"

#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace pspl::profiling {

namespace {

pspl::sync::atomic<bool> g_enabled{false};
pspl::sync::atomic<std::uint32_t> g_epoch{0};

pspl::sync::atomic<std::uint64_t> g_mem_live{0};
pspl::sync::atomic<std::uint64_t> g_mem_peak{0};
pspl::sync::atomic<std::uint64_t> g_mem_allocs{0};

double now_seconds()
{
    // Seconds since first use: one shared steady_clock origin keeps every
    // thread's timestamps on the same trace timeline.
    static const auto origin = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - origin)
            .count();
}

// ---------------------------------------------------------------------------
// Label + path interning. Labels arrive as string_views whose storage may
// die with the caller, so both tables copy the string once on first sight
// (behind a shared_mutex: shared-lock lookups on the hot path, exclusive
// only on a genuinely new label). A span path is an interned
// (parent_path, leaf_label) pair, id 0 being the root.
// ---------------------------------------------------------------------------

struct Interner {
    mutable std::shared_mutex mutex;
    std::deque<std::string> names; // stable storage, index == id
    std::unordered_map<std::string_view, std::uint32_t> lookup;

    std::uint32_t intern(std::string_view name)
    {
        {
            const std::shared_lock lock(mutex);
            const auto it = lookup.find(name);
            if (it != lookup.end()) {
                return it->second;
            }
        }
        const std::unique_lock lock(mutex);
        const auto it = lookup.find(name);
        if (it != lookup.end()) {
            return it->second;
        }
        const auto id = static_cast<std::uint32_t>(names.size());
        names.emplace_back(name);
        lookup.emplace(std::string_view(names.back()), id);
        return id;
    }

    std::string name_of(std::uint32_t id) const
    {
        const std::shared_lock lock(mutex);
        return names[id];
    }
};

Interner& labels()
{
    static Interner i;
    return i;
}

struct PathNode {
    std::uint32_t parent = 0; // path id, 0 == root
    std::uint32_t label = 0;  // label id of the leaf component
};

struct PathRegistry {
    mutable std::shared_mutex mutex;
    std::deque<PathNode> nodes; // index == path id - 1
    std::unordered_map<std::uint64_t, std::uint32_t> lookup;

    std::uint32_t intern(std::uint32_t parent, std::uint32_t label)
    {
        const std::uint64_t key =
                (static_cast<std::uint64_t>(parent) << 32) | label;
        {
            const std::shared_lock lock(mutex);
            const auto it = lookup.find(key);
            if (it != lookup.end()) {
                return it->second;
            }
        }
        const std::unique_lock lock(mutex);
        const auto it = lookup.find(key);
        if (it != lookup.end()) {
            return it->second;
        }
        nodes.push_back(PathNode{parent, label});
        const auto id = static_cast<std::uint32_t>(nodes.size());
        lookup.emplace(key, id);
        return id;
    }

    PathNode node_of(std::uint32_t id) const
    {
        const std::shared_lock lock(mutex);
        return nodes[id - 1];
    }
};

PathRegistry& paths()
{
    static PathRegistry p;
    return p;
}

std::uint32_t leaf_label_of(std::uint32_t path)
{
    return paths().node_of(path).label;
}

std::string path_string(std::uint32_t path)
{
    if (path == 0) {
        return {};
    }
    const PathNode node = paths().node_of(path);
    const std::string leaf = labels().name_of(node.label);
    if (node.parent == 0) {
        return leaf;
    }
    return path_string(node.parent) + "/" + leaf;
}

// ---------------------------------------------------------------------------
// Per-thread event buffers: single-producer chunk lists. The owning thread
// appends an event and publishes it with a release store of the chunk
// counter; snapshot readers acquire the counter and read only published
// events, so merging never blocks or races the writers. The lock-free
// structure itself lives in parallel/event_chunks.hpp, templated on the
// sync policy: this TU instantiates std::atomic, the model checker
// (src/debug/modelcheck/) explores the same template exhaustively.
// ---------------------------------------------------------------------------

enum class EventKind : std::uint32_t { Span = 0, Counter = 1 };

struct Event {
    double t0 = 0.0;
    double dur = 0.0;
    double bytes = 0.0;
    double flops = 0.0;
    std::uint32_t path = 0;
    std::uint32_t epoch = 0;
    EventKind kind = EventKind::Span;
};

struct ThreadBuffer {
    pspl::detail::BasicEventChunkList<Event, 1024, sync::StdSync> chunks;
    int tid = 0;

    void push(const Event& e) { chunks.push(e); }

    template <class F>
    void for_each(const F& f) const
    {
        chunks.for_each(f);
    }
};

struct BufferRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& buffer_registry()
{
    static BufferRegistry r;
    return r;
}

ThreadBuffer& thread_buffer()
{
    thread_local std::shared_ptr<ThreadBuffer> local = [] {
        auto buf = std::make_shared<ThreadBuffer>();
        auto& reg = buffer_registry();
        const std::lock_guard lock(reg.mutex);
        buf->tid = static_cast<int>(reg.buffers.size());
        reg.buffers.push_back(buf);
        return buf;
    }();
    return *local;
}

/// Per-thread stack of open span path ids (parent attribution).
std::vector<std::uint32_t>& span_stack()
{
    thread_local std::vector<std::uint32_t> stack;
    return stack;
}

std::uint32_t current_path()
{
    const auto& stack = span_stack();
    return stack.empty() ? 0 : stack.back();
}

void emit(std::uint32_t path, double t0, double dur, double bytes,
          double flops, EventKind kind)
{
    Event e;
    e.t0 = t0;
    e.dur = dur;
    e.bytes = bytes;
    e.flops = flops;
    e.path = path;
    e.epoch = g_epoch.load(pspl::sync::relaxed);
    e.kind = kind;
    thread_buffer().push(e);
}

template <class KeyOf>
std::map<std::string, RecordStats> aggregate(const KeyOf& key_of)
{
    std::map<std::string, RecordStats> out;
    const std::uint32_t epoch = g_epoch.load(pspl::sync::acquire);
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        auto& reg = buffer_registry();
        const std::lock_guard lock(reg.mutex);
        buffers = reg.buffers;
    }
    for (const auto& buf : buffers) {
        buf->for_each([&](const Event& e) {
            if (e.epoch != epoch) {
                return;
            }
            auto& s = out[key_of(e.path)];
            if (e.kind == EventKind::Span) {
                ++s.count;
                s.total_seconds += e.dur;
            }
            s.bytes += e.bytes;
            s.flops += e.flops;
        });
    }
    return out;
}

void json_escape_into(std::string& out, const std::string& s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
}

} // namespace

void set_enabled(bool on)
{
    g_enabled.store(on, pspl::sync::relaxed);
}

bool enabled()
{
    return g_enabled.load(pspl::sync::relaxed);
}

void clear()
{
    // Events carry the epoch they were recorded under; bumping it hides
    // everything already published without touching the (possibly still
    // live) producer buffers.
    g_epoch.fetch_add(1, pspl::sync::acq_rel);
}

void record(std::string_view label, double seconds)
{
    // Explicit records are unconditional: set_enabled() gates the *implicit*
    // instrumentation (ScopedSpan / kernel timers), not user-driven entries.
    const std::uint32_t path =
            paths().intern(current_path(), labels().intern(label));
    emit(path, now_seconds() - seconds, seconds, 0.0, 0.0, EventKind::Span);
}

void add_counters(std::string_view label, double bytes, double flops)
{
    if (!enabled()) {
        return;
    }
    const std::uint32_t path =
            paths().intern(current_path(), labels().intern(label));
    emit(path, now_seconds(), 0.0, bytes, flops, EventKind::Counter);
}

std::map<std::string, RecordStats> snapshot()
{
    return aggregate(
            [](std::uint32_t path) { return labels().name_of(leaf_label_of(path)); });
}

std::map<std::string, RecordStats> snapshot_tree()
{
    return aggregate([](std::uint32_t path) { return path_string(path); });
}

RecordStats stats_for(std::string_view label)
{
    const auto snap = snapshot();
    const auto it = snap.find(std::string(label));
    return it == snap.end() ? RecordStats{} : it->second;
}

double total_seconds_matching(std::string_view needle)
{
    double total = 0.0;
    for (const auto& [label, stats] : snapshot()) {
        if (label.find(needle) != std::string::npos) {
            total += stats.total_seconds;
        }
    }
    return total;
}

std::size_t event_count()
{
    std::size_t n = 0;
    const std::uint32_t epoch = g_epoch.load(pspl::sync::acquire);
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        auto& reg = buffer_registry();
        const std::lock_guard lock(reg.mutex);
        buffers = reg.buffers;
    }
    for (const auto& buf : buffers) {
        buf->for_each([&](const Event& e) { n += (e.epoch == epoch); });
    }
    return n;
}

bool write_chrome_trace(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "profiling: cannot open trace file %s\n",
                     path.c_str());
        return false;
    }
    const std::uint32_t epoch = g_epoch.load(pspl::sync::acquire);
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        auto& reg = buffer_registry();
        const std::lock_guard lock(reg.mutex);
        buffers = reg.buffers;
    }
    std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", f);
    bool first = true;
    for (const auto& buf : buffers) {
        buf->for_each([&](const Event& e) {
            if (e.epoch != epoch) {
                return;
            }
            std::string name;
            json_escape_into(name, labels().name_of(leaf_label_of(e.path)));
            std::string full;
            json_escape_into(full, path_string(e.path));
            // Timestamps/durations in microseconds, the chrome trace unit.
            char head[160];
            if (e.kind == EventKind::Span) {
                std::snprintf(head, sizeof(head),
                              "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                              "\"ts\": %.3f, \"dur\": %.3f, ",
                              buf->tid, e.t0 * 1e6, e.dur * 1e6);
            } else {
                std::snprintf(head, sizeof(head),
                              "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, "
                              "\"tid\": %d, \"ts\": %.3f, ",
                              buf->tid, e.t0 * 1e6);
            }
            char args[200];
            std::snprintf(args, sizeof(args),
                          "\"args\": {\"bytes\": %.17g, \"flops\": %.17g, "
                          "\"path\": \"%s\"}}",
                          e.bytes, e.flops, full.c_str());
            std::fprintf(f, "%s  %s\"name\": \"%s\", \"cat\": \"pspl\", %s",
                         first ? "" : ",\n", head, name.c_str(), args);
            first = false;
        });
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
    return true;
}

void note_alloc(std::size_t bytes)
{
    g_mem_allocs.fetch_add(1, pspl::sync::relaxed);
    const std::uint64_t live =
            g_mem_live.fetch_add(bytes, pspl::sync::relaxed) + bytes;
    std::uint64_t peak = g_mem_peak.load(pspl::sync::relaxed);
    while (live > peak
           && !g_mem_peak.compare_exchange_weak(peak, live,
                                                pspl::sync::relaxed)) {
    }
}

void note_free(std::size_t bytes)
{
    g_mem_live.fetch_sub(bytes, pspl::sync::relaxed);
}

MemoryStats memory_stats()
{
    MemoryStats s;
    s.live_bytes = g_mem_live.load(pspl::sync::relaxed);
    s.peak_bytes = g_mem_peak.load(pspl::sync::relaxed);
    s.allocations = g_mem_allocs.load(pspl::sync::relaxed);
    return s;
}

void reset_memory_peak()
{
    g_mem_peak.store(g_mem_live.load(pspl::sync::relaxed),
                     pspl::sync::relaxed);
}

ScopedSpan::ScopedSpan(std::string_view name) : m_active(enabled())
{
    if (m_active) {
        m_path = paths().intern(current_path(), labels().intern(name));
        span_stack().push_back(m_path);
        m_t0 = now_seconds();
    }
}

ScopedSpan::~ScopedSpan()
{
    if (m_active) {
        const double dur = now_seconds() - m_t0;
        span_stack().pop_back();
        emit(m_path, m_t0, dur, 0.0, 0.0, EventKind::Span);
    }
}

void ScopedSpan::add_counters(double bytes, double flops)
{
    if (m_active) {
        emit(m_path, now_seconds(), 0.0, bytes, flops, EventKind::Counter);
    }
}

} // namespace pspl::profiling
