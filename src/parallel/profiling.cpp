#include "parallel/profiling.hpp"

#include <atomic>
#include <mutex>

namespace pspl::profiling {

namespace {

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::map<std::string, RecordStats>& registry()
{
    static std::map<std::string, RecordStats> r;
    return r;
}

} // namespace

void set_enabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void clear()
{
    const std::lock_guard lock(g_mutex);
    registry().clear();
}

void record(const std::string& label, double seconds)
{
    const std::lock_guard lock(g_mutex);
    auto& s = registry()[label];
    ++s.count;
    s.total_seconds += seconds;
}

std::map<std::string, RecordStats> snapshot()
{
    const std::lock_guard lock(g_mutex);
    return registry();
}

RecordStats stats_for(const std::string& label)
{
    const std::lock_guard lock(g_mutex);
    const auto it = registry().find(label);
    return it == registry().end() ? RecordStats{} : it->second;
}

double total_seconds_matching(const std::string& needle)
{
    const std::lock_guard lock(g_mutex);
    double total = 0.0;
    for (const auto& [label, stats] : registry()) {
        if (label.find(needle) != std::string::npos) {
            total += stats.total_seconds;
        }
    }
    return total;
}

ScopedRegion::ScopedRegion(std::string name)
    : m_name(std::move(name)), m_active(enabled())
{
    if (m_active) {
        m_start = std::chrono::steady_clock::now();
    }
}

ScopedRegion::~ScopedRegion()
{
    if (m_active) {
        const double sec = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - m_start)
                                   .count();
        record(m_name, sec);
    }
}

} // namespace pspl::profiling
