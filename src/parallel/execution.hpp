// Execution spaces.
//
// Two host backends stand in for the paper's {OpenMP, CUDA, HIP} set: the
// user code is written once against the execution-space template parameter
// and recompiles unchanged for either backend, which is the portability
// property under study.
#pragma once

#include <string>

namespace pspl {

/// Single-threaded reference backend.
struct Serial {
    static const char* name() { return "Serial"; }
    static int concurrency() { return 1; }
    /// Rank of the calling thread in [0, concurrency()); kernels use it to
    /// index per-thread scratch (e.g. the SIMD pack staging buffers).
    static int thread_rank() { return 0; }
    /// No asynchronous work on host backends; fence is a no-op kept for API
    /// fidelity with device backends.
    static void fence() {}
};

/// True when PSPL_PIN=1 successfully pinned the OpenMP worker threads to
/// distinct CPUs (always false for Serial-only builds or when pinning was
/// not requested / failed). Recorded in perf reports for provenance.
bool threads_pinned();

#if defined(PSPL_ENABLE_OPENMP)
/// OpenMP thread-parallel backend.
struct OpenMP {
    static const char* name() { return "OpenMP"; }
    static int concurrency();
    static int thread_rank();
    static void fence() {}
    /// Opt-in thread pinning: on the first call, if PSPL_PIN=1, bind each
    /// OpenMP worker to one CPU of the process affinity mask (round-robin)
    /// so first-touched pages stay local to the thread that touched them.
    /// Subsequent calls are a single static-initialization check.
    static void ensure_pinned();
};

using DefaultExecutionSpace = OpenMP;
#else
using DefaultExecutionSpace = Serial;
#endif

template <class Exec>
concept ExecutionSpace = requires {
    { Exec::name() };
    { Exec::concurrency() };
};

} // namespace pspl
