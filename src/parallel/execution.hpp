// Execution spaces.
//
// Three host backends stand in for the paper's {OpenMP, CUDA, HIP} set: the
// user code is written once against the execution-space template parameter
// and recompiles unchanged for any backend, which is the portability
// property under study. Serial is the single-threaded reference, OpenMP the
// compiler-runtime-backed space, and Threads a from-scratch persistent
// work-stealing pool (threadpool.hpp) that proves the dispatch layer does
// not secretly depend on OpenMP semantics.
#pragma once

#include <cstddef>
#include <string>

namespace pspl {

/// Single-threaded reference backend.
struct Serial {
    static const char* name() { return "Serial"; }
    static int concurrency() { return 1; }
    /// Rank of the calling thread in [0, concurrency()); kernels use it to
    /// index per-thread scratch (e.g. the SIMD pack staging buffers).
    static int thread_rank() { return 0; }
    /// No asynchronous work on host backends; fence is a no-op kept for API
    /// fidelity with device backends.
    static void fence() {}
};

/// True when PSPL_PIN=1 successfully pinned the worker threads (OpenMP or
/// pool) to distinct CPUs (always false when pinning was not requested or
/// failed). Recorded in perf reports for provenance.
bool threads_pinned();

/// Work-stealing thread-pool backend: a process-wide persistent pool
/// (threadpool.hpp) sized by PSPL_NUM_THREADS, scheduled by PSPL_SCHEDULE
/// and pinned by PSPL_PIN. Always compiled -- it needs nothing beyond
/// std::thread -- so every build has a parallel backend even without
/// OpenMP.
struct Threads {
    static const char* name() { return "Threads"; }
    static int concurrency();
    static int thread_rank();
    static void fence() {}
};

#if defined(PSPL_ENABLE_OPENMP)
/// OpenMP thread-parallel backend.
struct OpenMP {
    static const char* name() { return "OpenMP"; }
    static int concurrency();
    static int thread_rank();
    static void fence() {}
    /// Opt-in thread pinning: on the first call, if PSPL_PIN=1, bind each
    /// OpenMP worker to one CPU of the process affinity mask (round-robin)
    /// so first-touched pages stay local to the thread that touched them.
    /// Subsequent calls are a single static-initialization check.
    static void ensure_pinned();
};
#endif

/// Runtime identity of a compiled-in backend, selectable per process with
/// PSPL_BACKEND=serial|openmp|threads.
enum class Backend { Serial, OpenMP, Threads };

/// Canonical lower-case name as spelled in PSPL_BACKEND and perf reports.
const char* backend_name(Backend b);

/// Pure parser for a PSPL_BACKEND value (case-insensitive). Returns false
/// and leaves `out` untouched on unrecognized text; availability of the
/// parsed backend in this build is the caller's concern.
bool parse_backend(const char* text, Backend& out);

/// Process-wide default backend, resolved once on first use: PSPL_BACKEND
/// when set, valid and compiled in; otherwise OpenMP when compiled,
/// otherwise Threads. An unusable request falls back to the build default
/// with a warning on stderr rather than aborting.
Backend default_backend();

/// Forwarding execution space: dispatches on default_backend() at run time,
/// so one binary serves the whole backend matrix (`PSPL_BACKEND=threads
/// ./test` reruns every default-space kernel on the pool). Satisfies the
/// same ExecutionSpace concept and dispatch contracts as the concrete
/// spaces; parallel.hpp routes its dispatch overloads to the selected
/// concrete backend.
struct Host {
    static const char* name();
    static int concurrency();
    static int thread_rank();
    static void fence() {}
};

using DefaultExecutionSpace = Host;

template <class Exec>
concept ExecutionSpace = requires {
    { Exec::name() };
    { Exec::concurrency() };
};

namespace detail {

/// Zero `bytes` bytes of `data` from inside a parallel region of the
/// selected default backend (its static split), so first-touched pages are
/// distributed across NUMA nodes the same way the compute kernels will
/// visit them. Serial memset when single-threaded. The View FirstTouch
/// constructor is the only intended caller.
void first_touch_zero(void* data, std::size_t bytes);

/// Records the PSPL_PIN outcome reported by threads_pinned(); shared by the
/// OpenMP pinning path and the pool's.
void note_threads_pinned(bool pinned);

/// Upper bound on the CPUs allowed_cpus() enumerates.
inline constexpr int max_pin_cpus = 1024;

/// Enumerate the CPUs of this process's affinity mask (the round-robin pin
/// targets, respecting an outer taskset/cgroup) into `cpus`, up to `cap`.
/// Returns the count; 0 when unavailable (non-Linux) or on error.
int allowed_cpus(int* cpus, int cap);

} // namespace detail

} // namespace pspl
