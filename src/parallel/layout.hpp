// Memory layouts for multi-dimensional views.
//
// LayoutRight: row-major, last extent has stride 1 (the C default and what
//              the paper uses for the (n, batch) right-hand-side block where
//              the *batch* index is contiguous, i.e. GPU-coalesced).
// LayoutLeft:  column-major, first extent has stride 1 (the CPU-friendly
//              layout the paper's "future work" layout abstraction targets).
// LayoutStride: arbitrary strides; the natural result type of subviews.
#pragma once

#include <array>
#include <cstddef>
#include <type_traits>

namespace pspl {

struct LayoutRight {
    template <std::size_t Rank>
    static constexpr std::array<std::size_t, Rank>
    strides(const std::array<std::size_t, Rank>& ext)
    {
        std::array<std::size_t, Rank> s{};
        std::size_t acc = 1;
        for (std::size_t r = Rank; r-- > 0;) {
            s[r] = acc;
            acc *= ext[r];
        }
        return s;
    }
};

struct LayoutLeft {
    template <std::size_t Rank>
    static constexpr std::array<std::size_t, Rank>
    strides(const std::array<std::size_t, Rank>& ext)
    {
        std::array<std::size_t, Rank> s{};
        std::size_t acc = 1;
        for (std::size_t r = 0; r < Rank; ++r) {
            s[r] = acc;
            acc *= ext[r];
        }
        return s;
    }
};

/// Tag for views whose strides were computed by slicing; they carry no
/// closed-form stride rule.
struct LayoutStride {};

template <class L>
inline constexpr bool is_regular_layout_v =
        std::is_same_v<L, LayoutRight> || std::is_same_v<L, LayoutLeft>;

} // namespace pspl
