// Single-producer published-prefix chunk list: the lock-free structure
// behind the profiler's per-thread event buffers, templated on the sync
// policy so the production instantiation (parallel/profiling.cpp) and the
// model-checked litmus program share one implementation.
//
// One thread appends; any thread may concurrently read the *published
// prefix*. An append writes the event payload (plain), then publishes it
// with a release store of the chunk's count; a full chunk is extended by
// allocating the next node, writing its first event, and publishing the
// link with a release store of `next`. Readers acquire the counters and
// links and only touch published events, so merging never blocks or races
// the producer. The model checker verifies the payload accesses are
// race-free under exactly these edges; the mutation matrix weakens each
// publish/consume pair and asserts the checker reports the race.
#pragma once

#include "parallel/sync_policy.hpp"

#include <array>
#include <cstddef>
#include <memory>

namespace pspl::detail {

template <class EventT, std::size_t CapacityV, class Sync>
struct BasicEventChunkList {
    using Site = sync::Site;

    struct Chunk {
        static constexpr std::size_t capacity = CapacityV;
        std::array<typename Sync::template plain<EventT>, CapacityV> events;
        typename Sync::template atomic<std::size_t> count{0};
        typename Sync::template atomic<Chunk*> next{nullptr};
        std::unique_ptr<Chunk> next_owner; // written by the producer only
    };

    std::unique_ptr<Chunk> head = std::make_unique<Chunk>();
    Chunk* tail = head.get(); // producer-private cursor

    /// Producer-only append: write the payload, then publish it.
    void push(const EventT& e)
    {
        Chunk* c = tail;
        const std::size_t n = c->count.load(sync::relaxed);
        if (n == CapacityV) {
            auto fresh = std::make_unique<Chunk>();
            Chunk* raw = fresh.get();
            c->next_owner = std::move(fresh);
            c->next.store(raw, Sync::order(Site::chunk_link_publish,
                                           sync::release));
            tail = raw;
            c = raw;
            c->events[0] = e;
            c->count.store(1, Sync::order(Site::chunk_count_publish,
                                          sync::release));
            return;
        }
        c->events[n] = e;
        c->count.store(n + 1, Sync::order(Site::chunk_count_publish,
                                          sync::release));
    }

    /// Reader-side walk over the published prefix; safe concurrently with
    /// the producer's push().
    template <class F>
    void for_each(const F& f) const
    {
        for (const Chunk* c = head.get(); c != nullptr;
             c = c->next.load(Sync::order(Site::chunk_link_read,
                                          sync::acquire))) {
            const std::size_t n = c->count.load(
                    Sync::order(Site::chunk_count_read, sync::acquire));
            for (std::size_t i = 0; i < n; ++i) {
                f(c->events[i]);
            }
            // A chunk observed below capacity was still being filled when
            // its count was read: following the link here could surface
            // events appended *after* the ones this snapshot missed (the
            // link store is not ordered against an older count read), so
            // the walk must end at the first non-full chunk to stay a
            // prefix. Found by the model checker: a reader could observe
            // {e0, e2} without e1 across a chunk boundary. Quiescent
            // walks are unaffected -- every non-final chunk is full.
            if (n < CapacityV) {
                break;
            }
        }
    }
};

} // namespace pspl::detail
