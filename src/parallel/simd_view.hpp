// Load/store glue between rank-2 (n, batch) View blocks and simd packs.
//
// A pack covers W *adjacent batch entries* of one row: lanes map to the
// batch index, never the matrix index (the batch entries are independent,
// the matrix rows are coupled by the recurrences). The fast path is a
// single unaligned vector move when the batch index is contiguous
// (LayoutRight, the paper's GPU-coalesced layout); any other layout
// (LayoutLeft, sliced LayoutStride) degrades gracefully to a strided
// gather/scatter with identical semantics. Tails (batch % W != 0) use the
// zero-filling masked loads from simd.hpp.
#pragma once

#include "core/concepts.hpp"
#include "parallel/macros.hpp"
#include "parallel/simd.hpp"

#include <cstddef>

namespace pspl {

/// Pack of W lanes from row `i`, batch columns [j0, j0 + lanes) of `v`.
template <int W, BatchBlockView V>
PSPL_FORCEINLINE_FUNCTION auto simd_load_lanes(const V& v, std::size_t i,
                                               std::size_t j0, int lanes)
{
    using T = std::remove_cv_t<typename V::value_type>;
    static_assert(SimdPackable<T>,
                  "simd_load_lanes: block element type must be an arithmetic "
                  "(SimdPackable) type");
    PSPL_DEBUG_ASSERT(lanes >= 1 && lanes <= W
                              && j0 + static_cast<std::size_t>(lanes)
                                         <= v.extent(1),
                      "simd_load_lanes: lane window outside batch extent");
    const T* p = &v(i, j0);
    const auto stride = static_cast<std::ptrdiff_t>(v.stride(1));
    if (lanes == W) {
        return stride == 1 ? simd<T, W>::load(p) : simd<T, W>::load(p, stride);
    }
    return simd<T, W>::load_partial(p, stride, lanes);
}

/// Store the first `lanes` lanes of `x` to row `i`, columns [j0, j0 + lanes).
template <int W, BatchBlockView V>
PSPL_FORCEINLINE_FUNCTION void
simd_store_lanes(const simd<std::remove_cv_t<typename V::value_type>, W>& x,
                 const V& v, std::size_t i, std::size_t j0, int lanes)
{
    using T = std::remove_cv_t<typename V::value_type>;
    PSPL_DEBUG_ASSERT(lanes >= 1 && lanes <= W
                              && j0 + static_cast<std::size_t>(lanes)
                                         <= v.extent(1),
                      "simd_store_lanes: lane window outside batch extent");
    T* p = &v(i, j0);
    const auto stride = static_cast<std::ptrdiff_t>(v.stride(1));
    if (lanes == W) {
        if (stride == 1) {
            x.store(p);
        } else {
            x.store(p, stride);
        }
        return;
    }
    x.store_partial(p, stride, lanes);
}

/// Stage rows [row0, row0 + nrows) x batch columns [j0, j0 + lanes) of `b`
/// into a contiguous pack buffer, one pack per row. The batched-serial
/// kernels then run on the buffer with unit stride, entirely in cache.
template <int W, BatchBlockView BView, SimdPackable T>
PSPL_INLINE_FUNCTION void simd_load_chunk(const BView& b, std::size_t row0,
                                          std::size_t nrows, std::size_t j0,
                                          int lanes,
                                          simd<T, W>* PSPL_RESTRICT buf)
{
    PSPL_DEBUG_ASSERT(row0 + nrows <= b.extent(0) && lanes >= 1 && lanes <= W
                              && j0 + static_cast<std::size_t>(lanes)
                                         <= b.extent(1),
                      "simd_load_chunk: chunk outside block extents");
    const auto stride = static_cast<std::ptrdiff_t>(b.stride(1));
    if (lanes == W) {
        if (stride == 1) {
            for (std::size_t r = 0; r < nrows; ++r) {
                buf[r] = simd<T, W>::load(&b(row0 + r, j0));
            }
        } else {
            for (std::size_t r = 0; r < nrows; ++r) {
                buf[r] = simd<T, W>::load(&b(row0 + r, j0), stride);
            }
        }
        return;
    }
    for (std::size_t r = 0; r < nrows; ++r) {
        buf[r] = simd<T, W>::load_partial(&b(row0 + r, j0), stride, lanes);
    }
}

/// Inverse of simd_load_chunk: write the live lanes back into the block.
template <int W, BatchBlockView BView, SimdPackable T>
PSPL_INLINE_FUNCTION void simd_store_chunk(const BView& b, std::size_t row0,
                                           std::size_t nrows, std::size_t j0,
                                           int lanes,
                                           const simd<T, W>* PSPL_RESTRICT buf)
{
    PSPL_DEBUG_ASSERT(row0 + nrows <= b.extent(0) && lanes >= 1 && lanes <= W
                              && j0 + static_cast<std::size_t>(lanes)
                                         <= b.extent(1),
                      "simd_store_chunk: chunk outside block extents");
    const auto stride = static_cast<std::ptrdiff_t>(b.stride(1));
    if (lanes == W) {
        if (stride == 1) {
            for (std::size_t r = 0; r < nrows; ++r) {
                buf[r].store(&b(row0 + r, j0));
            }
        } else {
            for (std::size_t r = 0; r < nrows; ++r) {
                buf[r].store(&b(row0 + r, j0), stride);
            }
        }
        return;
    }
    for (std::size_t r = 0; r < nrows; ++r) {
        buf[r].store_partial(&b(row0 + r, j0), stride, lanes);
    }
}

} // namespace pspl
