#include "parallel/tiling.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pspl {

namespace {

// Widest tile honored in any mode: keeps the per-thread staging arena
// bounded (a (rows, tile) double tile at rows = 1000 is ~32 MB here).
constexpr std::size_t max_tile_cols = 4096;

/// Read one small sysfs file into buf; false when unreadable.
bool read_sysfs(const char* path, char* buf, std::size_t len)
{
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) {
        return false;
    }
    const bool ok = std::fgets(buf, static_cast<int>(len), f) != nullptr;
    std::fclose(f);
    return ok;
}

/// Parse a sysfs cache size string ("2048K", "1M", "262144").
std::size_t parse_cache_size(const char* text)
{
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text) {
        return 0;
    }
    std::size_t bytes = static_cast<std::size_t>(v);
    if (*end == 'K' || *end == 'k') {
        bytes *= 1024;
    } else if (*end == 'M' || *end == 'm') {
        bytes *= 1024 * 1024;
    }
    return bytes;
}

std::size_t detect_cache_bytes(int level, std::size_t fallback)
{
#if defined(__linux__)
    // Scan cpu0's cache indices for the requested-level data/unified cache.
    for (int index = 0; index < 8; ++index) {
        char path[96];
        char text[64];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/cpu/cpu0/cache/index%d/level",
                      index);
        if (!read_sysfs(path, text, sizeof(text))
            || std::atoi(text) != level) {
            continue;
        }
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/cpu/cpu0/cache/index%d/type",
                      index);
        if (read_sysfs(path, text, sizeof(text))
            && std::strncmp(text, "Instruction", 11) == 0) {
            continue;
        }
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/cpu/cpu0/cache/index%d/size",
                      index);
        if (read_sysfs(path, text, sizeof(text))) {
            const std::size_t bytes = parse_cache_size(text);
            if (bytes > 0) {
                return bytes;
            }
        }
    }
#endif
    return fallback;
}

} // namespace

std::size_t l2_cache_bytes()
{
    static const std::size_t bytes =
            detect_cache_bytes(2, std::size_t{1} << 20); // 1 MiB fallback
    return bytes;
}

std::size_t l3_cache_bytes()
{
    static const std::size_t bytes =
            detect_cache_bytes(3, std::size_t{32} << 20); // 32 MiB fallback
    return bytes;
}

TilePolicy TilePolicy::from_env()
{
    const char* env = std::getenv("PSPL_TILE");
    if (env == nullptr || *env == '\0'
        || std::strcmp(env, "auto") == 0) {
        return automatic();
    }
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        return off();
    }
    const long long v = std::atoll(env);
    if (v > 0) {
        return explicit_width(static_cast<std::size_t>(v));
    }
    return automatic(); // unparseable: fall back to the model
}

std::size_t TilePolicy::tile_cols(std::size_t rows, std::size_t batch_cols,
                                  std::size_t value_bytes,
                                  std::size_t pack_width) const
{
    if (mode == Mode::Off) {
        return 0;
    }
    const std::size_t w = pack_width > 0 ? pack_width : 1;
    std::size_t cols = 0;
    if (mode == Mode::Explicit) {
        // Round the request up to a pack multiple so tile boundaries stay
        // on chunk boundaries (the bitwise-identity invariant).
        cols = (tile + w - 1) / w * w;
    } else {
        // Auto, streaming guard: once the whole (rows, batch) block
        // exceeds the last-level cache, every pass streams from DRAM and
        // the single-pass fused chain gains nothing from staging -- the
        // gather/scatter would be pure extra copy traffic. Run untiled.
        // (Division keeps the comparison overflow-safe for huge batches.)
        const std::size_t row_bytes = rows * value_bytes;
        if (row_bytes > 0 && batch_cols > l3_cache_bytes() / row_bytes) {
            return 0;
        }
        // The staged tile (rows * cols * value_bytes) targets half of L2,
        // leaving room for the factor data swept once per column.
        const std::size_t budget = l2_cache_bytes() / 2;
        cols = row_bytes > 0 ? budget / row_bytes : max_tile_cols;
        cols = cols / w * w; // round down to a pack multiple
    }
    if (cols < w) {
        cols = w;
    }
    const std::size_t cap = max_tile_cols / w * w > 0
                                    ? max_tile_cols / w * w
                                    : w;
    if (cols > cap) {
        cols = cap;
    }
    return cols;
}

std::size_t TilePolicy::staged_tile_cols(std::size_t rows,
                                         std::size_t batch_cols,
                                         std::size_t staging_bytes,
                                         std::size_t pack_width) const
{
    const std::size_t w = pack_width > 0 ? pack_width : 1;
    std::size_t cols = 0;
    if (mode == Mode::Explicit && tile > 0) {
        cols = (tile + w - 1) / w * w;
    } else {
        // L2 model only -- no streaming guard: a staged pipeline gathers
        // and scatters regardless, so the only question is how wide a tile
        // fits. Half of L2 for the staging buffers, the rest for factors.
        const std::size_t elem_bytes = rows * staging_bytes;
        const std::size_t budget = l2_cache_bytes() / 2;
        cols = elem_bytes > 0 ? budget / elem_bytes : max_tile_cols;
        cols = cols / w * w;
    }
    if (cols < w) {
        cols = w;
    }
    const std::size_t batch_rounded = (batch_cols + w - 1) / w * w;
    if (batch_rounded > 0 && cols > batch_rounded) {
        cols = batch_rounded;
    }
    const std::size_t cap = max_tile_cols / w * w > 0
                                    ? max_tile_cols / w * w
                                    : w;
    if (cols > cap) {
        cols = cap;
    }
    return cols;
}

std::size_t TilePolicy::fused_advect_tile_cols(std::size_t rows,
                                               std::size_t npts,
                                               std::size_t batch_cols,
                                               std::size_t pack_width,
                                               std::size_t fixed_bytes) const
{
    const std::size_t w = pack_width > 0 ? pack_width : 1;
    std::size_t cols = 0;
    if (mode == Mode::Explicit && tile > 0) {
        cols = (tile + w - 1) / w * w;
    } else {
        // Strip budget: half of L2 minus the fixed working set (factors +
        // points), the carve-out capped at a quarter of L2 so oversized
        // factor models cannot starve the strips entirely.
        const std::size_t l2 = l2_cache_bytes();
        const std::size_t carve =
                fixed_bytes < l2 / 4 ? fixed_bytes : l2 / 4;
        const std::size_t budget = l2 / 2 - carve / 2;
        const std::size_t per_col = (rows + npts) * sizeof(double);
        cols = per_col > 0 ? budget / per_col : max_tile_cols;
        cols = cols / w * w;
    }
    if (cols < w) {
        cols = w;
    }
    const std::size_t batch_rounded = (batch_cols + w - 1) / w * w;
    if (batch_rounded > 0 && cols > batch_rounded) {
        cols = batch_rounded;
    }
    const std::size_t cap = max_tile_cols / w * w > 0
                                    ? max_tile_cols / w * w
                                    : w;
    if (cols > cap) {
        cols = cap;
    }
    return cols;
}

std::string TilePolicy::describe() const
{
    switch (mode) {
    case Mode::Auto:
        return "auto";
    case Mode::Off:
        return "off";
    case Mode::Explicit:
        return std::to_string(tile);
    }
    return "?";
}

} // namespace pspl
