#include "parallel/threadpool.hpp"

#include "parallel/execution.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pspl {

namespace {

// Worker identity of the calling thread. Non-pool threads keep rank 0 (they
// are "worker 0" whenever they dispatch) and are never inside a task.
thread_local int t_rank = 0;
thread_local bool t_in_task = false;

int pool_size_from_env()
{
    if (const char* env = std::getenv("PSPL_NUM_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) {
            return static_cast<int>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

#if defined(__linux__)
void pin_to_cpu(int cpu)
{
    cpu_set_t one;
    CPU_ZERO(&one);
    CPU_SET(cpu, &one);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(one), &one);
}
#endif

} // namespace

namespace detail {

ScheduleSpec ScheduleSpec::parse(const char* text)
{
    ScheduleSpec spec;
    if (text == nullptr || text[0] == '\0') {
        return spec;
    }
    std::string s(text);
    for (char& c : s) {
        c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    }
    std::string kind = s;
    if (const std::size_t comma = s.find(','); comma != std::string::npos) {
        kind = s.substr(0, comma);
        const long v = std::atol(s.c_str() + comma + 1);
        if (v > 0) {
            spec.chunk = static_cast<std::size_t>(v);
        }
    }
    if (kind == "dynamic") {
        spec.kind = ScheduleSpec::Kind::Dynamic;
    } else if (kind == "guided") {
        spec.kind = ScheduleSpec::Kind::Guided;
    } else {
        spec.kind = ScheduleSpec::Kind::Static;
    }
    return spec;
}

std::vector<std::size_t> partition_range(std::size_t begin, std::size_t end,
                                         int nworkers, ScheduleSpec spec)
{
    std::vector<std::size_t> bounds;
    if (end <= begin) {
        return bounds;
    }
    const std::size_t total = end - begin;
    const std::size_t p
            = nworkers > 0 ? static_cast<std::size_t>(nworkers) : 1;

    const auto fixed_chunks = [&](std::size_t chunk) {
        bounds.reserve(total / chunk + 2);
        bounds.push_back(begin);
        for (std::size_t cur = begin; cur < end;) {
            cur += std::min(chunk, end - cur);
            bounds.push_back(cur);
        }
    };

    switch (spec.kind) {
    case ScheduleSpec::Kind::Static:
        if (spec.chunk == 0) {
            // One near-equal block per worker, remainder spread over the
            // first blocks -- the same split OpenMP schedule(static) uses.
            const std::size_t nchunks = std::min(total, p);
            const std::size_t q = total / nchunks;
            const std::size_t r = total % nchunks;
            bounds.reserve(nchunks + 1);
            bounds.push_back(begin);
            std::size_t cur = begin;
            for (std::size_t c = 0; c < nchunks; ++c) {
                cur += q + (c < r ? 1 : 0);
                bounds.push_back(cur);
            }
        } else {
            fixed_chunks(spec.chunk);
        }
        break;
    case ScheduleSpec::Kind::Dynamic: {
        // Default chunk: 8 chunks per worker balances steal traffic
        // against tail imbalance, like common OMP dynamic defaults.
        const std::size_t chunk
                = spec.chunk != 0
                          ? spec.chunk
                          : std::max<std::size_t>(1, total / (p * 8));
        fixed_chunks(chunk);
        break;
    }
    case ScheduleSpec::Kind::Guided: {
        // Decreasing chunks: half the remaining work spread over the
        // workers, floored at the requested minimum chunk.
        const std::size_t minc = std::max<std::size_t>(1, spec.chunk);
        bounds.reserve(p * 4 + 2);
        bounds.push_back(begin);
        std::size_t cur = begin;
        while (cur < end) {
            const std::size_t remaining = end - cur;
            std::size_t c = std::max(minc, remaining / (2 * p));
            c = std::min(c, remaining);
            cur += c;
            bounds.push_back(cur);
        }
        break;
    }
    }
    return bounds;
}

} // namespace detail

ThreadPool& ThreadPool::instance()
{
    static ThreadPool pool;
    return pool;
}

int ThreadPool::worker_rank() noexcept
{
    return t_rank;
}

bool ThreadPool::in_task() noexcept
{
    return t_in_task;
}

ThreadPool::ThreadPool()
    : m_size(pool_size_from_env())
    , m_schedule(detail::ScheduleSpec::parse(std::getenv("PSPL_SCHEDULE")))
    , m_deques(static_cast<std::size_t>(m_size))
{

    // PSPL_PIN=1: round-robin the workers over the process affinity mask,
    // same contract as the OpenMP backend. The dispatching thread is
    // worker 0 and gets the first CPU of the mask.
    int cpus[detail::max_pin_cpus];
    int ncpu = 0;
    const char* pin_env = std::getenv("PSPL_PIN");
    const bool want_pin = pin_env != nullptr && pin_env[0] == '1';
    if (want_pin) {
        ncpu = detail::allowed_cpus(cpus, detail::max_pin_cpus);
    }
#if defined(__linux__)
    if (want_pin && ncpu > 0) {
        pin_to_cpu(cpus[0]);
        detail::note_threads_pinned(true);
    }
#endif

    m_threads.reserve(static_cast<std::size_t>(m_size - 1));
    for (int r = 1; r < m_size; ++r) {
        // Capture the worker's pin target by value: the thread may only
        // start after this constructor's stack frame is gone.
        const int cpu = (want_pin && ncpu > 0) ? cpus[r % ncpu] : -1;
        m_threads.emplace_back([this, r, cpu] {
#if defined(__linux__)
            if (cpu >= 0) {
                pin_to_cpu(cpu);
            }
#else
            (void)cpu;
#endif
            worker_loop(r);
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_shutdown = true;
    }
    m_cv.notify_all();
    for (std::thread& t : m_threads) {
        t.join();
    }
}

void ThreadPool::record_exception()
{
    std::lock_guard<std::mutex> lk(m_exc_mutex);
    if (!m_exception) {
        m_exception = std::current_exception();
    }
}

void ThreadPool::run_inline(const std::vector<std::size_t>& bounds,
                            const Task& task)
{
    // Nested (or single-worker) execution on the calling thread: chunks in
    // ascending order, exceptions propagate directly.
    const bool was_in_task = t_in_task;
    t_in_task = true;
    const std::size_t nchunks = bounds.size() - 1;
    try {
        for (std::size_t c = 0; c < nchunks; ++c) {
            task.run_chunk(bounds[c], bounds[c + 1], c, t_rank);
        }
    } catch (...) {
        t_in_task = was_in_task;
        throw;
    }
    t_in_task = was_in_task;
}

void ThreadPool::run(const std::vector<std::size_t>& bounds, const Task& task)
{
    if (bounds.size() < 2) {
        return; // empty range
    }
    if (m_size == 1 || t_in_task) {
        run_inline(bounds, task);
        return;
    }

    std::lock_guard<std::mutex> run_lock(m_run_mutex);
    {
        // Quiescent refill: the previous epoch has fully drained (run()
        // waited for the gate to go quiescent) and no new epoch can start
        // while we hold m_run_mutex, so plain writes here are safe. They
        // become visible to workers through the gate's release publish (late
        // spinners) or the m_mutex handover (sleepers).
        std::lock_guard<std::mutex> lk(m_mutex);
        const std::size_t nchunks = bounds.size() - 1;
        m_bounds = bounds.data();
        m_task = &task;
        m_exception = nullptr;
        const std::size_t p = static_cast<std::size_t>(m_size);
        for (std::size_t w = 0; w < p; ++w) {
            // Worker w owns chunks w, w+P, w+2P, ... (round-robin, the
            // schedule(static, chunk) assignment); listed in descending
            // order so the owner's bottom-first pops walk them ascending.
            m_fill.clear();
            for (std::size_t c = w; c < nchunks; c += p) {
                m_fill.push_back(c);
            }
            std::reverse(m_fill.begin(), m_fill.end());
            m_deques[w].reset(m_fill.data(), m_fill.size());
        }
        m_gate.publish(static_cast<std::int64_t>(nchunks));
        ++m_epoch;
        m_epochs_started.fetch_add(1, sync::relaxed);
    }
    m_cv.notify_all();

    work(0);

    // All chunks have executed; wait for workers to check out so the next
    // refill is quiescent and `task`/`bounds` can safely go out of scope.
    while (!m_gate.quiescent()) {
        std::this_thread::yield();
    }

    std::exception_ptr ex;
    {
        std::lock_guard<std::mutex> lk(m_exc_mutex);
        ex = m_exception;
        m_exception = nullptr;
    }
    if (ex) {
        std::rethrow_exception(ex);
    }
}

bool ThreadPool::steal_any(int rank, std::size_t& chunk)
{
    const int p = m_size;
    for (int k = 1; k < p; ++k) {
        const int victim = (rank + k) % p;
        if (m_deques[static_cast<std::size_t>(victim)].steal(chunk)) {
            return true;
        }
    }
    return false;
}

void ThreadPool::work(int rank)
{
    while (m_gate.active()) {
        std::size_t chunk;
        if (m_deques[static_cast<std::size_t>(rank)].pop(chunk)
            || steal_any(rank, chunk)) {
            // The acquire poll above that observed the epoch ordered these
            // plain reads after the epoch's refill.
            const Task* task = m_task;
            const std::size_t* bounds = m_bounds;
            t_in_task = true;
            try {
                task->run_chunk(bounds[chunk], bounds[chunk + 1], chunk,
                                rank);
            } catch (...) {
                record_exception();
            }
            t_in_task = false;
            m_gate.chunk_done();
        } else {
            std::this_thread::yield();
        }
    }
}

void ThreadPool::worker_loop(int rank)
{
    t_rank = rank;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_mutex);
    for (;;) {
        m_cv.wait(lk, [&] { return m_shutdown || m_epoch != seen; });
        if (m_shutdown) {
            return;
        }
        seen = m_epoch;
        m_gate.enter();
        lk.unlock();
        work(rank);
        m_gate.leave();
        lk.lock();
    }
}

// --- pspl::Threads execution-space surface (declared in execution.hpp) ---

int Threads::concurrency()
{
    return ThreadPool::instance().concurrency();
}

int Threads::thread_rank()
{
    return ThreadPool::worker_rank();
}

} // namespace pspl
