// Hierarchical (team) parallelism, mirroring Kokkos' TeamPolicy vocabulary:
// a league of teams, each team running `team_size` members that cooperate
// through TeamThreadRange-style nested loops.
//
// Host semantics: the league is parallelized over the execution space;
// members of one team execute sequentially (like Kokkos' Serial backend,
// which enforces team_size == 1 -- here any team_size is allowed and
// members simply run in turn). team_barrier() is therefore a no-op; code
// that relies on concurrent member progress between barriers is outside
// this backend's contract, while data-parallel nested loops -- the batched
// spline use case -- behave identically to a device build.
#pragma once

#include "parallel/parallel.hpp"

#include <cstddef>
#include <string_view>

namespace pspl {

class TeamMember
{
public:
    TeamMember(std::size_t league_rank, int team_rank, int team_size,
               std::size_t league_size)
        : m_league_rank(league_rank)
        , m_team_rank(team_rank)
        , m_team_size(team_size)
        , m_league_size(league_size)
    {
    }

    std::size_t league_rank() const { return m_league_rank; }
    std::size_t league_size() const { return m_league_size; }
    int team_rank() const { return m_team_rank; }
    int team_size() const { return m_team_size; }

    /// No-op on host backends (members run sequentially).
    void team_barrier() const {}

private:
    std::size_t m_league_rank;
    int m_team_rank;
    int m_team_size;
    std::size_t m_league_size;
};

template <class Exec = DefaultExecutionSpace>
struct TeamPolicy {
    using execution_space = Exec;
    std::size_t league_size = 0;
    int team_size = 1;
    TeamPolicy(std::size_t league, int team)
        : league_size(league), team_size(team)
    {
        PSPL_EXPECT(team >= 1, "TeamPolicy: team_size must be >= 1");
    }
};

/// Launch one functor call per (league entry, team member).
template <class Exec, class F>
void parallel_for(std::string_view label, TeamPolicy<Exec> policy,
                  const F& f)
{
    const int ts = policy.team_size;
    const std::size_t league = policy.league_size;
    detail::KernelTimer t(label);
    detail::dispatch_range(Exec{}, 0, league, [&](std::size_t l) {
        for (int m = 0; m < ts; ++m) {
            f(TeamMember(l, m, ts, league));
        }
    });
}

/// Strided split of [0, n) across the members of one team
/// (Kokkos::TeamThreadRange analogue).
template <class F>
PSPL_INLINE_FUNCTION void team_thread_range(const TeamMember& member,
                                            std::size_t n, const F& f)
{
    for (std::size_t i = static_cast<std::size_t>(member.team_rank()); i < n;
         i += static_cast<std::size_t>(member.team_size())) {
        f(i);
    }
}

/// Innermost (vector-level) range: executed in full by the calling member
/// (Kokkos::ThreadVectorRange analogue).
template <class F>
PSPL_INLINE_FUNCTION void thread_vector_range(const TeamMember&,
                                              std::size_t n, const F& f)
{
    for (std::size_t i = 0; i < n; ++i) {
        f(i);
    }
}

/// Sum-reduction over a team-thread range. Kokkos semantics: every member
/// observes the team-wide total. Members run sequentially here, so each
/// computes the full sum (redundant but exact -- the host analogue of the
/// broadcast that a device barrier provides).
template <class F>
PSPL_INLINE_FUNCTION double team_thread_reduce_sum(const TeamMember&,
                                                   std::size_t n, const F& f)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += f(i);
    }
    return acc;
}

} // namespace pspl
