// 1-D complex FFT for arbitrary lengths: iterative radix-2 Cooley-Tukey for
// powers of two, Bluestein's chirp-z algorithm otherwise.
//
// GYSELA's Poisson solver relies on FFTs, for which the paper's group built
// Kokkos-FFT as the performance-portable interface (§I: "we have developed
// a FFT interface for Kokkos named Kokkos-FFT"). This module is that
// substrate's single-node stand-in, used by the spectral Poisson solver.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace pspl::fft {

enum class Direction {
    Forward,  ///< X_k = sum_n x_n exp(-2 pi i k n / N)
    Backward, ///< x_n = (1/N) sum_k X_k exp(+2 pi i k n / N)
};

/// In-place FFT of arbitrary length (radix-2 or Bluestein).
void transform(std::span<std::complex<double>> data, Direction dir);

/// Forward FFT of a real sequence; returns the full complex spectrum.
std::vector<std::complex<double>> forward_real(std::span<const double> x);

/// True if n is a power of two (radix-2 fast path).
bool is_pow2(std::size_t n);

} // namespace pspl::fft
