#include "fft/fft.hpp"

#include "parallel/macros.hpp"

#include <cmath>
#include <numbers>

namespace pspl::fft {

namespace {

constexpr double two_pi = 2.0 * std::numbers::pi;

/// Iterative radix-2 Cooley-Tukey, n a power of two.
void fft_pow2(std::span<std::complex<double>> a, bool inverse)
{
    const std::size_t n = a.size();
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(a[i], a[j]);
        }
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = (inverse ? two_pi : -two_pi)
                           / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t j = 0; j < len / 2; ++j) {
                const auto u = a[i + j];
                const auto v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::size_t next_pow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n) {
        p <<= 1;
    }
    return p;
}

/// Bluestein chirp-z: arbitrary-length DFT via a power-of-two convolution.
void fft_bluestein(std::span<std::complex<double>> a, bool inverse)
{
    const std::size_t n = a.size();
    const std::size_t m = next_pow2(2 * n - 1);
    const double sign = inverse ? 1.0 : -1.0;

    // Chirp factors w_k = exp(sign * i * pi * k^2 / n).
    std::vector<std::complex<double>> chirp(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the argument small for large n (exactness of
        // the twiddle phase).
        const auto k2 = static_cast<double>((k * k) % (2 * n));
        const double ang = sign * std::numbers::pi * k2
                           / static_cast<double>(n);
        chirp[k] = std::complex<double>(std::cos(ang), std::sin(ang));
    }

    std::vector<std::complex<double>> x(m, {0.0, 0.0});
    std::vector<std::complex<double>> y(m, {0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        x[k] = a[k] * chirp[k];
    }
    y[0] = std::conj(chirp[0]);
    for (std::size_t k = 1; k < n; ++k) {
        y[k] = std::conj(chirp[k]);
        y[m - k] = std::conj(chirp[k]);
    }
    fft_pow2(x, false);
    fft_pow2(y, false);
    for (std::size_t k = 0; k < m; ++k) {
        x[k] *= y[k];
    }
    fft_pow2(x, true);
    const double scale = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < n; ++k) {
        a[k] = x[k] * scale * chirp[k];
    }
}

} // namespace

bool is_pow2(std::size_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

void transform(std::span<std::complex<double>> data, Direction dir)
{
    const std::size_t n = data.size();
    PSPL_EXPECT(n > 0, "fft: empty input");
    const bool inverse = dir == Direction::Backward;
    if (n == 1) {
        return;
    }
    if (is_pow2(n)) {
        fft_pow2(data, inverse);
    } else {
        fft_bluestein(data, inverse);
    }
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto& v : data) {
            v *= scale;
        }
    }
}

std::vector<std::complex<double>> forward_real(std::span<const double> x)
{
    std::vector<std::complex<double>> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = std::complex<double>(x[i], 0.0);
    }
    transform(out, Direction::Forward);
    return out;
}

} // namespace pspl::fft
