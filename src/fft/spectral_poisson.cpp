#include "fft/spectral_poisson.hpp"

#include "fft/fft.hpp"
#include "parallel/macros.hpp"

#include <algorithm>
#include <complex>
#include <numbers>
#include <numeric>
#include <vector>

namespace pspl::fft {

SpectralPoisson1D::SpectralPoisson1D(const bsplines::BSplineBasis& basis_x)
    : m_length(basis_x.length())
{
    PSPL_EXPECT(basis_x.is_periodic() && basis_x.is_uniform(),
                "SpectralPoisson1D: needs a uniform periodic basis");
    const std::size_t n = basis_x.nbasis();
    const auto pts = basis_x.interpolation_points();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return pts[a] < pts[b]; });
    m_order = View1D<int>("spectral_order", n);
    for (std::size_t s = 0; s < n; ++s) {
        m_order(s) = static_cast<int>(order[s]);
    }
}

void SpectralPoisson1D::solve(const View1D<double>& rho,
                              const View1D<double>& efield) const
{
    const std::size_t nn = n();
    PSPL_EXPECT(rho.extent(0) == nn && efield.extent(0) == nn,
                "SpectralPoisson1D: extent mismatch");

    std::vector<std::complex<double>> hat(nn);
    for (std::size_t s = 0; s < nn; ++s) {
        hat[s] = std::complex<double>(
                rho(static_cast<std::size_t>(m_order(s))), 0.0);
    }
    transform(hat, Direction::Forward);

    // E_k = rho_k / (i k_j); k_j = 2 pi j / L with signed frequencies.
    hat[0] = {0.0, 0.0}; // zero mean (also removes <rho>)
    const double k0 = 2.0 * std::numbers::pi / m_length;
    for (std::size_t j = 1; j < nn; ++j) {
        const auto sj = static_cast<long>(j);
        const long freq = sj <= static_cast<long>(nn) / 2
                                  ? sj
                                  : sj - static_cast<long>(nn);
        if (2 * j == nn) {
            // Nyquist mode of a real field has no well-defined odd
            // derivative; zero it (standard practice).
            hat[j] = {0.0, 0.0};
            continue;
        }
        const double k = k0 * static_cast<double>(freq);
        hat[j] /= std::complex<double>(0.0, k);
    }
    transform(hat, Direction::Backward);
    for (std::size_t s = 0; s < nn; ++s) {
        efield(static_cast<std::size_t>(m_order(s))) = hat[s].real();
    }
}

} // namespace pspl::fft
