// Spectral (FFT-based) periodic Poisson solver on uniform grids:
//     dE/dx = rho - <rho>,  <E> = 0   =>   E_k = rho_k / (i k),  E_0 = 0.
// The spectral counterpart of vlasov::Poisson1DPeriodic, exact to machine
// precision for band-limited fields -- GYSELA's actual Poisson solve is
// FFT-based, which is why the group built Kokkos-FFT (paper §I).
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::fft {

class SpectralPoisson1D
{
public:
    SpectralPoisson1D() = default;

    /// Requires a uniform periodic basis (evenly spaced points).
    explicit SpectralPoisson1D(const bsplines::BSplineBasis& basis_x);

    std::size_t n() const
    {
        return m_order.is_allocated() ? m_order.extent(0) : 0;
    }

    /// Solve with rho/efield indexed like the basis interpolation points.
    void solve(const View1D<double>& rho, const View1D<double>& efield) const;

private:
    View1D<int> m_order; ///< sorted-order permutation of the points
    double m_length = 0.0;
};

} // namespace pspl::fft
