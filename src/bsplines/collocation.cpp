#include "bsplines/collocation.hpp"

#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::bsplines {

View2D<double> collocation_matrix(const BSplineBasis& basis)
{
    return collocation_matrix(basis, basis.interpolation_points());
}

View2D<double> collocation_matrix(const BSplineBasis& basis,
                                  const std::vector<double>& points)
{
    const std::size_t n = basis.nbasis();
    PSPL_EXPECT(points.size() == n,
                "collocation_matrix: need one point per basis function");
    View2D<double> a("collocation_matrix", n, n);
    std::vector<double> vals(static_cast<std::size_t>(basis.degree()) + 1);
    for (std::size_t i = 0; i < n; ++i) {
        const long jmin = basis.eval_basis(points[i], vals.data());
        for (int r = 0; r <= basis.degree(); ++r) {
            a(i, basis.basis_index(jmin + r)) +=
                    vals[static_cast<std::size_t>(r)];
        }
    }
    return a;
}

std::string sparsity_pattern(const View2D<double>& a, double threshold)
{
    std::string out;
    out.reserve(a.extent(0) * (a.extent(1) + 1));
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            out += std::abs(a(i, j)) > threshold ? '*' : '.';
        }
        out += '\n';
    }
    return out;
}

} // namespace pspl::bsplines
