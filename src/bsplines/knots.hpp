// Break-point (cell boundary) generation for periodic spline domains.
//
// The non-uniform generator is a smooth, deterministic stretching of the
// uniform grid: it stands in for GYSELA's refined-edge meshes (paper §II-A,
// ref [30]) and produces the general banded, non-symmetric collocation
// matrices of Table I's "Non-uniform" column.
#pragma once

#include <cstddef>
#include <vector>

namespace pspl::bsplines {

/// ncells+1 uniformly spaced break points spanning [xmin, xmax].
std::vector<double> uniform_breaks(std::size_t ncells, double xmin, double xmax);

/// ncells+1 smoothly stretched break points spanning [xmin, xmax].
/// `strength` in [0, 1): 0 reproduces the uniform grid; larger values
/// concentrate cells near the domain center (steep-gradient region).
/// The map is s -> s - strength * sin(2*pi*s) / (2*pi) on the unit interval.
std::vector<double> stretched_breaks(std::size_t ncells, double xmin,
                                     double xmax, double strength = 0.5);

/// ncells+1 break points refined near `x0` with refinement ratio `ratio`
/// (tanh packing), for sheath-like edge profiles.
std::vector<double> refined_breaks(std::size_t ncells, double xmin, double xmax,
                                   double x0, double ratio = 4.0);

} // namespace pspl::bsplines
