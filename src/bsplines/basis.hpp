// B-spline basis of arbitrary degree on uniform or non-uniform break
// points (Cox-de Boor recursion, de Boor's BSPLVB algorithm), with two
// boundary treatments:
//
//   Periodic -- knots wrap around the domain; nbasis == ncells. This is
//               the paper's case (tokamak angles are periodic) and yields
//               the banded+corners matrices of Fig. 1.
//   Clamped  -- open knot vector (end knots repeated degree+1 times);
//               nbasis == ncells + degree. This covers GYSELA's radial /
//               velocity dimensions; collocation at the Greville points
//               yields a plain banded matrix (no corners), exercising the
//               k = 0 path of the Schur solver.
//
// The class is cheap to copy (knot storage is a shared View) so it can be
// captured by value inside parallel kernels, which the batched spline
// evaluator relies on.
#pragma once

#include "parallel/view.hpp"

#include <cstddef>
#include <vector>

namespace pspl::bsplines {

enum class Boundary {
    Periodic,
    Clamped,
};

class BSplineBasis
{
public:
    /// Maximum supported spline degree (stack scratch inside kernels).
    static constexpr int max_degree = 9;

    BSplineBasis() = default;

    /// Basis on the given break points (breaks.front() = xmin,
    /// breaks.back() = xmax).
    BSplineBasis(int degree, const std::vector<double>& breaks, bool uniform,
                 Boundary boundary);

    static BSplineBasis uniform(int degree, std::size_t ncells, double xmin,
                                double xmax);
    static BSplineBasis non_uniform(int degree,
                                    const std::vector<double>& breaks);
    static BSplineBasis clamped_uniform(int degree, std::size_t ncells,
                                        double xmin, double xmax);
    static BSplineBasis clamped_non_uniform(int degree,
                                            const std::vector<double>& breaks);

    int degree() const { return m_degree; }
    std::size_t ncells() const { return m_ncells; }
    /// Number of basis functions: ncells (periodic) or ncells + degree
    /// (clamped).
    std::size_t nbasis() const
    {
        return m_periodic ? m_ncells
                          : m_ncells + static_cast<std::size_t>(m_degree);
    }
    double xmin() const { return m_xmin; }
    double xmax() const { return m_xmax; }
    double length() const { return m_xmax - m_xmin; }
    bool is_uniform() const { return m_uniform; }
    bool is_periodic() const { return m_periodic; }
    Boundary boundary() const
    {
        return m_periodic ? Boundary::Periodic : Boundary::Clamped;
    }

    /// Knot t_i for i in [-degree, ncells+degree] (periodic extension or
    /// clamped repetition).
    double knot(long i) const
    {
        return m_knots(static_cast<std::size_t>(i + m_degree));
    }

    /// Break point c in [0, ncells].
    double break_point(std::size_t c) const
    {
        return m_knots(static_cast<std::size_t>(m_degree) + c);
    }

    /// Map x into the principal domain: periodic wrap, or clamp to
    /// [xmin, xmax] for clamped bases.
    double wrap(double x) const;

    /// Index of the cell containing wrap(x), in [0, ncells).
    std::size_t find_cell(double x_wrapped) const;

    /// Map a raw basis index (as returned via jmin from eval_basis) to the
    /// storage index in [0, nbasis): modulo for periodic, +degree shift for
    /// clamped.
    std::size_t basis_index(long j) const
    {
        if (m_periodic) {
            const auto n = static_cast<long>(nbasis());
            return static_cast<std::size_t>(((j % n) + n) % n);
        }
        return static_cast<std::size_t>(j + m_degree);
    }

    /// Evaluate the degree+1 basis functions that are non-zero at x.
    /// vals[r] = N_{jmin+r}(x); returns the raw index jmin (feed jmin+r
    /// through basis_index() for storage indexing).
    long eval_basis(double x, double* vals) const;

    /// Same for first derivatives: dvals[r] = N'_{jmin+r}(x).
    long eval_deriv(double x, double* dvals) const;

    /// m-th derivatives of the degree+1 basis functions non-zero at x
    /// (m = 0 reduces to eval_basis). Needed for Hermite boundary
    /// conditions, which constrain derivatives up to order (degree-1)/2.
    long eval_deriv_order(double x, int m, double* dvals) const;

    /// Greville abscissa of basis function i in [0, nbasis):
    /// (t_{j+1} + ... + t_{j+degree}) / degree for the raw index j of i.
    /// These are the interpolation (collocation) points.
    double greville(std::size_t i) const;

    /// All nbasis interpolation points, in basis order.
    std::vector<double> interpolation_points() const;

    /// Integral of basis function i over the domain:
    /// (t_{j+degree+1} - t_j) / (degree + 1). Used for spline quadrature.
    double basis_integral(std::size_t i) const;

private:
    int m_degree = 0;
    std::size_t m_ncells = 0;
    double m_xmin = 0.0;
    double m_xmax = 1.0;
    double m_inv_dx = 1.0; ///< only meaningful when uniform
    bool m_uniform = true;
    bool m_periodic = true;
    View1D<double> m_knots; ///< size ncells + 2*degree + 1; index i+degree
};

} // namespace pspl::bsplines
