#include "bsplines/knots.hpp"

#include "parallel/macros.hpp"

#include <cmath>
#include <numbers>

namespace pspl::bsplines {

std::vector<double> uniform_breaks(std::size_t ncells, double xmin, double xmax)
{
    PSPL_EXPECT(ncells >= 1 && xmax > xmin, "uniform_breaks: bad arguments");
    std::vector<double> b(ncells + 1);
    const double dx = (xmax - xmin) / static_cast<double>(ncells);
    for (std::size_t i = 0; i <= ncells; ++i) {
        b[i] = xmin + dx * static_cast<double>(i);
    }
    b[ncells] = xmax;
    return b;
}

std::vector<double> stretched_breaks(std::size_t ncells, double xmin,
                                     double xmax, double strength)
{
    PSPL_EXPECT(strength >= 0.0 && strength < 1.0,
                "stretched_breaks: strength must be in [0, 1)");
    std::vector<double> b(ncells + 1);
    const double two_pi = 2.0 * std::numbers::pi;
    for (std::size_t i = 0; i <= ncells; ++i) {
        const double s = static_cast<double>(i) / static_cast<double>(ncells);
        const double t = s - strength * std::sin(two_pi * s) / two_pi;
        b[i] = xmin + (xmax - xmin) * t;
    }
    b[0] = xmin;
    b[ncells] = xmax;
    return b;
}

std::vector<double> refined_breaks(std::size_t ncells, double xmin, double xmax,
                                   double x0, double ratio)
{
    PSPL_EXPECT(ratio >= 1.0, "refined_breaks: ratio must be >= 1");
    PSPL_EXPECT(x0 > xmin && x0 < xmax, "refined_breaks: x0 outside domain");
    // Integrate a smooth density that is `ratio` times larger at x0 than at
    // the domain edges, then invert it numerically on a fine grid.
    const std::size_t fine = 64 * ncells;
    const double width = 0.1 * (xmax - xmin);
    std::vector<double> cdf(fine + 1, 0.0);
    auto density = [&](double x) {
        const double d = (x - x0) / width;
        return 1.0 + (ratio - 1.0) * std::exp(-d * d);
    };
    const double h = (xmax - xmin) / static_cast<double>(fine);
    for (std::size_t i = 1; i <= fine; ++i) {
        const double xl = xmin + h * static_cast<double>(i - 1);
        cdf[i] = cdf[i - 1] + 0.5 * h * (density(xl) + density(xl + h));
    }
    std::vector<double> b(ncells + 1);
    b[0] = xmin;
    b[ncells] = xmax;
    std::size_t k = 0;
    for (std::size_t i = 1; i < ncells; ++i) {
        const double target =
                cdf[fine] * static_cast<double>(i) / static_cast<double>(ncells);
        while (k < fine && cdf[k + 1] < target) {
            ++k;
        }
        const double frac = (target - cdf[k]) / (cdf[k + 1] - cdf[k]);
        b[i] = xmin + h * (static_cast<double>(k) + frac);
    }
    return b;
}

} // namespace pspl::bsplines
