#include "bsplines/basis.hpp"

#include "bsplines/knots.hpp"
#include "parallel/macros.hpp"

#include <cmath>

namespace pspl::bsplines {

BSplineBasis::BSplineBasis(int degree, const std::vector<double>& breaks,
                           bool uniform, Boundary boundary)
    : m_degree(degree)
    , m_ncells(breaks.size() - 1)
    , m_xmin(breaks.front())
    , m_xmax(breaks.back())
    , m_uniform(uniform)
    , m_periodic(boundary == Boundary::Periodic)
{
    PSPL_EXPECT(degree >= 1 && degree <= max_degree,
                "BSplineBasis: unsupported degree");
    PSPL_EXPECT(breaks.size() >= 2, "BSplineBasis: need at least one cell");
    if (m_periodic) {
        PSPL_EXPECT(m_ncells > static_cast<std::size_t>(degree),
                    "BSplineBasis: periodic splines need ncells > degree");
    }
    for (std::size_t c = 0; c + 1 < breaks.size(); ++c) {
        PSPL_EXPECT(breaks[c + 1] > breaks[c],
                    "BSplineBasis: breaks must be strictly increasing");
    }
    const double length = m_xmax - m_xmin;
    m_inv_dx = static_cast<double>(m_ncells) / length;

    const std::size_t p = static_cast<std::size_t>(degree);
    m_knots = View1D<double>("bspline_knots", m_ncells + 2 * p + 1);
    // Principal knots.
    for (std::size_t c = 0; c <= m_ncells; ++c) {
        m_knots(p + c) = breaks[c];
    }
    // Padding: periodic extension, or clamped (open knot vector) repetition.
    for (std::size_t j = 1; j <= p; ++j) {
        if (m_periodic) {
            m_knots(p - j) = breaks[m_ncells - j] - length;
            m_knots(p + m_ncells + j) = breaks[j] + length;
        } else {
            m_knots(p - j) = m_xmin;
            m_knots(p + m_ncells + j) = m_xmax;
        }
    }
}

BSplineBasis BSplineBasis::uniform(int degree, std::size_t ncells, double xmin,
                                   double xmax)
{
    return BSplineBasis(degree, uniform_breaks(ncells, xmin, xmax), true,
                        Boundary::Periodic);
}

BSplineBasis BSplineBasis::non_uniform(int degree,
                                       const std::vector<double>& breaks)
{
    return BSplineBasis(degree, breaks, false, Boundary::Periodic);
}

BSplineBasis BSplineBasis::clamped_uniform(int degree, std::size_t ncells,
                                           double xmin, double xmax)
{
    return BSplineBasis(degree, uniform_breaks(ncells, xmin, xmax), true,
                        Boundary::Clamped);
}

BSplineBasis
BSplineBasis::clamped_non_uniform(int degree,
                                  const std::vector<double>& breaks)
{
    return BSplineBasis(degree, breaks, false, Boundary::Clamped);
}

double BSplineBasis::wrap(double x) const
{
    if (!m_periodic) {
        if (x < m_xmin) {
            return m_xmin;
        }
        if (x > m_xmax) {
            return m_xmax;
        }
        return x;
    }
    const double length = m_xmax - m_xmin;
    double t = x - length * std::floor((x - m_xmin) / length);
    if (t >= m_xmax) {
        t = m_xmin; // guard against floating-point round-up at the seam
    }
    return t;
}

std::size_t BSplineBasis::find_cell(double x_wrapped) const
{
    if (m_uniform) {
        auto c = static_cast<long>((x_wrapped - m_xmin) * m_inv_dx);
        if (c < 0) {
            c = 0;
        }
        if (c >= static_cast<long>(m_ncells)) {
            c = static_cast<long>(m_ncells) - 1;
        }
        // Uniform arithmetic can land one cell off at boundaries.
        while (c > 0 && x_wrapped < break_point(static_cast<std::size_t>(c))) {
            --c;
        }
        while (c + 1 < static_cast<long>(m_ncells)
               && x_wrapped >= break_point(static_cast<std::size_t>(c) + 1)) {
            ++c;
        }
        return static_cast<std::size_t>(c);
    }
    // Binary search over break points.
    std::size_t lo = 0;
    std::size_t hi = m_ncells; // invariant: break(lo) <= x < break(hi)
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (x_wrapped < break_point(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return lo;
}

long BSplineBasis::eval_basis(double x, double* vals) const
{
    const double xw = wrap(x);
    const auto icell = static_cast<long>(find_cell(xw));
    const int p = m_degree;

    // The Cox-de Boor ratios are invariant under a common scaling of the
    // knot differences. On a uniform grid we therefore work in cell-local
    // units (u in [0, 1) within the cell): this keeps the values exactly
    // identical across rows (no O(n*eps) drift), which the collocation
    // matrix structure analysis relies on. Clamped bases have repeated end
    // knots, so the shortcut only applies away from the boundary cells.
    const bool cell_units =
            m_uniform
            && (m_periodic
                || (icell >= p
                    && icell + p <= static_cast<long>(m_ncells)));
    double u = 0.0;
    if (cell_units) {
        const double h = break_point(static_cast<std::size_t>(icell) + 1)
                         - break_point(static_cast<std::size_t>(icell));
        u = (xw - break_point(static_cast<std::size_t>(icell))) / h;
    }

    double left[max_degree + 1];
    double right[max_degree + 1];
    vals[0] = 1.0;
    for (int j = 0; j < p; ++j) {
        if (cell_units) {
            left[j] = u + static_cast<double>(j);
            right[j] = (1.0 - u) + static_cast<double>(j);
        } else {
            left[j] = xw - knot(icell - j);
            right[j] = knot(icell + j + 1) - xw;
        }
        double saved = 0.0;
        for (int r = 0; r <= j; ++r) {
            const double temp = vals[r] / (right[r] + left[j - r]);
            vals[r] = saved + right[r] * temp;
            saved = left[j - r] * temp;
        }
        vals[j + 1] = saved;
    }
    return icell - p;
}

long BSplineBasis::eval_deriv(double x, double* dvals) const
{
    const double xw = wrap(x);
    const auto icell = static_cast<long>(find_cell(xw));
    const int p = m_degree;

    // Evaluate the p lower-degree (p-1) basis functions non-zero at x:
    // lower[s] = N_{icell-p+1+s, p-1}(x).
    double lower[max_degree + 1];
    double left[max_degree + 1];
    double right[max_degree + 1];
    lower[0] = 1.0;
    for (int j = 0; j < p - 1; ++j) {
        left[j] = xw - knot(icell - j);
        right[j] = knot(icell + j + 1) - xw;
        double saved = 0.0;
        for (int r = 0; r <= j; ++r) {
            const double temp = lower[r] / (right[r] + left[j - r]);
            lower[r] = saved + right[r] * temp;
            saved = left[j - r] * temp;
        }
        lower[j + 1] = saved;
    }

    // N'_{i,p} = p * ( N_{i,p-1}/(t_{i+p}-t_i) - N_{i+1,p-1}/(t_{i+p+1}-t_{i+1}) )
    // Repeated clamped knots make some denominators zero; the corresponding
    // lower-degree basis function vanishes there, so the term is dropped.
    const auto dp = static_cast<double>(p);
    for (int r = 0; r <= p; ++r) {
        const long i = icell - p + r;
        const double denom_a = knot(i + p) - knot(i);
        const double denom_b = knot(i + p + 1) - knot(i + 1);
        const double a =
                (r > 0 && denom_a > 0.0) ? lower[r - 1] / denom_a : 0.0;
        const double b = (r < p && denom_b > 0.0) ? lower[r] / denom_b : 0.0;
        dvals[r] = dp * (a - b);
    }
    return icell - p;
}

long BSplineBasis::eval_deriv_order(double x, int m, double* dvals) const
{
    PSPL_EXPECT(m >= 0 && m <= m_degree,
                "eval_deriv_order: order must be in [0, degree]");
    if (m == 0) {
        return eval_basis(x, dvals);
    }
    const double xw = wrap(x);
    const auto icell = static_cast<long>(find_cell(xw));
    const int p = m_degree;

    // Evaluate the degree (p-m) basis: work[s] = N_{icell-(p-m)+s, p-m}(x).
    double work[max_degree + 1];
    double next[max_degree + 1];
    double left[max_degree + 1];
    double right[max_degree + 1];
    work[0] = 1.0;
    for (int j = 0; j < p - m; ++j) {
        left[j] = xw - knot(icell - j);
        right[j] = knot(icell + j + 1) - xw;
        double saved = 0.0;
        for (int r = 0; r <= j; ++r) {
            const double temp = work[r] / (right[r] + left[j - r]);
            work[r] = saved + right[r] * temp;
            saved = left[j - r] * temp;
        }
        work[j + 1] = saved;
    }

    // Raise the degree one level at a time, differentiating:
    //   N^{(k)}_{i,q} = q * ( N^{(k-1)}_{i,q-1}/(t_{i+q}-t_i)
    //                       - N^{(k-1)}_{i+1,q-1}/(t_{i+q+1}-t_{i+1}) ).
    // Repeated clamped end knots give zero denominators exactly where the
    // corresponding lower-degree function vanishes; drop those terms.
    for (int q = p - m + 1; q <= p; ++q) {
        for (int r = 0; r <= q; ++r) {
            const long i = icell - q + r;
            const double denom_a = knot(i + q) - knot(i);
            const double denom_b = knot(i + q + 1) - knot(i + 1);
            const double a = (r > 0 && denom_a > 0.0)
                                     ? work[r - 1] / denom_a
                                     : 0.0;
            const double b = (r < q && denom_b > 0.0) ? work[r] / denom_b
                                                      : 0.0;
            next[r] = static_cast<double>(q) * (a - b);
        }
        for (int r = 0; r <= q; ++r) {
            work[r] = next[r];
        }
    }
    for (int r = 0; r <= p; ++r) {
        dvals[r] = work[r];
    }
    return icell - p;
}

double BSplineBasis::greville(std::size_t i) const
{
    // Raw basis index: periodic representatives are 0..ncells-1; clamped
    // bases run from -degree.
    const long j = m_periodic ? static_cast<long>(i)
                              : static_cast<long>(i) - m_degree;
    if (m_uniform && m_periodic) {
        // On a uniform periodic grid the Greville mean lands exactly on a
        // knot (odd degree) or a cell midpoint (even degree). Snap to the
        // stored break points so the collocation matrix is exactly
        // symmetric -- evaluating the averaged-and-wrapped float instead
        // would inject O(n*eps) asymmetry that confuses the structure
        // analysis.
        const double pos = static_cast<double>(i)
                           + 0.5 * static_cast<double>(m_degree + 1);
        double cells = std::fmod(pos, static_cast<double>(m_ncells));
        const double r = std::round(cells);
        if (std::abs(cells - r) < 0.25) {
            auto c = static_cast<std::size_t>(r);
            if (c >= m_ncells) {
                c = 0;
            }
            return break_point(c);
        }
        const auto c = static_cast<std::size_t>(cells);
        return 0.5 * (break_point(c) + break_point(c + 1));
    }
    double acc = 0.0;
    for (int s = 1; s <= m_degree; ++s) {
        acc += knot(j + s);
    }
    return wrap(acc / static_cast<double>(m_degree));
}

std::vector<double> BSplineBasis::interpolation_points() const
{
    std::vector<double> pts(nbasis());
    for (std::size_t i = 0; i < nbasis(); ++i) {
        pts[i] = greville(i);
    }
    return pts;
}

double BSplineBasis::basis_integral(std::size_t i) const
{
    const long j = m_periodic ? static_cast<long>(i)
                              : static_cast<long>(i) - m_degree;
    return (knot(j + m_degree + 1) - knot(j))
           / static_cast<double>(m_degree + 1);
}

} // namespace pspl::bsplines
