// Assembly of the periodic spline collocation (interpolation) matrix
// A[i][j] = N_j(x_i) at the Greville points (paper Eq. 2, Fig. 1).
//
// A is small (n x n with n ~ 10^3) and fixed in time, so dense host assembly
// followed by structure analysis + factorization is the paper's strategy.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/view.hpp"

#include <string>
#include <vector>

namespace pspl::bsplines {

/// Dense collocation matrix at the basis' own interpolation points.
View2D<double> collocation_matrix(const BSplineBasis& basis);

/// Dense collocation matrix at caller-provided points (size nbasis).
View2D<double> collocation_matrix(const BSplineBasis& basis,
                                  const std::vector<double>& points);

/// ASCII sparsity pattern ('*' nonzero, '.' zero), Fig. 1 style.
std::string sparsity_pattern(const View2D<double>& a, double threshold = 1e-14);

} // namespace pspl::bsplines
