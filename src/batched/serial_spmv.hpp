// Batched-serial sparse matrix-vector product over COO storage: the
// gemv -> spmv optimization of paper §IV-D (Listing 6). The loop runs over
// the nnz entries only, which for the Schur corner blocks cuts the operation
// count by orders of magnitude.
#pragma once

#include "parallel/macros.hpp"
#include "sparse/coo.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialSpmvCoo {
    /// y += alpha * A * x, A in COO format; x and y may be strided rank-1
    /// subviews of the right-hand-side block.
    template <typename XViewType, typename YViewType>
    PSPL_INLINE_FUNCTION static int invoke(const double alpha,
                                           const sparse::Coo& a,
                                           const XViewType& x,
                                           const YViewType& y)
    {
        const auto& rows = a.rows_idx();
        const auto& cols = a.cols_idx();
        const auto& vals = a.values();
        for (std::size_t nz = 0; nz < a.nnz(); ++nz) {
            const auto r = static_cast<std::size_t>(rows(nz));
            const auto c = static_cast<std::size_t>(cols(nz));
            y(r) += alpha * vals(nz) * x(c);
        }
        return 0;
    }
};

} // namespace pspl::batched
