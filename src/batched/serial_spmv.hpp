// Batched-serial sparse matrix-vector product over COO storage: the
// gemv -> spmv optimization of paper §IV-D (Listing 6). The loop runs over
// the nnz entries only, which for the Schur corner blocks cuts the operation
// count by orders of magnitude.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"
#include "sparse/coo.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialSpmvCooInternal {
    /// Matrix values and x/y carry separate value types so the shared
    /// scalar COO block can drive pack-typed x/y (SIMD-across-batch). The
    /// raw restrict-qualified pointers matter here: without them the
    /// indirect y(r) store forces the compiler to reload vals/x each
    /// iteration, blocking autovectorization of the scalar path.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int nnz, const int* PSPL_RESTRICT rows, const int rs0,
           const int* PSPL_RESTRICT cols, const int cs0,
           const AValueType* PSPL_RESTRICT vals, const int vs0,
           const AValueType alpha, const BValueType* PSPL_RESTRICT x,
           const int xs0, BValueType* PSPL_RESTRICT y, const int ys0)
    {
        for (int nz = 0; nz < nnz; ++nz) {
            y[rows[nz * rs0] * ys0] +=
                    alpha * vals[nz * vs0] * x[cols[nz * cs0] * xs0];
        }
        return 0;
    }
};

struct SerialSpmvCoo {
    /// y += alpha * A * x, A in COO format at any stored precision
    /// (sparse::BasicCoo<double> on the FP64 ladder, BasicCoo<float> in the
    /// mixed-precision pipeline -- alpha is converted to the matrix value
    /// type, so the kernel arithmetic runs uniformly at the COO precision);
    /// x and y may be strided rank-1 subviews of the right-hand-side block
    /// (or pack spans in the SIMD path -- x and y must alias disjoint
    /// storage, which the Schur split b0/b1 guarantees).
    template <typename ScalarType, typename CooType, typename XViewType,
              typename YViewType>
    PSPL_INLINE_FUNCTION static int invoke(const ScalarType alpha,
                                           const CooType& a,
                                           const XViewType& x,
                                           const YViewType& y)
    {
        static_assert(KernelCooArg<CooType>,
                      "SerialSpmvCoo a must be a COO block "
                      "(sparse::BasicCoo-shaped: nnz()/rows_idx()/"
                      "cols_idx()/values() with rank-1 view-like arrays)");
        static_assert(KernelVectorArg<XViewType>
                              && KernelVectorArg<YViewType>,
                      "SerialSpmvCoo x and y must be rank-1 view-like: one "
                      "column each (subview a (n, batch) block first) or "
                      "pack spans");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<CooType>,
                                          kernel_element_t<YViewType>>,
                "SerialSpmvCoo: FP64 stored values driving an FP32 y would "
                "narrow every product implicitly -- store the COO block at "
                "FP32 or widen the vectors");
        const auto& rows = a.rows_idx();
        const auto& cols = a.cols_idx();
        const auto& vals = a.values();
        using AValue = typename CooType::value_type;
        return SerialSpmvCooInternal::invoke(
                static_cast<int>(a.nnz()), rows.data(),
                static_cast<int>(rows.stride(0)), cols.data(),
                static_cast<int>(cols.stride(0)), vals.data(),
                static_cast<int>(vals.stride(0)),
                static_cast<AValue>(alpha), x.data(),
                static_cast<int>(x.stride(0)), y.data(),
                static_cast<int>(y.stride(0)));
    }

    /// Cost of one COO SpMV with `nnz` stored entries into an m-row output:
    /// scale+multiply+accumulate per entry, gathered x reads, y updated in
    /// place (index and value arrays are shared across the batch).
    static constexpr KernelCost cost(std::size_t nnz, std::size_t m)
    {
        const auto nz = static_cast<double>(nnz);
        const auto md = static_cast<double>(m);
        return {3.0 * nz, 8.0 * nz + 16.0 * md};
    }
};

} // namespace pspl::batched
