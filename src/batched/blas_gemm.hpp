// Global (non-fused) GEMM used by the baseline spline builder, standing in
// for KokkosBlas::gemm in paper Listing 2: C = alpha*A*B + beta*C where B
// and C are (rows, batch) right-hand-side blocks. Parallelism is over the
// contiguous batch index, the GPU-coalesced mapping the paper uses.
#pragma once

#include "core/concepts.hpp"
#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <string_view>

namespace pspl::blas {

template <class Exec = DefaultExecutionSpace, BatchBlockView AView,
          BatchBlockView BView, BatchBlockView CView>
void gemm(std::string_view label, double alpha, const AView& a,
          const BView& b, double beta, const CView& c)
{
    const std::size_t m = a.extent(0);
    const std::size_t k = a.extent(1);
    const std::size_t batch = b.extent(1);
    PSPL_EXPECT(b.extent(0) == k && c.extent(0) == m && c.extent(1) == batch,
                "blas::gemm: extent mismatch");
    parallel_for(label, RangePolicy<Exec>(batch), [=](std::size_t col) {
        for (std::size_t i = 0; i < m; ++i) {
            double acc = 0.0;
            for (std::size_t l = 0; l < k; ++l) {
                acc += a(i, l) * b(l, col);
            }
            c(i, col) = alpha * acc + beta * c(i, col);
        }
    });
}

} // namespace pspl::blas
