// Batched-serial GTTRS: solve one general tridiagonal system with the
// pivoted LU factorization (from hostlapack::gttrf) in-place for a single
// right-hand side inside a parallel region. Complements SerialPttrs for
// tridiagonal matrices that are not symmetric positive definite.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialGttrsInternal {
    /// Factor arrays and RHS carry separate value types so the shared
    /// scalar factorization can drive a pack-typed RHS (SIMD-across-batch).
    /// The pivot branch depends only on ipiv, which is shared by every
    /// batch entry, so control flow stays batch-uniform.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const AValueType* PSPL_RESTRICT dl, const int dls0,
           const AValueType* PSPL_RESTRICT d, const int ds0,
           const AValueType* PSPL_RESTRICT du, const int dus0,
           const AValueType* PSPL_RESTRICT du2, const int du2s0,
           const int* PSPL_RESTRICT ipiv, const int ipivs0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        // Forward: apply L and the recorded interchanges.
        for (int i = 0; i + 1 < n; i++) {
            if (ipiv[i * ipivs0] == i) {
                b[(i + 1) * bs0] -= dl[i * dls0] * b[i * bs0];
            } else {
                const BValueType temp = b[i * bs0];
                b[i * bs0] = b[(i + 1) * bs0];
                b[(i + 1) * bs0] = temp - dl[i * dls0] * b[i * bs0];
            }
        }
        // Backward with U (d, du, du2).
        b[(n - 1) * bs0] /= d[(n - 1) * ds0];
        if (n > 1) {
            b[(n - 2) * bs0] = (b[(n - 2) * bs0]
                                - du[(n - 2) * dus0] * b[(n - 1) * bs0])
                               / d[(n - 2) * ds0];
        }
        for (int i = n - 3; i >= 0; i--) {
            b[i * bs0] = (b[i * bs0] - du[i * dus0] * b[(i + 1) * bs0]
                          - du2[i * du2s0] * b[(i + 2) * bs0])
                         / d[i * ds0];
        }
        return 0;
    }
};

struct SerialGttrsRecipInternal {
    /// Divide-free variant of the backward sweep: takes the precomputed
    /// reciprocal diagonal dinv[i] = 1 / d[i] so the loop-carried
    /// dependency runs at FMA latency instead of divide latency. Reserved
    /// for the reduced-precision pipeline (the FP64 ladder keeps the
    /// division form bitwise intact; the O(eps) reciprocal rounding is
    /// absorbed by the FP64 refinement loop).
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const AValueType* PSPL_RESTRICT dl, const int dls0,
           const AValueType* PSPL_RESTRICT dinv, const int ds0,
           const AValueType* PSPL_RESTRICT du, const int dus0,
           const AValueType* PSPL_RESTRICT du2, const int du2s0,
           const int* PSPL_RESTRICT ipiv, const int ipivs0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        for (int i = 0; i + 1 < n; i++) {
            if (ipiv[i * ipivs0] == i) {
                b[(i + 1) * bs0] -= dl[i * dls0] * b[i * bs0];
            } else {
                const BValueType temp = b[i * bs0];
                b[i * bs0] = b[(i + 1) * bs0];
                b[(i + 1) * bs0] = temp - dl[i * dls0] * b[i * bs0];
            }
        }
        b[(n - 1) * bs0] *= dinv[(n - 1) * ds0];
        if (n > 1) {
            b[(n - 2) * bs0] = (b[(n - 2) * bs0]
                                - du[(n - 2) * dus0] * b[(n - 1) * bs0])
                               * dinv[(n - 2) * ds0];
        }
        for (int i = n - 3; i >= 0; i--) {
            b[i * bs0] = (b[i * bs0] - du[i * dus0] * b[(i + 1) * bs0]
                          - du2[i * du2s0] * b[(i + 2) * bs0])
                         * dinv[i * ds0];
        }
        return 0;
    }
};

template <typename ArgTrans = Trans::NoTranspose,
          typename ArgAlgo = Algo::Getrs::Unblocked>
struct SerialGttrsRecip {
    template <typename DLView, typename DView, typename DUView,
              typename DU2View, typename PivView, typename BView>
    PSPL_INLINE_FUNCTION static int
    invoke(const DLView& dl, const DView& dinv, const DUView& du,
           const DU2View& du2, const PivView& ipiv, const BView& b)
    {
        static_assert(KernelVectorArg<DLView> && KernelVectorArg<DView>
                              && KernelVectorArg<DUView>
                              && KernelVectorArg<DU2View>
                              && KernelVectorArg<BView>,
                      "SerialGttrsRecip arguments must be rank-1 view-like "
                      "(tridiagonal factor arrays and one RHS column or pack "
                      "span)");
        static_assert(KernelPivotArg<PivView>,
                      "SerialGttrsRecip ipiv must be a rank-1 integer pivot "
                      "array");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<DView>,
                                          kernel_element_t<BView>>,
                "SerialGttrsRecip: FP64 factors driving an FP32 right-hand "
                "side would narrow every product implicitly -- use FP32 "
                "factors or widen the RHS");
        return SerialGttrsRecipInternal::invoke(
                static_cast<int>(dinv.extent(0)), dl.data(),
                static_cast<int>(dl.stride(0)), dinv.data(),
                static_cast<int>(dinv.stride(0)), du.data(),
                static_cast<int>(du.stride(0)), du2.data(),
                static_cast<int>(du2.stride(0)), ipiv.data(),
                static_cast<int>(ipiv.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Same operation count as SerialGttrs (divides traded for multiplies).
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {8.0 * nd, 16.0 * nd};
    }
};

template <typename ArgTrans = Trans::NoTranspose,
          typename ArgAlgo = Algo::Getrs::Unblocked>
struct SerialGttrs {
    template <typename DLView, typename DView, typename DUView,
              typename DU2View, typename PivView, typename BView>
    PSPL_INLINE_FUNCTION static int
    invoke(const DLView& dl, const DView& d, const DUView& du,
           const DU2View& du2, const PivView& ipiv, const BView& b)
    {
        static_assert(KernelVectorArg<DLView> && KernelVectorArg<DView>
                              && KernelVectorArg<DUView>
                              && KernelVectorArg<DU2View>
                              && KernelVectorArg<BView>,
                      "SerialGttrs arguments must be rank-1 view-like "
                      "(tridiagonal factor arrays and one RHS column or pack "
                      "span)");
        static_assert(KernelPivotArg<PivView>,
                      "SerialGttrs ipiv must be a rank-1 integer pivot "
                      "array");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<DView>,
                                          kernel_element_t<BView>>,
                "SerialGttrs: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly -- use FP32 factors "
                "or widen the RHS");
        return SerialGttrsInternal::invoke(
                static_cast<int>(d.extent(0)), dl.data(),
                static_cast<int>(dl.stride(0)), d.data(),
                static_cast<int>(d.stride(0)), du.data(),
                static_cast<int>(du.stride(0)), du2.data(),
                static_cast<int>(du2.stride(0)), ipiv.data(),
                static_cast<int>(ipiv.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Cost per RHS column of the pivoted tridiagonal LU solve: ~3 flops
    /// per forward step, ~5 per backward step (du2 fill-in); RHS streamed
    /// in and out once.
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {8.0 * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
