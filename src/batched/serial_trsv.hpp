// Batched-serial TRSV: dense triangular solve for one right-hand side
// inside a parallel region. The building block the higher-level solvers
// (getrs = P + unit-lower trsv + upper trsv) decompose into; exposed
// publicly because spline applications also need raw triangular solves
// (e.g. applying only the L or U factor during preconditioning research).
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>
#include <type_traits>

namespace pspl::batched {

struct Diag {
    struct Unit {
    };
    struct NonUnit {
    };
};

struct SerialTrsvInternal {
    template <typename ValueType>
    PSPL_INLINE_FUNCTION static int
    lower(const bool unit_diag, const int n, const ValueType* PSPL_RESTRICT a,
          const int as0, const int as1, ValueType* PSPL_RESTRICT b,
          const int bs0)
    {
        for (int i = 0; i < n; i++) {
            ValueType acc = b[i * bs0];
            for (int j = 0; j < i; j++) {
                acc -= a[i * as0 + j * as1] * b[j * bs0];
            }
            b[i * bs0] = unit_diag ? acc : acc / a[i * as0 + i * as1];
        }
        return 0;
    }

    template <typename ValueType>
    PSPL_INLINE_FUNCTION static int
    upper(const bool unit_diag, const int n, const ValueType* PSPL_RESTRICT a,
          const int as0, const int as1, ValueType* PSPL_RESTRICT b,
          const int bs0)
    {
        for (int i = n - 1; i >= 0; i--) {
            ValueType acc = b[i * bs0];
            for (int j = i + 1; j < n; j++) {
                acc -= a[i * as0 + j * as1] * b[j * bs0];
            }
            b[i * bs0] = unit_diag ? acc : acc / a[i * as0 + i * as1];
        }
        return 0;
    }
};

template <typename ArgUplo, typename ArgDiag = Diag::NonUnit>
struct SerialTrsv {
    template <typename AViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int invoke(const AViewType& a,
                                           const BViewType& b)
    {
        static_assert(KernelMatrixArg<AViewType>,
                      "SerialTrsv a must be a rank-2 view-like dense "
                      "triangular matrix");
        static_assert(KernelVectorArg<BViewType>,
                      "SerialTrsv b must be rank-1 view-like: one RHS "
                      "column (subview a (n, batch) block first)");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<AViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialTrsv: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly");
        constexpr bool unit = std::is_same_v<ArgDiag, Diag::Unit>;
        if constexpr (std::is_same_v<ArgUplo, Uplo::Lower>) {
            return SerialTrsvInternal::lower(
                    unit, static_cast<int>(a.extent(0)), a.data(),
                    static_cast<int>(a.stride(0)),
                    static_cast<int>(a.stride(1)), b.data(),
                    static_cast<int>(b.stride(0)));
        } else {
            return SerialTrsvInternal::upper(
                    unit, static_cast<int>(a.extent(0)), a.data(),
                    static_cast<int>(a.stride(0)),
                    static_cast<int>(a.stride(1)), b.data(),
                    static_cast<int>(b.stride(0)));
        }
    }

    /// Cost per RHS column of one dense triangular solve.
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {nd * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
