// Umbrella header for the batched-serial solver kernels (the paper's core
// contribution: getrs/gbtrs/pbtrs/pttrs in KokkosBatched Serial format).
#pragma once

#include "batched/blas_gemm.hpp"
#include "batched/kernel_traits.hpp"
#include "batched/serial_gbtrs.hpp"
#include "batched/serial_gemv.hpp"
#include "batched/serial_getrf.hpp"
#include "batched/serial_getrs.hpp"
#include "batched/serial_gttrs.hpp"
#include "batched/serial_pbtrs.hpp"
#include "batched/serial_pttrs.hpp"
#include "batched/serial_spmv.hpp"
#include "batched/serial_tbsv.hpp"
#include "batched/serial_trsv.hpp"
#include "batched/types.hpp"
