// Batched-serial GBTRS: solve one general banded system with the LU band
// factorization (from hostlapack::gbtrf) in-place for a single right-hand
// side inside a parallel region. Band storage is the LAPACK layout: entry
// (i, j) of the factored matrix lives at ab(kl+ku+i-j, j).
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialGbtrsInternal {
    /// Factor band and RHS carry separate value types so the shared scalar
    /// factorization can drive a pack-typed RHS (SIMD-across-batch). Pivot
    /// branches depend only on the shared ipiv, so control flow stays
    /// batch-uniform and whole packs are swapped.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const int kl, const int ku,
           const AValueType* PSPL_RESTRICT ab, const int abs0, const int abs1,
           const int* PSPL_RESTRICT ipiv, const int ipivs0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        const int kv = kl + ku;
        // Forward: apply the row interchanges and the unit-lower band L.
        if (kl > 0) {
            for (int j = 0; j < n - 1; j++) {
                const int p = ipiv[j * ipivs0];
                if (p != j) {
                    const BValueType t = b[j * bs0];
                    b[j * bs0] = b[p * bs0];
                    b[p * bs0] = t;
                }
                const int km = kl < n - 1 - j ? kl : n - 1 - j;
                const BValueType bj = b[j * bs0];
                for (int i = 1; i <= km; i++) {
                    b[(j + i) * bs0] -= ab[(kv + i) * abs0 + j * abs1] * bj;
                }
            }
        }
        // Backward: U has bandwidth kv.
        for (int j = n - 1; j >= 0; j--) {
            BValueType acc = b[j * bs0];
            const int reach = kv < n - 1 - j ? kv : n - 1 - j;
            for (int i = 1; i <= reach; i++) {
                acc -= ab[(kv - i) * abs0 + (j + i) * abs1] * b[(j + i) * bs0];
            }
            b[j * bs0] = acc / ab[kv * abs0 + j * abs1];
        }
        return 0;
    }
};

template <typename ArgTrans = Trans::NoTranspose,
          typename ArgAlgo = Algo::Gbtrs::Unblocked>
struct SerialGbtrs {
    /// `ab` is the (2*kl+ku+1, n) gbtrf factor; `ipiv` its pivot indices.
    template <typename ABViewType, typename PivViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int invoke(const ABViewType& ab, const int kl,
                                           const int ku,
                                           const PivViewType& ipiv,
                                           const BViewType& b)
    {
        static_assert(KernelMatrixArg<ABViewType>,
                      "SerialGbtrs ab must be a rank-2 view-like band "
                      "factor in (2*kl+ku+1, n) LAPACK band storage");
        static_assert(KernelPivotArg<PivViewType>,
                      "SerialGbtrs ipiv must be a rank-1 integer pivot "
                      "array");
        static_assert(KernelVectorArg<BViewType>,
                      "SerialGbtrs b must be rank-1 view-like: one RHS "
                      "column (subview a (n, batch) block first) or a pack "
                      "span");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<ABViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialGbtrs: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly -- use FP32 factors "
                "or widen the RHS");
        return SerialGbtrsInternal::invoke(
                static_cast<int>(ab.extent(1)), kl, ku, ab.data(),
                static_cast<int>(ab.stride(0)), static_cast<int>(ab.stride(1)),
                ipiv.data(), static_cast<int>(ipiv.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Cost per RHS column of the band LU solve: pivoted forward sweep over
    /// kl multipliers, backward sweep over the kl+ku fill-in band.
    static constexpr KernelCost cost(std::size_t n, int kl, int ku)
    {
        const auto nd = static_cast<double>(n);
        const double band = static_cast<double>(2 * kl + ku);
        return {(2.0 * band + 1.0) * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
