// Batched-serial GETRF: in-place dense LU with partial pivoting for ONE
// matrix inside a parallel region. This is the "classic" batched-LAPACK
// mode the paper contrasts with (§II-B: "most of the batched solvers are
// optimized to deal with multiple matrices as well as multiple right-hand
// sides"): every batch entry factorizes its own matrix. The spline problem
// has a single fixed matrix, which is why the paper factorizes once on the
// host instead -- bench_ablation_multimatrix quantifies that difference.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialGetrfInternal {
    template <typename ValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, ValueType* PSPL_RESTRICT a, const int as0,
           const int as1, int* PSPL_RESTRICT ipiv, const int ipivs0)
    {
        int info = 0;
        for (int k = 0; k < n; k++) {
            // Pivot search in column k.
            int p = k;
            ValueType pmax = a[k * as0 + k * as1];
            if (pmax < 0) {
                pmax = -pmax;
            }
            for (int i = k + 1; i < n; i++) {
                ValueType v = a[i * as0 + k * as1];
                if (v < 0) {
                    v = -v;
                }
                if (v > pmax) {
                    pmax = v;
                    p = i;
                }
            }
            ipiv[k * ipivs0] = p;
            if (pmax == ValueType(0)) {
                if (info == 0) {
                    info = k + 1;
                }
                continue;
            }
            if (p != k) {
                for (int j = 0; j < n; j++) {
                    const ValueType t = a[k * as0 + j * as1];
                    a[k * as0 + j * as1] = a[p * as0 + j * as1];
                    a[p * as0 + j * as1] = t;
                }
            }
            const ValueType inv_piv = ValueType(1) / a[k * as0 + k * as1];
            for (int i = k + 1; i < n; i++) {
                a[i * as0 + k * as1] *= inv_piv;
            }
            for (int i = k + 1; i < n; i++) {
                const ValueType lik = a[i * as0 + k * as1];
                if (lik != ValueType(0)) {
                    for (int j = k + 1; j < n; j++) {
                        a[i * as0 + j * as1] -= lik * a[k * as0 + j * as1];
                    }
                }
            }
        }
        return info;
    }
};

template <typename ArgAlgo = Algo::Getrs::Unblocked>
struct SerialGetrf {
    template <typename AViewType, typename PivViewType>
    PSPL_INLINE_FUNCTION static int invoke(const AViewType& a,
                                           const PivViewType& ipiv)
    {
        static_assert(KernelMatrixArg<AViewType>,
                      "SerialGetrf a must be a rank-2 view-like dense "
                      "matrix (factorized in place)");
        static_assert(KernelPivotArg<PivViewType>,
                      "SerialGetrf ipiv must be a rank-1 integer pivot "
                      "array");
        return SerialGetrfInternal::invoke(
                static_cast<int>(a.extent(0)), a.data(),
                static_cast<int>(a.stride(0)), static_cast<int>(a.stride(1)),
                ipiv.data(), static_cast<int>(ipiv.stride(0)));
    }

    /// Cost of one in-place n x n right-looking LU: the classic 2/3 n^3
    /// flop count; the trailing submatrix is re-read and re-written each of
    /// the n elimination steps, so traffic is modeled as 16 n^2 bytes
    /// (cache-resident per-matrix working set, matching how the other
    /// kernels count their streamed footprint).
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {2.0 / 3.0 * nd * nd * nd, 16.0 * nd * nd};
    }
};

} // namespace pspl::batched
