// Batched-serial TBSV: banded triangular solve for one right-hand side
// inside a parallel region, on LAPACK-style band storage. The band
// counterpart of SerialTrsv; pbtrs is exactly a lower tbsv followed by an
// upper (transposed) tbsv on the Cholesky band factor.
//
// Storage (lower): entry L(i, j), j <= i <= j+kd, lives at ab(i-j, j) of a
// (kd+1, n) view -- the hostlapack::SymBandMatrix layout.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>
#include <type_traits>

namespace pspl::batched {

struct SerialTbsvInternal {
    /// Solve L x = b with a lower band matrix in (kd+1, n) storage.
    template <typename ValueType>
    PSPL_INLINE_FUNCTION static int
    lower(const int n, const int kd, const ValueType* PSPL_RESTRICT ab,
          const int abs0, const int abs1, ValueType* PSPL_RESTRICT b,
          const int bs0)
    {
        for (int j = 0; j < n; j++) {
            const ValueType bj = b[j * bs0] / ab[j * abs1];
            b[j * bs0] = bj;
            const int km = kd < n - 1 - j ? kd : n - 1 - j;
            for (int i = 1; i <= km; i++) {
                b[(j + i) * bs0] -= ab[i * abs0 + j * abs1] * bj;
            }
        }
        return 0;
    }

    /// Solve L^T x = b with the same lower band factor (i.e. an upper
    /// banded solve against the stored transpose).
    template <typename ValueType>
    PSPL_INLINE_FUNCTION static int
    lower_transpose(const int n, const int kd,
                    const ValueType* PSPL_RESTRICT ab, const int abs0,
                    const int abs1, ValueType* PSPL_RESTRICT b, const int bs0)
    {
        for (int j = n - 1; j >= 0; j--) {
            ValueType acc = b[j * bs0];
            const int km = kd < n - 1 - j ? kd : n - 1 - j;
            for (int i = 1; i <= km; i++) {
                acc -= ab[i * abs0 + j * abs1] * b[(j + i) * bs0];
            }
            b[j * bs0] = acc / ab[j * abs1];
        }
        return 0;
    }
};

template <typename ArgUplo = Uplo::Lower,
          typename ArgTrans = Trans::NoTranspose>
struct SerialTbsv {
    /// `ab` is a (kd+1, n) lower band factor.
    template <typename ABViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int invoke(const ABViewType& ab,
                                           const BViewType& b)
    {
        static_assert(std::is_same_v<ArgUplo, Uplo::Lower>,
                      "only lower band storage is implemented");
        static_assert(KernelMatrixArg<ABViewType>,
                      "SerialTbsv ab must be a rank-2 view-like band factor "
                      "in (kd+1, n) lower band storage");
        static_assert(KernelVectorArg<BViewType>,
                      "SerialTbsv b must be rank-1 view-like: one RHS "
                      "column (subview a (n, batch) block first)");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<ABViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialTbsv: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly");
        if constexpr (std::is_same_v<ArgTrans, Trans::NoTranspose>) {
            return SerialTbsvInternal::lower(
                    static_cast<int>(ab.extent(1)),
                    static_cast<int>(ab.extent(0)) - 1, ab.data(),
                    static_cast<int>(ab.stride(0)),
                    static_cast<int>(ab.stride(1)), b.data(),
                    static_cast<int>(b.stride(0)));
        } else {
            return SerialTbsvInternal::lower_transpose(
                    static_cast<int>(ab.extent(1)),
                    static_cast<int>(ab.extent(0)) - 1, ab.data(),
                    static_cast<int>(ab.stride(0)),
                    static_cast<int>(ab.stride(1)), b.data(),
                    static_cast<int>(b.stride(0)));
        }
    }

    /// Cost per RHS column of one band triangular solve with bandwidth kd.
    static constexpr KernelCost cost(std::size_t n, std::size_t kd)
    {
        const auto nd = static_cast<double>(n);
        return {(2.0 * static_cast<double>(kd) + 1.0) * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
