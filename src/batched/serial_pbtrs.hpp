// Batched-serial PBTRS: solve one SPD banded system L*L^T x = b in-place for
// a single right-hand side inside a parallel region. The Cholesky band
// factor (lower storage, shape (kd+1, n)) comes from hostlapack::pbtrf and
// is shared across the batch.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialPbtrsInternal {
    /// Factor band and RHS carry separate value types so the shared scalar
    /// factorization can drive a pack-typed RHS (SIMD-across-batch).
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const int kd, const AValueType* PSPL_RESTRICT ab,
           const int abs0, const int abs1, BValueType* PSPL_RESTRICT b,
           const int bs0)
    {
        // L y = b (forward substitution over the band).
        for (int j = 0; j < n; j++) {
            const BValueType bj = b[j * bs0] / ab[j * abs1];
            b[j * bs0] = bj;
            const int km = kd < n - 1 - j ? kd : n - 1 - j;
            for (int i = 1; i <= km; i++) {
                b[(j + i) * bs0] -= ab[i * abs0 + j * abs1] * bj;
            }
        }
        // L^T x = y (backward substitution).
        for (int j = n - 1; j >= 0; j--) {
            BValueType acc = b[j * bs0];
            const int km = kd < n - 1 - j ? kd : n - 1 - j;
            for (int i = 1; i <= km; i++) {
                acc -= ab[i * abs0 + j * abs1] * b[(j + i) * bs0];
            }
            b[j * bs0] = acc / ab[j * abs1];
        }
        return 0;
    }
};

template <typename ArgUplo = Uplo::Lower,
          typename ArgAlgo = Algo::Pbtrs::Unblocked>
struct SerialPbtrs {
    /// `ab` is the (kd+1, n) lower band Cholesky factor; `b` one RHS.
    template <typename ABViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int invoke(const ABViewType& ab,
                                           const BViewType& b)
    {
        static_assert(KernelMatrixArg<ABViewType>,
                      "SerialPbtrs ab must be a rank-2 view-like band "
                      "factor in (kd+1, n) lower band storage");
        static_assert(KernelVectorArg<BViewType>,
                      "SerialPbtrs b must be rank-1 view-like: one RHS "
                      "column (subview a (n, batch) block first) or a pack "
                      "span");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<ABViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialPbtrs: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly -- use FP32 factors "
                "or widen the RHS");
        return SerialPbtrsInternal::invoke(
                static_cast<int>(ab.extent(1)),
                static_cast<int>(ab.extent(0)) - 1, ab.data(),
                static_cast<int>(ab.stride(0)), static_cast<int>(ab.stride(1)),
                b.data(), static_cast<int>(b.stride(0)));
    }

    /// Cost per RHS column of the band Cholesky solve with bandwidth kd:
    /// two band triangular sweeps of (2*kd + 1) flops per row.
    static constexpr KernelCost cost(std::size_t n, std::size_t kd)
    {
        const auto nd = static_cast<double>(n);
        return {(4.0 * static_cast<double>(kd) + 2.0) * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
