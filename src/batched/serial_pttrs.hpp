// Batched-serial PTTRS: solve one positive-definite symmetric tridiagonal
// system L*D*L^T x = b in-place, designed to be called for one right-hand
// side inside a parallel region (paper Listing 1). The factorization (d, e)
// is produced once on the host by hostlapack::pttrf and shared by every
// batch entry; only b differs per batch.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialPttrsInternal {
    /// Factor arrays and RHS carry separate value types so the shared
    /// scalar factorization can drive a pack-typed RHS
    /// (BValueType = simd<double, W>, SIMD-across-batch execution).
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const AValueType* PSPL_RESTRICT d, const int ds0,
           const AValueType* PSPL_RESTRICT e, const int es0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        // Solve A * x = b using the factorization L * D * L**T.
        for (int i = 1; i < n; i++) {
            b[i * bs0] -= e[(i - 1) * es0] * b[(i - 1) * bs0];
        }
        b[(n - 1) * bs0] /= d[(n - 1) * ds0];
        for (int i = n - 2; i >= 0; i--) {
            b[i * bs0] = b[i * bs0] / d[i * ds0] - b[(i + 1) * bs0] * e[i * es0];
        }
        return 0;
    }
};

struct SerialPttrsRecipInternal {
    /// Divide-free variant: takes the precomputed reciprocal diagonal
    /// dinv[i] = 1 / d[i] and replaces both divisions of the classic sweep
    /// with multiplies. The backward recurrence's loop-carried dependency
    /// then runs at FMA latency instead of divide latency, which is the
    /// dominant term of the batched solve on wide-SIMD hosts. Reserved for
    /// the reduced-precision pipeline: the FP64 ladder keeps the division
    /// form bitwise intact, and the O(eps) rounding difference of
    /// multiply-by-reciprocal is absorbed by the FP64 refinement loop.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const AValueType* PSPL_RESTRICT dinv, const int ds0,
           const AValueType* PSPL_RESTRICT e, const int es0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        for (int i = 1; i < n; i++) {
            b[i * bs0] -= e[(i - 1) * es0] * b[(i - 1) * bs0];
        }
        b[(n - 1) * bs0] *= dinv[(n - 1) * ds0];
        for (int i = n - 2; i >= 0; i--) {
            b[i * bs0] = b[i * bs0] * dinv[i * ds0]
                         - b[(i + 1) * bs0] * e[i * es0];
        }
        return 0;
    }
};

template <typename ArgUplo = Uplo::Lower,
          typename ArgAlgo = Algo::Pttrs::Unblocked>
struct SerialPttrsRecip {
    template <typename DViewType, typename EViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int
    invoke(const DViewType& dinv, const EViewType& e, const BViewType& b)
    {
        static_assert(KernelVectorArg<DViewType> && KernelVectorArg<EViewType>
                              && KernelVectorArg<BViewType>,
                      "SerialPttrsRecip arguments must be rank-1 view-like "
                      "(factor arrays dinv, e and one RHS column or pack "
                      "span)");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<DViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialPttrsRecip: FP64 factors driving an FP32 right-hand "
                "side would narrow every product implicitly -- use FP32 "
                "factors (SchurFloatFactors) or widen the RHS");
        return SerialPttrsRecipInternal::invoke(
                static_cast<int>(dinv.extent(0)), dinv.data(),
                static_cast<int>(dinv.stride(0)), e.data(),
                static_cast<int>(e.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Same operation count as SerialPttrs (a divide traded for a multiply).
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {5.0 * nd - 4.0, 16.0 * nd};
    }
};

template <typename ArgUplo = Uplo::Lower,
          typename ArgAlgo = Algo::Pttrs::Unblocked>
struct SerialPttrs {
    template <typename DViewType, typename EViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int
    invoke(const DViewType& d, const EViewType& e, const BViewType& b)
    {
        static_assert(KernelVectorArg<DViewType> && KernelVectorArg<EViewType>
                              && KernelVectorArg<BViewType>,
                      "SerialPttrs arguments must be rank-1 view-like (factor "
                      "arrays d, e and one RHS column or pack span)");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<DViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialPttrs: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly -- use FP32 factors "
                "(SchurFloatFactors) or widen the RHS");
        // For real symmetric matrices the Upper/Lower factorizations solve
        // identically; the tag is kept for LAPACK API fidelity.
        return SerialPttrsInternal::invoke(
                static_cast<int>(d.extent(0)), d.data(),
                static_cast<int>(d.stride(0)), e.data(),
                static_cast<int>(e.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Cost per RHS column: forward sweep 2(n-1), one divide, backward
    /// sweep 3(n-1); RHS streamed in and out once (factors shared).
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {5.0 * nd - 4.0, 16.0 * nd};
    }
};

} // namespace pspl::batched
