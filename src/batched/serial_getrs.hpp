// Batched-serial GETRS: solve one dense system with the LU factorization
// (from hostlapack::getrf, partial pivoting) in-place for a single
// right-hand side inside a parallel region. Used for the Schur complement
// block delta' in Algorithm 1.
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>

namespace pspl::batched {

struct SerialGetrsInternal {
    /// LU factor and RHS carry separate value types so the shared scalar
    /// factorization can drive a pack-typed RHS (SIMD-across-batch). Pivot
    /// branches depend only on the shared ipiv, so control flow stays
    /// batch-uniform and whole packs are swapped.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int n, const AValueType* PSPL_RESTRICT lu, const int as0,
           const int as1, const int* PSPL_RESTRICT ipiv, const int ipivs0,
           BValueType* PSPL_RESTRICT b, const int bs0)
    {
        // Apply row interchanges.
        for (int k = 0; k < n; k++) {
            const int p = ipiv[k * ipivs0];
            if (p != k) {
                const BValueType t = b[k * bs0];
                b[k * bs0] = b[p * bs0];
                b[p * bs0] = t;
            }
        }
        // Forward substitution with unit-diagonal L.
        for (int i = 1; i < n; i++) {
            BValueType acc = b[i * bs0];
            for (int j = 0; j < i; j++) {
                acc -= lu[i * as0 + j * as1] * b[j * bs0];
            }
            b[i * bs0] = acc;
        }
        // Backward substitution with U.
        for (int i = n - 1; i >= 0; i--) {
            BValueType acc = b[i * bs0];
            for (int j = i + 1; j < n; j++) {
                acc -= lu[i * as0 + j * as1] * b[j * bs0];
            }
            b[i * bs0] = acc / lu[i * as0 + i * as1];
        }
        return 0;
    }
};

template <typename ArgTrans = Trans::NoTranspose,
          typename ArgAlgo = Algo::Getrs::Unblocked>
struct SerialGetrs {
    template <typename LUViewType, typename PivViewType, typename BViewType>
    PSPL_INLINE_FUNCTION static int
    invoke(const LUViewType& lu, const PivViewType& ipiv, const BViewType& b)
    {
        static_assert(KernelMatrixArg<LUViewType>,
                      "SerialGetrs lu must be a rank-2 view-like dense LU "
                      "factor matrix");
        static_assert(KernelPivotArg<PivViewType>,
                      "SerialGetrs ipiv must be a rank-1 integer pivot "
                      "array");
        static_assert(KernelVectorArg<BViewType>,
                      "SerialGetrs b must be rank-1 view-like: one RHS "
                      "column (subview a (n, batch) block first) or a pack "
                      "span");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<LUViewType>,
                                          kernel_element_t<BViewType>>,
                "SerialGetrs: FP64 factors driving an FP32 right-hand side "
                "would narrow every product implicitly -- use FP32 factors "
                "(SchurFloatFactors) or widen the RHS");
        return SerialGetrsInternal::invoke(
                static_cast<int>(lu.extent(0)), lu.data(),
                static_cast<int>(lu.stride(0)), static_cast<int>(lu.stride(1)),
                ipiv.data(), static_cast<int>(ipiv.stride(0)), b.data(),
                static_cast<int>(b.stride(0)));
    }

    /// Cost per RHS column of the n x n LU solve: n^2 fma-pairs in each of
    /// the two substitution sweeps; RHS streamed in and out once.
    static constexpr KernelCost cost(std::size_t n)
    {
        const auto nd = static_cast<double>(n);
        return {2.0 * nd * nd, 16.0 * nd};
    }
};

} // namespace pspl::batched
