// Kernel-side concepts: the static contract every batched serial kernel
// (src/batched/serial_*.hpp) and its view-typed arguments must satisfy.
//
// The kernels are the paper's core abstraction -- stateless tag structs
// whose static invoke() runs allocation-free inside a parallel region on a
// shared factorization and one RHS column (scalar or simd pack). These
// concepts reject the misuses that used to surface as instantiation-stack
// walls: wrong-rank view arguments, FP64 factors silently narrowing into an
// FP32 right-hand side, stateful kernel types, and kernels missing the
// static cost() model the profiling layer attributes bandwidth with.
// PSPL_RESTRICT on the raw-pointer invoke parameters cannot be expressed in
// the type system; lint rule 4 (tools/lint_invariants.py) enforces it.
#pragma once

#include "batched/types.hpp"
#include "core/concepts.hpp"

#include <concepts>
#include <cstddef>
#include <type_traits>

namespace pspl {
template <class T, int W>
struct simd;
} // namespace pspl

namespace pspl::batched {

// ---------------------------------------------------------------------------
// Element scalars: unwrap simd packs so precision rules compare the
// underlying arithmetic type (simd<float, 8> mixes like float).
// ---------------------------------------------------------------------------

template <class X>
struct kernel_scalar {
    using type = std::remove_cv_t<X>;
};
template <class T, int W>
struct kernel_scalar<pspl::simd<T, W>> {
    using type = T;
};
template <class X>
using kernel_scalar_t = typename kernel_scalar<std::remove_cv_t<X>>::type;

/// Scalar element type of a view-like kernel argument (pack-unwrapped).
template <class V>
using kernel_element_t = kernel_scalar_t<typename V::value_type>;

// ---------------------------------------------------------------------------
// View-shaped kernel arguments.
// ---------------------------------------------------------------------------

/// Rank-1 argument of a serial kernel: a factor array, an RHS column
/// subview, or a PackSpan of staged packs. Consumed through
/// data()/extent(0)/stride(0) only.
template <class V>
concept KernelVectorArg = ViewOfRank<V, 1>;

/// Rank-2 argument of a serial kernel: a dense factor matrix (lu, ab) or
/// banded storage, consumed through data()/extent/stride pairs.
template <class V>
concept KernelMatrixArg = ViewOfRank<V, 2>;

/// Rank-1 integer pivot array (getrs/getrf/gttrs ipiv).
template <class V>
concept KernelPivotArg =
        KernelVectorArg<V> && std::integral<kernel_element_t<V>>;

/// COO block argument of the spmv kernel (sparse::BasicCoo at any stored
/// precision): index arrays plus a value array, each rank-1 view-like.
template <class C>
concept KernelCooArg = requires(const C& c) {
    typename C::value_type;
    { c.nnz() } -> std::convertible_to<std::size_t>;
    { c.rows_idx() };
    { c.cols_idx() };
    { c.values() };
} && KernelVectorArg<std::remove_cvref_t<decltype(std::declval<const C&>()
                                                          .values())>>;

// ---------------------------------------------------------------------------
// Precision mixing.
//
// A kernel's factor/matrix scalar (AValueType) multiplies into its RHS
// element (BValueType). Widening (float factors driving double packs) is
// exact; the reverse -- FP64 factors driving an FP32 RHS -- would narrow
// every product implicitly, which is precisely the defect class lint rule 9
// and clang-tidy's bugprone-narrowing-conversions police inside the kernel
// bodies. The concept rejects it at the wrapper signature.
// ---------------------------------------------------------------------------

template <class AScalar, class BScalar>
concept KernelPrecisionCompatible =
        !(std::is_floating_point_v<AScalar> && std::is_floating_point_v<BScalar>
          && (sizeof(AScalar) > sizeof(BScalar)));

// ---------------------------------------------------------------------------
// The kernel contract itself.
// ---------------------------------------------------------------------------

/// Kernels are stateless tag types: no data members (state would be shared
/// by every batch entry and could not stay allocation-free), and a static
/// invoke() over the given view arguments returning the LAPACK-style int
/// info code.
template <class K, class... Views>
concept BatchedSerialKernel =
        std::is_empty_v<K> && requires(const Views&... vs) {
            { K::invoke(vs...) } -> std::same_as<int>;
        };

/// Static cost model: constexpr cost(...) -> KernelCost with the kernel's
/// hand-counted flops/bytes (the profiling layer derives achieved bandwidth
/// from it). Arity varies with the kernel's shape parameters: (n),
/// (n, kd) / (m, n), or (n, kl, ku). The bool_constant trick forces the
/// call into a constant expression, so a non-constexpr cost() fails the
/// concept, not just the eventual constant-evaluated use.
template <class K>
concept HasUnaryCostModel = requires {
    { K::cost(std::size_t{2}) } -> std::same_as<KernelCost>;
    typename std::bool_constant<(K::cost(std::size_t{2}).flops >= 0.0)>;
};

template <class K>
concept HasBinaryCostModel = requires {
    { K::cost(std::size_t{2}, std::size_t{1}) } -> std::same_as<KernelCost>;
    typename std::bool_constant<(
            K::cost(std::size_t{2}, std::size_t{1}).flops >= 0.0)>;
};

template <class K>
concept HasTernaryCostModel = requires {
    { K::cost(std::size_t{2}, 1, 1) } -> std::same_as<KernelCost>;
    typename std::bool_constant<(K::cost(std::size_t{2}, 1, 1).flops >= 0.0)>;
};

template <class K>
concept KernelCostModel =
        HasUnaryCostModel<K> || HasBinaryCostModel<K> || HasTernaryCostModel<K>;

/// Message-carrying validator: instantiate in a constant expression
/// (static_assert(validate_batched_kernel<K, Views...>())) to check a
/// user-defined kernel against the full contract with human-readable
/// diagnostics instead of a bare concept failure.
template <class K, class... Views>
consteval bool validate_batched_kernel()
{
    static_assert(std::is_empty_v<K>,
                  "BatchedSerialKernel: kernels must be stateless tag types "
                  "(no data members) -- per-kernel state would be shared "
                  "across batch entries and kernels must stay "
                  "allocation-free inside parallel regions");
    static_assert(requires(const Views&... vs) {
                      { K::invoke(vs...) } -> std::same_as<int>;
                  },
                  "BatchedSerialKernel: missing a static invoke(views...) "
                  "returning int (the LAPACK-style info code) for these "
                  "argument types");
    static_assert(KernelCostModel<K>,
                  "BatchedSerialKernel: missing a constexpr static "
                  "cost(...) -> KernelCost model -- every kernel carries "
                  "its hand-counted flops/bytes so the profiling layer can "
                  "attribute achieved bandwidth");
    return true;
}

} // namespace pspl::batched
