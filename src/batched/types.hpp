// Tag types mirroring the KokkosBatched template vocabulary (Trans, Uplo,
// Algo) so the solver call sites read like the paper's listings.
#pragma once

namespace pspl::batched {

struct Trans {
    struct NoTranspose {
    };
    struct Transpose {
    };
};

struct Uplo {
    struct Lower {
    };
    struct Upper {
    };
};

struct Algo {
    struct Pttrs {
        struct Unblocked {
        };
    };
    struct Pbtrs {
        struct Unblocked {
        };
    };
    struct Gbtrs {
        struct Unblocked {
        };
    };
    struct Getrs {
        struct Unblocked {
        };
    };
    struct Gemv {
        struct Unblocked {
        };
    };
};

} // namespace pspl::batched
