// Tag types mirroring the KokkosBatched template vocabulary (Trans, Uplo,
// Algo) so the solver call sites read like the paper's listings.
#pragma once

namespace pspl::batched {

/// Hand-counted cost model of one serial-kernel invocation on one RHS
/// column (the paper hand-counts the same way in §V-B). `bytes` follows the
/// perfect-cache convention: only RHS traffic is charged (factor/matrix
/// data is shared by every batch entry and assumed cache-resident), so the
/// derived bandwidth is comparable with the paper's 8-bytes-per-point
/// figures. The SIMD paths multiply by live lanes at the call site.
struct KernelCost {
    double flops = 0.0;
    double bytes = 0.0;

    constexpr KernelCost& operator+=(const KernelCost& o)
    {
        flops += o.flops;
        bytes += o.bytes;
        return *this;
    }
    friend constexpr KernelCost operator*(KernelCost c, double s)
    {
        return {c.flops * s, c.bytes * s};
    }
    friend constexpr KernelCost operator+(KernelCost a, const KernelCost& b)
    {
        return a += b;
    }
};

struct Trans {
    struct NoTranspose {
    };
    struct Transpose {
    };
};

struct Uplo {
    struct Lower {
    };
    struct Upper {
    };
};

struct Algo {
    struct Pttrs {
        struct Unblocked {
        };
    };
    struct Pbtrs {
        struct Unblocked {
        };
    };
    struct Gbtrs {
        struct Unblocked {
        };
    };
    struct Getrs {
        struct Unblocked {
        };
    };
    struct Gemv {
        struct Unblocked {
        };
    };
};

} // namespace pspl::batched
