// Batched-serial GEMV: y = alpha*A*x + beta*y for one right-hand side inside
// a parallel region (the kernel-fusion replacement for the baseline's global
// GEMM, paper Listing 4).
#pragma once

#include "batched/kernel_traits.hpp"
#include "batched/types.hpp"
#include "parallel/macros.hpp"

#include <cstddef>
#include <type_traits>

namespace pspl::batched {

struct SerialGemvInternal {
    /// Matrix/scalars and vectors carry separate value types so the shared
    /// scalar matrix can drive pack-typed x/y (SIMD-across-batch): the
    /// accumulator is then a pack and every a_ij broadcasts across lanes.
    template <typename AValueType, typename BValueType>
    PSPL_INLINE_FUNCTION static int
    invoke(const int m, const int n, const AValueType alpha,
           const AValueType* PSPL_RESTRICT a, const int as0, const int as1,
           const BValueType* PSPL_RESTRICT x, const int xs0,
           const AValueType beta, BValueType* PSPL_RESTRICT y, const int ys0)
    {
        for (int i = 0; i < m; i++) {
            BValueType acc = 0;
            for (int j = 0; j < n; j++) {
                acc += a[i * as0 + j * as1] * x[j * xs0];
            }
            y[i * ys0] = alpha * acc + beta * y[i * ys0];
        }
        return 0;
    }
};

template <typename ArgTrans = Trans::NoTranspose,
          typename ArgAlgo = Algo::Gemv::Unblocked>
struct SerialGemv {
    template <typename AViewType, typename XViewType, typename YViewType>
    PSPL_INLINE_FUNCTION static int
    invoke(const double alpha, const AViewType& a, const XViewType& x,
           const double beta, const YViewType& y)
    {
        static_assert(KernelMatrixArg<AViewType>,
                      "SerialGemv a must be a rank-2 view-like dense "
                      "matrix");
        static_assert(KernelVectorArg<XViewType>
                              && KernelVectorArg<YViewType>,
                      "SerialGemv x and y must be rank-1 view-like: one "
                      "column each (subview a (n, batch) block first) or "
                      "pack spans");
        static_assert(
                KernelPrecisionCompatible<kernel_element_t<AViewType>,
                                          kernel_element_t<YViewType>>,
                "SerialGemv: FP64 matrix entries driving an FP32 y would "
                "narrow every product implicitly -- use an FP32 matrix "
                "(SchurFloatFactors) or widen the vectors");
        // Deduce the matrix element type from the view so float matrices
        // get float scalars (avoids a double/float deduction conflict).
        using AScalar = std::remove_cv_t<std::remove_pointer_t<decltype(a.data())>>;
        if constexpr (std::is_same_v<ArgTrans, Trans::Transpose>) {
            return SerialGemvInternal::invoke(
                    static_cast<int>(a.extent(1)), static_cast<int>(a.extent(0)),
                    static_cast<AScalar>(alpha), a.data(),
                    static_cast<int>(a.stride(1)),
                    static_cast<int>(a.stride(0)), x.data(),
                    static_cast<int>(x.stride(0)), static_cast<AScalar>(beta),
                    y.data(), static_cast<int>(y.stride(0)));
        } else {
            return SerialGemvInternal::invoke(
                    static_cast<int>(a.extent(0)), static_cast<int>(a.extent(1)),
                    static_cast<AScalar>(alpha), a.data(),
                    static_cast<int>(a.stride(0)),
                    static_cast<int>(a.stride(1)), x.data(),
                    static_cast<int>(x.stride(0)), static_cast<AScalar>(beta),
                    y.data(), static_cast<int>(y.stride(0)));
        }
    }

    /// Cost of one m x n GEMV: 2mn for the dot products plus 2m for the
    /// alpha/beta scaling; x read once, y read and written (A shared).
    static constexpr KernelCost cost(std::size_t m, std::size_t n)
    {
        const auto md = static_cast<double>(m);
        const auto nd = static_cast<double>(n);
        return {2.0 * md * nd + 2.0 * md, 8.0 * nd + 16.0 * md};
    }
};

} // namespace pspl::batched
