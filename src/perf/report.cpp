#include "perf/report.hpp"

#include "parallel/execution.hpp"
#include "parallel/macros.hpp"
#include "parallel/profiling.hpp"
#include "parallel/tiling.hpp"
#include "perf/hardware.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pspl::perf {

namespace {

std::string json_num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string json_str(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string report_json()
{
    const HardwareSpec host = host_spec();
    const auto mem = profiling::memory_stats();
    const auto spans = profiling::snapshot_tree();

    std::string out = "{";
    out += "\"schema\": \"pspl-perf-report-v2\"";
    out += ", \"isa\": " + json_str(compiled_isa_name());
    // v2: runtime execution configuration -- thread count, pin state, tile
    // policy and NUMA topology (provenance for every span's bandwidth).
    out += ", \"threads\": "
           + std::to_string(DefaultExecutionSpace::concurrency());
    out += std::string(", \"pinned\": ")
           + (threads_pinned() ? "true" : "false");
    out += ", \"tile_policy\": " + json_str(TilePolicy::from_env().describe());
    out += ", \"numa_nodes\": " + std::to_string(numa_node_count());
    out += ", \"host\": {\"name\": " + json_str(host.name)
           + ", \"peak_gflops\": " + json_num(host.peak_gflops)
           + ", \"peak_bw_gbs\": " + json_num(host.peak_bw_gbs) + "}";
    out += ", \"memory\": {\"live_bytes\": "
           + std::to_string(mem.live_bytes)
           + ", \"peak_bytes\": " + std::to_string(mem.peak_bytes)
           + ", \"allocations\": " + std::to_string(mem.allocations) + "}";
    out += ", \"spans\": [";
    bool first = true;
    for (const auto& [path, stats] : spans) { // std::map: sorted by path
        if (!first) {
            out += ", ";
        }
        first = false;
        const double bw = stats.achieved_bw_gbs();
        out += "{\"path\": " + json_str(path);
        out += ", \"count\": " + std::to_string(stats.count);
        out += ", \"seconds\": " + json_num(stats.total_seconds);
        out += ", \"bytes\": " + json_num(stats.bytes);
        out += ", \"flops\": " + json_num(stats.flops);
        out += ", \"achieved_bw_gbs\": " + json_num(bw);
        out += ", \"achieved_gflops\": " + json_num(stats.achieved_gflops());
        out += ", \"bw_percent_of_peak\": "
               + json_num(host.peak_bw_gbs > 0.0 ? 100.0 * bw / host.peak_bw_gbs
                                                 : 0.0);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string fmt_time(double seconds)
{
    if (seconds < 1e-6) {
        return fmt(seconds * 1e9, 2) + " ns";
    }
    if (seconds < 1e-3) {
        return fmt(seconds * 1e6, 2) + " us";
    }
    if (seconds < 1.0) {
        return fmt(seconds * 1e3, 2) + " ms";
    }
    return fmt(seconds, 3) + " s";
}

Table::Table(std::vector<std::string> headers) : m_headers(std::move(headers))
{
}

void Table::add_row(std::vector<std::string> cells)
{
    PSPL_EXPECT(cells.size() == m_headers.size(),
                "Table: row width mismatch");
    m_rows.push_back(std::move(cells));
}

std::string Table::str() const
{
    std::vector<std::size_t> width(m_headers.size());
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        width[c] = m_headers[c].size();
    }
    for (const auto& row : m_rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(width[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    emit_row(m_headers);
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        out << "|" << std::string(width[c] + 2, '-');
    }
    out << "|\n";
    for (const auto& row : m_rows) {
        emit_row(row);
    }
    return out.str();
}

} // namespace pspl::perf
