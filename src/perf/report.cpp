#include "perf/report.hpp"

#include "parallel/macros.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pspl::perf {

std::string fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string fmt_time(double seconds)
{
    if (seconds < 1e-6) {
        return fmt(seconds * 1e9, 2) + " ns";
    }
    if (seconds < 1e-3) {
        return fmt(seconds * 1e6, 2) + " us";
    }
    if (seconds < 1.0) {
        return fmt(seconds * 1e3, 2) + " ms";
    }
    return fmt(seconds, 3) + " s";
}

Table::Table(std::vector<std::string> headers) : m_headers(std::move(headers))
{
}

void Table::add_row(std::vector<std::string> cells)
{
    PSPL_EXPECT(cells.size() == m_headers.size(),
                "Table: row width mismatch");
    m_rows.push_back(std::move(cells));
}

std::string Table::str() const
{
    std::vector<std::size_t> width(m_headers.size());
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        width[c] = m_headers[c].size();
    }
    for (const auto& row : m_rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(width[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    emit_row(m_headers);
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        out << "|" << std::string(width[c] + 2, '-');
    }
    out << "|\n";
    for (const auto& row : m_rows) {
        emit_row(row);
    }
    return out.str();
}

} // namespace pspl::perf
