#include "perf/report.hpp"

#include "parallel/execution.hpp"
#include "parallel/macros.hpp"
#include "parallel/profiling.hpp"
#include "parallel/tiling.hpp"
#include "perf/hardware.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pspl::perf {

namespace {

/// Run attributes for schema v3 (process-wide, like the profiling state).
std::string& run_precision_storage()
{
    static std::string value;
    return value;
}

int& run_refine_iters_storage()
{
    static int value = 0;
    return value;
}

/// Default precision string when the harness never called
/// set_run_precision: resolve PSPL_PRECISION the same way the builder does
/// (perf cannot link core, so the tiny parse is duplicated knowingly --
/// test_precision pins the two against each other).
std::string env_precision_name()
{
    const char* env = std::getenv("PSPL_PRECISION");
    if (env == nullptr) {
        return "double";
    }
    std::string s;
    for (const char* p = env; *p != '\0'; ++p) {
        s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
    if (s == "single" || s == "float" || s == "fp32") {
        return "single";
    }
    if (s == "mixed") {
        return "mixed";
    }
    return "double";
}

std::string json_num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string json_str(const std::string& s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void set_run_precision(const std::string& precision)
{
    run_precision_storage() = precision;
}

void set_run_refine_iters(int iters)
{
    run_refine_iters_storage() = iters;
}

std::string report_json()
{
    const HardwareSpec host = host_spec();
    const auto mem = profiling::memory_stats();
    const auto spans = profiling::snapshot_tree();

    std::string out = "{";
    out += "\"schema\": \"pspl-perf-report-v5\"";
    out += ", \"isa\": " + json_str(compiled_isa_name());
    // v4: which execution space ran the kernels (the runtime PSPL_BACKEND
    // selection) -- the thread count below is meaningless without it.
    out += ", \"backend\": " + json_str(DefaultExecutionSpace::name());
    // v3: working precision of the solve pipeline and the mixed path's
    // refinement iteration count (0 when the FP64 ladder ran).
    const std::string& prec = run_precision_storage();
    out += ", \"precision\": "
           + json_str(prec.empty() ? env_precision_name() : prec);
    out += ", \"refine_iters\": " + std::to_string(run_refine_iters_storage());
    // v2: runtime execution configuration -- thread count, pin state, tile
    // policy and NUMA topology (provenance for every span's bandwidth).
    out += ", \"threads\": "
           + std::to_string(DefaultExecutionSpace::concurrency());
    out += std::string(", \"pinned\": ")
           + (threads_pinned() ? "true" : "false");
    out += ", \"tile_policy\": " + json_str(TilePolicy::from_env().describe());
    out += ", \"numa_nodes\": " + std::to_string(numa_node_count());
    out += ", \"host\": {\"name\": " + json_str(host.name)
           + ", \"peak_gflops\": " + json_num(host.peak_gflops)
           + ", \"peak_bw_gbs\": " + json_num(host.peak_bw_gbs) + "}";
    out += ", \"memory\": {\"live_bytes\": "
           + std::to_string(mem.live_bytes)
           + ", \"peak_bytes\": " + std::to_string(mem.peak_bytes)
           + ", \"allocations\": " + std::to_string(mem.allocations) + "}";
    out += ", \"spans\": [";
    bool first = true;
    for (const auto& [path, stats] : spans) { // std::map: sorted by path
        if (!first) {
            out += ", ";
        }
        first = false;
        const double bw = stats.achieved_bw_gbs();
        // v5: attribution-only counter children (cost models added onto a
        // parent's child label without ever being timed) carry bytes/flops
        // but no samples; their derived rates are structurally zero, not
        // measured zeros. The flag is emitted on every span (uniform array
        // signature) so consumers can filter without re-deriving the rule.
        const bool counter_only = stats.count == 0
                                  && stats.total_seconds == 0.0
                                  && (stats.bytes > 0.0 || stats.flops > 0.0);
        out += "{\"path\": " + json_str(path);
        out += ", \"count\": " + std::to_string(stats.count);
        out += ", \"seconds\": " + json_num(stats.total_seconds);
        out += ", \"bytes\": " + json_num(stats.bytes);
        out += ", \"flops\": " + json_num(stats.flops);
        out += std::string(", \"counter_only\": ")
               + (counter_only ? "true" : "false");
        out += ", \"achieved_bw_gbs\": " + json_num(bw);
        out += ", \"achieved_gflops\": " + json_num(stats.achieved_gflops());
        out += ", \"bw_percent_of_peak\": "
               + json_num(host.peak_bw_gbs > 0.0 ? 100.0 * bw / host.peak_bw_gbs
                                                 : 0.0);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string fmt_time(double seconds)
{
    if (seconds < 1e-6) {
        return fmt(seconds * 1e9, 2) + " ns";
    }
    if (seconds < 1e-3) {
        return fmt(seconds * 1e6, 2) + " us";
    }
    if (seconds < 1.0) {
        return fmt(seconds * 1e3, 2) + " ms";
    }
    return fmt(seconds, 3) + " s";
}

Table::Table(std::vector<std::string> headers) : m_headers(std::move(headers))
{
}

void Table::add_row(std::vector<std::string> cells)
{
    PSPL_EXPECT(cells.size() == m_headers.size(),
                "Table: row width mismatch");
    m_rows.push_back(std::move(cells));
}

std::string Table::str() const
{
    std::vector<std::size_t> width(m_headers.size());
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        width[c] = m_headers[c].size();
    }
    for (const auto& row : m_rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(width[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    emit_row(m_headers);
    for (std::size_t c = 0; c < m_headers.size(); ++c) {
        out << "|" << std::string(width[c] + 2, '-');
    }
    out << "|\n";
    for (const auto& row : m_rows) {
        emit_row(row);
    }
    return out.str();
}

} // namespace pspl::perf
