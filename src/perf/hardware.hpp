// Hardware descriptors (paper Table II) and the host platform description.
//
// The paper's portability study spans Intel Icelake, NVIDIA A100 and AMD
// MI250X; this build runs on a host CPU, so the paper's specs are carried as
// data. They feed the roofline (Eq. 10) and Pennycook metric (Eq. 8)
// machinery, both for re-deriving the paper's Table V values and for
// computing measured efficiencies on the host backends.
#pragma once

#include "parallel/simd.hpp"

#include <string>
#include <vector>

namespace pspl::perf {

/// Name of the widest vector ISA *this translation unit* was compiled for.
/// Header-inline on purpose: a benchmark TU built with -march=native
/// reports its own ISA even though the library objects target the baseline
/// architecture (the hot kernels are header templates, so they are
/// instantiated -- and vectorized -- in the reporting TU itself).
inline const char* compiled_isa_name()
{
#if defined(__AVX512F__)
    return "AVX-512";
#elif defined(__AVX2__)
    return "AVX2";
#elif defined(__AVX__)
    return "AVX";
#elif defined(__SSE2__)
    return "SSE2";
#elif defined(__ARM_NEON)
    return "NEON";
#elif defined(__VSX__)
    return "VSX";
#else
    return "scalar";
#endif
}

/// One-line ISA summary for bench headers, e.g.
/// "AVX-512 (512-bit, 8 fp64 lanes)".
inline std::string compiled_isa_summary()
{
    return std::string(compiled_isa_name()) + " ("
           + std::to_string(simd_native_bits) + "-bit, "
           + std::to_string(simd_preferred_width<double>) + " fp64 lanes)";
}

struct HardwareSpec {
    std::string name;
    double peak_gflops = 0.0; ///< FP64 peak [GFlops]
    double peak_bw_gbs = 0.0; ///< peak memory bandwidth [GB/s]

    double bf_ratio() const { return peak_bw_gbs / peak_gflops; }
};

/// Intel Xeon Gold 6346 (Table II).
HardwareSpec icelake_spec();
/// NVIDIA A100 (Table II).
HardwareSpec a100_spec();
/// AMD MI250X (Table II).
HardwareSpec mi250x_spec();
/// The paper's full platform set H = {Icelake, A100, MI250X}.
std::vector<HardwareSpec> paper_platforms();

/// Description of the machine this build runs on. Peak numbers are read
/// from PSPL_PEAK_GFLOPS / PSPL_PEAK_BW_GBS if set, otherwise conservative
/// laptop-class defaults are used (they only scale efficiency percentages,
/// not the measured times).
HardwareSpec host_spec();

/// Number of NUMA nodes on the host (sysfs), 1 when undetectable. Recorded
/// in perf reports: first-touch placement only matters when this is > 1.
int numa_node_count();

} // namespace pspl::perf
