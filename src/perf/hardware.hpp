// Hardware descriptors (paper Table II) and the host platform description.
//
// The paper's portability study spans Intel Icelake, NVIDIA A100 and AMD
// MI250X; this build runs on a host CPU, so the paper's specs are carried as
// data. They feed the roofline (Eq. 10) and Pennycook metric (Eq. 8)
// machinery, both for re-deriving the paper's Table V values and for
// computing measured efficiencies on the host backends.
#pragma once

#include <string>
#include <vector>

namespace pspl::perf {

struct HardwareSpec {
    std::string name;
    double peak_gflops = 0.0; ///< FP64 peak [GFlops]
    double peak_bw_gbs = 0.0; ///< peak memory bandwidth [GB/s]

    double bf_ratio() const { return peak_bw_gbs / peak_gflops; }
};

/// Intel Xeon Gold 6346 (Table II).
HardwareSpec icelake_spec();
/// NVIDIA A100 (Table II).
HardwareSpec a100_spec();
/// AMD MI250X (Table II).
HardwareSpec mi250x_spec();
/// The paper's full platform set H = {Icelake, A100, MI250X}.
std::vector<HardwareSpec> paper_platforms();

/// Description of the machine this build runs on. Peak numbers are read
/// from PSPL_PEAK_GFLOPS / PSPL_PEAK_BW_GBS if set, otherwise conservative
/// laptop-class defaults are used (they only scale efficiency percentages,
/// not the measured times).
HardwareSpec host_spec();

} // namespace pspl::perf
