// Plain-text table rendering for the benchmark harnesses: each bench binary
// prints rows shaped like the paper's tables so measured output can be
// diffed against the published numbers (EXPERIMENTS.md records both).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pspl::perf {

/// Fixed-precision double formatting ("3.22", "268.6", ...).
std::string fmt(double value, int precision = 2);

/// Seconds rendered with an adaptive unit (ns/us/ms/s), paper-style.
std::string fmt_time(double seconds);

/// Machine-readable performance report ("pspl-perf-report-v2"): host spec,
/// View-allocator memory stats and every profiling span recorded so far
/// (path-keyed, with derived achieved bandwidth / flop rate against the
/// host peak model). Returns one stable JSON object; the bench harnesses
/// embed it verbatim into their --json output so CI can diff runs.
std::string report_json();

class Table
{
public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Render with aligned columns and a header separator.
    std::string str() const;

private:
    std::vector<std::string> m_headers;
    std::vector<std::vector<std::string>> m_rows;
};

} // namespace pspl::perf
