// Plain-text table rendering for the benchmark harnesses: each bench binary
// prints rows shaped like the paper's tables so measured output can be
// diffed against the published numbers (EXPERIMENTS.md records both).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pspl::perf {

/// Fixed-precision double formatting ("3.22", "268.6", ...).
std::string fmt(double value, int precision = 2);

/// Seconds rendered with an adaptive unit (ns/us/ms/s), paper-style.
std::string fmt_time(double seconds);

/// Machine-readable performance report ("pspl-perf-report-v5"): host spec,
/// View-allocator memory stats and every profiling span recorded so far
/// (path-keyed, with derived achieved bandwidth / flop rate against the
/// host peak model). Returns one stable JSON object; the bench harnesses
/// embed it verbatim into their --json output so CI can diff runs.
///
/// v3 adds the run's working precision ("double" / "single" / "mixed") and
/// the refinement iteration count of the mixed-precision pipeline --
/// provenance for every span's bandwidth, exactly like threads/tile_policy.
/// v4 adds the executing backend (the runtime PSPL_BACKEND selection:
/// "Serial" / "OpenMP" / "Threads"), which the thread count is relative to.
/// v5 adds "counter_only" to every span: true marks attribution-only
/// counter children (cost models booked under a parent's child label with
/// no timed samples -- count == 0, seconds == 0, bytes or flops > 0).
/// Their achieved_bw_gbs / achieved_gflops are structurally zero and must
/// not be read as measured rates.
std::string report_json();

/// Set the schema-v3 run attributes embedded in report_json(). The bench
/// harness calls these once per run; unset, `precision` defaults to what
/// PSPL_PRECISION resolves to and `refine_iters` to 0. perf depends only on
/// parallel, so the precision travels as its canonical string form
/// (core::to_string(Precision)).
void set_run_precision(const std::string& precision);
void set_run_refine_iters(int iters);

class Table
{
public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Render with aligned columns and a header separator.
    std::string str() const;

private:
    std::vector<std::string> m_headers;
    std::vector<std::vector<std::string>> m_rows;
};

} // namespace pspl::perf
