#include "perf/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace pspl::perf {

double glups(std::size_t nx, std::size_t nv, double seconds)
{
    return static_cast<double>(nx) * static_cast<double>(nv) * 1e-9 / seconds;
}

double achieved_bandwidth_gbs(std::size_t nx, std::size_t nv, double seconds)
{
    return static_cast<double>(nx) * static_cast<double>(nv)
           * paper_bytes_per_point / seconds * 1e-9;
}

double bandwidth_fraction_percent(double achieved_gbs, const HardwareSpec& spec)
{
    return 100.0 * achieved_gbs / spec.peak_bw_gbs;
}

double roofline_attainable_gflops(const HardwareSpec& spec,
                                  double flops_per_byte)
{
    return std::min(spec.peak_gflops, spec.peak_bw_gbs * flops_per_byte);
}

double architectural_efficiency_percent(double achieved_gflops,
                                        double attainable_gflops)
{
    return 100.0 * achieved_gflops / attainable_gflops;
}

double pennycook_portability(const std::vector<double>& efficiencies_percent)
{
    if (efficiencies_percent.empty()) {
        return 0.0;
    }
    double denom = 0.0;
    for (const double e : efficiencies_percent) {
        if (e <= 0.0) {
            return 0.0; // unsupported on some platform
        }
        denom += 1.0 / (e / 100.0);
    }
    return static_cast<double>(efficiencies_percent.size()) / denom;
}

double effective_vector_width(double scalar_seconds, double simd_seconds)
{
    if (simd_seconds <= 0.0) {
        return 0.0;
    }
    return scalar_seconds / simd_seconds;
}

double simd_lane_efficiency_percent(double scalar_seconds,
                                    double simd_seconds, int width)
{
    if (width <= 0) {
        return 0.0;
    }
    return 100.0 * effective_vector_width(scalar_seconds, simd_seconds)
           / static_cast<double>(width);
}

KernelModel spline_builder_model(int degree, bool uniform)
{
    // Hand counts per grid point of one RHS column (corner-block work is
    // O(nnz/n) per point and neglected, as in the paper's §V-B analysis).
    double flops = 0.0;
    if (uniform) {
        if (degree == 3) {
            // pttrs: forward mul+sub, backward div+mul+sub.
            flops = 5.0;
        } else {
            // pbtrs with kd = degree/2 subdiagonals:
            // forward div + kd*(mul+sub); backward kd*(mul+sub) + div.
            const double kd = static_cast<double>(degree / 2);
            flops = 4.0 * kd + 2.0;
        }
    } else {
        // gbtrs with kl+ku = degree:
        // forward kl*(mul+sub); backward (kl+ku)*(mul+sub) + div.
        const double kl = static_cast<double>((degree + 1) / 2);
        const double ku = static_cast<double>(degree / 2);
        flops = 2.0 * kl + 2.0 * (kl + ku) + 1.0;
    }
    // One 8-byte load and one 8-byte store of the RHS per point under the
    // perfect-cache assumption (the matrix itself is shared and cached).
    return {flops, 16.0};
}

} // namespace pspl::perf
