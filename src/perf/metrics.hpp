// Performance metrics from the paper's evaluation section:
//   - GLUPS (Eq. 7): Nx*Nv*1e-9 / t
//   - achieved bandwidth (§V-B): Nx*Nv*8 / t, counting one 8-byte
//     load/store of the right-hand side per grid point under the
//     perfect-cache assumption;
//   - roofline attainable performance (Eq. 10): min(F_i, B_i * f_a/b_a);
//   - architectural efficiency (Eq. 9) and the Pennycook performance
//     portability metric P (Eq. 8, harmonic mean over platforms).
// Plus hand-counted flop/byte models of the spline building kernels used
// to place them on the roofline (§V-B does the same hand counting).
#pragma once

#include "perf/hardware.hpp"

#include <cstddef>
#include <vector>

namespace pspl::perf {

/// Giga lattice updates per second (Eq. 7).
double glups(std::size_t nx, std::size_t nv, double seconds);

/// Achieved bandwidth in GB/s under the paper's one-load-store-per-point
/// model (§V-B): Nx*Nv*8 bytes moved in `seconds`.
double achieved_bandwidth_gbs(std::size_t nx, std::size_t nv, double seconds);

/// Fraction (in percent) of a platform's peak bandwidth.
double bandwidth_fraction_percent(double achieved_gbs,
                                  const HardwareSpec& spec);

/// Roofline-attainable performance (Eq. 10) for arithmetic intensity
/// `flops_per_byte` on platform `spec`, in GFlops.
double roofline_attainable_gflops(const HardwareSpec& spec,
                                  double flops_per_byte);

/// Architectural efficiency e_i (Eq. 9), in percent.
double architectural_efficiency_percent(double achieved_gflops,
                                        double attainable_gflops);

/// Pennycook performance portability (Eq. 8): harmonic mean of the
/// efficiencies (given in percent, returned as a fraction in [0, 1]).
/// Returns 0 if the application is unsupported (efficiency <= 0) anywhere.
double pennycook_portability(const std::vector<double>& efficiencies_percent);

/// Effective vector width of a SIMD path: the number of lanes that actually
/// paid off, measured as the speedup over the identical scalar path
/// (scalar_seconds / simd_seconds). Equals the pack width W for a perfectly
/// vectorized memory-insensitive kernel; lower when bandwidth or tail
/// handling eats into the win.
double effective_vector_width(double scalar_seconds, double simd_seconds);

/// effective_vector_width as a percentage of the pack width W.
double simd_lane_efficiency_percent(double scalar_seconds,
                                    double simd_seconds, int width);

/// Hand-counted per-grid-point cost model of a spline building kernel.
struct KernelModel {
    double flops_per_point = 0.0;
    double bytes_per_point = 0.0;
    double flops_per_byte() const { return flops_per_point / bytes_per_point; }
};

/// Cost model for the fused-spmv spline builder at the given spline degree
/// and uniformity, per grid point of the RHS (hand counts as in §V-B).
/// Bytes use the paper's perfect-cache model: 8 bytes in + 8 bytes out of
/// RHS data per point -- the paper's bandwidth formula charges only 8, so
/// `paper_bytes_per_point` is also provided.
KernelModel spline_builder_model(int degree, bool uniform);

/// The 8-bytes-per-point convention of the paper's bandwidth formula.
inline constexpr double paper_bytes_per_point = 8.0;

} // namespace pspl::perf
