#include "perf/hardware.hpp"

#include <cstdlib>

namespace pspl::perf {

HardwareSpec icelake_spec()
{
    return {"Icelake", 3174.4, 204.8};
}

HardwareSpec a100_spec()
{
    return {"A100", 9700.0, 1555.0};
}

HardwareSpec mi250x_spec()
{
    return {"MI250X", 26500.0, 1600.0};
}

std::vector<HardwareSpec> paper_platforms()
{
    return {icelake_spec(), a100_spec(), mi250x_spec()};
}

HardwareSpec host_spec()
{
    HardwareSpec spec{"Host", 50.0, 20.0};
    if (const char* f = std::getenv("PSPL_PEAK_GFLOPS")) {
        spec.peak_gflops = std::atof(f);
    }
    if (const char* b = std::getenv("PSPL_PEAK_BW_GBS")) {
        spec.peak_bw_gbs = std::atof(b);
    }
    return spec;
}

} // namespace pspl::perf
