#include "perf/hardware.hpp"

#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <sys/stat.h>
#endif

namespace pspl::perf {

HardwareSpec icelake_spec()
{
    return {"Icelake", 3174.4, 204.8};
}

HardwareSpec a100_spec()
{
    return {"A100", 9700.0, 1555.0};
}

HardwareSpec mi250x_spec()
{
    return {"MI250X", 26500.0, 1600.0};
}

std::vector<HardwareSpec> paper_platforms()
{
    return {icelake_spec(), a100_spec(), mi250x_spec()};
}

HardwareSpec host_spec()
{
    HardwareSpec spec{"Host", 50.0, 20.0};
    if (const char* f = std::getenv("PSPL_PEAK_GFLOPS")) {
        spec.peak_gflops = std::atof(f);
    }
    if (const char* b = std::getenv("PSPL_PEAK_BW_GBS")) {
        spec.peak_bw_gbs = std::atof(b);
    }
    return spec;
}

int numa_node_count()
{
#if defined(__linux__)
    int count = 0;
    for (int node = 0; node < 1024; ++node) {
        char path[64];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%d", node);
        struct stat st;
        if (stat(path, &st) != 0) {
            break; // node directories are numbered densely
        }
        ++count;
    }
    return count > 0 ? count : 1;
#else
    return 1;
#endif
}

} // namespace pspl::perf
