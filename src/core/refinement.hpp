// Mixed-precision batched solve with FP64 iterative refinement.
//
// The driver runs the whole Algorithm-1 chain in FP32 -- narrowed factors
// (SchurFloatFactors, with divide-free reciprocal sweeps), FP32 staged RHS
// tiles, simd packs at twice the FP64 lane count -- and then restores full
// double accuracy with a short residual-correction loop per L2-resident
// tile:
//
//     x   = widen(solve_f32(narrow(b)))          initial FP32 solve
//     r   = b - A x                              FP64 residual (exact A)
//     d   = widen(solve_f32(narrow(r)))          FP32 correction solve
//     x  += d;  r  = b - A x                     FP64 update
//
// iterated until max|r| <= target * max|b| or the iteration budget is
// spent. Everything happens while the tile is cache-resident, so the loop
// adds arithmetic but no DRAM traffic; the residual applies the *exact*
// FP64 operator (all structural nonzeros, SchurSolver::matrix_coo), which
// is what makes the refined result land within FP64 working accuracy.
//
// Each residual pass is fused (RHS re-read from the source block, exact
// spmv, max-norm, FP32 narrow for the next correction -- one sweep, see
// refinement.cpp), and the loop exploits the linear convergence of
// iterative refinement to skip the trailing verification pass: every step
// contracts max|r| by the same factor rho (= rel_1, the contraction
// observed on the first residual), so once rel * rho <= target the final
// correction is applied and the loop exits without another spmv. The
// accuracy gate in bench_ablation_precision checks the result against the
// FP64 oracle end to end, so the extrapolation is verified empirically.
//
// Hard fallback: when refinement stalls -- the residual stops contracting,
// goes non-finite, or the budget is exhausted above target -- the tile is
// re-gathered from its (still untouched) source and solved once with the
// FP64 ladder, so a poisoned or ill-conditioned FP32 factorization can
// degrade speed but never accuracy.
//
// The residual arithmetic lives in refinement.cpp, compiled with
// -ffp-contract=off: with FMA contraction the residual r = b - A x would
// differ between compilers (and from the documented round-to-nearest
// semantics), making refined results non-reproducible across toolchains.
#pragma once

#include "core/batched_solve.hpp"
#include "core/precision.hpp"
#include "core/schur_solver.hpp"
#include "debug/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"
#include "sparse/coo.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__AVX512F__) || defined(__AVX__)
#include <immintrin.h>
#define PSPL_REFINE_STREAM_STORES 1
#else
#define PSPL_REFINE_STREAM_STORES 0
#endif

namespace pspl::core {

struct RefinementOptions {
    /// Stop once max|r| <= target * max|b| per tile. The default sits at
    /// the FP64 ladder's own test tolerance, so a converged Mixed solve is
    /// indistinguishable from the FP64 path downstream.
    double rel_residual_target = 1e-12;
    /// Refinement iteration budget per tile (the acceptance bound).
    int max_iters = 3;
};

/// What the solve actually did -- surfaced into the perf report (schema v3
/// `refine_iters`) and asserted by the precision ablation gate.
struct RefinementStats {
    int refine_iters = 0;           ///< max correction steps over all tiles
    std::size_t tiles = 0;          ///< tiles processed
    std::size_t fallback_tiles = 0; ///< tiles re-solved on the FP64 ladder
};

namespace refine_detail {

// Compiled in refinement.cpp with -ffp-contract=off (see header comment).
// All buffers are strips of a row-major staged tile: `cols` live columns
// per row, consecutive rows `pitch` elements apart (pitch == the outer
// tile width). `b` is the pristine staged RHS (source precision, padded
// with zeros) and `rwork` is one scratch row of at least `cols` doubles.

/// First fused residual pass: r = b - A * widen(xf), row group by row
/// group. Writes rf = narrow(r) (the RHS of the correction solve),
/// max|b| of the strip into norm_b, and returns max|r| (NaN/inf
/// propagate -- the reduction is exact for non-finite input).
double residual_initial(const sparse::Coo& a, const double* b,
                        const float* xf, float* rf, std::size_t n,
                        std::size_t pitch, std::size_t cols, double* rwork,
                        double& norm_b);
double residual_initial(const sparse::Coo& a, const float* b,
                        const float* xf, float* rf, std::size_t n,
                        std::size_t pitch, std::size_t cols, double* rwork,
                        double& norm_b);

/// Later fused residual passes: r = b - A x against the FP64 iterate
/// (corrections applied to x are not FP32-representable, so the product
/// must read x). Writes rf = narrow(r), returns max|r|.
double residual_from_x(const sparse::Coo& a, const double* b,
                       const double* x, float* rf, std::size_t n,
                       std::size_t pitch, std::size_t cols, double* rwork);
double residual_from_x(const sparse::Coo& a, const float* b, const double* x,
                       float* rf, std::size_t n, std::size_t pitch,
                       std::size_t cols, double* rwork);

/// max |p[i]| over count elements (0 for empty; NaN propagates).
double tile_max_abs(const double* p, std::size_t count);

/// x += widen(d) over a strip (n rows of `cols` at `pitch`).
void tile_accumulate_widen(double* x, const float* d, std::size_t n,
                           std::size_t pitch, std::size_t cols);

} // namespace refine_detail

namespace detail {

// -- streaming scatter ----------------------------------------------------
// The scatter is the pipeline's only write to DRAM-resident memory; with
// regular stores every destination line is first read for ownership,
// adding a full extra read stream of the output size. Non-temporal stores
// bypass the cache and the RFO. x86-only fast path (plain loops
// elsewhere); stream_fence() after each tile keeps the stores globally
// visible before the dispatch barrier releases readers.

PSPL_FORCEINLINE_FUNCTION void stream_fence()
{
#if PSPL_REFINE_STREAM_STORES
    _mm_sfence();
#endif
}

/// dst[j] = x[j]
PSPL_FORCEINLINE_FUNCTION void scatter_row_copy(double* PSPL_RESTRICT dst,
                                                const double* PSPL_RESTRICT x,
                                                std::size_t count)
{
    std::size_t j = 0;
#if defined(__AVX512F__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 63u) != 0;
         ++j) {
        dst[j] = x[j];
    }
    for (; j + 8 <= count; j += 8) {
        _mm512_stream_pd(dst + j, _mm512_loadu_pd(x + j));
    }
#elif defined(__AVX__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 31u) != 0;
         ++j) {
        dst[j] = x[j];
    }
    for (; j + 4 <= count; j += 4) {
        _mm256_stream_pd(dst + j, _mm256_loadu_pd(x + j));
    }
#endif
    for (; j < count; ++j) {
        dst[j] = x[j];
    }
}

/// dst[j] = widen(f[j])
PSPL_FORCEINLINE_FUNCTION void scatter_row_widen(double* PSPL_RESTRICT dst,
                                                 const float* PSPL_RESTRICT f,
                                                 std::size_t count)
{
    std::size_t j = 0;
#if defined(__AVX512F__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 63u) != 0;
         ++j) {
        dst[j] = static_cast<double>(f[j]);
    }
    for (; j + 8 <= count; j += 8) {
        _mm512_stream_pd(dst + j, _mm512_cvtps_pd(_mm256_loadu_ps(f + j)));
    }
#elif defined(__AVX__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 31u) != 0;
         ++j) {
        dst[j] = static_cast<double>(f[j]);
    }
    for (; j + 4 <= count; j += 4) {
        _mm256_stream_pd(dst + j, _mm256_cvtps_pd(_mm_loadu_ps(f + j)));
    }
#endif
    for (; j < count; ++j) {
        dst[j] = static_cast<double>(f[j]);
    }
}

/// dst[j] = widen(xf[j]) + widen(rf[j]) -- the FP64 iterate never
/// materialized: widen(xf) IS the iterate exactly, and the pending final
/// correction folds in with one exact-operand add.
PSPL_FORCEINLINE_FUNCTION void
scatter_row_sum_widen(double* PSPL_RESTRICT dst,
                      const float* PSPL_RESTRICT xf,
                      const float* PSPL_RESTRICT rf, std::size_t count)
{
    std::size_t j = 0;
#if defined(__AVX512F__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 63u) != 0;
         ++j) {
        dst[j] = static_cast<double>(xf[j]) + static_cast<double>(rf[j]);
    }
    for (; j + 8 <= count; j += 8) {
        const __m512d vx = _mm512_cvtps_pd(_mm256_loadu_ps(xf + j));
        const __m512d vr = _mm512_cvtps_pd(_mm256_loadu_ps(rf + j));
        _mm512_stream_pd(dst + j, _mm512_add_pd(vx, vr));
    }
#elif defined(__AVX__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 31u) != 0;
         ++j) {
        dst[j] = static_cast<double>(xf[j]) + static_cast<double>(rf[j]);
    }
    for (; j + 4 <= count; j += 4) {
        const __m256d vx = _mm256_cvtps_pd(_mm_loadu_ps(xf + j));
        const __m256d vr = _mm256_cvtps_pd(_mm_loadu_ps(rf + j));
        _mm256_stream_pd(dst + j, _mm256_add_pd(vx, vr));
    }
#endif
    for (; j < count; ++j) {
        dst[j] = static_cast<double>(xf[j]) + static_cast<double>(rf[j]);
    }
}

/// dst[j] = x[j] + widen(rf[j])
PSPL_FORCEINLINE_FUNCTION void
scatter_row_add_widen(double* PSPL_RESTRICT dst,
                      const double* PSPL_RESTRICT x,
                      const float* PSPL_RESTRICT rf, std::size_t count)
{
    std::size_t j = 0;
#if defined(__AVX512F__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 63u) != 0;
         ++j) {
        dst[j] = x[j] + static_cast<double>(rf[j]);
    }
    for (; j + 8 <= count; j += 8) {
        const __m512d vx = _mm512_loadu_pd(x + j);
        const __m512d vr = _mm512_cvtps_pd(_mm256_loadu_ps(rf + j));
        _mm512_stream_pd(dst + j, _mm512_add_pd(vx, vr));
    }
#elif defined(__AVX__)
    for (; j < count && (reinterpret_cast<std::uintptr_t>(dst + j) & 31u) != 0;
         ++j) {
        dst[j] = x[j] + static_cast<double>(rf[j]);
    }
    for (; j + 4 <= count; j += 4) {
        const __m256d vx = _mm256_loadu_pd(x + j);
        const __m256d vr = _mm256_cvtps_pd(_mm_loadu_ps(rf + j));
        _mm256_stream_pd(dst + j, _mm256_add_pd(vx, vr));
    }
#endif
    for (; j < count; ++j) {
        dst[j] = x[j] + static_cast<double>(rf[j]);
    }
}

/// Run the FP32 fused chain on pack columns [c_begin, c_end) of a
/// row-major staged tile of `packs` float packs per row.
template <int WF, bool UseSpmv>
PSPL_FORCEINLINE_FUNCTION void
solve_f32_packs(const SchurFloatFactors& sf, float* PSPL_RESTRICT xf,
                std::size_t packs, std::size_t c_begin, std::size_t c_end)
{
    using FPack = simd<float, WF>;
    FPack* PSPL_RESTRICT fp = reinterpret_cast<FPack*>(xf);
    for (std::size_t c = c_begin; c < c_end; ++c) {
        const PackSpan<float, WF> b0{fp + c, sf.n0, packs};
        const PackSpan<float, WF> b1{
                sf.k > 0 ? fp + sf.n0 * packs + c : fp, sf.k, packs};
        solve_pack_column<WF, UseSpmv>(sf, b0, b1);
    }
}

/// Whole-tile convenience form (the pure-FP32 pipeline).
template <int WF, bool UseSpmv>
PSPL_FORCEINLINE_FUNCTION void solve_f32_packs(const SchurFloatFactors& sf,
                                               float* PSPL_RESTRICT xf,
                                               std::size_t packs)
{
    solve_f32_packs<WF, UseSpmv>(sf, xf, packs, 0, packs);
}

/// One tile of the pure-FP32 pipeline: gather-narrow straight into the
/// FP32 staging buffer (4-byte elements -- this is why Single tiles are
/// twice as wide as FP64 ones), solve, scatter.
template <int W, bool UseSpmv, class SrcView, class DstView>
PSPL_FORCEINLINE_FUNCTION void
solve_single_tile(const SchurFloatFactors& sf, const SrcView& src,
                  const DstView& dst, const BatchTile& t, std::size_t tc,
                  float* PSPL_RESTRICT xf)
{
    using DstScalar = std::remove_cv_t<std::remove_reference_t<decltype(dst(
            std::size_t{0}, std::size_t{0}))>>;
    constexpr int wf = 2 * W;
    const std::size_t n = sf.n;
    const std::size_t cols = t.cols();
    for (std::size_t r = 0; r < n; ++r) {
        float* PSPL_RESTRICT row = xf + r * tc;
        for (std::size_t j = 0; j < cols; ++j) {
            row[j] = static_cast<float>(src(r, t.begin + j));
        }
        for (std::size_t j = cols; j < tc; ++j) {
            row[j] = 0.0f;
        }
    }
    solve_f32_packs<wf, UseSpmv>(sf, xf, tc / wf);
    for (std::size_t r = 0; r < n; ++r) {
        const float* PSPL_RESTRICT row = xf + r * tc;
        if constexpr (std::is_same_v<DstScalar, double>) {
            scatter_row_widen(&dst(r, t.begin), row, cols);
        } else {
            for (std::size_t j = 0; j < cols; ++j) {
                dst(r, t.begin + j) = static_cast<DstScalar>(row[j]);
            }
        }
    }
    stream_fence();
}

/// One tile of the mixed-precision pipeline, processed at two levels:
///
///  * The *outer tile* (tc columns) exists for DRAM streaming. Gather
///    reads long contiguous row segments of the strided source block
///    (wide rows approach sequential bandwidth; narrow ones degrade to
///    line-granular reads at a fraction of it) and stages a pristine copy
///    at source precision (bf) plus its FP32 narrowing (xf).
///  * All compute then runs per *inner strip* (a few pack columns,
///    strip_cols below): FP32 solve, fused residual, refinement loop,
///    fallback and scatter complete for one strip before the next is
///    touched, so the strip's xf/bf/rf working set stays cache-resident
///    across the whole chain instead of cycling a multi-MB tile through
///    L2 once per stage.
///
/// Convergence decisions are per strip (norms fall out of the strip's
/// first residual pass), so one slow-converging column only costs extra
/// iterations for its own strip. `dst` receives the FP64-accurate
/// solution (may alias src: a strip is scattered only after its source
/// columns were staged). On the typical path -- contraction extrapolation
/// succeeds after the first residual -- the FP64 iterate is never
/// materialized: the scatter folds widen(xf) + widen(rf) straight into
/// dst with streaming stores. Per-tile outcomes land in the
/// instrumentation views; stage seconds accumulate into
/// stage_sec(2 * index) for the FP32 solves and stage_sec(2 * index + 1)
/// for the FP64 residual work.
template <int W, bool UseSpmv, class SrcView, class DstView>
PSPL_FORCEINLINE_FUNCTION void solve_mixed_tile(
        const SchurDeviceData& sd, const SchurFloatFactors& sf,
        const sparse::Coo& a, const SrcView& src, const DstView& dst,
        const BatchTile& t, std::size_t tc, double target, int max_iters,
        std::byte* slot, const View1D<int>& tile_iters,
        const View1D<int>& tile_fallback, const View1D<double>& stage_sec)
{
    using SrcScalar = std::remove_cv_t<std::remove_reference_t<decltype(src(
            std::size_t{0}, std::size_t{0}))>>;
    using DstScalar = std::remove_cv_t<std::remove_reference_t<decltype(dst(
            std::size_t{0}, std::size_t{0}))>>;
    constexpr int wf = 2 * W;
    // Inner strip width: 4 float packs. With AVX-512 that is 64 columns,
    // so one strip's xf + bf + rf working set is ~0.75 MB at n = 1000 --
    // solidly L2-resident through solve, residual and correction.
    constexpr std::size_t strip_cols = 4 * static_cast<std::size_t>(wf);
    const std::size_t n = sd.n;
    const std::size_t cols = t.cols();
    // Staging row pitch: one strip wider than the tile. Wide tiles have
    // near-power-of-two row strides, which would land every row of a
    // strip in the same few cache sets (8 KiB stride aliases the whole
    // strip onto four L1 sets); the pad skews successive rows across
    // sets. The pad region is never read or written.
    const std::size_t pitch = tc + strip_cols;
    const std::size_t count = n * pitch;
    const std::size_t fpacks = pitch / wf;
    double sec_f32 = 0.0;
    double sec_res = 0.0;

    // Slot layout (doubles first so every sub-buffer stays naturally
    // aligned): FP64 iterate, residual scratch row, staged RHS at source
    // precision, FP32 iterate, FP32 residual, then one byte per strip
    // recording how that strip's solution must be scattered (see the
    // epilogue below).
    double* PSPL_RESTRICT x = reinterpret_cast<double*>(slot);
    double* PSPL_RESTRICT rwork = x + count;
    SrcScalar* PSPL_RESTRICT bf = reinterpret_cast<SrcScalar*>(rwork + pitch);
    float* PSPL_RESTRICT xf = reinterpret_cast<float*>(bf + count);
    float* PSPL_RESTRICT rf = xf + count;
    unsigned char* PSPL_RESTRICT strip_state =
            reinterpret_cast<unsigned char*>(rf + count);

    // Gather: stage the pristine RHS tile and its FP32 narrowing in one
    // pass over long contiguous source row segments. Dead columns are
    // zero-padded so padded lanes stay finite through every solve stage
    // and contribute nothing to residual norms. The source row segments
    // sit a full batch row apart, which defeats the hardware prefetcher;
    // fetch a couple of rows ahead explicitly.
    constexpr std::size_t src_line = 64 / sizeof(SrcScalar);
    for (std::size_t r = 0; r < n; ++r) {
        if (r + 2 < n) {
            const SrcScalar* spf = &src(r + 2, t.begin);
            for (std::size_t j = 0; j < cols; j += src_line) {
                __builtin_prefetch(spf + j, 0, 2);
            }
        }
        SrcScalar* PSPL_RESTRICT brow = bf + r * pitch;
        float* PSPL_RESTRICT row = xf + r * pitch;
        for (std::size_t j = 0; j < cols; ++j) {
            const SrcScalar s = src(r, t.begin + j);
            brow[j] = s;
            row[j] = static_cast<float>(s);
        }
        for (std::size_t j = cols; j < tc; ++j) {
            brow[j] = SrcScalar(0);
            row[j] = 0.0f;
        }
    }

    int iters_max = 0;
    bool any_fallback = false;
    for (std::size_t c0 = 0; c0 < cols; c0 += strip_cols) {
        // Strip [c0, c0 + scols): pack columns [p0, p1). Strips past the
        // live columns hold only padding and are skipped outright.
        const std::size_t scols =
                tc - c0 < strip_cols ? tc - c0 : strip_cols;
        const std::size_t p0 = c0 / wf;
        const std::size_t p1 = (c0 + scols) / wf;
        const SrcScalar* PSPL_RESTRICT bs = bf + c0;
        float* PSPL_RESTRICT xs = xf + c0;
        float* PSPL_RESTRICT rs = rf + c0;
        double* PSPL_RESTRICT xd = x + c0;

        // A full strip solves as ONE simd<float, strip_cols> super-pack:
        // the fused chain is a row recurrence, and a full-width strip
        // advances four cache lines per row step instead of one, which
        // keeps enough misses in flight to hide L3 latency once the
        // staged tile outgrows L2 (measured ~15% over per-pack order,
        // plus the factor arrays are traversed once per strip instead of
        // once per pack). Partial tail strips take the per-pack path.
        const auto solve_strip = [&](float* PSPL_RESTRICT buf) {
            constexpr int wfs = static_cast<int>(strip_cols);
            if (tc % strip_cols == 0 && scols == strip_cols) {
                using SPack = simd<float, wfs>;
                const std::size_t spacks = pitch / strip_cols;
                SPack* PSPL_RESTRICT sp = reinterpret_cast<SPack*>(buf);
                const std::size_t c = c0 / strip_cols;
                const PackSpan<float, wfs> b0{sp + c, sf.n0, spacks};
                const PackSpan<float, wfs> b1{
                        sf.k > 0 ? sp + sf.n0 * spacks + c : sp, sf.k,
                        spacks};
                solve_pack_column<wfs, UseSpmv>(sf, b0, b1);
            } else {
                solve_f32_packs<wf, UseSpmv>(sf, buf, fpacks, p0, p1);
            }
        };

        // Initial FP32 solve of the strip.
        profiling::Timer t_f32;
        solve_strip(xf);
        sec_f32 += t_f32.seconds();

        // First fused residual pass: r = b - A * widen(xf); writes the
        // correction RHS rf = narrow(r), the strip's max|b|, and returns
        // max|r| -- one sweep.
        profiling::Timer t_res;
        double norm_b = 0.0;
        const double max_r = refine_detail::residual_initial(
                a, bs, xs, rs, n, pitch, scols, rwork, norm_b);
        double rel = norm_b > 0.0 ? max_r / norm_b : 0.0;
        sec_res += t_res.seconds();
        bool converged = rel <= target; // NaN-safe: NaN -> not converged
        // Iterative refinement contracts max|r| by the same factor each
        // step, and that factor *is* rel (the first residual, starting
        // from max|r_0| = max|b|). Once one more correction provably
        // lands below target, apply it and skip the trailing verification
        // spmv. NaN-safe: NaN * NaN <= target is false.
        bool pending = false; // correction solved into rf, not applied
        bool have_x = false;  // FP64 iterate materialized in x
        int iters = 0;
        if (!converged && rel * rel <= target && max_iters >= 1) {
            profiling::Timer t_corr;
            solve_strip(rf);
            sec_f32 += t_corr.seconds();
            iters = 1;
            pending = true;
            converged = true;
        }
        if (!converged && iters < max_iters) {
            // General loop: materialize the FP64 iterate and track actual
            // residuals (ill-conditioned or slowly-contracting strips).
            profiling::Timer t_mat;
            for (std::size_t r = 0; r < n; ++r) {
                double* PSPL_RESTRICT xr = xd + r * pitch;
                const float* PSPL_RESTRICT fr = xs + r * pitch;
                for (std::size_t j = 0; j < scols; ++j) {
                    xr[j] = static_cast<double>(fr[j]);
                }
            }
            sec_res += t_mat.seconds();
            have_x = true;
            double prev = rel;
            while (!converged && iters < max_iters) {
                profiling::Timer t_corr;
                solve_strip(rf);
                sec_f32 += t_corr.seconds();
                profiling::Timer t_upd;
                refine_detail::tile_accumulate_widen(xd, rs, n, pitch, scols);
                ++iters;
                rel = refine_detail::residual_from_x(a, bs, xd, rs, n, pitch,
                                                     scols, rwork)
                      / norm_b;
                sec_res += t_upd.seconds();
                converged = rel <= target;
                if (converged) {
                    break;
                }
                if (!(rel < prev * 0.5)) {
                    break; // stalled (or non-finite): stop burning iters
                }
                // Same extrapolation as above, with the contraction
                // measured over the last step: rel * (rel / prev) is
                // where one more correction lands.
                if (iters < max_iters && rel * (rel / prev) <= target) {
                    profiling::Timer t_fin;
                    solve_strip(rf);
                    sec_f32 += t_fin.seconds();
                    ++iters;
                    pending = true;
                    converged = true;
                    break;
                }
                prev = rel;
            }
        }
        if (!converged) {
            // Hard FP64 fallback: the staged RHS strip is still pristine,
            // so widen it and run the reference ladder on it.
            any_fallback = true;
            pending = false;
            have_x = true;
            for (std::size_t r = 0; r < n; ++r) {
                double* PSPL_RESTRICT xr = xd + r * pitch;
                const SrcScalar* PSPL_RESTRICT br = bs + r * pitch;
                for (std::size_t j = 0; j < scols; ++j) {
                    xr[j] = static_cast<double>(br[j]);
                }
            }
            using DPack = simd<double, W>;
            DPack* PSPL_RESTRICT dp = reinterpret_cast<DPack*>(x);
            const std::size_t dpacks = pitch / static_cast<std::size_t>(W);
            const std::size_t d0 = c0 / static_cast<std::size_t>(W);
            const std::size_t d1 = (c0 + scols) / static_cast<std::size_t>(W);
            for (std::size_t c = d0; c < d1; ++c) {
                const PackSpan<double, W> b0p{dp + c, sd.n0, dpacks};
                const PackSpan<double, W> b1p{
                        sd.k > 0 ? dp + sd.n0 * dpacks + c : dp, sd.k,
                        dpacks};
                solve_pack_column<W, UseSpmv>(sd, b0p, b1p);
            }
        }
        if (iters > iters_max) {
            iters_max = iters;
        }
        // How this strip's solution leaves the slot: 0 = widen(xf),
        // 1 = widen(xf) + widen(rf) (pending correction -- a lone add,
        // contraction-safe in any TU), 2 = copy x, 3 = x + widen(rf).
        strip_state[c0 / strip_cols] = static_cast<unsigned char>(
                have_x ? (pending ? 3u : 2u) : (pending ? 1u : 0u));
    }

    // Scatter epilogue: one pass over the tile rows. Writing the whole
    // dst row segment back to back turns the streaming stores into a
    // single sequential burst per row (the per-strip dispatch only picks
    // source pointers; dst addresses stay consecutive across strips).
    for (std::size_t r = 0; r < n; ++r) {
        if (r + 4 < n) {
            const float* fpf = xf + (r + 4) * pitch;
            const float* dpf = rf + (r + 4) * pitch;
            for (std::size_t j = 0; j < cols; j += 16) {
                __builtin_prefetch(fpf + j, 0, 1);
                __builtin_prefetch(dpf + j, 0, 1);
            }
        }
        for (std::size_t c0 = 0; c0 < cols; c0 += strip_cols) {
            const std::size_t scols =
                    tc - c0 < strip_cols ? tc - c0 : strip_cols;
            const std::size_t live = cols - c0 < scols ? cols - c0 : scols;
            const unsigned state = strip_state[c0 / strip_cols];
            const double* PSPL_RESTRICT xrow = x + r * pitch + c0;
            const float* PSPL_RESTRICT frow = xf + r * pitch + c0;
            const float* PSPL_RESTRICT drow = rf + r * pitch + c0;
            if constexpr (std::is_same_v<DstScalar, double>) {
                double* out = &dst(r, t.begin + c0);
                switch (state) {
                case 0: scatter_row_widen(out, frow, live); break;
                case 1: scatter_row_sum_widen(out, frow, drow, live); break;
                case 2: scatter_row_copy(out, xrow, live); break;
                default: scatter_row_add_widen(out, xrow, drow, live); break;
                }
            } else {
                for (std::size_t j = 0; j < live; ++j) {
                    double v;
                    switch (state) {
                    case 0: v = static_cast<double>(frow[j]); break;
                    case 1:
                        v = static_cast<double>(frow[j])
                            + static_cast<double>(drow[j]);
                        break;
                    case 2: v = xrow[j]; break;
                    default:
                        v = xrow[j] + static_cast<double>(drow[j]);
                        break;
                    }
                    dst(r, t.begin + c0 + j) = static_cast<DstScalar>(v);
                }
            }
        }
    }
    stream_fence();
    tile_iters(t.index) = iters_max;
    tile_fallback(t.index) = any_fallback ? 1 : 0;
    stage_sec(2 * t.index) = sec_f32;
    stage_sec(2 * t.index + 1) = sec_res;
}

} // namespace detail

/// Per-element staging footprint of the mixed pipeline (FP64 iterate +
/// FP32 iterate + FP32 residual + pristine RHS at source precision), the
/// `staging_bytes` fed to the tile model -- element size drives the tile
/// width, so an FP32-sourced mixed tile is wider than the FP64 path's and
/// a pure-FP32 tile (sizeof(float)) is wider still.
constexpr std::size_t mixed_staging_bytes(std::size_t src_value_bytes)
{
    return sizeof(double) + 2 * sizeof(float) + src_value_bytes;
}

/// Reduced-precision batched solve: every column of `src` (shape (n,
/// batch), double or float elements) is solved into `dst` (same shape; may
/// be the same view for an in-place solve). Precision::Single runs the
/// FP32 pipeline end to end; Precision::Mixed adds the FP64 refinement
/// loop and the FP64 fallback. Precision::Double is the caller's job --
/// route through schur_solve_batched, which this driver never perturbs.
template <class Exec = DefaultExecutionSpace, class SrcView, class DstView>
RefinementStats solve_refined_batched(
        const SchurSolver& solver, const SrcView& src, const DstView& dst,
        Precision prec, const RefinementOptions& opt = {},
        const TilePolicy& policy = TilePolicy::from_env(),
        bool use_spmv = true)
{
    PSPL_EXPECT(prec != Precision::Double,
                "solve_refined_batched: Precision::Double belongs on the "
                "FP64 ladder (schur_solve_batched)");
    const SchurDeviceData& sd = solver.device_data();
    const SchurFloatFactors& sf = solver.float_factors();
    const sparse::Coo& a = solver.matrix_coo();
    constexpr int W = simd_preferred_width<double>;
    constexpr std::size_t wf = 2 * static_cast<std::size_t>(W);
    const std::size_t n = sd.n;
    const std::size_t batch = src.extent(1);
    PSPL_EXPECT(src.extent(0) == n, "solve_refined_batched: bad RHS rows");
    PSPL_EXPECT(dst.extent(0) == n && dst.extent(1) == batch,
                "solve_refined_batched: src/dst shape mismatch");
    RefinementStats stats;
    if (batch == 0) {
        return stats;
    }
    using SrcScalar = std::remove_cv_t<std::remove_reference_t<decltype(src(
            std::size_t{0}, std::size_t{0}))>>;
    const bool single = prec == Precision::Single;
    const std::size_t staging = single
                                        ? sizeof(float)
                                        : mixed_staging_bytes(
                                                  sizeof(SrcScalar));
    // Tile width. Single runs the whole chain on one staged buffer, so it
    // uses the L2 cache model like the FP64 path. Mixed compute is
    // strip-mined inside the tile (see solve_mixed_tile), so its outer
    // tile balances two pressures instead: wide rows make the strided
    // gather read near-sequential, but the slot is re-walked by every
    // stage, so it must stay L3-warm -- a few MiB wins over streaming
    // widths in measurement (explicit PSPL_TILE widths are still honored
    // -- that is what ablations are for).
    std::size_t tc;
    if (single || policy.mode == TilePolicy::Mode::Explicit) {
        tc = policy.staged_tile_cols(n, batch, staging, wf);
    } else {
        // Round to whole 4-pack strips so every full strip takes the
        // super-pack solve path.
        constexpr std::size_t slot_target = std::size_t{6} << 20;
        const std::size_t strip = 4 * wf;
        std::size_t w = n > 0 ? slot_target / (n * staging) : strip;
        w = (w / strip) * strip;
        if (w < wf) {
            w = wf;
        }
        if (w > 2048) {
            w = 2048;
        }
        const std::size_t batch_up = ((batch + wf - 1) / wf) * wf;
        tc = w < batch_up ? w : batch_up;
    }
    const std::size_t ntiles = (batch + tc - 1) / tc;

    // Per-thread staging carved out of the persistent arena (see the slot
    // layout in solve_mixed_tile) plus one scratch row for the fused
    // residual pass; Single stages FP32 only. Mixed rows carry one strip
    // of pitch padding (cache-set skew, see solve_mixed_tile).
    const std::size_t pitch = single ? tc : tc + 4 * wf;
    // Mixed slots append one rwork row plus one byte per column for the
    // per-strip scatter states (pitch bytes is a comfortable upper bound).
    const std::size_t bytes_per_slot =
            n * pitch * staging
            + (single ? 0 : pitch * (sizeof(double) + 1));
    WorkspaceArena& arena = host_workspace_arena();
    arena.reserve(static_cast<std::size_t>(Exec::concurrency()),
                  bytes_per_slot);
    debug::ScratchGuard scratch(arena.data(), arena.size_bytes());
    std::byte* const abase = arena.data();
    const std::size_t astride = arena.slot_stride_bytes();

    // Per-tile instrumentation, written from inside the ([=]-captured)
    // kernel through shallow views and reduced after the dispatch.
    View1D<int> tile_iters("refine_tile_iters", ntiles);
    View1D<int> tile_fallback("refine_tile_fallback", ntiles);
    View1D<double> stage_sec("refine_stage_seconds", 2 * ntiles);

    const double target = opt.rel_residual_target;
    const int max_iters = opt.max_iters;
    const char* label = single ? "pspl::refine::SingleSolveTile"
                               : "pspl::refine::MixedSolveTile";
    for_each_batch_tile(label, RangePolicy<Exec>(batch), tc,
                        [=](const BatchTile& t) {
        std::byte* const slot =
                abase + astride * static_cast<std::size_t>(Exec::thread_rank());
        if (single) {
            float* PSPL_RESTRICT xf = reinterpret_cast<float*>(slot);
            if (use_spmv) {
                detail::solve_single_tile<W, true>(sf, src, dst, t, tc, xf);
            } else {
                detail::solve_single_tile<W, false>(sf, src, dst, t, tc, xf);
            }
            tile_iters(t.index) = 0;
            tile_fallback(t.index) = 0;
            return;
        }
        if (use_spmv) {
            detail::solve_mixed_tile<W, true>(sd, sf, a, src, dst, t, tc,
                                              target, max_iters, slot,
                                              tile_iters, tile_fallback,
                                              stage_sec);
        } else {
            detail::solve_mixed_tile<W, false>(sd, sf, a, src, dst, t, tc,
                                               target, max_iters, slot,
                                               tile_iters, tile_fallback,
                                               stage_sec);
        }
    });

    stats.tiles = ntiles;
    for (std::size_t i = 0; i < ntiles; ++i) {
        stats.refine_iters = tile_iters(i) > stats.refine_iters
                                     ? tile_iters(i)
                                     : stats.refine_iters;
        stats.fallback_tiles += tile_fallback(i) > 0 ? 1 : 0;
    }

    // Per-stage spans + modeled counters. The FP32 chain moves 4-byte
    // elements, so its bytes are the FP64 model's at half weight; each
    // refinement iteration adds the residual pass (2 flops per structural
    // nonzero per column, cache-resident r/x update traffic) on top.
    if (profiling::enabled()) {
        double sec_f32 = 0.0;
        double sec_res = 0.0;
        for (std::size_t i = 0; i < ntiles; ++i) {
            sec_f32 += stage_sec(2 * i);
            sec_res += stage_sec(2 * i + 1);
        }
        const auto nb = static_cast<double>(batch);
        const batched::KernelCost c64 =
                detail::total_solve_cost(sd, batch, use_spmv);
        const double passes = 1.0 + static_cast<double>(stats.refine_iters);
        profiling::record("solve_f32", sec_f32);
        profiling::add_counters("solve_f32", 0.5 * c64.bytes * passes,
                                c64.flops * passes);
        if (!single) {
            const double nnz_d = static_cast<double>(a.nnz());
            const double nd = static_cast<double>(n);
            profiling::record("refine_iter", sec_res);
            profiling::add_counters("refine_iter",
                                    passes * nb
                                            * static_cast<double>(staging)
                                            * nd,
                                    passes * nb * 2.0 * nnz_d);
        }
    }
    return stats;
}

/// In-place convenience overload: solve every column of `b` at the given
/// reduced precision.
template <class Exec = DefaultExecutionSpace, class BView>
RefinementStats solve_refined_batched(
        const SchurSolver& solver, const BView& b, Precision prec,
        const RefinementOptions& opt = {},
        const TilePolicy& policy = TilePolicy::from_env(),
        bool use_spmv = true)
{
    return solve_refined_batched<Exec>(solver, b, b, prec, opt, policy,
                                       use_spmv);
}

} // namespace pspl::core
