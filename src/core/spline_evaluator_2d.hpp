// 2-D tensor-product spline evaluation: s(x, y) = sum_ij c_ij N_i(x) M_j(y).
// Kernel-callable, like the 1-D evaluator.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/macros.hpp"
#include "parallel/view.hpp"

#include <utility>

namespace pspl::core {

class SplineEvaluator2D
{
public:
    SplineEvaluator2D() = default;

    SplineEvaluator2D(bsplines::BSplineBasis basis_x,
                      bsplines::BSplineBasis basis_y)
        : m_basis_x(std::move(basis_x)), m_basis_y(std::move(basis_y))
    {
    }

    const bsplines::BSplineBasis& basis_x() const { return m_basis_x; }
    const bsplines::BSplineBasis& basis_y() const { return m_basis_y; }

    /// s(x, y) from a (nx, ny) coefficient view.
    template <class CView>
    double operator()(double x, double y, const CView& coeffs) const
    {
        double vx[bsplines::BSplineBasis::max_degree + 1];
        double vy[bsplines::BSplineBasis::max_degree + 1];
        const long jx = m_basis_x.eval_basis(x, vx);
        const long jy = m_basis_y.eval_basis(y, vy);
        return contract(jx, vx, jy, vy, coeffs);
    }

    /// d/dx s(x, y).
    template <class CView>
    double deriv_x(double x, double y, const CView& coeffs) const
    {
        double vx[bsplines::BSplineBasis::max_degree + 1];
        double vy[bsplines::BSplineBasis::max_degree + 1];
        const long jx = m_basis_x.eval_deriv(x, vx);
        const long jy = m_basis_y.eval_basis(y, vy);
        return contract(jx, vx, jy, vy, coeffs);
    }

    /// d/dy s(x, y).
    template <class CView>
    double deriv_y(double x, double y, const CView& coeffs) const
    {
        double vx[bsplines::BSplineBasis::max_degree + 1];
        double vy[bsplines::BSplineBasis::max_degree + 1];
        const long jx = m_basis_x.eval_basis(x, vx);
        const long jy = m_basis_y.eval_deriv(y, vy);
        return contract(jx, vx, jy, vy, coeffs);
    }

    /// Strip evaluation: out[k] = s(xs(k), ys(k)) for npts paired points.
    /// Boundary handling is per point and per axis -- periodic axes wrap
    /// (the seam x = xmax lands on xmin's cell), clamped axes clamp feet
    /// outside the domain onto the boundary cell -- so semi-Lagrangian
    /// feet may lie anywhere. The companion of the 1-D evaluator's
    /// evaluate_shifted for tensor-product advection paths.
    template <class CView>
    void evaluate_many(const View1D<double>& xs, const View1D<double>& ys,
                       const CView& coeffs, double* PSPL_RESTRICT out) const
    {
        PSPL_EXPECT(xs.extent(0) == ys.extent(0),
                    "SplineEvaluator2D::evaluate_many: xs and ys must pair");
        const std::size_t npts = xs.extent(0);
        for (std::size_t k = 0; k < npts; ++k) {
            out[k] = (*this)(xs(k), ys(k), coeffs);
        }
    }

    /// Exact integral over the 2-D domain (tensor product of the 1-D basis
    /// integrals).
    template <class CView>
    double integrate(const CView& coeffs) const
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < m_basis_x.nbasis(); ++i) {
            const double wx = m_basis_x.basis_integral(i);
            double row = 0.0;
            for (std::size_t j = 0; j < m_basis_y.nbasis(); ++j) {
                row += coeffs(i, j) * m_basis_y.basis_integral(j);
            }
            acc += wx * row;
        }
        return acc;
    }

private:
    template <class CView>
    double contract(long jx, const double* vx, long jy, const double* vy,
                    const CView& coeffs) const
    {
        double acc = 0.0;
        for (int r = 0; r <= m_basis_x.degree(); ++r) {
            const std::size_t bi = m_basis_x.basis_index(jx + r);
            double row = 0.0;
            for (int s = 0; s <= m_basis_y.degree(); ++s) {
                row += vy[s] * coeffs(bi, m_basis_y.basis_index(jy + s));
            }
            acc += vx[r] * row;
        }
        return acc;
    }

    bsplines::BSplineBasis m_basis_x;
    bsplines::BSplineBasis m_basis_y;
};

} // namespace pspl::core
