// Schur-complement spline matrix solver (paper §II-B-1, Algorithm 1).
//
// Setup (host, once): split A into
//     A = ( Q      gamma )
//         ( lambda delta )
// factorize Q with the specialized routine chosen by structure analysis,
// compute beta = Q^{-1} gamma and the Schur complement delta' = delta -
// lambda*beta, LU-factorize delta', and sparsify lambda / beta into COO
// (beta's entries decay exponentially away from the corners, so a tiny
// threshold keeps ~degree*log(1/eps) of them -- the paper's "(999,1) block
// with 48 nonzeros").
//
// Solve (per right-hand side, in a parallel region):
//     1. Q x0' = b0
//     2. delta' x1 = b1 - lambda x0'
//     3. x0 = x0' - beta x1
#pragma once

#include "core/matrix_structure.hpp"
#include "parallel/macros.hpp"
#include "parallel/view.hpp"
#include "sparse/coo.hpp"

#include "batched/serial_gbtrs.hpp"
#include "batched/serial_getrs.hpp"
#include "batched/serial_gttrs.hpp"
#include "batched/serial_pbtrs.hpp"
#include "batched/serial_pttrs.hpp"

#include <cstddef>

namespace pspl::core {

/// All device-side data needed to solve one RHS. Views are shallow-copied
/// into kernels; which Q-factor views are populated depends on `kind`.
struct SchurDeviceData {
    SolverKind kind = SolverKind::GETRS;
    std::size_t n = 0;  ///< full system size
    std::size_t n0 = 0; ///< size of Q
    std::size_t k = 0;  ///< corner (Schur border) width
    int kl = 0;         ///< Q subdiagonals (GBTRS)
    int ku = 0;         ///< Q superdiagonals (GBTRS)

    // Q factor, one of:
    View1D<double> pt_d, pt_e;              // PTTRS: LDL^T
    View1D<double> gt_dl, gt_d, gt_du, gt_du2; // GTTRS: pivoted tridiag LU
    View1D<int> gt_ipiv;                    //
    View2D<double> pb_ab;                   // PBTRS: (kd+1, n0) Cholesky band
    View2D<double> gb_ab;                   // GBTRS: (2kl+ku+1, n0) LU band
    View1D<int> gb_ipiv;                    //
    View2D<double> ge_lu;                   // GETRS: dense LU
    View1D<int> ge_ipiv;                    //

    // Schur complement factor (k x k dense LU).
    View2D<double> delta_lu;
    View1D<int> delta_ipiv;

    // Corner blocks, dense (baseline / fused-gemv versions) ...
    View2D<double> lambda_dense; // (k, n0)
    View2D<double> beta_dense;   // (n0, k)
    // ... and sparse (fused-spmv version).
    sparse::Coo lambda_coo;
    sparse::Coo beta_coo;
};

/// FP32 mirror of the factorized blocks, produced once at setup by
/// narrowing the host FP64 factors (plus precomputed reciprocal diagonals
/// for the tridiagonal kinds, so the FP32 sweeps run divide-free at FMA
/// latency). Same member names as SchurDeviceData so the value-type-generic
/// solve chain -- solve_q_serial, solve_pack_column -- consumes either
/// struct through one template. Used by the mixed/single-precision pipeline
/// (src/core/refinement.hpp); the FP64 ladder never touches it.
struct SchurFloatFactors {
    SolverKind kind = SolverKind::GETRS;
    std::size_t n = 0;
    std::size_t n0 = 0;
    std::size_t k = 0;
    int kl = 0;
    int ku = 0;

    View1D<float> pt_d, pt_e;
    View1D<float> pt_dinv; // 1/d, the divide-free PTTRS sweep
    View1D<float> gt_dl, gt_d, gt_du, gt_du2;
    View1D<float> gt_dinv; // 1/d, the divide-free GTTRS backward sweep
    View1D<int> gt_ipiv;
    View2D<float> pb_ab;
    View2D<float> gb_ab;
    View1D<int> gb_ipiv;
    View2D<float> ge_lu;
    View1D<int> ge_ipiv;

    View2D<float> delta_lu;
    View1D<int> delta_ipiv;

    View2D<float> lambda_dense;
    View2D<float> beta_dense;
    sparse::BasicCoo<float> lambda_coo;
    sparse::BasicCoo<float> beta_coo;
};

/// Solve Q x = b in place for one RHS, dispatching on the factor kind.
/// Callable inside parallel kernels. Generic over the device-data flavour:
/// SchurDeviceData drives the FP64 ladder exactly as before, and
/// SchurFloatFactors (detected by its reciprocal-diagonal members) routes
/// the tridiagonal kinds through the divide-free reciprocal sweeps.
template <class SData, class BView>
PSPL_INLINE_FUNCTION void solve_q_serial(const SData& s, const BView& b)
{
    switch (s.kind) {
    case SolverKind::PTTRS:
        if constexpr (requires { s.pt_dinv; }) {
            batched::SerialPttrsRecip<
                    batched::Uplo::Lower,
                    batched::Algo::Pttrs::Unblocked>::invoke(s.pt_dinv,
                                                             s.pt_e, b);
        } else {
            batched::SerialPttrs<
                    batched::Uplo::Lower,
                    batched::Algo::Pttrs::Unblocked>::invoke(s.pt_d, s.pt_e,
                                                             b);
        }
        break;
    case SolverKind::GTTRS:
        if constexpr (requires { s.gt_dinv; }) {
            batched::SerialGttrsRecip<>::invoke(s.gt_dl, s.gt_dinv, s.gt_du,
                                                s.gt_du2, s.gt_ipiv, b);
        } else {
            batched::SerialGttrs<>::invoke(s.gt_dl, s.gt_d, s.gt_du,
                                           s.gt_du2, s.gt_ipiv, b);
        }
        break;
    case SolverKind::PBTRS:
        batched::SerialPbtrs<>::invoke(s.pb_ab, b);
        break;
    case SolverKind::GBTRS:
        batched::SerialGbtrs<>::invoke(s.gb_ab, s.kl, s.ku, s.gb_ipiv, b);
        break;
    case SolverKind::GETRS:
        batched::SerialGetrs<>::invoke(s.ge_lu, s.ge_ipiv, b);
        break;
    }
}

/// Host-side factory: analyzes A, factorizes the blocks, and exposes the
/// device data. A is not modified.
class SchurSolver
{
public:
    struct Options {
        /// Relative threshold (vs max|A|) below which corner entries are
        /// dropped when building the COO blocks.
        double sparsify_threshold = 1e-15;
        /// Structural-zero tolerance for the analysis.
        double structure_tol = 1e-14;
    };

    explicit SchurSolver(const View2D<double>& a);
    SchurSolver(const View2D<double>& a, Options opts);

    const MatrixStructure& structure() const { return m_structure; }
    const SchurDeviceData& device_data() const { return m_data; }
    SolverKind kind() const { return m_data.kind; }

    /// FP32 mirror of the factors (built once at setup; views are shallow,
    /// so kernels shallow-copy it like the FP64 device data).
    const SchurFloatFactors& float_factors() const { return m_float; }

    /// The full FP64 matrix A in COO form (all structural nonzeros), the
    /// operator the refinement loop applies for r = b - A x residuals.
    const sparse::Coo& matrix_coo() const { return m_a_coo; }

    /// Solve A x = b in place for a single host-side RHS (reference path,
    /// used by tests and the host beta computation).
    template <class BView>
    void solve_host(const BView& b) const
    {
        solve_one(m_data, b);
    }

    /// The full Algorithm 1 on one RHS given split views b0 (n0) / b1 (k).
    /// Usable inside kernels; this is what the fused builders call.
    template <class B0View, class B1View>
    static PSPL_INLINE_FUNCTION void
    solve_split(const SchurDeviceData& s, const B0View& b0, const B1View& b1)
    {
        solve_q_serial(s, b0);
        if (s.k > 0) {
            // b1 -= lambda * x0'
            for (std::size_t i = 0; i < s.k; ++i) {
                double acc = b1(i);
                for (std::size_t j = 0; j < s.n0; ++j) {
                    acc -= s.lambda_dense(i, j) * b0(j);
                }
                b1(i) = acc;
            }
            batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv, b1);
            // x0 = x0' - beta * x1
            for (std::size_t i = 0; i < s.n0; ++i) {
                double acc = b0(i);
                for (std::size_t j = 0; j < s.k; ++j) {
                    acc -= s.beta_dense(i, j) * b1(j);
                }
                b0(i) = acc;
            }
        }
    }

    /// Convenience: Algorithm 1 on one unsplit RHS view of size n.
    template <class BView>
    static void solve_one(const SchurDeviceData& s, const BView& b);

private:
    MatrixStructure m_structure;
    SchurDeviceData m_data;
    SchurFloatFactors m_float;
    sparse::Coo m_a_coo;

    void build_float_factors();
};

namespace detail {

/// Rank-1 window into another rank-1 view: b[offset + i].
template <class BView>
struct Window {
    using value_type = double;
    static constexpr std::size_t rank = 1; ///< models pspl::ViewLike

    const BView& b;
    std::size_t offset;
    std::size_t len;
    PSPL_FORCEINLINE_FUNCTION double& operator()(std::size_t i) const
    {
        return b(offset + i);
    }
    PSPL_FORCEINLINE_FUNCTION std::size_t extent(std::size_t) const
    {
        return len;
    }
    PSPL_FORCEINLINE_FUNCTION double* data() const { return &b(offset); }
    PSPL_FORCEINLINE_FUNCTION std::size_t stride(std::size_t) const
    {
        return b.stride(0);
    }
};

} // namespace detail

template <class BView>
void SchurSolver::solve_one(const SchurDeviceData& s, const BView& b)
{
    const detail::Window<BView> b0{b, 0, s.n0};
    const detail::Window<BView> b1{b, s.n0, s.k};
    solve_split(s, b0, b1);
}

} // namespace pspl::core
