// Periodic spline evaluation from coefficient blocks.
//
// The evaluator is the second half of the paper's benchmark kernel
// (Algorithm 2 lines 6-10): after the builder turns interpolation values
// into coefficients, the evaluator reconstructs s(x) at arbitrary
// (off-grid) positions such as the feet of characteristics.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/macros.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/simd_view.hpp"
#include "parallel/view.hpp"

#include <utility>
#include <vector>

namespace pspl::core {

enum class EvaluatorVersion {
    Scalar = 0,
    /// SIMD-across-batch: the basis functions at each point are shared by
    /// every spline in the batch, so one scalar basis evaluation feeds W
    /// pack-wide coefficient combinations.
    Simd = 1,
};

const char* to_string(EvaluatorVersion v);

/// Rank-1 accessor over one coefficient column of an arena-staged row-major
/// strip (the layout the tile-resident solve drivers leave behind): element
/// r of the column lives at ptr[r * step]. Models the coefficient-view
/// shape the evaluator entry points consume, so the fused advection driver
/// can evaluate splines straight out of the staged tile without scattering
/// the coefficients to a full-size View first.
struct StripColumn {
    using value_type = double;
    static constexpr std::size_t rank = 1;

    const double* PSPL_RESTRICT ptr = nullptr;
    std::size_t len = 0;
    std::size_t step = 1; ///< elements between consecutive rows

    PSPL_FORCEINLINE_FUNCTION double operator()(std::size_t i) const
    {
        PSPL_DEBUG_ASSERT(i < len, "StripColumn: index out of bounds");
        return ptr[i * step];
    }
    PSPL_FORCEINLINE_FUNCTION std::size_t extent(std::size_t) const
    {
        return len;
    }
    PSPL_FORCEINLINE_FUNCTION const double* data() const { return ptr; }
    PSPL_FORCEINLINE_FUNCTION std::size_t stride(std::size_t) const
    {
        return step;
    }
};

class SplineEvaluator
{
public:
    SplineEvaluator() = default;

    explicit SplineEvaluator(bsplines::BSplineBasis basis,
                             EvaluatorVersion version = EvaluatorVersion::Simd)
        : m_basis(std::move(basis)), m_version(version)
    {
    }

    const bsplines::BSplineBasis& basis() const { return m_basis; }
    EvaluatorVersion version() const { return m_version; }
    void set_version(EvaluatorVersion v) { m_version = v; }

    /// s(x) for one coefficient column (rank-1 view). Kernel-callable.
    /// Periodic bases wrap x; clamped bases clamp it to the domain.
    template <class CView>
    double operator()(double x, const CView& coeffs) const
    {
        double vals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_basis(x, vals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += vals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// s'(x) for one coefficient column. Kernel-callable.
    template <class CView>
    double deriv(double x, const CView& coeffs) const
    {
        double dvals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_deriv(x, dvals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += dvals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// Integral of the spline over its domain: sum of coefficients times
    /// basis integrals (exact, no quadrature).
    template <class CView>
    double integrate(const CView& coeffs) const
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < m_basis.nbasis(); ++i) {
            acc += coeffs(i) * m_basis.basis_integral(i);
        }
        return acc;
    }

    /// Host convenience: evaluate at many points for one coefficient column.
    std::vector<double> evaluate_many(const std::vector<double>& points,
                                      const View1D<double>& coeffs) const;

    /// Whether evaluate_shifted() may take the uniform-knot SIMD fast path:
    /// a uniform periodic basis evaluates every point in cell-local units
    /// (eval_basis' cell_units branch), so the Cox-de Boor recursion can
    /// advance W feet per vector instruction with lane-wise arithmetic that
    /// is bit-for-bit the scalar recursion. Clamped bases fall outside the
    /// guarantee near the repeated end knots and stay on the scalar path.
    bool shifted_simd_supported() const
    {
        return m_basis.is_uniform() && m_basis.is_periodic();
    }

    /// Strip evaluation (kernel-callable): out[i] = s(points(i) - shift)
    /// for i in [0, points.extent(0)), one coefficient column. `shift` is
    /// the backward-characteristic displacement v*dt of semi-Lagrangian
    /// advection; `out` is a contiguous row (an output strip row or a row
    /// of the distribution function itself). Dispatches on the configured
    /// EvaluatorVersion and on shifted_simd_supported(); every path
    /// performs the exact FP operations of the scalar reference, in the
    /// same order, so the results are bitwise identical across paths.
    template <class CView>
    void evaluate_shifted(const View1D<double>& points, double shift,
                          const CView& coeffs,
                          double* PSPL_RESTRICT out) const
    {
        if (m_version == EvaluatorVersion::Simd && shifted_simd_supported()) {
            evaluate_shifted_simd<simd_preferred_width<double>>(points, shift,
                                                                coeffs, out);
            return;
        }
        const std::size_t npts = points.extent(0);
        for (std::size_t i = 0; i < npts; ++i) {
            out[i] = (*this)(points(i) - shift, coeffs);
        }
    }

    /// Explicit-width uniform-knot SIMD fast path of evaluate_shifted: the
    /// feet land in per-lane cells (scalar wrap/find_cell, they are integer
    /// searches), then one pack-wide Cox-de Boor recursion advances the W
    /// basis evaluations together in cell-local units -- per lane the same
    /// multiply/divide/add sequence as bsplines::BSplineBasis::eval_basis,
    /// so each lane's basis values are bitwise those of the scalar path.
    /// The (degree+1)-tap coefficient combination is lane-serial (every
    /// lane gathers a different support window). Caller must ensure
    /// shifted_simd_supported().
    template <int W, class CView>
    void evaluate_shifted_simd(const View1D<double>& points, double shift,
                               const CView& coeffs,
                               double* PSPL_RESTRICT out) const
    {
        PSPL_DEBUG_ASSERT(shifted_simd_supported(),
                          "evaluate_shifted_simd: uniform periodic bases "
                          "only (clamped end cells leave cell-local units)");
        using Pack = simd<double, W>;
        const int p = m_basis.degree();
        const std::size_t npts = points.extent(0);
        std::size_t i = 0;
        for (; i + static_cast<std::size_t>(W) <= npts; i += W) {
            Pack u(0.0);
            long jmin[W];
            for (int l = 0; l < W; ++l) {
                const double xw = m_basis.wrap(points(i + l) - shift);
                const auto icell =
                        static_cast<long>(m_basis.find_cell(xw));
                const double b0 = m_basis.break_point(
                        static_cast<std::size_t>(icell));
                const double h = m_basis.break_point(
                                         static_cast<std::size_t>(icell) + 1)
                                 - b0;
                u.set(l, (xw - b0) / h);
                jmin[l] = icell - p;
            }
            Pack vals[bsplines::BSplineBasis::max_degree + 1];
            Pack left[bsplines::BSplineBasis::max_degree + 1];
            Pack right[bsplines::BSplineBasis::max_degree + 1];
            vals[0] = Pack(1.0);
            for (int j = 0; j < p; ++j) {
                left[j] = u + static_cast<double>(j);
                right[j] = (1.0 - u) + static_cast<double>(j);
                Pack saved(0.0);
                for (int r = 0; r <= j; ++r) {
                    const Pack temp = vals[r] / (right[r] + left[j - r]);
                    vals[r] = saved + right[r] * temp;
                    saved = left[j - r] * temp;
                }
                vals[j + 1] = saved;
            }
            for (int l = 0; l < W; ++l) {
                double acc = 0.0;
                for (int r = 0; r <= p; ++r) {
                    acc += vals[r][l]
                           * coeffs(m_basis.basis_index(jmin[l] + r));
                }
                out[i + l] = acc;
            }
        }
        for (; i < npts; ++i) { // scalar tail, same arithmetic per point
            out[i] = (*this)(points(i) - shift, coeffs);
        }
    }

    /// Batched evaluation: out(p, i) = s_i(points(p)) where column i of
    /// `coeffs` (n, batch) holds one spline. Parallel over the batch;
    /// dispatches on the configured EvaluatorVersion.
    template <class Exec = DefaultExecutionSpace, class CView, class OView>
    void evaluate_batched(const View1D<double>& points, const CView& coeffs,
                          const OView& out) const
    {
        if (m_version == EvaluatorVersion::Simd) {
            evaluate_batched_simd<simd_preferred_width<double>, Exec>(
                    points, coeffs, out);
            return;
        }
        const std::size_t batch = coeffs.extent(1);
        const std::size_t npts = points.extent(0);
        PSPL_EXPECT(out.extent(0) == npts && out.extent(1) == batch,
                    "evaluate_batched: output extents mismatch");
        const SplineEvaluator self = *this;
        parallel_for("pspl::core::evaluate_batched", RangePolicy<Exec>(batch),
                     [=](std::size_t i) {
                         for (std::size_t p = 0; p < npts; ++p) {
                             double acc = 0.0;
                             double vals[bsplines::BSplineBasis::max_degree + 1];
                             const long jmin = self.m_basis.eval_basis(
                                     points(p), vals);
                             for (int r = 0; r <= self.m_basis.degree(); ++r) {
                                 acc += vals[r]
                                        * coeffs(self.m_basis.basis_index(
                                                         jmin + r),
                                                 i);
                             }
                             out(p, i) = acc;
                         }
                     });
    }

    /// Explicit-width SIMD evaluation: W adjacent splines per pack. The
    /// basis values vals[] and the support start jmin depend only on the
    /// point, so they are computed once per point per chunk and broadcast
    /// into the lane-wise coefficient combination -- same FP operations per
    /// lane as the scalar path, in the same order.
    template <int W, class Exec = DefaultExecutionSpace, class CView,
              class OView>
    void evaluate_batched_simd(const View1D<double>& points,
                               const CView& coeffs, const OView& out) const
    {
        const std::size_t batch = coeffs.extent(1);
        const std::size_t npts = points.extent(0);
        PSPL_EXPECT(out.extent(0) == npts && out.extent(1) == batch,
                    "evaluate_batched: output extents mismatch");
        const SplineEvaluator self = *this;
        for_each_batch_simd<W>("pspl::core::evaluate_batched_simd",
                               RangePolicy<Exec>(batch),
                               [=](const BatchChunk<W>& chunk) {
            for (std::size_t p = 0; p < npts; ++p) {
                double vals[bsplines::BSplineBasis::max_degree + 1];
                const long jmin = self.m_basis.eval_basis(points(p), vals);
                simd<double, W> acc(0.0);
                for (int r = 0; r <= self.m_basis.degree(); ++r) {
                    acc += vals[r]
                           * simd_load_lanes<W>(
                                   coeffs,
                                   self.m_basis.basis_index(jmin + r),
                                   chunk.begin, chunk.lanes);
                }
                simd_store_lanes<W>(acc, out, p, chunk.begin, chunk.lanes);
            }
        });
    }

private:
    bsplines::BSplineBasis m_basis;
    EvaluatorVersion m_version = EvaluatorVersion::Simd;
};

} // namespace pspl::core
