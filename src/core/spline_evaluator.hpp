// Periodic spline evaluation from coefficient blocks.
//
// The evaluator is the second half of the paper's benchmark kernel
// (Algorithm 2 lines 6-10): after the builder turns interpolation values
// into coefficients, the evaluator reconstructs s(x) at arbitrary
// (off-grid) positions such as the feet of characteristics.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/macros.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/simd_view.hpp"
#include "parallel/view.hpp"

#include <utility>
#include <vector>

namespace pspl::core {

enum class EvaluatorVersion {
    Scalar = 0,
    /// SIMD-across-batch: the basis functions at each point are shared by
    /// every spline in the batch, so one scalar basis evaluation feeds W
    /// pack-wide coefficient combinations.
    Simd = 1,
};

const char* to_string(EvaluatorVersion v);

class SplineEvaluator
{
public:
    SplineEvaluator() = default;

    explicit SplineEvaluator(bsplines::BSplineBasis basis,
                             EvaluatorVersion version = EvaluatorVersion::Simd)
        : m_basis(std::move(basis)), m_version(version)
    {
    }

    const bsplines::BSplineBasis& basis() const { return m_basis; }
    EvaluatorVersion version() const { return m_version; }
    void set_version(EvaluatorVersion v) { m_version = v; }

    /// s(x) for one coefficient column (rank-1 view). Kernel-callable.
    /// Periodic bases wrap x; clamped bases clamp it to the domain.
    template <class CView>
    double operator()(double x, const CView& coeffs) const
    {
        double vals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_basis(x, vals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += vals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// s'(x) for one coefficient column. Kernel-callable.
    template <class CView>
    double deriv(double x, const CView& coeffs) const
    {
        double dvals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_deriv(x, dvals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += dvals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// Integral of the spline over its domain: sum of coefficients times
    /// basis integrals (exact, no quadrature).
    template <class CView>
    double integrate(const CView& coeffs) const
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < m_basis.nbasis(); ++i) {
            acc += coeffs(i) * m_basis.basis_integral(i);
        }
        return acc;
    }

    /// Host convenience: evaluate at many points for one coefficient column.
    std::vector<double> evaluate_many(const std::vector<double>& points,
                                      const View1D<double>& coeffs) const;

    /// Batched evaluation: out(p, i) = s_i(points(p)) where column i of
    /// `coeffs` (n, batch) holds one spline. Parallel over the batch;
    /// dispatches on the configured EvaluatorVersion.
    template <class Exec = DefaultExecutionSpace, class CView, class OView>
    void evaluate_batched(const View1D<double>& points, const CView& coeffs,
                          const OView& out) const
    {
        if (m_version == EvaluatorVersion::Simd) {
            evaluate_batched_simd<simd_preferred_width<double>, Exec>(
                    points, coeffs, out);
            return;
        }
        const std::size_t batch = coeffs.extent(1);
        const std::size_t npts = points.extent(0);
        PSPL_EXPECT(out.extent(0) == npts && out.extent(1) == batch,
                    "evaluate_batched: output extents mismatch");
        const SplineEvaluator self = *this;
        parallel_for("pspl::core::evaluate_batched", RangePolicy<Exec>(batch),
                     [=](std::size_t i) {
                         for (std::size_t p = 0; p < npts; ++p) {
                             double acc = 0.0;
                             double vals[bsplines::BSplineBasis::max_degree + 1];
                             const long jmin = self.m_basis.eval_basis(
                                     points(p), vals);
                             for (int r = 0; r <= self.m_basis.degree(); ++r) {
                                 acc += vals[r]
                                        * coeffs(self.m_basis.basis_index(
                                                         jmin + r),
                                                 i);
                             }
                             out(p, i) = acc;
                         }
                     });
    }

    /// Explicit-width SIMD evaluation: W adjacent splines per pack. The
    /// basis values vals[] and the support start jmin depend only on the
    /// point, so they are computed once per point per chunk and broadcast
    /// into the lane-wise coefficient combination -- same FP operations per
    /// lane as the scalar path, in the same order.
    template <int W, class Exec = DefaultExecutionSpace, class CView,
              class OView>
    void evaluate_batched_simd(const View1D<double>& points,
                               const CView& coeffs, const OView& out) const
    {
        const std::size_t batch = coeffs.extent(1);
        const std::size_t npts = points.extent(0);
        PSPL_EXPECT(out.extent(0) == npts && out.extent(1) == batch,
                    "evaluate_batched: output extents mismatch");
        const SplineEvaluator self = *this;
        for_each_batch_simd<W>("pspl::core::evaluate_batched_simd",
                               RangePolicy<Exec>(batch),
                               [=](const BatchChunk<W>& chunk) {
            for (std::size_t p = 0; p < npts; ++p) {
                double vals[bsplines::BSplineBasis::max_degree + 1];
                const long jmin = self.m_basis.eval_basis(points(p), vals);
                simd<double, W> acc(0.0);
                for (int r = 0; r <= self.m_basis.degree(); ++r) {
                    acc += vals[r]
                           * simd_load_lanes<W>(
                                   coeffs,
                                   self.m_basis.basis_index(jmin + r),
                                   chunk.begin, chunk.lanes);
                }
                simd_store_lanes<W>(acc, out, p, chunk.begin, chunk.lanes);
            }
        });
    }

private:
    bsplines::BSplineBasis m_basis;
    EvaluatorVersion m_version = EvaluatorVersion::Simd;
};

} // namespace pspl::core
