// Periodic spline evaluation from coefficient blocks.
//
// The evaluator is the second half of the paper's benchmark kernel
// (Algorithm 2 lines 6-10): after the builder turns interpolation values
// into coefficients, the evaluator reconstructs s(x) at arbitrary
// (off-grid) positions such as the feet of characteristics.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/macros.hpp"
#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <utility>
#include <vector>

namespace pspl::core {

class SplineEvaluator
{
public:
    SplineEvaluator() = default;

    explicit SplineEvaluator(bsplines::BSplineBasis basis)
        : m_basis(std::move(basis))
    {
    }

    const bsplines::BSplineBasis& basis() const { return m_basis; }

    /// s(x) for one coefficient column (rank-1 view). Kernel-callable.
    /// Periodic bases wrap x; clamped bases clamp it to the domain.
    template <class CView>
    double operator()(double x, const CView& coeffs) const
    {
        double vals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_basis(x, vals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += vals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// s'(x) for one coefficient column. Kernel-callable.
    template <class CView>
    double deriv(double x, const CView& coeffs) const
    {
        double dvals[bsplines::BSplineBasis::max_degree + 1];
        const long jmin = m_basis.eval_deriv(x, dvals);
        double acc = 0.0;
        for (int r = 0; r <= m_basis.degree(); ++r) {
            acc += dvals[r] * coeffs(m_basis.basis_index(jmin + r));
        }
        return acc;
    }

    /// Integral of the spline over its domain: sum of coefficients times
    /// basis integrals (exact, no quadrature).
    template <class CView>
    double integrate(const CView& coeffs) const
    {
        double acc = 0.0;
        for (std::size_t i = 0; i < m_basis.nbasis(); ++i) {
            acc += coeffs(i) * m_basis.basis_integral(i);
        }
        return acc;
    }

    /// Host convenience: evaluate at many points for one coefficient column.
    std::vector<double> evaluate_many(const std::vector<double>& points,
                                      const View1D<double>& coeffs) const;

    /// Batched evaluation: out(p, i) = s_i(points(p)) where column i of
    /// `coeffs` (n, batch) holds one spline. Parallel over the batch.
    template <class Exec = DefaultExecutionSpace, class CView, class OView>
    void evaluate_batched(const View1D<double>& points, const CView& coeffs,
                          const OView& out) const
    {
        const std::size_t batch = coeffs.extent(1);
        const std::size_t npts = points.extent(0);
        PSPL_EXPECT(out.extent(0) == npts && out.extent(1) == batch,
                    "evaluate_batched: output extents mismatch");
        const SplineEvaluator self = *this;
        parallel_for("pspl::core::evaluate_batched", RangePolicy<Exec>(batch),
                     [=](std::size_t i) {
                         for (std::size_t p = 0; p < npts; ++p) {
                             double acc = 0.0;
                             double vals[bsplines::BSplineBasis::max_degree + 1];
                             const long jmin = self.m_basis.eval_basis(
                                     points(p), vals);
                             for (int r = 0; r <= self.m_basis.degree(); ++r) {
                                 acc += vals[r]
                                        * coeffs(self.m_basis.basis_index(
                                                         jmin + r),
                                                 i);
                             }
                             out(p, i) = acc;
                         }
                     });
    }

private:
    bsplines::BSplineBasis m_basis;
};

} // namespace pspl::core
