#include "core/spline_builder.hpp"

namespace pspl::core {

const char* to_string(BuilderVersion v)
{
    switch (v) {
    case BuilderVersion::Baseline:
        return "baseline";
    case BuilderVersion::Fused:
        return "kernel-fusion";
    case BuilderVersion::FusedSpmv:
        return "gemv->spmv";
    case BuilderVersion::FusedSimd:
        return "kernel-fusion+simd";
    case BuilderVersion::FusedSpmvSimd:
        return "gemv->spmv+simd";
    }
    return "?";
}

SplineBuilder::SplineBuilder(bsplines::BSplineBasis basis,
                             BuilderVersion version,
                             SchurSolver::Options options)
    : m_basis(std::move(basis)), m_version(version)
{
    const auto a = bsplines::collocation_matrix(m_basis);
    m_solver = std::make_shared<const SchurSolver>(a, options);
}

} // namespace pspl::core
