// Precision policy of the batched spline solve.
//
// The fused batched solve is memory-bandwidth bound at the production point
// (matrix ~10^3, batch ~10^5): arithmetic is cheap and bytes moved per RHS
// dominate. Storing the factors and the staged RHS in FP32 halves that
// traffic and doubles the pspl::simd pack width, and a short FP64
// iterative-refinement loop (src/core/refinement.hpp) restores full double
// accuracy -- the precision-vs-bandwidth trade of batched-solver frameworks
// like Ginkgo and the batched Landau collision solver of Adams et al.
//
//   Double -- the FP64 ladder, bitwise identical to builds without the
//             precision layer. Default.
//   Single -- everything in FP32: fastest, ~1e-4 relative accuracy. For
//             previews / fields whose own discretization error dwarfs it.
//   Mixed  -- FP32 fused solve + FP64 residual correction to the refinement
//             target, with a hard FP64 fallback when refinement stalls.
//
// Selected per builder via SplineBuilder::set_precision, defaulting to the
// PSPL_PRECISION environment variable ("double" | "single" | "mixed",
// case-insensitive; unset or unrecognized -> Double).
#pragma once

#include <cstdlib>
#include <string_view>

namespace pspl::core {

enum class Precision {
    Double = 0,
    Single = 1,
    Mixed = 2,
};

inline const char* to_string(Precision p)
{
    switch (p) {
    case Precision::Double:
        return "double";
    case Precision::Single:
        return "single";
    case Precision::Mixed:
        return "mixed";
    }
    return "double";
}

/// Parse a PSPL_PRECISION-style spelling; unrecognized input yields Double
/// (the conservative default -- never silently degrade accuracy).
inline Precision parse_precision(std::string_view s)
{
    auto lower_eq = [](std::string_view v, std::string_view ref) {
        if (v.size() != ref.size()) {
            return false;
        }
        for (std::size_t i = 0; i < v.size(); ++i) {
            const char c = v[i] >= 'A' && v[i] <= 'Z'
                                   ? static_cast<char>(v[i] - 'A' + 'a')
                                   : v[i];
            if (c != ref[i]) {
                return false;
            }
        }
        return true;
    };
    if (lower_eq(s, "single") || lower_eq(s, "float") || lower_eq(s, "fp32")) {
        return Precision::Single;
    }
    if (lower_eq(s, "mixed")) {
        return Precision::Mixed;
    }
    return Precision::Double;
}

/// Process-wide default from $PSPL_PRECISION (Double when unset).
inline Precision precision_from_env()
{
    const char* env = std::getenv("PSPL_PRECISION");
    if (env == nullptr) {
        return Precision::Double;
    }
    return parse_precision(env);
}

} // namespace pspl::core
