// 2-D tensor-product spline builder (paper §II-B): "Higher dimensional
// B-splines can be obtained by a tensor product of 1D splines. For N-D
// splines, N equations ... must be solved. Each of these equations handles
// one of the dimensions ... batched over the other dimensions."
//
// The 2-D build is therefore exactly two batched 1-D solves: along x with y
// as the batch, then (after a transpose) along y with x as the batch. Mixed
// boundary conditions (periodic x, clamped y, ...) and mixed degrees are
// supported, matching GYSELA's poloidal-plane use.
#pragma once

#include "advection/transpose.hpp"
#include "core/spline_builder.hpp"
#include "parallel/view.hpp"

#include <utility>

namespace pspl::core {

class SplineBuilder2D
{
public:
    SplineBuilder2D() = default;

    SplineBuilder2D(bsplines::BSplineBasis basis_x,
                    bsplines::BSplineBasis basis_y,
                    BuilderVersion version = BuilderVersion::FusedSpmv)
        : m_builder_x(std::move(basis_x), version)
        , m_builder_y(std::move(basis_y), version)
    {
    }

    const bsplines::BSplineBasis& basis_x() const
    {
        return m_builder_x.basis();
    }
    const bsplines::BSplineBasis& basis_y() const
    {
        return m_builder_y.basis();
    }
    const SplineBuilder& builder_x() const { return m_builder_x; }
    const SplineBuilder& builder_y() const { return m_builder_y; }

    /// Solve (A_x (x) A_y) coeffs = values in place. `values` has shape
    /// (nx, ny) with values(i, j) = f(x_i, y_j) at the interpolation points
    /// of both bases; on exit it holds the tensor-product coefficients.
    template <class Exec = DefaultExecutionSpace>
    void build_inplace(const View2D<double>& values) const
    {
        const std::size_t nx = basis_x().nbasis();
        const std::size_t ny = basis_y().nbasis();
        PSPL_EXPECT(values.extent(0) == nx && values.extent(1) == ny,
                    "SplineBuilder2D: values must be (nx, ny)");
        // Solve along x, batched over y (rows are already the x index).
        m_builder_x.template build_inplace<Exec>(values);
        // Solve along y, batched over x. The transpose scratch is sized
        // lazily: consumers on the fused advection path never run a full
        // 2-D plane build, so the plane-sized buffer is only paid for by
        // callers that actually use it (mirrors m_scratch3).
        if (!m_scratch.is_allocated() || m_scratch.extent(0) != ny
            || m_scratch.extent(1) != nx) {
            m_scratch = View2D<double>("spline2d_scratch", ny, nx);
        }
        advection::transpose<Exec>("pspl::core::spline2d_transpose_fwd",
                                   values, m_scratch);
        m_builder_y.template build_inplace<Exec>(m_scratch);
        advection::transpose<Exec>("pspl::core::spline2d_transpose_bwd",
                                   m_scratch, values);
    }

    /// Batched 2-D build, GYSELA style: values has shape (nx, ny, batch)
    /// and every batch entry holds one plane sampled at the tensor-product
    /// interpolation points. Both 1-D passes stay batched over the
    /// contiguous trailing index.
    template <class Exec = DefaultExecutionSpace>
    void build_inplace(const View3D<double>& values) const
    {
        const std::size_t nx = basis_x().nbasis();
        const std::size_t ny = basis_y().nbasis();
        const std::size_t batch = values.extent(2);
        PSPL_EXPECT(values.extent(0) == nx && values.extent(1) == ny,
                    "SplineBuilder2D: values must be (nx, ny, batch)");
        if (!m_scratch3.is_allocated() || m_scratch3.extent(2) != batch) {
            m_scratch3 = View3D<double>("spline2d_scratch3", ny, nx, batch);
        }
        m_builder_x.template build_inplace<Exec>(values);
        advection::transpose_01<Exec>("pspl::core::spline2d_transpose3_fwd",
                                      values, m_scratch3);
        m_builder_y.template build_inplace<Exec>(m_scratch3);
        advection::transpose_01<Exec>("pspl::core::spline2d_transpose3_bwd",
                                      m_scratch3, values);
    }

private:
    SplineBuilder m_builder_x;
    SplineBuilder m_builder_y;
    mutable View2D<double> m_scratch;  ///< (ny, nx), lazily sized
    mutable View3D<double> m_scratch3; ///< (ny, nx, batch), lazily sized
};

} // namespace pspl::core
