#include "core/matrix_structure.hpp"

#include "parallel/macros.hpp"

#include <algorithm>
#include <cmath>

namespace pspl::core {

const char* to_string(SolverKind kind)
{
    switch (kind) {
    case SolverKind::PTTRS:
        return "pttrs";
    case SolverKind::GTTRS:
        return "gttrs";
    case SolverKind::PBTRS:
        return "pbtrs";
    case SolverKind::GBTRS:
        return "gbtrs";
    case SolverKind::GETRS:
        return "getrs";
    }
    return "?";
}

MatrixStructure analyze_structure(const View2D<double>& a, double tol)
{
    const std::size_t n = a.extent(0);
    PSPL_EXPECT(a.extent(1) == n, "analyze_structure: matrix must be square");
    MatrixStructure s;
    s.n = n;

    // Pass 1: corner width. A nonzero at cyclic distance > n/2 from the
    // diagonal belongs to a periodic wrap-around corner; the border must be
    // wide enough to swallow it.
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (std::abs(a(i, j)) <= tol) {
                continue;
            }
            if (j > i && (j - i) > n / 2) {
                // top-right corner entry: needs j >= n-k
                k = std::max(k, n - j);
            } else if (i > j && (i - j) > n / 2) {
                // bottom-left corner entry: needs i >= n-k
                k = std::max(k, n - i);
            }
        }
    }
    s.corner_width = k;

    // Pass 2: bandwidths and symmetry of Q = a[0:n-k, 0:n-k].
    const std::size_t n0 = n - k;
    std::size_t kl = 0;
    std::size_t ku = 0;
    double amax = 0.0;
    for (std::size_t i = 0; i < n0; ++i) {
        for (std::size_t j = 0; j < n0; ++j) {
            const double v = std::abs(a(i, j));
            amax = std::max(amax, v);
            if (v > tol) {
                if (i > j) {
                    kl = std::max(kl, i - j);
                } else {
                    ku = std::max(ku, j - i);
                }
            }
        }
    }
    s.kl = kl;
    s.ku = ku;

    bool sym = true;
    const double sym_tol = tol * std::max(amax, 1.0);
    for (std::size_t i = 0; i < n0 && sym; ++i) {
        const std::size_t reach = std::max(kl, ku);
        const std::size_t jhi = std::min(n0 - 1, i + reach);
        for (std::size_t j = i; j <= jhi; ++j) {
            if (std::abs(a(i, j) - a(j, i)) > sym_tol) {
                sym = false;
                break;
            }
        }
    }
    s.q_symmetric = sym;

    if (sym && kl <= 1 && ku <= 1) {
        s.recommended = SolverKind::PTTRS;
    } else if (kl <= 1 && ku <= 1) {
        s.recommended = SolverKind::GTTRS;
    } else if (sym) {
        s.recommended = SolverKind::PBTRS;
    } else if (kl + ku + 1 < n0) {
        s.recommended = SolverKind::GBTRS;
    } else {
        s.recommended = SolverKind::GETRS;
    }
    return s;
}

} // namespace pspl::core
