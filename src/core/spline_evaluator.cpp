#include "core/spline_evaluator.hpp"

namespace pspl::core {

const char* to_string(EvaluatorVersion v)
{
    switch (v) {
    case EvaluatorVersion::Scalar:
        return "scalar";
    case EvaluatorVersion::Simd:
        return "simd";
    }
    return "?";
}

std::vector<double>
SplineEvaluator::evaluate_many(const std::vector<double>& points,
                               const View1D<double>& coeffs) const
{
    std::vector<double> out(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
        out[p] = (*this)(points[p], coeffs);
    }
    return out;
}

} // namespace pspl::core
