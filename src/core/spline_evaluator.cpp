#include "core/spline_evaluator.hpp"

namespace pspl::core {

std::vector<double>
SplineEvaluator::evaluate_many(const std::vector<double>& points,
                               const View1D<double>& coeffs) const
{
    std::vector<double> out(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
        out[p] = (*this)(points[p], coeffs);
    }
    return out;
}

} // namespace pspl::core
