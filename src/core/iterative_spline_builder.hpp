// Iterative (mini-Ginkgo) spline builder: solves the full collocation
// matrix in CSR form with a preconditioned Krylov solver, chunked along the
// batch direction (paper §III-B, Listing 3). Kept deliberately
// un-specialized -- the paper optimizes only the direct path and uses this
// one as the flexible reference.
#pragma once

#include "bsplines/basis.hpp"
#include "iterative/chunked.hpp"
#include "parallel/view.hpp"

#include <memory>

namespace pspl::core {

class IterativeSplineBuilder
{
public:
    struct Options {
        iterative::IterativeKind kind = iterative::IterativeKind::BiCGStab;
        iterative::Config config{};
        /// Paper defaults: 8192 on CPUs, 65535 on GPUs.
        std::size_t cols_per_chunk = 8192;
        /// Block-Jacobi max_block_size, tunable in [1, 32]; 0 disables.
        std::size_t max_block_size = 8;
        /// Replace block-Jacobi by an ILU(0) preconditioner.
        bool use_ilu0 = false;
    };

    IterativeSplineBuilder() = default;
    explicit IterativeSplineBuilder(bsplines::BSplineBasis basis);
    IterativeSplineBuilder(bsplines::BSplineBasis basis, Options options);

    const bsplines::BSplineBasis& basis() const { return m_basis; }
    const iterative::ChunkedIterativeSolver& solver() const
    {
        return *m_solver;
    }

    /// Solve A * coeffs = values in place, like SplineBuilder::build_inplace,
    /// returning convergence statistics (Table IV iteration counts).
    iterative::SolveStats
    build_inplace(const View2D<double, LayoutRight>& b) const;
    iterative::SolveStats
    build_inplace(const View2D<double, LayoutStride>& b) const;

private:
    bsplines::BSplineBasis m_basis;
    std::shared_ptr<const iterative::ChunkedIterativeSolver> m_solver;
};

} // namespace pspl::core
