// Structure analysis of the assembled spline collocation matrix.
//
// Periodic spline matrices are "banded + corners" (Fig. 1): splitting off a
// border of width k (the corner reach) leaves a banded block Q whose type
// decides the specialized solver, reproducing Table I:
//   symmetric tridiagonal + positive definite -> pttrs
//   general tridiagonal                       -> gttrs
//   symmetric banded + positive definite      -> pbtrs
//   general banded                            -> gbtrs
//   anything else                             -> getrs
#pragma once

#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::core {

enum class SolverKind {
    PTTRS, ///< positive-definite symmetric tridiagonal
    GTTRS, ///< general tridiagonal (pivoted)
    PBTRS, ///< positive-definite symmetric banded
    GBTRS, ///< general banded
    GETRS, ///< general dense
};

const char* to_string(SolverKind kind);

struct MatrixStructure {
    std::size_t n = 0;            ///< full matrix size
    std::size_t corner_width = 0; ///< k: size of the Schur border
    std::size_t kl = 0;           ///< subdiagonals of Q
    std::size_t ku = 0;           ///< superdiagonals of Q
    bool q_symmetric = false;
    /// Solver selected from the structure. Positive definiteness is verified
    /// at factorization time; the factorizer falls back to GBTRS/GETRS if a
    /// Cholesky-type factorization fails.
    SolverKind recommended = SolverKind::GETRS;
};

/// Analyze a dense periodic-banded matrix. Entries with |a_ij| <= tol are
/// treated as structural zeros.
MatrixStructure analyze_structure(const View2D<double>& a, double tol = 1e-14);

} // namespace pspl::core
