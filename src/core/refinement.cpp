// FP64 residual arithmetic of the mixed-precision refinement loop.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): the residual r = b - A x must round every multiply
// and subtract separately, or the refined result -- and the convergence /
// fallback decisions keyed on it -- would differ between compilers that
// contract to FMA and ones that do not.
//
// The residual passes are *fused*: one sweep over the tile reads the
// staged RHS, applies the exact COO operator row group by row group (the
// COO is row-sorted, so each tile row is accumulated while resident in
// L1), and emits the FP32-narrowed residual for the correction solve and
// the max-norm in the same pass. The inner loops run across the tile
// columns with no dependency chains, so they auto-vectorize even without
// contraction.
//
// Max-norms reduce over absolute-value *bit patterns* as unsigned
// integers: with the sign bit masked off, the IEEE-754 ordering of
// non-negative doubles matches the integer ordering, NaN payloads compare
// above infinity, and integer max has no NaN special case to block
// vectorization. Non-finite inputs surface naturally -- the winning bit
// pattern decodes back to the NaN/inf itself.

#include "core/refinement.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>

namespace pspl::core::refine_detail {

namespace {

constexpr std::uint64_t abs_mask = 0x7fffffffffffffffull;

PSPL_FORCEINLINE_FUNCTION std::uint64_t abs_bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b & abs_mask;
}

PSPL_FORCEINLINE_FUNCTION double bits_to_abs(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

/// Shared body of the two residual passes: r = b - A * (iterate), with the
/// iterate abstracted by XT (float on the first pass, double later). All
/// blocks are strips of a row-major tile: `cols` live columns per row,
/// consecutive rows `pitch` elements apart; b is the pristine staged RHS.
/// max|b| falls out of the same sweep, so strip norms cost nothing extra.
///
/// Rows whose nonzero group is exactly {r-1, r, r+1} -- every interior
/// row of the tridiagonal spline operator, i.e. almost all of them --
/// take a fused single-sweep path: one loop reads b and the three iterate
/// rows, applies the products in the same order the generic path would
/// (COO is column-sorted within a row, so the results are bitwise
/// identical), and writes the narrowed residual without bouncing the row
/// through rwork. Boundary/Schur rows fall back to the generic
/// rwork-accumulator path.
template <class BT, class XT>
double residual_rows(const sparse::Coo& a, const BT* b, const XT* x,
                     float* rf, std::size_t n, std::size_t pitch,
                     std::size_t cols, double* PSPL_RESTRICT rwork,
                     double& norm_b)
{
    const std::size_t nnz = a.nnz();
    const View1D<int>& rows = a.rows_idx();
    const View1D<int>& colv = a.cols_idx();
    const View1D<double>& vals = a.values();
    std::uint64_t m = 0;
    std::uint64_t mb = 0;
    std::size_t nz = 0;
    // Hardware prefetchers ignore the multi-KiB row stride of wide staged
    // tiles, so every line of b and rf would be a demand miss; fetch a few
    // rows ahead explicitly (rf with write intent -- it is stored to).
    constexpr std::size_t pf_rows = 6;
    constexpr std::size_t pf_line = 64 / sizeof(BT) < 1 ? 1 : 64 / sizeof(BT);
    for (std::size_t r = 0; r < n; ++r) {
        if (r + pf_rows < n) {
            const BT* bpf = b + (r + pf_rows) * pitch;
            const float* rpf = rf + (r + pf_rows) * pitch;
            for (std::size_t j = 0; j < cols; j += pf_line) {
                __builtin_prefetch(bpf + j, 0, 1);
                __builtin_prefetch(rpf + j, 1, 1);
            }
        }
        // brow/rfr are deliberately not restrict-qualified: callers may
        // alias the pristine RHS onto the residual buffer (each row is
        // fully read before it is overwritten).
        const BT* brow = b + r * pitch;
        float* rfr = rf + r * pitch;
        const bool banded =
                nz + 2 < nnz && static_cast<std::size_t>(rows(nz)) == r
                && static_cast<std::size_t>(rows(nz + 2)) == r
                && (nz + 3 == nnz
                    || static_cast<std::size_t>(rows(nz + 3)) != r)
                && r > 0 && static_cast<std::size_t>(colv(nz)) == r - 1
                && static_cast<std::size_t>(colv(nz + 1)) == r
                && static_cast<std::size_t>(colv(nz + 2)) == r + 1;
        if (banded) {
            const double v0 = vals(nz);
            const double v1 = vals(nz + 1);
            const double v2 = vals(nz + 2);
            const XT* PSPL_RESTRICT xm = x + (r - 1) * pitch;
            const XT* PSPL_RESTRICT x0 = x + r * pitch;
            const XT* PSPL_RESTRICT xp = x + (r + 1) * pitch;
            nz += 3;
            for (std::size_t j = 0; j < cols; ++j) {
                double acc = static_cast<double>(brow[j]);
                const std::uint64_t bb = abs_bits(acc);
                mb = bb > mb ? bb : mb;
                acc -= v0 * static_cast<double>(xm[j]);
                acc -= v1 * static_cast<double>(x0[j]);
                acc -= v2 * static_cast<double>(xp[j]);
                rfr[j] = static_cast<float>(acc);
                const std::uint64_t bbits = abs_bits(acc);
                m = bbits > m ? bbits : m;
            }
            continue;
        }
        for (std::size_t j = 0; j < cols; ++j) {
            rwork[j] = static_cast<double>(brow[j]);
            const std::uint64_t bb = abs_bits(rwork[j]);
            mb = bb > mb ? bb : mb;
        }
        // from_dense emits the COO row-sorted, so this row's nonzeros are
        // one contiguous run; rwork stays in L1 across the whole group.
        while (nz < nnz && static_cast<std::size_t>(rows(nz)) == r) {
            const double v = vals(nz);
            const XT* PSPL_RESTRICT xc =
                    x + static_cast<std::size_t>(colv(nz)) * pitch;
            for (std::size_t j = 0; j < cols; ++j) {
                rwork[j] -= v * static_cast<double>(xc[j]);
            }
            ++nz;
        }
        for (std::size_t j = 0; j < cols; ++j) {
            rfr[j] = static_cast<float>(rwork[j]);
            const std::uint64_t bbits = abs_bits(rwork[j]);
            m = bbits > m ? bbits : m;
        }
    }
    norm_b = bits_to_abs(mb);
    return bits_to_abs(m);
}

template <class BT>
double residual_initial_impl(const sparse::Coo& a, const BT* b,
                             const float* xf, float* rf, std::size_t n,
                             std::size_t pitch, std::size_t cols,
                             double* rwork, double& norm_b)
{
    return residual_rows(a, b, xf, rf, n, pitch, cols, rwork, norm_b);
}

template <class BT>
double residual_from_x_impl(const sparse::Coo& a, const BT* b,
                            const double* x, float* rf, std::size_t n,
                            std::size_t pitch, std::size_t cols,
                            double* rwork)
{
    double norm_b; // recomputed, identical to the initial pass; discarded
    return residual_rows(a, b, x, rf, n, pitch, cols, rwork, norm_b);
}

} // namespace

double residual_initial(const sparse::Coo& a, const double* b,
                        const float* xf, float* rf, std::size_t n,
                        std::size_t pitch, std::size_t cols, double* rwork,
                        double& norm_b)
{
    return residual_initial_impl(a, b, xf, rf, n, pitch, cols, rwork,
                                 norm_b);
}

double residual_initial(const sparse::Coo& a, const float* b,
                        const float* xf, float* rf, std::size_t n,
                        std::size_t pitch, std::size_t cols, double* rwork,
                        double& norm_b)
{
    return residual_initial_impl(a, b, xf, rf, n, pitch, cols, rwork,
                                 norm_b);
}

double residual_from_x(const sparse::Coo& a, const double* b, const double* x,
                       float* rf, std::size_t n, std::size_t pitch,
                       std::size_t cols, double* rwork)
{
    return residual_from_x_impl(a, b, x, rf, n, pitch, cols, rwork);
}

double residual_from_x(const sparse::Coo& a, const float* b, const double* x,
                       float* rf, std::size_t n, std::size_t pitch,
                       std::size_t cols, double* rwork)
{
    return residual_from_x_impl(a, b, x, rf, n, pitch, cols, rwork);
}

double tile_max_abs(const double* p, std::size_t count)
{
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t b = abs_bits(p[i]);
        m = b > m ? b : m;
    }
    return bits_to_abs(m);
}

void tile_accumulate_widen(double* x, const float* d, std::size_t n,
                           std::size_t pitch, std::size_t cols)
{
    for (std::size_t r = 0; r < n; ++r) {
        double* PSPL_RESTRICT xr = x + r * pitch;
        const float* PSPL_RESTRICT dr = d + r * pitch;
        for (std::size_t j = 0; j < cols; ++j) {
            xr[j] += static_cast<double>(dr[j]);
        }
    }
}

} // namespace pspl::core::refine_detail
