// Compile-time contract layer: C++20 concepts encoding the interfaces the
// runtime instrumentation (PSPL_CHECK, docs/DEBUGGING.md) and the regex lint
// (tools/lint_invariants.py) can only police after the fact. Every dispatch
// and view entry point is constrained against these, so misuse fails at the
// call site with a one-line diagnostic instead of a template backtrace --
// the property that makes a future backend port diagnosable
// (docs/STATIC_ANALYSIS.md has the concept -> guarantee -> runtime-twin
// table).
//
// The view concepts are structural on purpose: both View<T, Rank, Layout>
// and the solver's PackSpan<T, W> staging span model ViewLike, which is
// exactly the duck-typed contract the batched serial kernels were written
// against -- the concepts name it instead of implying it.
#pragma once

#include "parallel/layout.hpp"

#include <concepts>
#include <cstddef>
#include <type_traits>
#include <utility>

namespace pspl {

// ---------------------------------------------------------------------------
// Layout tags (src/parallel/layout.hpp).
// ---------------------------------------------------------------------------

/// Layouts with a closed-form stride rule (LayoutRight / LayoutLeft): the
/// only layouts an allocating View constructor accepts.
template <class L>
concept RegularLayout = is_regular_layout_v<L>;

/// Any layout a View can carry, including the stride-carrying result of
/// subview()/transposed_view().
template <class L>
concept ViewLayout = RegularLayout<L> || std::is_same_v<L, LayoutStride>;

// ---------------------------------------------------------------------------
// Views.
// ---------------------------------------------------------------------------

/// Structural view contract: an element type, a static rank in 1..4, and
/// the extent/stride/data access the kernels consume. Modeled by
/// View<T, Rank, Layout> and by core::PackSpan<T, W> (rank 1).
template <class V>
concept ViewLike = requires(const V& v, std::size_t r) {
    typename V::value_type;
    { v.extent(r) } -> std::convertible_to<std::size_t>;
    { v.stride(r) } -> std::convertible_to<std::size_t>;
    { v.data() } -> std::convertible_to<typename V::value_type*>;
} && (V::rank >= 1) && (V::rank <= 4);

/// ViewLike with a specific rank; the rank-compatibility vocabulary of
/// subview/transpose/deep_copy diagnostics.
template <class V, std::size_t R>
concept ViewOfRank = ViewLike<V> && (V::rank == R);

/// A view whose layout is regular (closed-form strides), i.e. its span is
/// gap-free by construction -- what bulk memcpy-style optimizations and the
/// allocating constructors require. Subview results (LayoutStride) are
/// ViewLike but not ContiguousViewLike.
template <class V>
concept ContiguousViewLike =
        ViewLike<V> && requires { typename V::layout_type; }
        && RegularLayout<typename V::layout_type>;

/// deep_copy's compatibility contract: identical rank and identical element
/// type (deep_copy never converts precision implicitly; the sanctioned
/// f32<->f64 conversions live in parallel/simd.hpp and core/refinement.hpp).
template <class Dst, class Src>
concept DeepCopyCompatible =
        ViewLike<Dst> && ViewLike<Src> && (Dst::rank == Src::rank)
        && std::same_as<typename Dst::value_type, typename Src::value_type>;

/// Rank-2 (row, batch) block with element access -- the shape the SIMD
/// load/store glue (parallel/simd_view.hpp) and the batched solve drivers
/// stage from.
template <class V>
concept BatchBlockView = ViewOfRank<V, 2> && requires(const V& v, std::size_t i) {
    { v(i, i) } -> std::convertible_to<typename V::value_type>;
};

// ---------------------------------------------------------------------------
// Subview slicers.
// ---------------------------------------------------------------------------

/// Slicer keeping a whole dimension (pspl::ALL).
struct all_t {
    explicit all_t() = default;
};
inline constexpr all_t ALL{};

namespace detail {

template <class S>
struct is_slice_pair : std::false_type {
};
template <class A, class B>
struct is_slice_pair<std::pair<A, B>> : std::true_type {
};

} // namespace detail

/// The subview slicer vocabulary: pspl::ALL (keep the dimension), a
/// std::pair{begin, end} half-open range (keep), or an integral index
/// (fix the index, dropping the dimension).
template <class S>
concept SubviewSlicer =
        std::is_same_v<std::decay_t<S>, all_t>
        || detail::is_slice_pair<std::decay_t<S>>::value
        || std::is_convertible_v<std::decay_t<S>, std::size_t>;

// ---------------------------------------------------------------------------
// SIMD packs.
// ---------------------------------------------------------------------------

/// Element types simd<T, W> supports: arithmetic, but never bool (a bool
/// pack would make the masked-lane arithmetic meaningless; masks have their
/// own type, simd_mask).
template <class T>
concept SimdPackable = std::is_arithmetic_v<T>
                       && !std::is_same_v<std::remove_cv_t<T>, bool>;

/// Valid pack lane counts: positive powers of two (the tail-mask math and
/// the 2:1 f32/f64 conversion shapes both assume it).
template <int W>
concept SimdLaneCount = (W >= 1) && ((W & (W - 1)) == 0);

// ---------------------------------------------------------------------------
// Dispatch bodies.
//
// Every functor handed to a dispatch entry point is invoked through a
// `const F&` (the value-capture contract: bodies are copied into the
// parallel region, so `mutable` lambdas and reference state are exactly the
// things that break on an offloading backend). The concepts require
// const-invocability with the policy's index shape; lint rule 5 backstops
// the reference-capture cases the type system cannot see.
// ---------------------------------------------------------------------------

/// Body of a rank-1 RangePolicy parallel_for: f(i).
template <class F>
concept DispatchBody = std::is_copy_constructible_v<std::remove_cvref_t<F>>
                       && std::is_invocable_v<const F&, std::size_t>;

/// Body of an MDRangePolicy<2> parallel_for: f(i, j).
template <class F>
concept DispatchBody2 =
        std::is_copy_constructible_v<std::remove_cvref_t<F>>
        && std::is_invocable_v<const F&, std::size_t, std::size_t>;

/// Body of an MDRangePolicy<3> parallel_for: f(i, j, k).
template <class F>
concept DispatchBody3 =
        std::is_copy_constructible_v<std::remove_cvref_t<F>>
        && std::is_invocable_v<const F&, std::size_t, std::size_t, std::size_t>;

/// Body of a parallel_reduce with accumulator type T: f(i, acc&).
template <class F, class T>
concept ReduceBody = std::is_copy_constructible_v<std::remove_cvref_t<F>>
                     && std::is_invocable_v<const F&, std::size_t, T&>;

template <int W>
struct BatchChunk;
struct BatchTile;

/// Body of a for_each_batch_simd<W> dispatch: f(const BatchChunk<W>&).
template <class F, int W>
concept BatchSimdBody = std::is_copy_constructible_v<std::remove_cvref_t<F>>
                        && std::is_invocable_v<const F&, const BatchChunk<W>&>;

/// Body of a for_each_batch_tile dispatch: f(const BatchTile&).
template <class F>
concept BatchTileBody = std::is_copy_constructible_v<std::remove_cvref_t<F>>
                        && std::is_invocable_v<const F&, const BatchTile&>;

} // namespace pspl
