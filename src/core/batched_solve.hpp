// Batched drivers for the Schur-complement solve: one fixed factorized
// matrix against every column of a (n, batch) right-hand-side block. The
// three versions are the paper's optimization ladder (Table III); they are
// free functions so every builder flavour (Greville, Hermite, 2-D tensor)
// shares the exact same kernels.
#pragma once

#include "batched/batched.hpp"
#include "core/concepts.hpp"
#include "core/schur_solver.hpp"
#include "debug/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/simd.hpp"
#include "parallel/simd_view.hpp"
#include "parallel/subview.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"

#include <cstdio>
#include <utility>

namespace pspl::core {

enum class BuilderVersion {
    Baseline = 0,
    Fused = 1,
    FusedSpmv = 2,
    /// Fused kernel with W batch entries per iteration in simd<double, W>
    /// packs (W = native vector width of the TU's ISA).
    FusedSimd = 3,
    /// FusedSpmv with the same SIMD-across-batch mapping.
    FusedSpmvSimd = 4,
};

const char* to_string(BuilderVersion v);

namespace detail {

/// Modeled per-column cost of the Q-solve, dispatching on the factor kind
/// (the same hand counts each serial kernel exposes as cost()).
inline batched::KernelCost q_solve_cost(const SchurDeviceData& s)
{
    switch (s.kind) {
    case SolverKind::PTTRS:
        return batched::SerialPttrs<>::cost(s.n0);
    case SolverKind::GTTRS:
        return batched::SerialGttrs<>::cost(s.n0);
    case SolverKind::PBTRS:
        return batched::SerialPbtrs<>::cost(s.n0, s.pb_ab.extent(0) - 1);
    case SolverKind::GBTRS:
        return batched::SerialGbtrs<>::cost(s.n0, s.kl, s.ku);
    case SolverKind::GETRS:
        return batched::SerialGetrs<>::cost(s.n0);
    }
    return {};
}

/// Span label of the Q-solve child, matching the LAPACK routine name the
/// paper's per-kernel profiles use.
inline const char* q_solve_label(SolverKind kind)
{
    switch (kind) {
    case SolverKind::PTTRS:
        return "pttrs";
    case SolverKind::GTTRS:
        return "gttrs";
    case SolverKind::PBTRS:
        return "pbtrs";
    case SolverKind::GBTRS:
        return "gbtrs";
    case SolverKind::GETRS:
        return "getrs";
    }
    return "qsolve";
}

/// Modeled whole-launch cost of one fused batched solve (Q-solve plus the
/// Schur correction when the corner is non-empty).
inline batched::KernelCost total_solve_cost(const SchurDeviceData& s,
                                            std::size_t batch, bool use_spmv)
{
    const auto nb = static_cast<double>(batch);
    batched::KernelCost total = q_solve_cost(s) * nb;
    if (s.k > 0) {
        if (use_spmv) {
            total += (batched::SerialSpmvCoo::cost(s.lambda_coo.nnz(), s.k)
                      + batched::SerialSpmvCoo::cost(s.beta_coo.nnz(), s.n0))
                     * nb;
        } else {
            total += (batched::SerialGemv<>::cost(s.k, s.n0)
                      + batched::SerialGemv<>::cost(s.n0, s.k))
                     * nb;
        }
        total += batched::SerialGetrs<>::cost(s.k) * nb;
    }
    return total;
}

/// Attribute the modeled bytes/flops of one batched solve to the open span
/// tree: the whole-launch total lands on `kernel_label` (merging with the
/// timed span the dispatch layer just closed, so the snapshot derives its
/// achieved bandwidth), and each algorithm stage lands on its own child
/// label (pttrs/gemv/spmv_coo/getrs decomposition of a fused kernel).
inline void attribute_solve_cost(const SchurDeviceData& s,
                                 std::string_view kernel_label,
                                 std::size_t batch, bool use_spmv)
{
    if (!profiling::enabled() || batch == 0) {
        return;
    }
    const auto nb = static_cast<double>(batch);
    const batched::KernelCost q = q_solve_cost(s) * nb;
    profiling::add_counters(q_solve_label(s.kind), q.bytes, q.flops);
    if (s.k > 0) {
        batched::KernelCost corner;
        if (use_spmv) {
            corner = (batched::SerialSpmvCoo::cost(s.lambda_coo.nnz(), s.k)
                      + batched::SerialSpmvCoo::cost(s.beta_coo.nnz(), s.n0))
                     * nb;
            profiling::add_counters("spmv_coo", corner.bytes, corner.flops);
        } else {
            corner = (batched::SerialGemv<>::cost(s.k, s.n0)
                      + batched::SerialGemv<>::cost(s.n0, s.k))
                     * nb;
            profiling::add_counters("gemv", corner.bytes, corner.flops);
        }
        const batched::KernelCost schur =
                batched::SerialGetrs<>::cost(s.k) * nb;
        profiling::add_counters("getrs_schur", schur.bytes, schur.flops);
    }
    const batched::KernelCost total = total_solve_cost(s, batch, use_spmv);
    profiling::add_counters(kernel_label, total.bytes, total.flops);
}

/// Per-tile-size span attribution for the tiled drivers: records the timed
/// launch once more under a "tile_w=<cols>" leaf carrying the same modeled
/// cost, so report_json derives achieved bandwidth *per tile size* next to
/// the per-kernel decomposition. Transient label: the interner copies it.
inline void attribute_tile_span(const SchurDeviceData& s, std::size_t batch,
                                bool use_spmv, std::size_t tile_cols,
                                double seconds)
{
    if (!profiling::enabled() || batch == 0) {
        return;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "tile_w=%zu", tile_cols);
    profiling::record(label, seconds);
    const batched::KernelCost total = total_solve_cost(s, batch, use_spmv);
    profiling::add_counters(label, total.bytes, total.flops);
}

template <class Exec, class BView>
void solve_baseline(const SchurDeviceData& s, const BView& b,
                    std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto nb = static_cast<double>(batch);
    // Kernel 1: batched serial Q-solve (pttrs/gttrs/pbtrs/gbtrs/getrs).
    parallel_for("pspl::batched::SerialQsolve", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                 });
    if (profiling::enabled()) {
        const batched::KernelCost q = q_solve_cost(s) * nb;
        profiling::add_counters("pspl::batched::SerialQsolve", q.bytes,
                                q.flops);
    }
    if (s.k == 0) {
        return;
    }
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    // Kernel 2: global GEMM  b1 -= lambda * x0'.
    blas::gemm<Exec>("pspl::blas::gemm_lambda", -1.0, s.lambda_dense, b0, 1.0,
                     b1);
    // Kernel 3: batched serial getrs on the Schur complement.
    parallel_for("pspl::batched::SerialGetrs", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b1 = subview(b1, ALL, i);
                     batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv,
                                                    sub_b1);
                 });
    // Kernel 4: global GEMM  x0 = x0' - beta * x1.
    blas::gemm<Exec>("pspl::blas::gemm_beta", -1.0, s.beta_dense, b1, 1.0,
                     b0);
    if (profiling::enabled()) {
        // In the unfused ladder rung every stage is its own timed kernel, so
        // the modeled costs land directly on those kernel labels.
        const batched::KernelCost gl = batched::SerialGemv<>::cost(s.k, s.n0) * nb;
        profiling::add_counters("pspl::blas::gemm_lambda", gl.bytes, gl.flops);
        const batched::KernelCost sc = batched::SerialGetrs<>::cost(s.k) * nb;
        profiling::add_counters("pspl::batched::SerialGetrs", sc.bytes,
                                sc.flops);
        const batched::KernelCost gb = batched::SerialGemv<>::cost(s.n0, s.k) * nb;
        profiling::add_counters("pspl::blas::gemm_beta", gb.bytes, gb.flops);
    }
}

template <class Exec, class BView>
void solve_fused(const SchurDeviceData& s, const BView& b, std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    parallel_for("pspl::batched::SerialQsolve-Gemv", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                     if (s.k > 0) {
                         auto sub_b1 = subview(b1, ALL, i);
                         batched::SerialGemv<>::invoke(-1.0, s.lambda_dense,
                                                       sub_b0, 1.0, sub_b1);
                         batched::SerialGetrs<>::invoke(s.delta_lu,
                                                        s.delta_ipiv, sub_b1);
                         batched::SerialGemv<>::invoke(-1.0, s.beta_dense,
                                                       sub_b1, 1.0, sub_b0);
                     }
                 });
    attribute_solve_cost(s, "pspl::batched::SerialQsolve-Gemv", batch,
                         /*use_spmv=*/false);
}

template <class Exec, class BView>
void solve_fused_spmv(const SchurDeviceData& s, const BView& b,
                      std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    parallel_for("pspl::batched::SerialQsolve-Spmv", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                     if (s.k > 0) {
                         auto sub_b1 = subview(b1, ALL, i);
                         batched::SerialSpmvCoo::invoke(-1.0, s.lambda_coo,
                                                        sub_b0, sub_b1);
                         batched::SerialGetrs<>::invoke(s.delta_lu,
                                                        s.delta_ipiv, sub_b1);
                         batched::SerialSpmvCoo::invoke(-1.0, s.beta_coo,
                                                        sub_b1, sub_b0);
                     }
                 });
    attribute_solve_cost(s, "pspl::batched::SerialQsolve-Spmv", batch,
                         /*use_spmv=*/true);
}

/// Strided span of packs with the rank-1 view interface the batched
/// kernels expect. The SIMD solve stages batch columns into a pack buffer
/// and runs every kernel pass on it with ValueType = simd<double, W>; the
/// untiled path stages one chunk contiguously (step 1), the tiled path
/// stages a whole row-major tile and walks one pack column of it (step =
/// packs per tile). The serial kernels consume only data()/stride(0)/
/// extent(), so both shapes go through the identical kernel code.
template <class T, int W>
struct PackSpan {
    using value_type = simd<T, W>;
    static constexpr std::size_t rank = 1; ///< models pspl::ViewLike

    simd<T, W>* PSPL_RESTRICT ptr = nullptr;
    std::size_t len = 0;
    std::size_t step = 1; ///< pack stride between consecutive rows

    PSPL_FORCEINLINE_FUNCTION simd<T, W>& operator()(std::size_t i) const
    {
        PSPL_DEBUG_ASSERT(i < len, "PackSpan: index out of bounds");
        return ptr[i * step];
    }
    PSPL_FORCEINLINE_FUNCTION std::size_t extent(std::size_t) const
    {
        return len;
    }
    PSPL_FORCEINLINE_FUNCTION simd<T, W>* data() const { return ptr; }
    PSPL_FORCEINLINE_FUNCTION std::size_t stride(std::size_t) const
    {
        return step;
    }
};

/// Algorithm-1 chain on one staged pack column (Q-solve, then the Schur
/// correction). Shared verbatim by the untiled and tiled SIMD drivers --
/// per-column arithmetic is what makes the two bitwise identical. Generic
/// over the pack element type and the device-data flavour: the FP64 ladder
/// instantiates (double, SchurDeviceData) exactly as before, and the
/// mixed-precision pipeline drives float packs through SchurFloatFactors
/// (whose COO blocks and factors are FP32, so every stage's arithmetic runs
/// at the pack precision).
template <int W, bool UseSpmv, class T, class SData>
PSPL_FORCEINLINE_FUNCTION void
solve_pack_column(const SData& s, const PackSpan<T, W>& b0,
                  const PackSpan<T, W>& b1)
{
    solve_q_serial(s, b0);
    if (s.k > 0) {
        if constexpr (UseSpmv) {
            batched::SerialSpmvCoo::invoke(T(-1), s.lambda_coo, b0, b1);
        } else {
            batched::SerialGemv<>::invoke(-1.0, s.lambda_dense, b0, 1.0, b1);
        }
        batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv, b1);
        if constexpr (UseSpmv) {
            batched::SerialSpmvCoo::invoke(T(-1), s.beta_coo, b1, b0);
        } else {
            batched::SerialGemv<>::invoke(-1.0, s.beta_dense, b1, 1.0, b0);
        }
    }
}

/// SIMD-across-batch version of solve_fused / solve_fused_spmv: each
/// iteration stages W adjacent RHS columns into a per-thread pack buffer,
/// runs the whole Algorithm-1 chain on packs (the Q-solve recurrence then
/// advances W independent columns per vector instruction instead of one),
/// and scatters the result back. Tail chunks zero-fill their dead lanes.
template <int W, bool UseSpmv, class Exec, class BView>
void solve_fused_simd(const SchurDeviceData& s, const BView& b,
                      std::size_t batch)
{
    using Pack = simd<double, W>;
    // Per-thread staging: one pack per matrix row per thread, carved out of
    // the persistent workspace arena (no heap allocation per solve call;
    // full and tail chunks share the same rows, so every chunk reuses one
    // stable slot). The scratch guard tells the write-conflict detector
    // that per-thread reuse of these rows across chunks is staging, not a
    // cross-batch race.
    WorkspaceArena& arena = host_workspace_arena();
    arena.reserve(static_cast<std::size_t>(Exec::concurrency()),
                  s.n * sizeof(Pack));
    debug::ScratchGuard scratch(arena.data(), arena.size_bytes());
    std::byte* const abase = arena.data();
    const std::size_t astride = arena.slot_stride_bytes();
    const std::string label = UseSpmv ? "pspl::batched::SerialQsolve-Spmv-Simd"
                                      : "pspl::batched::SerialQsolve-Gemv-Simd";
    for_each_batch_simd<W>(label, RangePolicy<Exec>(batch),
                           [=](const BatchChunk<W>& chunk) {
        PSPL_DEBUG_ASSERT(
                chunk.begin + static_cast<std::size_t>(chunk.lanes) <= batch,
                "solve_fused_simd: chunk outside batch range");
        Pack* PSPL_RESTRICT buf = reinterpret_cast<Pack*>(
                abase
                + astride * static_cast<std::size_t>(Exec::thread_rank()));
        simd_load_chunk<W>(b, 0, s.n, chunk.begin, chunk.lanes, buf);
        const PackSpan<double, W> b0{buf, s.n0};
        const PackSpan<double, W> b1{buf + s.n0, s.k};
        solve_pack_column<W, UseSpmv>(s, b0, b1);
        simd_store_chunk<W>(b, 0, s.n, chunk.begin, chunk.lanes, buf);
    });
    attribute_solve_cost(s, label, batch, UseSpmv);
}

/// Tile-resident SIMD solve: stage a whole (n, tile) block of RHS columns
/// into a per-thread arena slot (row-major in packs, so the loads sweep
/// long contiguous runs of `b` instead of one isolated pack per row), run
/// the full assemble -> factor-apply -> Schur-correction chain on every
/// pack column of the tile while it is L2-resident, then scatter the tile
/// back. Tiles are multiples of W columns, so chunk boundaries -- and
/// therefore results, bitwise -- match the untiled path.
template <int W, bool UseSpmv, class Exec, class BView>
void solve_fused_simd_tiled(const SchurDeviceData& s, const BView& b,
                            std::size_t batch, std::size_t tile)
{
    using Pack = simd<double, W>;
    const auto wide = static_cast<std::size_t>(W);
    PSPL_DEBUG_ASSERT(tile >= wide && tile % wide == 0,
                      "solve_fused_simd_tiled: tile must be a positive "
                      "multiple of the pack width");
    // Never stage more than the (pack-rounded) batch itself.
    const std::size_t batch_cols = (batch + wide - 1) / wide * wide;
    const std::size_t eff_tile = tile < batch_cols ? tile : batch_cols;
    const std::size_t tile_packs = eff_tile / wide;
    WorkspaceArena& arena = host_workspace_arena();
    arena.reserve(static_cast<std::size_t>(Exec::concurrency()),
                  s.n * tile_packs * sizeof(Pack));
    debug::ScratchGuard scratch(arena.data(), arena.size_bytes());
    std::byte* const abase = arena.data();
    const std::size_t astride = arena.slot_stride_bytes();
    const std::string label = UseSpmv ? "pspl::batched::SerialQsolve-Spmv-Simd"
                                      : "pspl::batched::SerialQsolve-Gemv-Simd";
    profiling::Timer timer;
    for_each_batch_tile(label, RangePolicy<Exec>(batch), eff_tile,
                        [=](const BatchTile& t) {
        Pack* PSPL_RESTRICT buf = reinterpret_cast<Pack*>(
                abase
                + astride * static_cast<std::size_t>(Exec::thread_rank()));
        const std::size_t cols = t.cols();
        const std::size_t packs = (cols + wide - 1) / wide;
        // Gather phase: row-major staging -- each matrix row contributes
        // one contiguous (cols * 8 B) run of the RHS block, which is what
        // engages the hardware stream prefetcher.
        for (std::size_t r = 0; r < s.n; ++r) {
            Pack* PSPL_RESTRICT row = buf + r * packs;
            for (std::size_t c = 0; c < packs; ++c) {
                const std::size_t j0 = t.begin + c * wide;
                const int lanes = j0 + wide <= t.end
                                          ? W
                                          : static_cast<int>(t.end - j0);
                row[c] = simd_load_lanes<W>(b, r, j0, lanes);
            }
        }
        // Solve phase: every pipeline stage runs on the staged tile while
        // it is cache-resident, one pack column at a time (stride =
        // packs-per-tile walks down one column of the row-major tile).
        for (std::size_t c = 0; c < packs; ++c) {
            const PackSpan<double, W> b0{buf + c, s.n0, packs};
            const PackSpan<double, W> b1{
                    s.k > 0 ? buf + s.n0 * packs + c : buf, s.k, packs};
            solve_pack_column<W, UseSpmv>(s, b0, b1);
        }
        // Scatter phase: mirror of the gather.
        for (std::size_t r = 0; r < s.n; ++r) {
            const Pack* PSPL_RESTRICT row = buf + r * packs;
            for (std::size_t c = 0; c < packs; ++c) {
                const std::size_t j0 = t.begin + c * wide;
                const int lanes = j0 + wide <= t.end
                                          ? W
                                          : static_cast<int>(t.end - j0);
                simd_store_lanes<W>(row[c], b, r, j0, lanes);
            }
        }
    });
    attribute_solve_cost(s, label, batch, UseSpmv);
    attribute_tile_span(s, batch, UseSpmv, eff_tile, timer.seconds());
}

/// Tile-resident scalar fused solve: the fused per-column chain already
/// keeps one column's working set live across all stages; tiling groups
/// the columns a thread visits into L2-sized spans (bounding the factor
/// re-sweep distance) without changing any per-column arithmetic, so the
/// results are bitwise identical to the untiled dispatch.
template <bool UseSpmv, class Exec, class BView>
void solve_fused_scalar_tiled(const SchurDeviceData& s, const BView& b,
                              std::size_t batch, std::size_t tile)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    const char* label = UseSpmv ? "pspl::batched::SerialQsolve-Spmv"
                                : "pspl::batched::SerialQsolve-Gemv";
    profiling::Timer timer;
    for_each_batch_tile(label, RangePolicy<Exec>(batch), tile,
                        [=](const BatchTile& t) {
        for (std::size_t i = t.begin; i < t.end; ++i) {
            auto sub_b0 = subview(b0, ALL, i);
            solve_q_serial(s, sub_b0);
            if (s.k > 0) {
                auto sub_b1 = subview(b1, ALL, i);
                if constexpr (UseSpmv) {
                    batched::SerialSpmvCoo::invoke(-1.0, s.lambda_coo,
                                                   sub_b0, sub_b1);
                } else {
                    batched::SerialGemv<>::invoke(-1.0, s.lambda_dense,
                                                  sub_b0, 1.0, sub_b1);
                }
                batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv,
                                               sub_b1);
                if constexpr (UseSpmv) {
                    batched::SerialSpmvCoo::invoke(-1.0, s.beta_coo, sub_b1,
                                                   sub_b0);
                } else {
                    batched::SerialGemv<>::invoke(-1.0, s.beta_dense, sub_b1,
                                                  1.0, sub_b0);
                }
            }
        }
    });
    attribute_solve_cost(s, label, batch, UseSpmv);
    attribute_tile_span(s, batch, UseSpmv, tile, timer.seconds());
}

} // namespace detail

/// Explicit-width SIMD batched solve (the ablation entry point): packs of W
/// adjacent columns through the fused (dense-gemv) or fused-spmv chain.
/// The tile policy (PSPL_TILE by default) selects the L2-blocked
/// tile-resident driver or the untiled legacy dispatch.
template <int W, class Exec = DefaultExecutionSpace, class BView>
void schur_solve_batched_simd(const SchurDeviceData& s, const BView& b,
                              bool use_spmv = true,
                              const TilePolicy& policy = TilePolicy::from_env())
{
    static_assert(BatchBlockView<BView>,
                  "schur_solve_batched_simd operates on a rank-2 (rows, "
                  "batch) right-hand-side block with element access");
    static_assert(std::is_same_v<typename BView::value_type, double>,
                  "schur_solve_batched_simd consumes an FP64 block: the "
                  "SchurDeviceData factors are FP64, and an FP32 block here "
                  "would narrow every product -- the FP32 path is the "
                  "mixed-precision driver (core/refinement.hpp), which "
                  "stages through SchurFloatFactors instead");
    static_assert(SimdLaneCount<W>,
                  "schur_solve_batched_simd pack width must be a positive "
                  "power of two");
    const std::size_t batch = b.extent(1);
    const std::size_t tile = policy.tile_cols(
            s.n, batch, sizeof(double), static_cast<std::size_t>(W));
    if (tile > 0) {
        if (use_spmv) {
            detail::solve_fused_simd_tiled<W, true, Exec>(s, b, batch, tile);
        } else {
            detail::solve_fused_simd_tiled<W, false, Exec>(s, b, batch, tile);
        }
        return;
    }
    if (use_spmv) {
        detail::solve_fused_simd<W, true, Exec>(s, b, batch);
    } else {
        detail::solve_fused_simd<W, false, Exec>(s, b, batch);
    }
}

/// Public face of the per-stage cost attribution for pipelines that embed
/// the fused Schur chain in a larger timed span (the fused advection
/// driver): decomposes one whole batched solve onto the pttrs/gemv/
/// spmv_coo/getrs counter children and merges the total onto `label`.
inline void attribute_schur_solve_cost(const SchurDeviceData& s,
                                       std::string_view label,
                                       std::size_t batch, bool use_spmv)
{
    detail::attribute_solve_cost(s, label, batch, use_spmv);
}

/// Run the fused Schur chain in place on an arena-staged row-major pack
/// strip: `buf` holds s.n rows of `packs` packs each (the gather layout of
/// the tile-resident drivers), and every pack column is sent through the
/// same solve_pack_column chain those drivers use -- per-column arithmetic,
/// and therefore results, are bitwise identical to schur_solve_batched on
/// the equivalent (n, batch) block. Exposed for pipelines that stage their
/// own tiles and keep consuming the coefficients while they are L2-resident
/// (the fused advection driver evaluates splines straight from the strip).
template <int W>
PSPL_INLINE_FUNCTION void
schur_solve_staged_strip(const SchurDeviceData& s,
                         simd<double, W>* PSPL_RESTRICT buf,
                         std::size_t packs, bool use_spmv)
{
    static_assert(SimdLaneCount<W>,
                  "schur_solve_staged_strip pack width must be a positive "
                  "power of two (W = 1 is the scalar fused chain)");
    for (std::size_t c = 0; c < packs; ++c) {
        const detail::PackSpan<double, W> b0{buf + c, s.n0, packs};
        const detail::PackSpan<double, W> b1{
                s.k > 0 ? buf + s.n0 * packs + c : buf, s.k, packs};
        if (use_spmv) {
            detail::solve_pack_column<W, true>(s, b0, b1);
        } else {
            detail::solve_pack_column<W, false>(s, b0, b1);
        }
    }
}

/// Solve A x = b in place for every column of `b` (shape (n, batch)) with
/// the requested kernel version. The SIMD versions use the native pack
/// width of the ISA this translation unit was compiled for. The fused
/// versions run tile-resident under the given tile policy (PSPL_TILE by
/// default, "off" recovers the untiled dispatch bit-for-bit); Baseline is
/// the paper's multi-pass reference and is deliberately never tiled.
template <class Exec = DefaultExecutionSpace, class BView>
void schur_solve_batched(const SchurDeviceData& s, const BView& b,
                         BuilderVersion version,
                         const TilePolicy& policy = TilePolicy::from_env())
{
    static_assert(BatchBlockView<BView>,
                  "schur_solve_batched operates on a rank-2 (rows, batch) "
                  "right-hand-side block with element access");
    static_assert(std::is_same_v<typename BView::value_type, double>,
                  "schur_solve_batched consumes an FP64 block (the FP32 "
                  "path is the mixed-precision driver in "
                  "core/refinement.hpp)");
    constexpr int native_w = simd_preferred_width<double>;
    const std::size_t batch = b.extent(1);
    const std::size_t scalar_tile =
            policy.tile_cols(s.n, batch, sizeof(double), 1);
    switch (version) {
    case BuilderVersion::Baseline:
        detail::solve_baseline<Exec>(s, b, batch);
        break;
    case BuilderVersion::Fused:
        if (scalar_tile > 0) {
            detail::solve_fused_scalar_tiled<false, Exec>(s, b, batch,
                                                          scalar_tile);
        } else {
            detail::solve_fused<Exec>(s, b, batch);
        }
        break;
    case BuilderVersion::FusedSpmv:
        if (scalar_tile > 0) {
            detail::solve_fused_scalar_tiled<true, Exec>(s, b, batch,
                                                         scalar_tile);
        } else {
            detail::solve_fused_spmv<Exec>(s, b, batch);
        }
        break;
    case BuilderVersion::FusedSimd:
        schur_solve_batched_simd<native_w, Exec>(s, b, /*use_spmv=*/false,
                                                 policy);
        break;
    case BuilderVersion::FusedSpmvSimd:
        schur_solve_batched_simd<native_w, Exec>(s, b, /*use_spmv=*/true,
                                                 policy);
        break;
    }
}

} // namespace pspl::core
