// Batched drivers for the Schur-complement solve: one fixed factorized
// matrix against every column of a (n, batch) right-hand-side block. The
// three versions are the paper's optimization ladder (Table III); they are
// free functions so every builder flavour (Greville, Hermite, 2-D tensor)
// shares the exact same kernels.
#pragma once

#include "batched/batched.hpp"
#include "core/schur_solver.hpp"
#include "parallel/parallel.hpp"
#include "parallel/subview.hpp"
#include "parallel/view.hpp"

#include <utility>

namespace pspl::core {

enum class BuilderVersion {
    Baseline = 0,
    Fused = 1,
    FusedSpmv = 2,
};

const char* to_string(BuilderVersion v);

namespace detail {

template <class Exec, class BView>
void solve_baseline(const SchurDeviceData& s, const BView& b,
                    std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    // Kernel 1: batched serial Q-solve (pttrs/gttrs/pbtrs/gbtrs/getrs).
    parallel_for("pspl::batched::SerialQsolve", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                 });
    if (s.k == 0) {
        return;
    }
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    // Kernel 2: global GEMM  b1 -= lambda * x0'.
    blas::gemm<Exec>("pspl::blas::gemm_lambda", -1.0, s.lambda_dense, b0, 1.0,
                     b1);
    // Kernel 3: batched serial getrs on the Schur complement.
    parallel_for("pspl::batched::SerialGetrs", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b1 = subview(b1, ALL, i);
                     batched::SerialGetrs<>::invoke(s.delta_lu, s.delta_ipiv,
                                                    sub_b1);
                 });
    // Kernel 4: global GEMM  x0 = x0' - beta * x1.
    blas::gemm<Exec>("pspl::blas::gemm_beta", -1.0, s.beta_dense, b1, 1.0,
                     b0);
}

template <class Exec, class BView>
void solve_fused(const SchurDeviceData& s, const BView& b, std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    parallel_for("pspl::batched::SerialQsolve-Gemv", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                     if (s.k > 0) {
                         auto sub_b1 = subview(b1, ALL, i);
                         batched::SerialGemv<>::invoke(-1.0, s.lambda_dense,
                                                       sub_b0, 1.0, sub_b1);
                         batched::SerialGetrs<>::invoke(s.delta_lu,
                                                        s.delta_ipiv, sub_b1);
                         batched::SerialGemv<>::invoke(-1.0, s.beta_dense,
                                                       sub_b1, 1.0, sub_b0);
                     }
                 });
}

template <class Exec, class BView>
void solve_fused_spmv(const SchurDeviceData& s, const BView& b,
                      std::size_t batch)
{
    const auto b0 = subview(b, std::pair<std::size_t, std::size_t>(0, s.n0),
                            ALL);
    const auto b1 = subview(b, std::pair<std::size_t, std::size_t>(s.n0, s.n),
                            ALL);
    parallel_for("pspl::batched::SerialQsolve-Spmv", RangePolicy<Exec>(batch),
                 [=](std::size_t i) {
                     auto sub_b0 = subview(b0, ALL, i);
                     solve_q_serial(s, sub_b0);
                     if (s.k > 0) {
                         auto sub_b1 = subview(b1, ALL, i);
                         batched::SerialSpmvCoo::invoke(-1.0, s.lambda_coo,
                                                        sub_b0, sub_b1);
                         batched::SerialGetrs<>::invoke(s.delta_lu,
                                                        s.delta_ipiv, sub_b1);
                         batched::SerialSpmvCoo::invoke(-1.0, s.beta_coo,
                                                        sub_b1, sub_b0);
                     }
                 });
}

} // namespace detail

/// Solve A x = b in place for every column of `b` (shape (n, batch)) with
/// the requested kernel version.
template <class Exec = DefaultExecutionSpace, class BView>
void schur_solve_batched(const SchurDeviceData& s, const BView& b,
                         BuilderVersion version)
{
    const std::size_t batch = b.extent(1);
    switch (version) {
    case BuilderVersion::Baseline:
        detail::solve_baseline<Exec>(s, b, batch);
        break;
    case BuilderVersion::Fused:
        detail::solve_fused<Exec>(s, b, batch);
        break;
    case BuilderVersion::FusedSpmv:
        detail::solve_fused_spmv<Exec>(s, b, batch);
        break;
    }
}

} // namespace pspl::core
