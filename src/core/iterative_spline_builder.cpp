#include "core/iterative_spline_builder.hpp"

#include "bsplines/collocation.hpp"
#include "parallel/macros.hpp"
#include "sparse/csr.hpp"

#include <utility>

namespace pspl::core {

IterativeSplineBuilder::IterativeSplineBuilder(bsplines::BSplineBasis basis)
    : IterativeSplineBuilder(std::move(basis), Options())
{
}

IterativeSplineBuilder::IterativeSplineBuilder(bsplines::BSplineBasis basis,
                                               Options options)
    : m_basis(std::move(basis))
{
    const auto a = bsplines::collocation_matrix(m_basis);
    auto csr = sparse::Csr::from_dense(a, 1e-14);
    m_solver = std::make_shared<const iterative::ChunkedIterativeSolver>(
            std::move(csr), options.kind, options.config,
            options.cols_per_chunk, options.max_block_size,
            options.use_ilu0);
}

iterative::SolveStats
IterativeSplineBuilder::build_inplace(const View2D<double, LayoutRight>& b) const
{
    PSPL_EXPECT(b.extent(0) == m_basis.nbasis(),
                "build_inplace: RHS rows must equal nbasis");
    return m_solver->solve_inplace(b);
}

iterative::SolveStats
IterativeSplineBuilder::build_inplace(const View2D<double, LayoutStride>& b) const
{
    PSPL_EXPECT(b.extent(0) == m_basis.nbasis(),
                "build_inplace: RHS rows must equal nbasis");
    return m_solver->solve_inplace(b);
}

} // namespace pspl::core
