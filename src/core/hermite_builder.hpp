// Hermite-boundary spline builder for non-periodic (clamped) odd-degree
// splines: the boundary treatment GYSELA's non-uniform spline work uses
// for non-periodic dimensions (paper ref [30], Bourne et al.).
//
// For degree p (odd) on ncells cells there are n = ncells + p unknowns.
// The interpolation conditions are:
//   - s derivative conditions at xmin, orders 1..s with s = (p-1)/2,
//   - function values at the ncells+1 break points,
//   - s derivative conditions at xmax, orders 1..s.
// The right-hand-side row layout matches that order:
//   [f'(xmin).., f(x_0), ..., f(x_ncells), f'(xmax)..].
//
// The resulting matrix is banded with no periodic corners (the derivative
// rows touch only the first/last p+1 basis functions), so the Schur
// machinery runs with corner width k = 0 and a gbtrs/getrs kernel.
#pragma once

#include "bsplines/basis.hpp"
#include "core/batched_solve.hpp"
#include "core/precision.hpp"
#include "core/refinement.hpp"
#include "core/schur_solver.hpp"
#include "parallel/profiling.hpp"
#include "parallel/view.hpp"

#include <memory>
#include <vector>

namespace pspl::core {

class HermiteSplineBuilder
{
public:
    HermiteSplineBuilder() = default;

    /// `basis` must be clamped with odd degree.
    explicit HermiteSplineBuilder(
            bsplines::BSplineBasis basis,
            BuilderVersion version = BuilderVersion::FusedSpmv);

    const bsplines::BSplineBasis& basis() const { return m_basis; }
    const SchurSolver& solver() const { return *m_solver; }

    /// Number of derivative conditions per boundary: (degree-1)/2.
    std::size_t nderivs() const
    {
        return static_cast<std::size_t>((m_basis.degree() - 1) / 2);
    }

    /// The value interpolation points (the ncells+1 break points).
    const std::vector<double>& value_points() const { return m_points; }

    /// Working precision of the batched solve (PSPL_PRECISION default);
    /// same semantics as SplineBuilder::set_precision.
    void set_precision(Precision p) { m_precision = p; }
    Precision precision() const { return m_precision; }

    /// Solve for spline coefficients in place. `b` has shape (n, batch)
    /// with the row layout documented above.
    template <class Exec = DefaultExecutionSpace, class T, class L>
    void build_inplace(const View<T, 2, L>& b) const
    {
        PSPL_EXPECT(b.extent(0) == m_basis.nbasis(),
                    "build_inplace: RHS rows must equal nbasis");
        profiling::ScopedRegion region("pspl_splines_solve_hermite");
        if (m_precision != Precision::Double) {
            const bool use_spmv = m_version != BuilderVersion::Fused
                                  && m_version != BuilderVersion::FusedSimd;
            solve_refined_batched<Exec>(*m_solver, b, m_precision, {},
                                        TilePolicy::from_env(), use_spmv);
            return;
        }
        schur_solve_batched<Exec>(m_solver->device_data(), b, m_version);
    }

    /// Convenience: fill one RHS column from a function and its exact
    /// derivatives (host-side helper for tests and setup code).
    /// `f(x, m)` must return the m-th derivative of the target (m = 0 is
    /// the value).
    template <class F, class ColView>
    void fill_rhs(F&& f, const ColView& col) const
    {
        const std::size_t s = nderivs();
        for (std::size_t m = 1; m <= s; ++m) {
            col(m - 1) = f(m_basis.xmin(), static_cast<int>(m));
        }
        for (std::size_t c = 0; c < m_points.size(); ++c) {
            col(s + c) = f(m_points[c], 0);
        }
        for (std::size_t m = 1; m <= s; ++m) {
            col(s + m_points.size() + m - 1) =
                    f(m_basis.xmax(), static_cast<int>(m));
        }
    }

private:
    bsplines::BSplineBasis m_basis;
    BuilderVersion m_version = BuilderVersion::FusedSpmv;
    std::shared_ptr<const SchurSolver> m_solver;
    Precision m_precision = precision_from_env();
    std::vector<double> m_points; ///< break points (value rows)
};

} // namespace pspl::core
