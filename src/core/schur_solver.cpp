#include "core/schur_solver.hpp"

#include "hostlapack/dense.hpp"
#include "hostlapack/gbtrf.hpp"
#include "hostlapack/getrf.hpp"
#include "hostlapack/gttrf.hpp"
#include "hostlapack/pbtrf.hpp"
#include "hostlapack/pttrf.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/profiling.hpp"
#include "parallel/subview.hpp"

#include <algorithm>
#include <cmath>

namespace pspl::core {

SchurSolver::SchurSolver(const View2D<double>& a) : SchurSolver(a, Options())
{
}

SchurSolver::SchurSolver(const View2D<double>& a, Options opts)
    : m_structure(analyze_structure(a, opts.structure_tol))
{
    // Host-side setup is a one-time cost, but it still shows up in traces:
    // each phase of Algorithm 1's setup opens its own span so the snapshot
    // separates factorization from the per-RHS solve kernels.
    profiling::ScopedSpan setup_span("pspl::schur::setup");
    const std::size_t n = m_structure.n;
    const std::size_t k = m_structure.corner_width;
    const std::size_t n0 = n - k;
    PSPL_EXPECT(n0 > 0, "SchurSolver: corner block covers the whole matrix");

    m_data.n = n;
    m_data.n0 = n0;
    m_data.k = k;

    // --- Extract the blocks ------------------------------------------------
    // Row-parallel: besides the (one-time) speedup, the parallel writes
    // first-touch each factor block under the same static schedule the
    // solve kernels later read it with, so on a first-touch NUMA system
    // the pages land near their consumers.
    View2D<double> q("schur_q", n0, n0);
    parallel_for("pspl::schur::extract_q", n0, [=](std::size_t i) {
        for (std::size_t j = 0; j < n0; ++j) {
            q(i, j) = a(i, j);
        }
    });
    View2D<double> gamma("schur_gamma", n0, std::max<std::size_t>(k, 1));
    View2D<double> lambda("schur_lambda", std::max<std::size_t>(k, 1), n0);
    View2D<double> delta("schur_delta", std::max<std::size_t>(k, 1),
                         std::max<std::size_t>(k, 1));
    parallel_for("pspl::schur::extract_corners", n0 + 2 * k,
                 [=](std::size_t r) {
                     if (r < n0) {
                         for (std::size_t j = 0; j < k; ++j) {
                             gamma(r, j) = a(r, n0 + j);
                         }
                     } else if (r < n0 + k) {
                         const std::size_t i = r - n0;
                         for (std::size_t j = 0; j < n0; ++j) {
                             lambda(i, j) = a(n0 + i, j);
                         }
                     } else {
                         const std::size_t i = r - n0 - k;
                         for (std::size_t j = 0; j < k; ++j) {
                             delta(i, j) = a(n0 + i, n0 + j);
                         }
                     }
                 });

    // --- Factorize Q with the recommended solver, falling back on failure --
    SolverKind kind = m_structure.recommended;
    {
        profiling::ScopedSpan factor_span("pspl::schur::factor_q");
        const std::size_t kl = m_structure.kl;
        const std::size_t ku = m_structure.ku;

        if (kind == SolverKind::PTTRS) {
            View1D<double> d("schur_pt_d", n0);
            View1D<double> e("schur_pt_e", n0 > 1 ? n0 - 1 : 1);
            for (std::size_t i = 0; i < n0; ++i) {
                d(i) = q(i, i);
            }
            for (std::size_t i = 0; i + 1 < n0; ++i) {
                e(i) = q(i + 1, i);
            }
            if (hostlapack::pttrf(d, e) == 0) {
                m_data.pt_d = d;
                m_data.pt_e = e;
            } else {
                kind = SolverKind::GTTRS; // not positive definite after all
            }
        }
        if (kind == SolverKind::GTTRS) {
            View1D<double> dl("schur_gt_dl", n0 > 1 ? n0 - 1 : 1);
            View1D<double> d("schur_gt_d", n0);
            View1D<double> du("schur_gt_du", n0 > 1 ? n0 - 1 : 1);
            View1D<double> du2("schur_gt_du2", n0 > 2 ? n0 - 2 : 1);
            View1D<int> ipiv("schur_gt_ipiv", n0);
            for (std::size_t i = 0; i < n0; ++i) {
                d(i) = q(i, i);
            }
            for (std::size_t i = 0; i + 1 < n0; ++i) {
                dl(i) = q(i + 1, i);
                du(i) = q(i, i + 1);
            }
            if (hostlapack::gttrf(dl, d, du, du2, ipiv) == 0) {
                m_data.gt_dl = dl;
                m_data.gt_d = d;
                m_data.gt_du = du;
                m_data.gt_du2 = du2;
                m_data.gt_ipiv = ipiv;
            } else {
                kind = SolverKind::GBTRS;
            }
        }
        if (kind == SolverKind::PBTRS) {
            const std::size_t kd = std::max(kl, ku);
            auto sb = hostlapack::pack_sym_band(q, kd);
            if (hostlapack::pbtrf(sb) == 0) {
                m_data.pb_ab = sb.ab;
            } else {
                kind = SolverKind::GBTRS;
            }
        }
        if (kind == SolverKind::GBTRS) {
            auto bm = hostlapack::pack_band(q, kl, ku);
            View1D<int> ipiv("schur_gb_ipiv", n0);
            if (hostlapack::gbtrf(bm, ipiv) == 0) {
                m_data.gb_ab = bm.ab;
                m_data.gb_ipiv = ipiv;
                m_data.kl = static_cast<int>(kl);
                m_data.ku = static_cast<int>(ku);
            } else {
                kind = SolverKind::GETRS;
            }
        }
        if (kind == SolverKind::GETRS) {
            View2D<double> lu = clone(q);
            View1D<int> ipiv("schur_ge_ipiv", n0);
            const int info = hostlapack::getrf(lu, ipiv);
            PSPL_EXPECT(info == 0, "SchurSolver: Q is singular");
            m_data.ge_lu = lu;
            m_data.ge_ipiv = ipiv;
        }
        m_data.kind = kind;
    }

    // --- beta = Q^{-1} gamma (k host solves with the fresh factor) ---------
    profiling::ScopedSpan schur_span("pspl::schur::schur_complement");
    View2D<double> beta("schur_beta", n0, std::max<std::size_t>(k, 1));
    for (std::size_t j = 0; j < k; ++j) {
        auto col_g = subview(gamma, ALL, j);
        auto col_b = subview(beta, ALL, j);
        for (std::size_t i = 0; i < n0; ++i) {
            col_b(i) = col_g(i);
        }
        solve_q_serial(m_data, col_b);
    }

    // --- delta' = delta - lambda * beta, dense LU ---------------------------
    View2D<double> delta_lu = clone(delta);
    if (k > 0) {
        hostlapack::gemm(-1.0, lambda, beta, 1.0, delta_lu);
    }
    View1D<int> delta_ipiv("schur_delta_ipiv", std::max<std::size_t>(k, 1));
    if (k > 0) {
        const int info = hostlapack::getrf(delta_lu, delta_ipiv);
        PSPL_EXPECT(info == 0, "SchurSolver: Schur complement is singular");
    }
    m_data.delta_lu = delta_lu;
    m_data.delta_ipiv = delta_ipiv;

    // --- Corner blocks: dense + thresholded COO -----------------------------
    m_data.lambda_dense = lambda;
    m_data.beta_dense = beta;
    const double amax = hostlapack::max_abs(a);
    const double thresh = opts.sparsify_threshold * std::max(amax, 1.0);
    m_data.lambda_coo = sparse::Coo::from_dense(lambda, thresh);
    m_data.beta_coo = sparse::Coo::from_dense(beta, thresh);

    // --- Mixed-precision setup: full operator + FP32 factor mirror ----------
    // The refinement loop needs the exact FP64 operator for r = b - A x
    // (every structural nonzero, no sparsification), and the FP32 solve
    // needs narrowed copies of every factor block. Both are one-time,
    // setup-side conversions -- the sanctioned place for double -> float
    // narrowing.
    {
        profiling::ScopedSpan mixed_span("pspl::schur::float_factors");
        m_a_coo = sparse::Coo::from_dense(a, 0.0);
        build_float_factors();
    }
}

namespace {

View1D<float> narrow(const char* label, const View1D<double>& v)
{
    View1D<float> out(label, v.extent(0));
    for (std::size_t i = 0; i < v.extent(0); ++i) {
        out(i) = static_cast<float>(v(i));
    }
    return out;
}

View2D<float> narrow(const char* label, const View2D<double>& v)
{
    View2D<float> out(label, v.extent(0), v.extent(1));
    for (std::size_t i = 0; i < v.extent(0); ++i) {
        for (std::size_t j = 0; j < v.extent(1); ++j) {
            out(i, j) = static_cast<float>(v(i, j));
        }
    }
    return out;
}

/// Reciprocal diagonal, computed in FP64 then narrowed (one rounding).
View1D<float> narrow_recip(const char* label, const View1D<double>& d)
{
    View1D<float> out(label, d.extent(0));
    for (std::size_t i = 0; i < d.extent(0); ++i) {
        out(i) = static_cast<float>(1.0 / d(i));
    }
    return out;
}

} // namespace

void SchurSolver::build_float_factors()
{
    const SchurDeviceData& d = m_data;
    m_float.kind = d.kind;
    m_float.n = d.n;
    m_float.n0 = d.n0;
    m_float.k = d.k;
    m_float.kl = d.kl;
    m_float.ku = d.ku;

    switch (d.kind) {
    case SolverKind::PTTRS:
        m_float.pt_d = narrow("schur_f32_pt_d", d.pt_d);
        m_float.pt_e = narrow("schur_f32_pt_e", d.pt_e);
        m_float.pt_dinv = narrow_recip("schur_f32_pt_dinv", d.pt_d);
        break;
    case SolverKind::GTTRS:
        m_float.gt_dl = narrow("schur_f32_gt_dl", d.gt_dl);
        m_float.gt_d = narrow("schur_f32_gt_d", d.gt_d);
        m_float.gt_du = narrow("schur_f32_gt_du", d.gt_du);
        m_float.gt_du2 = narrow("schur_f32_gt_du2", d.gt_du2);
        m_float.gt_dinv = narrow_recip("schur_f32_gt_dinv", d.gt_d);
        m_float.gt_ipiv = d.gt_ipiv; // shared: pivots carry no precision
        break;
    case SolverKind::PBTRS:
        m_float.pb_ab = narrow("schur_f32_pb_ab", d.pb_ab);
        break;
    case SolverKind::GBTRS:
        m_float.gb_ab = narrow("schur_f32_gb_ab", d.gb_ab);
        m_float.gb_ipiv = d.gb_ipiv;
        break;
    case SolverKind::GETRS:
        m_float.ge_lu = narrow("schur_f32_ge_lu", d.ge_lu);
        m_float.ge_ipiv = d.ge_ipiv;
        break;
    }

    m_float.delta_lu = narrow("schur_f32_delta_lu", d.delta_lu);
    m_float.delta_ipiv = d.delta_ipiv;
    m_float.lambda_dense = narrow("schur_f32_lambda", d.lambda_dense);
    m_float.beta_dense = narrow("schur_f32_beta", d.beta_dense);

    // Rebuild the COO blocks at FP32 from the same thresholded dense
    // blocks, so the sparsity pattern matches the FP64 ladder exactly.
    m_float.lambda_coo = sparse::BasicCoo<float>(
            d.lambda_coo.nrows(), d.lambda_coo.ncols(), d.lambda_coo.rows_idx(),
            d.lambda_coo.cols_idx(),
            narrow("schur_f32_lambda_coo_vals", d.lambda_coo.values()));
    m_float.beta_coo = sparse::BasicCoo<float>(
            d.beta_coo.nrows(), d.beta_coo.ncols(), d.beta_coo.rows_idx(),
            d.beta_coo.cols_idx(),
            narrow("schur_f32_beta_coo_vals", d.beta_coo.values()));
}

} // namespace pspl::core
