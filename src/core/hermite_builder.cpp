#include "core/hermite_builder.hpp"

#include "parallel/macros.hpp"

#include <utility>

namespace pspl::core {

HermiteSplineBuilder::HermiteSplineBuilder(bsplines::BSplineBasis basis,
                                           BuilderVersion version)
    : m_basis(std::move(basis)), m_version(version)
{
    PSPL_EXPECT(!m_basis.is_periodic(),
                "HermiteSplineBuilder: basis must be clamped");
    PSPL_EXPECT(m_basis.degree() % 2 == 1,
                "HermiteSplineBuilder: degree must be odd");
    const std::size_t n = m_basis.nbasis();
    const std::size_t s = nderivs();
    const std::size_t npts = m_basis.ncells() + 1;
    PSPL_EXPECT(2 * s + npts == n,
                "HermiteSplineBuilder: condition count mismatch");

    m_points.resize(npts);
    for (std::size_t c = 0; c < npts; ++c) {
        m_points[c] = m_basis.break_point(c);
    }

    // Assemble the Hermite collocation matrix.
    View2D<double> a("hermite_matrix", n, n);
    std::vector<double> vals(static_cast<std::size_t>(m_basis.degree()) + 1);
    // Derivative rows at xmin (orders 1..s).
    for (std::size_t m = 1; m <= s; ++m) {
        const long jmin = m_basis.eval_deriv_order(
                m_basis.xmin(), static_cast<int>(m), vals.data());
        for (int r = 0; r <= m_basis.degree(); ++r) {
            a(m - 1, m_basis.basis_index(jmin + r)) +=
                    vals[static_cast<std::size_t>(r)];
        }
    }
    // Value rows at the break points.
    for (std::size_t c = 0; c < npts; ++c) {
        const long jmin = m_basis.eval_basis(m_points[c], vals.data());
        for (int r = 0; r <= m_basis.degree(); ++r) {
            a(s + c, m_basis.basis_index(jmin + r)) +=
                    vals[static_cast<std::size_t>(r)];
        }
    }
    // Derivative rows at xmax (orders 1..s).
    for (std::size_t m = 1; m <= s; ++m) {
        const long jmin = m_basis.eval_deriv_order(
                m_basis.xmax(), static_cast<int>(m), vals.data());
        for (int r = 0; r <= m_basis.degree(); ++r) {
            a(s + npts + m - 1, m_basis.basis_index(jmin + r)) +=
                    vals[static_cast<std::size_t>(r)];
        }
    }

    m_solver = std::make_shared<const SchurSolver>(a);
}

} // namespace pspl::core
