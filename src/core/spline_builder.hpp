// Batched spline builder: computes spline coefficients for a block of
// right-hand sides by solving the fixed collocation matrix against every
// column (paper §III-A, §IV).
//
// Three versions reproduce the paper's optimization ladder (Table III):
//   Baseline  -- separate kernels: batched Q-solve, global GEMM with the
//                dense corner blocks, batched getrs, global GEMM
//                (Listing 2);
//   Fused     -- one kernel per batch entry doing Q-solve, serial GEMV,
//                getrs, serial GEMV (Listing 4);
//   FusedSpmv -- the fused kernel with the dense GEMVs replaced by COO
//                SpMV over the sparse corner blocks (Listing 6).
// plus the host-SIMD variants FusedSimd / FusedSpmvSimd, which run the
// fused kernels with W adjacent batch entries per iteration in
// simd<double, W> packs (see parallel/simd.hpp) -- the host analogue of the
// warp-level SIMT execution the GPU backends get from the same source.
//
// The RHS block is (n, batch) with the batch index contiguous
// (GPU-coalesced; the paper notes this layout is hostile to CPU caches and
// leaves a layout abstraction as future work -- see bench_ablation_layout).
#pragma once

#include "bsplines/basis.hpp"
#include "bsplines/collocation.hpp"
#include "core/batched_solve.hpp"
#include "core/precision.hpp"
#include "core/refinement.hpp"
#include "core/schur_solver.hpp"
#include "parallel/profiling.hpp"
#include "parallel/tiling.hpp"

#include <memory>
#include <optional>
#include <utility>

namespace pspl::core {

class SplineBuilder
{
public:
    SplineBuilder() = default;

    explicit SplineBuilder(bsplines::BSplineBasis basis,
                           BuilderVersion version = BuilderVersion::FusedSpmv,
                           SchurSolver::Options options = SchurSolver::Options());

    const bsplines::BSplineBasis& basis() const { return m_basis; }
    BuilderVersion version() const { return m_version; }
    const SchurSolver& solver() const { return *m_solver; }

    /// Override the batch tile policy for this builder; when unset (the
    /// default) every solve consults PSPL_TILE / the L2 cache model.
    void set_tile_policy(const TilePolicy& policy) { m_tile = policy; }
    TilePolicy tile_policy() const
    {
        return m_tile ? *m_tile : TilePolicy::from_env();
    }

    /// Working precision of the batched solve. Defaults to PSPL_PRECISION
    /// (unset -> Double). Double runs the FP64 ladder exactly as before --
    /// bitwise, not just to tolerance; Single / Mixed route through the
    /// reduced-precision driver in core/refinement.hpp.
    void set_precision(Precision p) { m_precision = p; }
    Precision precision() const { return m_precision; }

    /// Tuning knobs of the Mixed refinement loop (residual target, budget).
    void set_refinement_options(const RefinementOptions& opt)
    {
        m_refine_opts = opt;
    }
    const RefinementOptions& refinement_options() const
    {
        return m_refine_opts;
    }

    /// What the most recent reduced-precision build_inplace actually did
    /// (zeroed stats when the builder runs at Precision::Double).
    const RefinementStats& last_refinement_stats() const
    {
        return m_last_refine;
    }

    /// Solve A * coeffs = values in place: on entry each column of `b`
    /// (shape (n, batch)) holds interpolation values at the basis'
    /// interpolation points; on exit it holds the spline coefficients.
    template <class Exec = DefaultExecutionSpace, class T, class L>
    void build_inplace(const View<T, 2, L>& b) const
    {
        PSPL_EXPECT(b.extent(0) == m_basis.nbasis(),
                    "build_inplace: RHS rows must equal nbasis");
        profiling::ScopedRegion region("pspl_splines_solve");
        if (m_precision != Precision::Double) {
            // Reduced-precision pipeline: FP32 fused solve (+ FP64
            // refinement for Mixed). The kernel version only decides the
            // corner-correction flavour; the chain is always fused+SIMD.
            const bool use_spmv = m_version != BuilderVersion::Fused
                                  && m_version != BuilderVersion::FusedSimd;
            m_last_refine = solve_refined_batched<Exec>(
                    *m_solver, b, m_precision, m_refine_opts, tile_policy(),
                    use_spmv);
            return;
        }
        m_last_refine = RefinementStats{};
        schur_solve_batched<Exec>(m_solver->device_data(), b, m_version,
                                  tile_policy());
    }

    /// GYSELA-shaped batches: the distribution function keeps several
    /// batch dimensions (paper §II-B: "the number of batches can be
    /// (10^3)^4 corresponding to the total number of grid points in the
    /// remaining 4 dimensions"). A rank-3 block (n, b1, b2) is solved as
    /// b1 rank-2 slices, each batched over its contiguous b2 index.
    template <class Exec = DefaultExecutionSpace, class T, class L>
    void build_inplace(const View<T, 3, L>& b) const
    {
        PSPL_EXPECT(b.extent(0) == m_basis.nbasis(),
                    "build_inplace: RHS rows must equal nbasis");
        for (std::size_t i = 0; i < b.extent(1); ++i) {
            build_inplace<Exec>(subview(b, ALL, i, ALL));
        }
    }

private:
    bsplines::BSplineBasis m_basis;
    BuilderVersion m_version = BuilderVersion::FusedSpmv;
    std::shared_ptr<const SchurSolver> m_solver;
    std::optional<TilePolicy> m_tile;
    Precision m_precision = precision_from_env();
    RefinementOptions m_refine_opts;
    mutable RefinementStats m_last_refine;
};

} // namespace pspl::core
