// Correctness-instrumentation core: the PSPL_CHECK compile-time switch and
// the structured failure channel every checker reports through.
//
// The instrumentation layer (bounds provenance, allocation registry, write
// conflict detection, NaN poisoning) is compiled in only when the build sets
// -DPSPL_CHECK (CMake option PSPL_CHECK=ON).  Every hook in the hot paths is
// guarded by `if constexpr (debug::check_enabled)`, so an unchecked build
// carries zero runtime and zero code-size cost -- the same discipline as
// Kokkos' ENABLE_DEBUG_BOUNDS_CHECK.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pspl::debug {

#if defined(PSPL_CHECK)
inline constexpr bool check_enabled = true;
#else
inline constexpr bool check_enabled = false;
#endif

/// Printf-style fatal diagnostic: prints one "pspl: check failed:" line to
/// stderr and aborts.  Checkers route every violation through here so death
/// tests (and humans) can match on a single stable prefix.
[[noreturn]] inline void fail(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::fputs("pspl: check failed: ", stderr);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
    std::abort();
}

} // namespace pspl::debug
