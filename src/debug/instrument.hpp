// Umbrella header threading the instrumentation into the parallel layer.
//
// view.hpp / parallel.hpp / deep_copy.hpp include this and call the hooks
// below under `if constexpr (debug::check_enabled)`; in unchecked builds
// the branches are discarded at compile time, so the data-structure layer
// pays nothing.
#pragma once

#include "debug/check.hpp"
#include "debug/conflict.hpp"
#include "debug/poison.hpp"
#include "debug/registry.hpp"

namespace pspl::debug {

/// Per-element access hook invoked from View::operator(): use-after-free
/// lookup, then write-conflict shadowing when a region is open.
inline void on_access(const void* p, std::size_t bytes, const char* label)
{
    check_live(p, label);
    record_access(p, bytes, label);
}

} // namespace pspl::debug
