// In-tree concurrency model checker: systematic exploration of every
// interleaving of a small concurrent program under (an operational subset
// of) the C++ memory model, in the spirit of CDSChecker / relacy.
//
// The checker runs a *litmus program* -- a deterministic setup callback
// that builds shared state out of `mc::atomic<T>` / `mc::plain<T>` cells
// and registers a handful of thread bodies -- over and over, each run
// forced down a different schedule / reads-from branch by a DFS over a
// choice stack. Threads are real std::threads from a small reusable pool,
// but exactly one is ever runnable: each visible operation (atomic access,
// mutex op, yield) is a scheduling point where control returns to the
// explorer. Between visible operations threads run uninstrumented code
// atomically.
//
// What a run checks:
//   - MC_ASSERT conditions in thread bodies and on_exit callbacks,
//   - data races on mc::plain cells (vector-clock happens-before),
//   - loads of an atomic whose *initialization* does not happen-before
//     the access (publication bugs: reaching an object through a racy
//     pointer),
//   - deadlocks (every live thread blocked) and step-bound livelocks,
//   - mutex misuse (unlock by non-owner).
//
// The memory model, honestly stated (docs/STATIC_ANALYSIS.md has the long
// version): stores to a location form a history in execution order; a load
// may read any store between "newest store that happens-before the load /
// newest the thread has already observed / newest seq_cst store if the
// load is seq_cst" and the latest -- each admissible choice is explored.
// Acquire loads join the release clock of the store they read; RMWs always
// read the latest store (so the model under-approximates: weakening the
// *order on a CAS* is not observable here, which the mutation matrix
// documents as a survivor row rather than pretending otherwise).
//
// Exploration is exhaustive at the litmus bounds, pruned soundly by sleep
// sets (Godefroid-style partial-order reduction); an optional preemption
// bound (CHESS-style) gives a cheaper CI leg. Spin loops must call
// mc::yield(): a yielded thread is not rescheduled until some store
// changes the global state, and when nothing else can run, spinners are
// resumed in a deterministic "fresh read" mode that models eventual
// visibility -- so stale-read branches terminate and real deadlocks are
// still reported.
//
// This header and mc.cpp are, with parallel/sync_policy.hpp, the only
// legal homes of raw std::atomic / std::memory_order in src/ (lint rule
// 11).
#pragma once

#include "parallel/sync_policy.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace pspl::mc {

/// Thrown through thread bodies to unwind them when exploration of the
/// current execution stops (failure found, or a sleep-set-pruned branch).
/// Deliberately not derived from std::exception: litmus code that catches
/// std::exception (the exception-recovery litmus) does not swallow it.
struct AbortExecution {
};

namespace detail {

// Engine hooks (implemented in mc.cpp). All take effect only while an
// exploration is active on this thread family; otherwise the mc:: types
// fall back to plain single-threaded behaviour so they can be constructed
// and poked in ordinary test scaffolding.
bool engine_active() noexcept;
std::uint64_t engine_generation() noexcept;

int register_atomic(std::uint64_t init, const char* name);
std::uint64_t atomic_load(int loc, std::memory_order mo);
void atomic_store(int loc, std::uint64_t v, std::memory_order mo);
std::uint64_t atomic_rmw(int loc, std::uint64_t (*f)(std::uint64_t, void*),
                         void* ctx, std::memory_order mo);
bool atomic_cas(int loc, std::uint64_t& expected, std::uint64_t desired,
                std::memory_order mo);

int register_plain(const char* name);
void plain_read(int loc);
void plain_write(int loc);

int register_mutex();
void mutex_lock(int id);
void mutex_unlock(int id);

struct SimAccess; // engine-side view of Sim's registrations (mc.cpp)

void yield_point();
void fence_point(std::memory_order mo);
void assert_failed(const char* expr, const char* file, int line);
std::memory_order site_order(sync::Site site, std::memory_order dflt);

/// Encode the value types the protocols store atomically (integers, bool,
/// pointers) into the engine's uint64 value domain and back.
template <class T>
std::uint64_t to_u64(T v)
{
    if constexpr (std::is_pointer_v<T>) {
        return reinterpret_cast<std::uintptr_t>(v);
    } else {
        return static_cast<std::uint64_t>(v);
    }
}

template <class T>
T from_u64(std::uint64_t v)
{
    if constexpr (std::is_pointer_v<T>) {
        return reinterpret_cast<T>(static_cast<std::uintptr_t>(v));
    } else if constexpr (std::is_same_v<T, bool>) {
        return v != 0;
    } else {
        return static_cast<T>(v);
    }
}

} // namespace detail

/// Model-checked stand-in for std::atomic<T>. The value history lives in
/// the engine (per-location store list with vector clocks); outside an
/// exploration the cell degrades to a plain value.
template <class T>
class atomic
{
public:
    explicit atomic(T init = T{}, const char* name = nullptr) noexcept
        : m_fallback(init)
    {
        if (detail::engine_active()) {
            m_gen = detail::engine_generation();
            m_loc = detail::register_atomic(detail::to_u64(init), name);
        }
    }

    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst) const
    {
        if (!live()) {
            return m_fallback;
        }
        return detail::from_u64<T>(detail::atomic_load(m_loc, mo));
    }

    void store(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        if (!live()) {
            m_fallback = v;
            return;
        }
        detail::atomic_store(m_loc, detail::to_u64(v), mo);
    }

    T exchange(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        if (!live()) {
            return std::exchange(m_fallback, v);
        }
        auto f = [](std::uint64_t, void* ctx) {
            return *static_cast<std::uint64_t*>(ctx);
        };
        std::uint64_t desired = detail::to_u64(v);
        return detail::from_u64<T>(
                detail::atomic_rmw(m_loc, +f, &desired, mo));
    }

    T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst)
    {
        if (!live()) {
            return std::exchange(m_fallback, static_cast<T>(m_fallback + d));
        }
        auto f = [](std::uint64_t old, void* ctx) {
            // Wraparound addition in the value domain, truncated back to
            // T's width on decode; matches two's-complement fetch_add.
            return detail::to_u64(static_cast<T>(
                    detail::from_u64<T>(old)
                    + *static_cast<T*>(ctx)));
        };
        return detail::from_u64<T>(detail::atomic_rmw(m_loc, +f, &d, mo));
    }

    T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst)
    {
        if (!live()) {
            return std::exchange(m_fallback, static_cast<T>(m_fallback - d));
        }
        auto f = [](std::uint64_t old, void* ctx) {
            return detail::to_u64(static_cast<T>(
                    detail::from_u64<T>(old)
                    - *static_cast<T*>(ctx)));
        };
        return detail::from_u64<T>(detail::atomic_rmw(m_loc, +f, &d, mo));
    }

    bool compare_exchange_strong(
            T& expected, T desired,
            std::memory_order mo = std::memory_order_seq_cst,
            std::memory_order = std::memory_order_relaxed)
    {
        if (!live()) {
            if (m_fallback == expected) {
                m_fallback = desired;
                return true;
            }
            expected = m_fallback;
            return false;
        }
        std::uint64_t exp = detail::to_u64(expected);
        const bool ok = detail::atomic_cas(m_loc, exp,
                                           detail::to_u64(desired), mo);
        expected = detail::from_u64<T>(exp);
        return ok;
    }

    bool compare_exchange_weak(
            T& expected, T desired,
            std::memory_order mo = std::memory_order_seq_cst,
            std::memory_order fmo = std::memory_order_relaxed)
    {
        // No spurious failure in the model: strong semantics are a subset.
        return compare_exchange_strong(expected, desired, mo, fmo);
    }

private:
    bool live() const noexcept
    {
        return m_loc >= 0 && detail::engine_active()
               && m_gen == detail::engine_generation();
    }

    T m_fallback;
    int m_loc = -1;
    std::uint64_t m_gen = 0;
};

/// Model-checked stand-in for Sync::plain<T>: a non-atomic cell whose
/// every access is race-checked against the happens-before relation. The
/// value itself lives in the object (accesses are serialized by the
/// scheduler, so plain reads always see real data even in racy runs; the
/// race is reported at the next scheduling point).
template <class T>
class plain
{
public:
    plain() noexcept(std::is_nothrow_default_constructible_v<T>)
        : m_v{}
    {
        reg();
    }

    plain(const T& v) // NOLINT(google-explicit-constructor)
        : m_v(v)
    {
        reg();
    }

    plain(const plain& o)
        : m_v(o.checked_read())
    {
        reg();
    }

    plain(plain&& o) noexcept
        : m_v(std::move(o.m_v))
    {
        // Moved-from access still counts as a read of the source.
        o.note_read();
        reg();
    }

    plain& operator=(const plain& o)
    {
        const T v = o.checked_read();
        note_write();
        m_v = v;
        return *this;
    }

    plain& operator=(plain&& o) noexcept
    {
        o.note_read();
        note_write();
        m_v = std::move(o.m_v);
        return *this;
    }

    plain& operator=(const T& v)
    {
        note_write();
        m_v = v;
        return *this;
    }

    operator T() const { return checked_read(); } // NOLINT

    ~plain() = default;

private:
    void reg() noexcept
    {
        if (detail::engine_active()) {
            m_gen = detail::engine_generation();
            m_loc = detail::register_plain(nullptr);
        }
    }

    bool live() const noexcept
    {
        return m_loc >= 0 && detail::engine_active()
               && m_gen == detail::engine_generation();
    }

    void note_read() const noexcept
    {
        if (live()) {
            detail::plain_read(m_loc);
        }
    }

    void note_write() noexcept
    {
        if (live()) {
            detail::plain_write(m_loc);
        }
    }

    T checked_read() const
    {
        note_read();
        return m_v;
    }

    T m_v;
    int m_loc = -1;
    std::uint64_t m_gen = 0;
};

/// Model-checked mutex: blocking lock is a scheduling point, unlock hands
/// its release clock to the next owner. Compatible with std::lock_guard.
class mutex
{
public:
    mutex() noexcept
    {
        if (detail::engine_active()) {
            m_gen = detail::engine_generation();
            m_id = detail::register_mutex();
        }
    }

    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock()
    {
        if (live()) {
            detail::mutex_lock(m_id);
        }
    }

    void unlock()
    {
        if (live()) {
            detail::mutex_unlock(m_id);
        }
    }

private:
    bool live() const noexcept
    {
        return m_id >= 0 && detail::engine_active()
               && m_gen == detail::engine_generation();
    }

    int m_id = -1;
    std::uint64_t m_gen = 0;
};

/// Spin-loop backoff point. Required in every unbounded polling loop of a
/// litmus program: a yielded thread is descheduled until a store changes
/// global state (see the file comment), which is what keeps stale-read
/// exploration finite without masking real livelocks.
inline void yield()
{
    if (detail::engine_active()) {
        detail::yield_point();
    }
}

inline void fence(std::memory_order mo)
{
    if (detail::engine_active()) {
        detail::fence_point(mo);
    }
}

/// The mutation matrix: overrides applied by ModelSync::order at the
/// annotated sites. One weakening at a time is the intended use.
struct Mutation {
    sync::Site site;
    std::memory_order order;
};

struct Options {
    /// Stop after this many completed executions (0 = run to exhaustion).
    std::uint64_t max_executions = 0;
    /// Abort an execution that exceeds this many visible operations; a
    /// litmus at model-checking bounds finishing this slowly is a livelock
    /// or a runaway loop either way.
    std::uint64_t max_steps_per_exec = 200000;
    /// CHESS-style preemption bound (-1 = unbounded / exhaustive). At k,
    /// only schedules with at most k preemptive context switches are
    /// explored -- a cheap CI leg, not a proof.
    int preemption_bound = -1;
    /// Disable sleep-set pruning (paranoia switch; exploration is then a
    /// plain exhaustive DFS and execution counts are directly comparable
    /// across checker versions).
    bool sleep_sets = true;
    /// Memory-order overrides for the annotated sites (mutation matrix).
    std::vector<Mutation> mutations;

    /// PSPL_MC_MAX_EXECUTIONS / PSPL_MC_PREEMPTION_BOUND /
    /// PSPL_MC_NO_SLEEP_SETS / PSPL_MC_MAX_STEPS applied on top of the
    /// defaults, so CI legs can rescale every litmus at once.
    static Options from_env();
};

struct Result {
    std::uint64_t executions = 0;  ///< completed interleavings explored
    std::uint64_t pruned = 0;      ///< sleep-set-redundant branches cut
    std::uint64_t transitions = 0; ///< total visible operations executed
    bool hit_execution_bound = false;
    bool failed = false;
    std::string failure_kind; ///< assert | race | unpublished-init |
                              ///< deadlock | lock-error | step-bound |
                              ///< thread-exception | nondeterminism
    std::string failure;      ///< human-readable report with event trace
};

/// Litmus-program registration surface passed to the setup callback. The
/// callback runs once per execution and must be deterministic: create the
/// shared state (normally one shared_ptr the bodies capture by value),
/// then register thread bodies and end-of-execution checks.
class Sim
{
public:
    /// Register a thread body. At most 7 threads per litmus.
    void thread(std::function<void()> body);

    /// Register a check that runs after every thread has finished, with
    /// full visibility of all effects (no races are possible here).
    void on_exit(std::function<void()> check);

private:
    friend struct detail::SimAccess;
    std::vector<std::function<void()>> m_bodies;
    std::vector<std::function<void()>> m_checks;
};

/// Explore every admissible execution of the litmus program `setup`
/// builds. Returns after exhausting the schedule space, hitting a bound,
/// or recording the first failure. Not reentrant; one exploration at a
/// time per process.
Result explore(const std::function<void(Sim&)>& setup, Options opts = {});

/// Model-check sync policy: drop-in for sync::StdSync that routes the
/// protocol templates (BasicChaseLevDeque, EpochGate, BasicEventChunkList)
/// through the checker's instrumented types, with order() consulting the
/// active mutation table.
struct ModelSync {
    template <class T>
    using atomic = mc::atomic<T>;

    template <class T>
    using plain = mc::plain<T>;

    using mutex = mc::mutex;

    static std::memory_order order(sync::Site site, std::memory_order dflt)
    {
        return detail::site_order(site, dflt);
    }

    static void fence(std::memory_order mo) { mc::fence(mo); }
};

} // namespace pspl::mc

/// Litmus assertion: a failure stops exploration and reports the trace of
/// the execution that broke it.
#define MC_ASSERT(cond)                                                      \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::pspl::mc::detail::assert_failed(#cond, __FILE__, __LINE__);    \
        }                                                                    \
    } while (0)
