// Model-checker engine: stateless DFS over schedule and reads-from
// choices, replay-based, with sleep-set partial-order reduction and an
// optional preemption bound. See mc.hpp for the model's contract and
// docs/STATIC_ANALYSIS.md for the long-form discussion.
//
// Execution machinery: litmus threads are real std::threads from a small
// pool reused across executions, but exactly one ever runs. A thread
// parks at every visible operation after registering the operation's
// descriptor; the scheduler (the thread that called mc::explore) picks
// one parked thread, hands it the run token, and sleeps until the token
// comes back. The chosen thread performs its pending operation's effect
// against the engine's location tables -- it has exclusive access by
// construction -- then runs uninstrumented code until the next visible
// operation. Choice points consult the DFS stack: within the replayed
// prefix the recorded branch is forced; past it, new nodes are pushed
// with their untried alternatives, and backtracking advances the deepest
// node that still has one.
#include "debug/modelcheck/mc.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace pspl::mc {

namespace detail {

struct SimAccess {
    static std::vector<std::function<void()>>& bodies(Sim& s)
    {
        return s.m_bodies;
    }
    static std::vector<std::function<void()>>& checks(Sim& s)
    {
        return s.m_checks;
    }
};

} // namespace detail

namespace {

constexpr int k_max_threads = 7;
constexpr int k_clock_slots = k_max_threads + 1; // slot 0 = main/setup

/// Vector clock over the main context and up to k_max_threads threads.
struct VClock {
    std::array<std::uint32_t, k_clock_slots> c{};

    void join(const VClock& o)
    {
        for (int i = 0; i < k_clock_slots; ++i) {
            c[static_cast<std::size_t>(i)]
                    = std::max(c[static_cast<std::size_t>(i)],
                               o.c[static_cast<std::size_t>(i)]);
        }
    }

    bool leq(const VClock& o) const
    {
        for (int i = 0; i < k_clock_slots; ++i) {
            if (c[static_cast<std::size_t>(i)]
                > o.c[static_cast<std::size_t>(i)]) {
                return false;
            }
        }
        return true;
    }
};

enum class OpKind : int {
    Start,
    Load,
    Store,
    Rmw,
    Cas,
    Lock,
    Unlock,
    Yield,
    Fence,
    Finish
};

struct OpDesc {
    OpKind kind = OpKind::Start;
    int loc = -1;
    std::memory_order mo = std::memory_order_relaxed;
};

bool changes_state(OpKind k)
{
    return k == OpKind::Store || k == OpKind::Rmw || k == OpKind::Cas
           || k == OpKind::Unlock;
}

bool is_mutex_op(OpKind k)
{
    return k == OpKind::Lock || k == OpKind::Unlock;
}

/// Independence relation for sleep sets: two operations are independent
/// when executing them in either order reaches the same state with the
/// same branching structure. Conservative where it must be (yields watch
/// the global store count, so they depend on every state-changing op).
bool independent(const OpDesc& a, const OpDesc& b)
{
    if (a.kind == OpKind::Start || b.kind == OpKind::Start
        || a.kind == OpKind::Finish || b.kind == OpKind::Finish) {
        return true;
    }
    if (a.kind == OpKind::Fence || b.kind == OpKind::Fence) {
        return false; // not modeled; never prune around one
    }
    if (a.kind == OpKind::Yield || b.kind == OpKind::Yield) {
        const OpDesc& other = a.kind == OpKind::Yield ? b : a;
        if (other.kind == OpKind::Yield) {
            return true;
        }
        return !changes_state(other.kind);
    }
    if (is_mutex_op(a.kind) && is_mutex_op(b.kind)) {
        return a.loc != b.loc;
    }
    if (is_mutex_op(a.kind) || is_mutex_op(b.kind)) {
        return true;
    }
    // Memory operations. Same location: only two loads commute (their
    // reads-from candidate sets are insensitive to each other's order).
    if (a.loc != b.loc) {
        return true;
    }
    return a.kind == OpKind::Load && b.kind == OpKind::Load;
}

struct StoreRec {
    std::uint64_t val = 0;
    VClock commit;   ///< writer's clock at the store
    VClock release;  ///< release clock (valid if has_release)
    bool has_release = false;
    bool sc = false;
    int slot = 0;    ///< writer's clock slot
};

struct AtomicLoc {
    const char* name = nullptr;
    std::vector<StoreRec> stores; ///< modification order; [0] is the init
    int last_sc = -1;             ///< index of newest seq_cst store
    std::array<int, k_max_threads> view{}; ///< per-thread coherence floor
};

struct PlainLoc {
    int w_slot = 0;
    std::uint32_t w_count = 0; ///< writer's own component at last write
    std::array<std::uint32_t, k_clock_slots> reads{};
};

struct MutexRec {
    int owner = -1; ///< vthread id, -1 free
    VClock rel;
    bool has_rel = false;
};

struct LogEv {
    int tid; ///< -1 = main context
    OpDesc op;
    std::uint64_t value = 0;
    int rf = -1; ///< store index read (loads)
    const char* note = nullptr;
};

struct SleepEnt {
    int tid;
    OpDesc op;
};

/// One node of the DFS choice stack. Persistent across replays; `done`
/// accumulates the fully explored branches (their transitions seed the
/// sleep sets of later siblings).
struct Node {
    bool is_read = false;
    int chosen = -1;
    std::vector<int> alts;
    // schedule nodes only:
    std::vector<SleepEnt> sleep_base;
    std::vector<SleepEnt> done;
    std::array<OpDesc, k_max_threads> op_at{};
    int prev_thread = -1;
    bool prev_enabled = false;
    int path_preempts = 0;
};

struct VThread {
    std::function<void()> body;
    OpDesc pending;
    bool finished = false;
    VClock clk;
    // Yield gating: after a yield the thread stays descheduled while the
    // global store count is unchanged; `fresh` marks the eventual-
    // visibility resume and `spent` that it already ran once fresh at
    // this count.
    std::uint64_t gate_count = ~std::uint64_t{0};
    std::uint64_t spent_count = ~std::uint64_t{0};
    bool fresh = false;
};

struct Worker {
    std::mutex m;
    std::condition_variable cv;
    bool run_token = false;
    bool has_job = false;
    bool quit = false;
    std::function<void()> job;
    std::thread th;
};

bool has_acquire(std::memory_order mo)
{
    return mo == std::memory_order_acquire || mo == std::memory_order_consume
           || mo == std::memory_order_acq_rel
           || mo == std::memory_order_seq_cst;
}

bool has_release(std::memory_order mo)
{
    return mo == std::memory_order_release || mo == std::memory_order_acq_rel
           || mo == std::memory_order_seq_cst;
}

const char* order_name(std::memory_order mo)
{
    switch (mo) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "sc";
    }
    return "?";
}

const char* site_name(sync::Site s)
{
    switch (s) {
    case sync::Site::epoch_publish: return "epoch_publish";
    case sync::Site::epoch_poll: return "epoch_poll";
    case sync::Site::epoch_chunk_done: return "epoch_chunk_done";
    case sync::Site::epoch_enter: return "epoch_enter";
    case sync::Site::epoch_leave: return "epoch_leave";
    case sync::Site::epoch_quiescent_poll: return "epoch_quiescent_poll";
    case sync::Site::deque_pop_bottom_store: return "deque_pop_bottom_store";
    case sync::Site::deque_pop_top_load: return "deque_pop_top_load";
    case sync::Site::deque_pop_cas: return "deque_pop_cas";
    case sync::Site::deque_steal_top_load: return "deque_steal_top_load";
    case sync::Site::deque_steal_bottom_load:
        return "deque_steal_bottom_load";
    case sync::Site::deque_steal_cas: return "deque_steal_cas";
    case sync::Site::chunk_count_publish: return "chunk_count_publish";
    case sync::Site::chunk_count_read: return "chunk_count_read";
    case sync::Site::chunk_link_publish: return "chunk_link_publish";
    case sync::Site::chunk_link_read: return "chunk_link_read";
    case sync::Site::site_count: break;
    }
    return "?";
}

const char* op_name(OpKind k)
{
    switch (k) {
    case OpKind::Start: return "start";
    case OpKind::Load: return "load";
    case OpKind::Store: return "store";
    case OpKind::Rmw: return "rmw";
    case OpKind::Cas: return "cas";
    case OpKind::Lock: return "lock";
    case OpKind::Unlock: return "unlock";
    case OpKind::Yield: return "yield";
    case OpKind::Fence: return "fence";
    case OpKind::Finish: return "finish";
    }
    return "?";
}

class Engine;
Engine* g_engine = nullptr;
thread_local int t_self = -1;

class Engine
{
public:
    explicit Engine(Options o)
        : opts(std::move(o))
    {
        for (const Mutation& m : opts.mutations) {
            mutation_table[static_cast<std::size_t>(m.site)]
                    = static_cast<int>(m.order);
        }
    }

    Options opts;
    Result res;
    std::uint64_t generation = 0;
    std::array<int, static_cast<std::size_t>(sync::Site::site_count)>
            mutation_table = [] {
                std::array<int,
                           static_cast<std::size_t>(sync::Site::site_count)>
                        t{};
                t.fill(-1);
                return t;
            }();

    // --- per-execution state -------------------------------------------
    std::vector<AtomicLoc> atomics;
    std::vector<PlainLoc> plains;
    std::vector<MutexRec> mutexes;
    std::vector<VThread> vt;
    int nthreads = 0;
    VClock main_clk;
    std::uint64_t store_count = 0;
    std::uint64_t steps = 0;
    std::vector<LogEv> log;
    std::uint64_t log_dropped = 0;
    bool failing = false;
    bool aborting = false;
    bool pruned_run = false;
    int last_sched = -1;
    int path_preempts = 0;

    // --- DFS state (persistent across executions) ----------------------
    std::vector<Node> stack;
    std::size_t replay_pos = 0;
    std::vector<SleepEnt> cur_sleep;

    // --- thread pool / handoff -----------------------------------------
    std::vector<std::unique_ptr<Worker>> workers;
    std::mutex sched_m;
    std::condition_variable sched_cv;
    int parked = 0;

    // ===================================================================
    // Failure reporting
    // ===================================================================

    void record_failure(const char* kind, const std::string& msg)
    {
        if (res.failed) {
            return;
        }
        res.failed = true;
        failing = true;
        res.failure_kind = kind;
        res.failure = msg + "\n" + format_trace();
    }

    [[noreturn]] void fail(const char* kind, const std::string& msg)
    {
        record_failure(kind, msg);
        throw AbortExecution{};
    }

    std::string format_trace() const
    {
        std::string out;
        char buf[256];
        if (!opts.mutations.empty()) {
            out += "active mutations:\n";
            for (const Mutation& m : opts.mutations) {
                std::snprintf(buf, sizeof buf, "  %s -> %s\n",
                              site_name(m.site), order_name(m.order));
                out += buf;
            }
        }
        std::snprintf(buf, sizeof buf,
                      "execution #%llu, trace (%llu earlier events "
                      "dropped):\n",
                      static_cast<unsigned long long>(res.executions + 1),
                      static_cast<unsigned long long>(log_dropped));
        out += buf;
        for (const LogEv& e : log) {
            const char* loc = "";
            char locbuf[64];
            if (e.op.loc >= 0
                && (e.op.kind == OpKind::Load || e.op.kind == OpKind::Store
                    || e.op.kind == OpKind::Rmw
                    || e.op.kind == OpKind::Cas)) {
                const auto& L
                        = atomics[static_cast<std::size_t>(e.op.loc)];
                if (L.name != nullptr) {
                    loc = L.name;
                } else {
                    std::snprintf(locbuf, sizeof locbuf, "atomic#%d",
                                  e.op.loc);
                    loc = locbuf;
                }
            }
            std::snprintf(buf, sizeof buf,
                          "  T%d %-6s %-18s %-7s = %llu%s%s%s\n", e.tid,
                          op_name(e.op.kind), loc, order_name(e.op.mo),
                          static_cast<unsigned long long>(e.value),
                          e.rf >= 0 ? " (stale read)" : "",
                          e.note != nullptr ? "  " : "",
                          e.note != nullptr ? e.note : "");
            out += buf;
        }
        for (int i = 0; i < nthreads; ++i) {
            const VThread& t = vt[static_cast<std::size_t>(i)];
            std::snprintf(buf, sizeof buf, "  T%d: %s (next op: %s)\n", i,
                          t.finished ? "finished" : "blocked",
                          op_name(t.pending.kind));
            out += buf;
        }
        return out;
    }

    void append_log(const LogEv& e)
    {
        if (log.size() >= 4096) {
            log.erase(log.begin(), log.begin() + 2048);
            log_dropped += 2048;
        }
        log.push_back(e);
    }

    // ===================================================================
    // Scheduler <-> worker handoff
    // ===================================================================

    void park_self()
    {
        const int tid = t_self;
        {
            std::lock_guard<std::mutex> lk(sched_m);
            ++parked;
        }
        sched_cv.notify_one();
        Worker& w = *workers[static_cast<std::size_t>(tid)];
        std::unique_lock<std::mutex> lk(w.m);
        w.cv.wait(lk, [&] { return w.run_token; });
        w.run_token = false;
    }

    /// Worker-side scheduling point: register the pending operation, park
    /// until chosen, then return so the caller performs the effect.
    ///
    /// While this thread is unwinding AbortExecution, destructors may run
    /// further visible ops (a lock_guard's unlock, typically): those must
    /// neither park (the scheduler is tearing the execution down) nor
    /// throw again (that would terminate mid-unwind). They return
    /// immediately and the effect functions early-out on `aborting`.
    void sync_op(const OpDesc& op)
    {
        if (aborting && std::uncaught_exceptions() > 0) {
            return;
        }
        VThread& t = vt[static_cast<std::size_t>(t_self)];
        t.pending = op;
        park_self();
        if (aborting) {
            throw AbortExecution{};
        }
    }

    /// Scheduler-side: wake `tid` and sleep until every thread is parked
    /// or finished again.
    void resume(int tid)
    {
        {
            std::lock_guard<std::mutex> lk(sched_m);
            --parked;
        }
        Worker& w = *workers[static_cast<std::size_t>(tid)];
        {
            std::lock_guard<std::mutex> lk(w.m);
            w.run_token = true;
        }
        w.cv.notify_one();
        std::unique_lock<std::mutex> lk(sched_m);
        sched_cv.wait(lk, [&] { return parked == nthreads; });
    }

    void finish_self()
    {
        vt[static_cast<std::size_t>(t_self)].pending = {OpKind::Finish, -1,
                                                        std::memory_order_relaxed};
        vt[static_cast<std::size_t>(t_self)].finished = true;
        {
            std::lock_guard<std::mutex> lk(sched_m);
            ++parked;
        }
        sched_cv.notify_one();
    }

    void ensure_workers(int n)
    {
        while (static_cast<int>(workers.size()) < n) {
            auto w = std::make_unique<Worker>();
            Worker* raw = w.get();
            raw->th = std::thread([raw] {
                for (;;) {
                    std::function<void()> job;
                    {
                        std::unique_lock<std::mutex> lk(raw->m);
                        raw->cv.wait(lk, [&] {
                            return raw->has_job || raw->quit;
                        });
                        if (raw->quit) {
                            return;
                        }
                        job = std::move(raw->job);
                        raw->has_job = false;
                    }
                    job();
                }
            });
            workers.push_back(std::move(w));
        }
    }

    void shutdown_pool()
    {
        for (auto& w : workers) {
            {
                std::lock_guard<std::mutex> lk(w->m);
                w->quit = true;
            }
            w->cv.notify_one();
        }
        for (auto& w : workers) {
            if (w->th.joinable()) {
                w->th.join();
            }
        }
        workers.clear();
    }

    // ===================================================================
    // Choice points
    // ===================================================================

    bool fresh_active(const VThread& t) const
    {
        return t.fresh && t.gate_count == store_count;
    }

    bool is_enabled(int tid) const
    {
        const VThread& t = vt[static_cast<std::size_t>(tid)];
        if (t.finished) {
            return false;
        }
        if (t.pending.kind == OpKind::Lock
            && mutexes[static_cast<std::size_t>(t.pending.loc)].owner
                       != -1) {
            return false;
        }
        if (t.gate_count == store_count && !t.fresh) {
            return false;
        }
        return true;
    }

    int preempt_cost(const Node& n, int tid) const
    {
        return (n.prev_thread >= 0 && n.prev_enabled
                && tid != n.prev_thread)
                       ? 1
                       : 0;
    }

    void advance_after(Node& n)
    {
        const OpDesc& cop = n.op_at[static_cast<std::size_t>(n.chosen)];
        cur_sleep.clear();
        for (const SleepEnt& e : n.sleep_base) {
            if (independent(e.op, cop)) {
                cur_sleep.push_back(e);
            }
        }
        for (const SleepEnt& e : n.done) {
            if (independent(e.op, cop)) {
                cur_sleep.push_back(e);
            }
        }
        path_preempts = n.path_preempts + preempt_cost(n, n.chosen);
        last_sched = n.chosen;
    }

    /// Pick the next thread to run. Returns -1 when this branch is
    /// sleep-set-redundant (the caller aborts the execution uncounted).
    int choose_sched(const std::vector<int>& enabled)
    {
        if (replay_pos < stack.size()) {
            Node& n = stack[replay_pos];
            if (n.is_read
                || std::find(enabled.begin(), enabled.end(), n.chosen)
                           == enabled.end()) {
                record_failure("nondeterminism",
                               "replay diverged: the litmus setup or "
                               "bodies are not deterministic");
                return -1;
            }
            ++replay_pos;
            advance_after(n);
            return n.chosen;
        }

        Node n;
        n.is_read = false;
        n.prev_thread = last_sched;
        n.prev_enabled
                = last_sched >= 0
                  && std::find(enabled.begin(), enabled.end(), last_sched)
                             != enabled.end();
        n.path_preempts = path_preempts;
        if (opts.sleep_sets) {
            n.sleep_base = cur_sleep;
        }
        for (int tid : enabled) {
            n.op_at[static_cast<std::size_t>(tid)]
                    = vt[static_cast<std::size_t>(tid)].pending;
        }

        std::vector<int> cands;
        for (int tid : enabled) {
            const bool slept
                    = std::any_of(n.sleep_base.begin(), n.sleep_base.end(),
                                  [&](const SleepEnt& e) {
                                      return e.tid == tid;
                                  });
            if (!slept) {
                cands.push_back(tid);
            }
        }
        if (cands.empty()) {
            ++res.pruned;
            pruned_run = true;
            return -1;
        }
        if (opts.preemption_bound >= 0) {
            std::vector<int> affordable;
            for (int tid : cands) {
                if (n.path_preempts + preempt_cost(n, tid)
                    <= opts.preemption_bound) {
                    affordable.push_back(tid);
                }
            }
            // A forced move past the budget beats silently wedging the
            // execution; the bound is a heuristic leg, not the proof leg.
            if (!affordable.empty()) {
                cands = std::move(affordable);
            }
        }

        int def = cands.front();
        if (std::find(cands.begin(), cands.end(), n.prev_thread)
            != cands.end()) {
            def = n.prev_thread; // stay on the same thread when possible
        }
        n.chosen = def;
        for (int tid : cands) {
            if (tid != def) {
                n.alts.push_back(tid);
            }
        }
        stack.push_back(std::move(n));
        ++replay_pos;
        advance_after(stack.back());
        return stack.back().chosen;
    }

    /// Pick the store a load reads from (worker context). `cands` is
    /// ascending; the newest store is the first branch explored.
    int choose_read(const std::vector<int>& cands)
    {
        if (cands.size() == 1) {
            return cands.front();
        }
        if (replay_pos < stack.size()) {
            Node& n = stack[replay_pos];
            if (!n.is_read
                || std::find(cands.begin(), cands.end(), n.chosen)
                           == cands.end()) {
                fail("nondeterminism",
                     "replay diverged at a reads-from choice: the litmus "
                     "setup or bodies are not deterministic");
            }
            ++replay_pos;
            return n.chosen;
        }
        Node n;
        n.is_read = true;
        n.chosen = cands.back();
        n.alts.assign(cands.begin(), cands.end() - 1);
        stack.push_back(std::move(n));
        ++replay_pos;
        return stack.back().chosen;
    }

    bool backtrack()
    {
        while (!stack.empty()) {
            Node& n = stack.back();
            if (!n.alts.empty()) {
                if (!n.is_read) {
                    n.done.push_back(
                            {n.chosen,
                             n.op_at[static_cast<std::size_t>(n.chosen)]});
                }
                n.chosen = n.alts.back();
                n.alts.pop_back();
                return true;
            }
            stack.pop_back();
        }
        return false;
    }

    // ===================================================================
    // Operation effects
    // ===================================================================

    VClock& clock_of(int tid)
    {
        return tid < 0 ? main_clk : vt[static_cast<std::size_t>(tid)].clk;
    }

    static int slot_of(int tid) { return tid + 1; }

    void tick(int tid)
    {
        VClock& c = clock_of(tid);
        ++c.c[static_cast<std::size_t>(slot_of(tid))];
    }

    void init_check(int loc)
    {
        const AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
        if (!L.stores.front().commit.leq(clock_of(t_self))) {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "T%d reached atomic %s before its initialization "
                          "was published (racy pointer / unsynchronized "
                          "creation)",
                          t_self,
                          L.name != nullptr ? L.name : "<unnamed>");
            fail("unpublished-init", buf);
        }
    }

    int do_register_atomic(std::uint64_t init, const char* name)
    {
        tick(t_self);
        AtomicLoc L;
        L.name = name;
        StoreRec s;
        s.val = init;
        s.commit = clock_of(t_self);
        s.slot = slot_of(t_self);
        L.stores.push_back(std::move(s));
        L.view.fill(0);
        atomics.push_back(std::move(L));
        return static_cast<int>(atomics.size()) - 1;
    }

    std::uint64_t do_load(int loc, std::memory_order mo)
    {
        if (t_self < 0) {
            // Main context (setup / on_exit): deterministic latest read.
            AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
            tick(-1);
            const StoreRec& s = L.stores.back();
            if (has_acquire(mo) && s.has_release) {
                main_clk.join(s.release);
            }
            return s.val;
        }
        sync_op({OpKind::Load, loc, mo});
        if (aborting) {
            return atomics[static_cast<std::size_t>(loc)].stores.back().val;
        }
        init_check(loc);
        const int tid = t_self;
        VThread& t = vt[static_cast<std::size_t>(tid)];
        AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
        tick(tid);
        const int hi = static_cast<int>(L.stores.size()) - 1;
        int idx = hi;
        if (!fresh_active(t)) {
            int lo = L.view[static_cast<std::size_t>(tid)];
            for (int i = hi; i > lo; --i) {
                if (L.stores[static_cast<std::size_t>(i)].commit.leq(
                            t.clk)) {
                    lo = i;
                    break;
                }
            }
            if (mo == std::memory_order_seq_cst && L.last_sc > lo) {
                lo = L.last_sc;
            }
            if (lo < hi) {
                std::vector<int> cands;
                cands.reserve(static_cast<std::size_t>(hi - lo) + 1);
                for (int i = lo; i <= hi; ++i) {
                    cands.push_back(i);
                }
                idx = choose_read(cands);
            }
        }
        const StoreRec& s = L.stores[static_cast<std::size_t>(idx)];
        if (L.view[static_cast<std::size_t>(tid)] < idx) {
            L.view[static_cast<std::size_t>(tid)] = idx;
        }
        if (has_acquire(mo) && s.has_release) {
            t.clk.join(s.release);
        }
        append_log({tid, {OpKind::Load, loc, mo}, s.val,
                    idx < hi ? idx : -1, nullptr});
        return s.val;
    }

    void note_store(AtomicLoc& L, StoreRec&& s, int tid)
    {
        L.stores.push_back(std::move(s));
        const int idx = static_cast<int>(L.stores.size()) - 1;
        L.view[static_cast<std::size_t>(tid)] = idx;
        if (L.stores.back().sc) {
            L.last_sc = idx;
        }
        ++store_count;
    }

    void do_store(int loc, std::uint64_t v, std::memory_order mo)
    {
        AtomicLoc* L = &atomics[static_cast<std::size_t>(loc)];
        if (t_self < 0) {
            tick(-1);
            StoreRec s;
            s.val = v;
            s.commit = main_clk;
            s.slot = 0;
            if (has_release(mo)) {
                s.release = main_clk;
                s.has_release = true;
            }
            s.sc = mo == std::memory_order_seq_cst;
            L->stores.push_back(std::move(s));
            if (L->stores.back().sc) {
                L->last_sc = static_cast<int>(L->stores.size()) - 1;
            }
            ++store_count;
            return;
        }
        sync_op({OpKind::Store, loc, mo});
        if (aborting) {
            return;
        }
        L = &atomics[static_cast<std::size_t>(loc)]; // may have reallocated
        init_check(loc);
        const int tid = t_self;
        VThread& t = vt[static_cast<std::size_t>(tid)];
        tick(tid);
        StoreRec s;
        s.val = v;
        s.commit = t.clk;
        s.slot = slot_of(tid);
        if (has_release(mo)) {
            s.release = t.clk;
            s.has_release = true;
        }
        s.sc = mo == std::memory_order_seq_cst;
        note_store(*L, std::move(s), tid);
        append_log({tid, {OpKind::Store, loc, mo}, v, -1, nullptr});
        // Accesses AFTER a publishing op must carry a strictly larger
        // clock component than the snapshot it published, or they would
        // ride along on a release edge that is sequenced before them.
        tick(tid);
    }

    std::uint64_t do_rmw(int loc, std::uint64_t (*f)(std::uint64_t, void*),
                         void* ctx, std::memory_order mo)
    {
        if (t_self < 0) {
            AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
            tick(-1);
            const StoreRec prev = L.stores.back();
            StoreRec s;
            s.val = f(prev.val, ctx);
            s.commit = main_clk;
            s.slot = 0;
            s.release = prev.release;
            s.has_release = prev.has_release;
            if (has_release(mo)) {
                s.release.join(main_clk);
                s.has_release = true;
            }
            s.sc = mo == std::memory_order_seq_cst;
            L.stores.push_back(std::move(s));
            if (L.stores.back().sc) {
                L.last_sc = static_cast<int>(L.stores.size()) - 1;
            }
            ++store_count;
            return prev.val;
        }
        sync_op({OpKind::Rmw, loc, mo});
        if (aborting) {
            return atomics[static_cast<std::size_t>(loc)].stores.back().val;
        }
        init_check(loc);
        const int tid = t_self;
        VThread& t = vt[static_cast<std::size_t>(tid)];
        AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
        tick(tid);
        // RMWs read the latest store (atomicity in modification order);
        // an acquire RMW synchronizes with it, and the new store extends
        // the release sequence it belongs to.
        const StoreRec prev = L.stores.back();
        if (has_acquire(mo) && prev.has_release) {
            t.clk.join(prev.release);
        }
        StoreRec s;
        s.val = f(prev.val, ctx);
        s.commit = t.clk;
        s.slot = slot_of(tid);
        s.release = prev.release;
        s.has_release = prev.has_release;
        if (has_release(mo)) {
            s.release.join(t.clk);
            s.has_release = true;
        }
        s.sc = mo == std::memory_order_seq_cst;
        const std::uint64_t nv = s.val;
        note_store(L, std::move(s), tid);
        append_log({tid, {OpKind::Rmw, loc, mo}, nv, -1, nullptr});
        tick(tid); // see do_store: post-op accesses outrun the snapshot
        return prev.val;
    }

    bool do_cas(int loc, std::uint64_t& expected, std::uint64_t desired,
                std::memory_order mo)
    {
        if (t_self < 0) {
            AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
            if (L.stores.back().val != expected) {
                expected = L.stores.back().val;
                return false;
            }
            std::uint64_t d = desired;
            auto set = [](std::uint64_t, void* c) {
                return *static_cast<std::uint64_t*>(c);
            };
            do_rmw(loc, +set, &d, mo);
            return true;
        }
        sync_op({OpKind::Cas, loc, mo});
        if (aborting) {
            return false;
        }
        init_check(loc);
        const int tid = t_self;
        VThread& t = vt[static_cast<std::size_t>(tid)];
        AtomicLoc& L = atomics[static_cast<std::size_t>(loc)];
        tick(tid);
        const StoreRec prev = L.stores.back();
        if (prev.val == expected) {
            if (has_acquire(mo) && prev.has_release) {
                t.clk.join(prev.release);
            }
            StoreRec s;
            s.val = desired;
            s.commit = t.clk;
            s.slot = slot_of(tid);
            s.release = prev.release;
            s.has_release = prev.has_release;
            if (has_release(mo)) {
                s.release.join(t.clk);
                s.has_release = true;
            }
            s.sc = mo == std::memory_order_seq_cst;
            note_store(L, std::move(s), tid);
            append_log({tid, {OpKind::Cas, loc, mo}, desired, -1,
                        "success"});
            tick(tid); // see do_store
            return true;
        }
        // Failed CAS: a load of the latest store.
        if (has_acquire(mo) && prev.has_release) {
            t.clk.join(prev.release);
        }
        L.view[static_cast<std::size_t>(tid)]
                = static_cast<int>(L.stores.size()) - 1;
        expected = prev.val;
        append_log({tid, {OpKind::Cas, loc, mo}, prev.val, -1, "failed"});
        return false;
    }

    int do_register_plain()
    {
        PlainLoc P;
        P.w_slot = slot_of(t_self);
        P.w_count = clock_of(t_self)
                            .c[static_cast<std::size_t>(slot_of(t_self))];
        plains.push_back(P);
        return static_cast<int>(plains.size()) - 1;
    }

    // Plain accesses are not scheduling points (they execute atomically
    // with the preceding visible op) and must not throw: a detected race
    // is recorded and aborts at the next scheduling point.
    void do_plain_read(int loc) noexcept
    {
        if (aborting) {
            return; // unwinding destructors must not record stale races
        }
        PlainLoc& P = plains[static_cast<std::size_t>(loc)];
        const VClock& clk = clock_of(t_self);
        if (P.w_count > clk.c[static_cast<std::size_t>(P.w_slot)]) {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "data race: T%d reads plain#%d concurrently "
                          "with a write by %s",
                          t_self, loc,
                          P.w_slot == 0 ? "main" : "another thread");
            record_failure("race", buf);
            return;
        }
        const int slot = slot_of(t_self);
        P.reads[static_cast<std::size_t>(slot)]
                = clk.c[static_cast<std::size_t>(slot)];
    }

    void do_plain_write(int loc) noexcept
    {
        if (aborting) {
            return;
        }
        PlainLoc& P = plains[static_cast<std::size_t>(loc)];
        const VClock& clk = clock_of(t_self);
        if (P.w_count > clk.c[static_cast<std::size_t>(P.w_slot)]) {
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "data race: T%d writes plain#%d concurrently "
                          "with another write",
                          t_self, loc);
            record_failure("race", buf);
            return;
        }
        for (int u = 0; u < k_clock_slots; ++u) {
            if (P.reads[static_cast<std::size_t>(u)]
                > clk.c[static_cast<std::size_t>(u)]) {
                char buf[128];
                std::snprintf(buf, sizeof buf,
                              "data race: T%d writes plain#%d concurrently "
                              "with a read",
                              t_self, loc);
                record_failure("race", buf);
                return;
            }
        }
        const int slot = slot_of(t_self);
        P.w_slot = slot;
        P.w_count = clk.c[static_cast<std::size_t>(slot)];
    }

    int do_register_mutex()
    {
        mutexes.emplace_back();
        return static_cast<int>(mutexes.size()) - 1;
    }

    void do_lock(int id)
    {
        if (t_self < 0) {
            return; // main context is always exclusive
        }
        sync_op({OpKind::Lock, id, std::memory_order_seq_cst});
        if (aborting) {
            return;
        }
        const int tid = t_self;
        tick(tid);
        MutexRec& m = mutexes[static_cast<std::size_t>(id)];
        m.owner = tid;
        if (m.has_rel) {
            vt[static_cast<std::size_t>(tid)].clk.join(m.rel);
        }
        append_log({tid, {OpKind::Lock, id, std::memory_order_seq_cst}, 0,
                    -1, nullptr});
    }

    void do_unlock(int id)
    {
        if (t_self < 0) {
            return;
        }
        // Unlock is deliberately NOT a scheduling point: it usually runs
        // inside std::lock_guard's destructor, which is implicitly
        // noexcept, so parking here would mean AbortExecution could be
        // thrown through a noexcept frame when the execution is torn down
        // (std::terminate). The release effect executes atomically within
        // the current slice instead -- sound, because the only way another
        // thread can observe an unlock is by acquiring the mutex, and lock
        // acquisition order is still fully explored at the blocking Lock
        // scheduling points.
        if (aborting) {
            return;
        }
        ++steps;
        const int tid = t_self;
        tick(tid);
        MutexRec& m = mutexes[static_cast<std::size_t>(id)];
        if (m.owner != tid) {
            char buf[96];
            std::snprintf(buf, sizeof buf,
                          "T%d unlocks mutex#%d it does not own", tid, id);
            fail("lock-error", buf);
        }
        m.owner = -1;
        m.rel = vt[static_cast<std::size_t>(tid)].clk;
        m.has_rel = true;
        ++store_count; // a release can unblock yielded spinners
        append_log({tid, {OpKind::Unlock, id, std::memory_order_seq_cst},
                    0, -1, nullptr});
        tick(tid); // see do_store
    }

    void do_yield()
    {
        sync_op({OpKind::Yield, -1, std::memory_order_relaxed});
        if (aborting) {
            return;
        }
        const int tid = t_self;
        VThread& t = vt[static_cast<std::size_t>(tid)];
        if (t.fresh && t.gate_count == store_count) {
            // Fresh resume made no progress: deschedule for good at this
            // state; only a new store (or deadlock detection) ends this.
            t.spent_count = store_count;
        }
        t.gate_count = store_count;
        t.fresh = false;
        append_log({tid, {OpKind::Yield, -1, std::memory_order_relaxed}, 0,
                    -1, nullptr});
    }

    [[noreturn]] void do_fence(std::memory_order mo)
    {
        fail("unsupported",
             std::string("std::atomic_thread_fence(")
                     + order_name(mo)
                     + ") is not modeled; express the protocol with "
                       "per-operation orders");
    }

    // ===================================================================
    // Execution driver
    // ===================================================================

    void abort_everyone()
    {
        aborting = true;
        for (int i = 0; i < nthreads; ++i) {
            if (!vt[static_cast<std::size_t>(i)].finished) {
                resume(i);
            }
        }
    }

    void run_one(const std::function<void(Sim&)>& setup)
    {
        ++generation;
        atomics.clear();
        plains.clear();
        mutexes.clear();
        log.clear();
        log_dropped = 0;
        store_count = 0;
        steps = 0;
        aborting = false;
        pruned_run = false;
        last_sched = -1;
        path_preempts = 0;
        replay_pos = 0;
        cur_sleep.clear();
        main_clk = VClock{};
        tick(-1);

        Sim sim;
        setup(sim);
        auto& bodies = detail::SimAccess::bodies(sim);
        nthreads = static_cast<int>(bodies.size());
        if (nthreads > k_max_threads) {
            record_failure("config",
                           "litmus registers more threads than the model "
                           "supports (max 7)");
            return;
        }
        vt.assign(static_cast<std::size_t>(nthreads), VThread{});
        for (int i = 0; i < nthreads; ++i) {
            vt[static_cast<std::size_t>(i)].body
                    = std::move(bodies[static_cast<std::size_t>(i)]);
            vt[static_cast<std::size_t>(i)].clk = main_clk;
        }
        ensure_workers(nthreads);
        parked = 0;
        for (int i = 0; i < nthreads; ++i) {
            Worker& w = *workers[static_cast<std::size_t>(i)];
            {
                std::lock_guard<std::mutex> lk(w.m);
                w.run_token = false;
                w.job = [this, i] {
                    t_self = i;
                    try {
                        sync_op({OpKind::Start, -1,
                                 std::memory_order_relaxed});
                        // Advance this thread's clock component past the
                        // fork point: accesses before the first visible op
                        // must be distinguishable from initialization.
                        tick(i);
                        vt[static_cast<std::size_t>(i)].body();
                    } catch (AbortExecution&) {
                    } catch (...) {
                        record_failure(
                                "thread-exception",
                                "a litmus thread body exited with an "
                                "uncaught exception");
                    }
                    finish_self();
                    t_self = -1;
                };
                w.has_job = true;
            }
            w.cv.notify_one();
        }
        {
            std::unique_lock<std::mutex> lk(sched_m);
            sched_cv.wait(lk, [&] { return parked == nthreads; });
        }

        schedule_loop();

        if (!res.failed && !pruned_run) {
            for (int i = 0; i < nthreads; ++i) {
                main_clk.join(vt[static_cast<std::size_t>(i)].clk);
            }
            try {
                for (const auto& check : detail::SimAccess::checks(sim)) {
                    check();
                }
            } catch (AbortExecution&) {
            }
            ++res.executions;
        }
        res.transitions += steps;
        vt.clear(); // drop body closures (and the litmus state they own)
    }

    void schedule_loop()
    {
        for (;;) {
            if (failing) {
                abort_everyone();
                return;
            }
            bool all_done = true;
            for (int i = 0; i < nthreads; ++i) {
                if (!vt[static_cast<std::size_t>(i)].finished) {
                    all_done = false;
                    break;
                }
            }
            if (all_done) {
                return;
            }
            if (++steps > opts.max_steps_per_exec) {
                record_failure("step-bound",
                               "execution exceeded the per-run step bound "
                               "(livelock, or raise "
                               "PSPL_MC_MAX_STEPS)");
                abort_everyone();
                return;
            }
            std::vector<int> enabled;
            for (int i = 0; i < nthreads; ++i) {
                if (is_enabled(i)) {
                    enabled.push_back(i);
                }
            }
            if (enabled.empty()) {
                bool granted = false;
                for (int i = 0; i < nthreads; ++i) {
                    VThread& t = vt[static_cast<std::size_t>(i)];
                    if (!t.finished && t.gate_count == store_count
                        && !t.fresh && t.spent_count != store_count) {
                        // Eventual visibility: resume the spinner once,
                        // reading the latest values deterministically.
                        t.fresh = true;
                        granted = true;
                    }
                }
                if (granted) {
                    continue;
                }
                record_failure("deadlock",
                               "no thread can make progress (all blocked "
                               "on locks or spinning on state no one will "
                               "change)");
                abort_everyone();
                return;
            }
            const int tid = choose_sched(enabled);
            if (tid < 0 || failing) {
                abort_everyone();
                return;
            }
            resume(tid);
        }
    }
};

} // namespace

// =======================================================================
// Public surface
// =======================================================================

namespace detail {

bool engine_active() noexcept
{
    return g_engine != nullptr;
}

std::uint64_t engine_generation() noexcept
{
    return g_engine != nullptr ? g_engine->generation : 0;
}

int register_atomic(std::uint64_t init, const char* name)
{
    return g_engine->do_register_atomic(init, name);
}

std::uint64_t atomic_load(int loc, std::memory_order mo)
{
    return g_engine->do_load(loc, mo);
}

void atomic_store(int loc, std::uint64_t v, std::memory_order mo)
{
    g_engine->do_store(loc, v, mo);
}

std::uint64_t atomic_rmw(int loc, std::uint64_t (*f)(std::uint64_t, void*),
                         void* ctx, std::memory_order mo)
{
    return g_engine->do_rmw(loc, f, ctx, mo);
}

bool atomic_cas(int loc, std::uint64_t& expected, std::uint64_t desired,
                std::memory_order mo)
{
    return g_engine->do_cas(loc, expected, desired, mo);
}

int register_plain(const char* /*name*/)
{
    return g_engine->do_register_plain();
}

void plain_read(int loc)
{
    g_engine->do_plain_read(loc);
}

void plain_write(int loc)
{
    g_engine->do_plain_write(loc);
}

int register_mutex()
{
    return g_engine->do_register_mutex();
}

void mutex_lock(int id)
{
    g_engine->do_lock(id);
}

void mutex_unlock(int id)
{
    g_engine->do_unlock(id);
}

void yield_point()
{
    if (t_self >= 0) {
        g_engine->do_yield();
    }
}

void fence_point(std::memory_order mo)
{
    g_engine->do_fence(mo);
}

void assert_failed(const char* expr, const char* file, int line)
{
    char buf[256];
    std::snprintf(buf, sizeof buf, "MC_ASSERT(%s) failed at %s:%d", expr,
                  file, line);
    if (g_engine != nullptr) {
        g_engine->record_failure("assert", buf);
        throw AbortExecution{};
    }
    std::fprintf(stderr, "%s (outside an exploration)\n", buf);
    std::abort();
}

std::memory_order site_order(sync::Site site, std::memory_order dflt)
{
    if (g_engine == nullptr) {
        return dflt;
    }
    const int o = g_engine->mutation_table[static_cast<std::size_t>(site)];
    return o < 0 ? dflt : static_cast<std::memory_order>(o);
}

} // namespace detail

void Sim::thread(std::function<void()> body)
{
    m_bodies.push_back(std::move(body));
}

void Sim::on_exit(std::function<void()> check)
{
    m_checks.push_back(std::move(check));
}

Options Options::from_env()
{
    Options o;
    if (const char* e = std::getenv("PSPL_MC_MAX_EXECUTIONS")) {
        o.max_executions = static_cast<std::uint64_t>(std::atoll(e));
    }
    if (const char* e = std::getenv("PSPL_MC_PREEMPTION_BOUND")) {
        o.preemption_bound = std::atoi(e);
    }
    if (const char* e = std::getenv("PSPL_MC_NO_SLEEP_SETS")) {
        o.sleep_sets = e[0] == '\0' || e[0] == '0';
    }
    if (const char* e = std::getenv("PSPL_MC_MAX_STEPS")) {
        o.max_steps_per_exec = static_cast<std::uint64_t>(std::atoll(e));
    }
    return o;
}

Result explore(const std::function<void(Sim&)>& setup, Options opts)
{
    static std::mutex g_explore_mutex;
    std::lock_guard<std::mutex> serialize(g_explore_mutex);

    Engine engine(std::move(opts));
    g_engine = &engine;
    for (;;) {
        engine.run_one(setup);
        if (engine.res.failed) {
            break;
        }
        if (engine.opts.max_executions != 0
            && engine.res.executions >= engine.opts.max_executions) {
            engine.res.hit_execution_bound = true;
            break;
        }
        if (!engine.backtrack()) {
            break;
        }
    }
    engine.shutdown_pool();
    g_engine = nullptr;
    return engine.res;
}

} // namespace pspl::mc
