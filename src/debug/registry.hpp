// Allocation registry: View lifetime tracking for use-after-free detection.
//
// Every owning View registers its allocation [base, base + bytes) with a
// label; the shared_ptr deleter releases it.  Released ranges are kept as
// tombstones (bounded ring), so an access through a dangling alias -- an
// unmanaged View wrapping data() of an owner that has since died, or a raw
// pointer cached across a reallocation -- is flagged with the label of the
// freed allocation it points into.  Registering a new allocation erases any
// tombstone it overlaps, so allocator address reuse cannot produce false
// positives for live Views.
//
// The registry also tracks *scratch* ranges: per-thread staging buffers
// (e.g. the SIMD pack workspace) that are legitimately rewritten by many
// iterations of one parallel region and must be exempt from write-conflict
// detection.
//
// All functions are thread-safe; reads (the per-access check_live path) take
// a shared lock and short-circuit on an atomic tombstone counter, so the
// checked-build overhead stays bounded when nothing has been freed yet.
#pragma once

#include "debug/check.hpp"

#include <cstddef>

namespace pspl::debug {

void register_allocation(const void* base, std::size_t bytes,
                         const char* label);
void release_allocation(const void* base);

/// Abort if `p` points into a freed (tombstoned) allocation.  Unknown
/// addresses (stack buffers, foreign heap memory wrapped by unmanaged
/// Views) pass silently -- the registry only rules on memory it has seen.
void check_live(const void* p, const char* accessor_label);

/// Exempt [base, base + bytes) from write-conflict detection.
void mark_scratch(const void* base, std::size_t bytes);
void unmark_scratch(const void* base);
bool in_scratch(const void* p);

/// RAII scratch marker for per-thread staging workspaces.
class ScratchGuard
{
public:
    ScratchGuard(const void* base, std::size_t bytes) : m_base(base)
    {
        if constexpr (check_enabled) {
            mark_scratch(base, bytes);
        }
    }
    ~ScratchGuard()
    {
        if constexpr (check_enabled) {
            unmark_scratch(m_base);
        }
    }
    ScratchGuard(const ScratchGuard&) = delete;
    ScratchGuard& operator=(const ScratchGuard&) = delete;

private:
    [[maybe_unused]] const void* m_base;
};

/// Counters for introspection and tests.
std::size_t live_allocation_count();
std::size_t tombstone_count();

} // namespace pspl::debug
