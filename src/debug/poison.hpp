// NaN poisoning of fresh View allocations.
//
// When poisoning is active, every freshly allocated float/double View is
// filled with a recognizable quiet-NaN payload instead of relying on its
// zero-initialization.  An uninitialized read then surfaces as NaN in the
// spline chain (instead of a plausible-looking zero), and choke points that
// scan their inputs (deep_copy) abort with the source label when they see
// the payload.
//
// Poisoning is opt-in at runtime even in checked builds -- zero-initialized
// storage is part of the View contract and tests legitimately rely on it --
// via PSPL_CHECK_POISON=1 in the environment or debug::set_poison(true).
#pragma once

#include "debug/check.hpp"

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace pspl::debug {

namespace detail {
inline bool& poison_flag()
{
    static bool flag = []() {
        const char* env = std::getenv("PSPL_CHECK_POISON");
        return env != nullptr && env[0] == '1';
    }();
    return flag;
}
} // namespace detail

inline bool poison_enabled() { return check_enabled && detail::poison_flag(); }
inline void set_poison(bool on) { detail::poison_flag() = on; }

/// Quiet NaNs with an ASCII "PS"-tagged payload, distinguishable from NaNs
/// produced by arithmetic (those have payload 0 / sign-dependent patterns).
inline constexpr std::uint64_t poison_bits_f64 = 0x7FF8'5053'5053'5053ull;
inline constexpr std::uint32_t poison_bits_f32 = 0x7FC5'0535u;

template <class T>
inline constexpr bool poisonable_v =
        std::is_same_v<T, double> || std::is_same_v<T, float>;

template <class T>
T poison_value()
{
    static_assert(poisonable_v<T>);
    T v;
    if constexpr (std::is_same_v<T, double>) {
        std::memcpy(&v, &poison_bits_f64, sizeof v);
    } else {
        std::memcpy(&v, &poison_bits_f32, sizeof v);
    }
    return v;
}

/// Bit-exact test for the poison payload (NaN compares defeat ==).
template <class T>
bool is_poison(const T& x)
{
    if constexpr (std::is_same_v<T, double>) {
        std::uint64_t bits;
        std::memcpy(&bits, &x, sizeof bits);
        return bits == poison_bits_f64;
    } else if constexpr (std::is_same_v<T, float>) {
        std::uint32_t bits;
        std::memcpy(&bits, &x, sizeof bits);
        return bits == poison_bits_f32;
    } else {
        return false;
    }
}

/// Overwrite `n` fresh elements with the poison payload; no-op for types
/// that carry no payload encoding or when poisoning is off.
template <class T>
void poison_fill([[maybe_unused]] T* p, [[maybe_unused]] std::size_t n)
{
    if constexpr (poisonable_v<T>) {
        if (!poison_enabled()) {
            return;
        }
        const T v = poison_value<T>();
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = v;
        }
    }
}

} // namespace pspl::debug
