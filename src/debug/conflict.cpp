#include "debug/conflict.hpp"

#include "debug/registry.hpp"

#include "parallel/sync_policy.hpp"
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pspl::debug {

namespace {

constexpr std::size_t max_snapshot_bytes = 16;

// Shadow entry for one touched element address.
struct Touch {
    std::size_t first_iter = 0;
    std::size_t second_iter = 0;
    unsigned bytes = 0;
    bool shared = false;
    unsigned char snapshot[max_snapshot_bytes] = {};
    std::string label; // only filled once shared (few entries pay for it)
};

// Shadow maps can reach one entry per element a kernel touches; past this
// cap the detector stops recording for the region and reports that it
// saturated rather than exhausting memory ("no silent caps").
constexpr std::size_t max_entries = std::size_t{1} << 22;

struct Detector {
    std::mutex mutex;
    std::unordered_map<const void*, Touch> touched;
    std::string label;
    bool saturated = false;
};

Detector& detector()
{
    static Detector d;
    return d;
}

pspl::sync::atomic<int> g_depth{0};
pspl::sync::atomic<bool> g_active{false};

thread_local std::size_t t_iteration = 0;

} // namespace

bool region_begin(const char* label)
{
    if (g_depth.fetch_add(1, pspl::sync::acq_rel) != 0) {
        return false; // nested dispatch: outer region keeps ownership
    }
    auto& d = detector();
    std::lock_guard lock(d.mutex);
    d.touched.clear();
    d.label = label != nullptr ? label : "";
    d.saturated = false;
    g_active.store(true, pspl::sync::release);
    return true;
}

void region_end(bool owner)
{
    if (!owner) {
        g_depth.fetch_sub(1, pspl::sync::acq_rel);
        return;
    }
    auto& d = detector();
    {
        std::lock_guard lock(d.mutex);
        g_active.store(false, pspl::sync::release);
        if (d.saturated) {
            std::fprintf(stderr,
                         "pspl: warning: write-conflict detector saturated "
                         "in region '%s' (> %zu touched elements); coverage "
                         "for this region is partial\n",
                         d.label.c_str(), max_entries);
        }
        for (const auto& [addr, t] : d.touched) {
            if (!t.shared) {
                continue;
            }
            if (std::memcmp(t.snapshot, addr, t.bytes) != 0) {
                fail("write conflict in region '%s': view '%s' element at "
                     "%p is written by two iterations (first touched by "
                     "iteration %zu, again by iteration %zu, and its value "
                     "changed before the region ended)",
                     d.label.c_str(), t.label.c_str(), addr, t.first_iter,
                     t.second_iter);
            }
        }
        d.touched.clear();
    }
    g_depth.fetch_sub(1, pspl::sync::acq_rel);
}

void set_iteration(std::size_t iter)
{
    t_iteration = iter;
}

bool region_active()
{
    return g_active.load(pspl::sync::acquire);
}

void record_access(const void* p, std::size_t bytes, const char* label)
{
    if (!g_active.load(pspl::sync::acquire)) {
        return;
    }
    if (in_scratch(p)) {
        return;
    }
    auto& d = detector();
    std::lock_guard lock(d.mutex);
    if (!g_active.load(pspl::sync::acquire)) {
        return; // region closed while we waited on the lock
    }
    if (d.saturated) {
        return;
    }
    if (d.touched.size() >= max_entries) {
        d.saturated = true;
        return;
    }
    auto [it, inserted] = d.touched.try_emplace(p);
    Touch& t = it->second;
    if (inserted) {
        t.first_iter = t_iteration;
        t.bytes = static_cast<unsigned>(
                bytes < max_snapshot_bytes ? bytes : max_snapshot_bytes);
        return;
    }
    if (t.shared || t.first_iter == t_iteration) {
        return;
    }
    // Second distinct iteration touching this element: snapshot now (before
    // this iteration's store lands) and compare at region end.
    t.shared = true;
    t.second_iter = t_iteration;
    t.label = label != nullptr ? label : "";
    std::memcpy(t.snapshot, p, t.bytes);
}

} // namespace pspl::debug
