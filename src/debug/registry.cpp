#include "debug/registry.hpp"

#include "parallel/sync_policy.hpp"
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace pspl::debug {

namespace {

struct Range {
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
    std::string label;

    bool contains(std::uintptr_t p) const
    {
        return p >= base && p < base + bytes;
    }
};

// Tombstones are bounded: dead ranges only matter while a stale alias might
// still be around, and an unbounded list would slow every access forever.
constexpr std::size_t max_tombstones = 512;

struct Registry {
    std::shared_mutex mutex;
    std::map<std::uintptr_t, Range> live;   // keyed by base address
    std::deque<Range> tombstones;           // most recent first
};

Registry& registry()
{
    static Registry r;
    return r;
}

// Fast-path gate: check_live only takes the lock while something has
// actually been freed since the last overlap-erase.
pspl::sync::atomic<std::size_t> g_tombstone_count{0};

struct ScratchRanges {
    std::shared_mutex mutex;
    std::map<std::uintptr_t, std::size_t> ranges; // base -> bytes
};

ScratchRanges& scratch()
{
    static ScratchRanges s;
    return s;
}

pspl::sync::atomic<std::size_t> g_scratch_count{0};

std::uintptr_t addr(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p);
}

/// First element of `m` whose range could contain `p` (ranges keyed by
/// base, non-overlapping): the greatest base <= p.
template <class Map>
typename Map::const_iterator find_covering(const Map& m, std::uintptr_t p)
{
    auto it = m.upper_bound(p);
    if (it == m.begin()) {
        return m.end();
    }
    return --it;
}

} // namespace

void register_allocation(const void* base, std::size_t bytes,
                         const char* label)
{
    auto& r = registry();
    std::unique_lock lock(r.mutex);
    // Allocator reuse: a new allocation overlapping a tombstone proves the
    // tombstoned range is gone for good -- drop it or it would misfire.
    const std::uintptr_t b = addr(base);
    for (auto it = r.tombstones.begin(); it != r.tombstones.end();) {
        if (it->base < b + bytes && b < it->base + it->bytes) {
            it = r.tombstones.erase(it);
        } else {
            ++it;
        }
    }
    g_tombstone_count.store(r.tombstones.size(), pspl::sync::relaxed);
    r.live[b] = Range{b, bytes, label != nullptr ? label : ""};
}

void release_allocation(const void* base)
{
    auto& r = registry();
    std::unique_lock lock(r.mutex);
    auto it = r.live.find(addr(base));
    if (it == r.live.end()) {
        return;
    }
    r.tombstones.push_front(std::move(it->second));
    r.live.erase(it);
    if (r.tombstones.size() > max_tombstones) {
        r.tombstones.pop_back();
    }
    g_tombstone_count.store(r.tombstones.size(), pspl::sync::relaxed);
}

void check_live(const void* p, const char* accessor_label)
{
    if (g_tombstone_count.load(pspl::sync::relaxed) == 0) {
        return;
    }
    auto& r = registry();
    std::shared_lock lock(r.mutex);
    const std::uintptr_t a = addr(p);
    // Live wins: a reused address belongs to its current owner.
    auto live_it = find_covering(r.live, a);
    if (live_it != r.live.end() && live_it->second.contains(a)) {
        return;
    }
    for (const Range& t : r.tombstones) {
        if (t.contains(a)) {
            fail("use-after-free: access through view '%s' hits freed "
                 "allocation '%s' [base %p, %zu bytes]",
                 accessor_label != nullptr ? accessor_label : "?",
                 t.label.c_str(), reinterpret_cast<const void*>(t.base),
                 t.bytes);
        }
    }
}

void mark_scratch(const void* base, std::size_t bytes)
{
    auto& s = scratch();
    std::unique_lock lock(s.mutex);
    s.ranges[addr(base)] = bytes;
    g_scratch_count.store(s.ranges.size(), pspl::sync::relaxed);
}

void unmark_scratch(const void* base)
{
    auto& s = scratch();
    std::unique_lock lock(s.mutex);
    s.ranges.erase(addr(base));
    g_scratch_count.store(s.ranges.size(), pspl::sync::relaxed);
}

bool in_scratch(const void* p)
{
    if (g_scratch_count.load(pspl::sync::relaxed) == 0) {
        return false;
    }
    auto& s = scratch();
    std::shared_lock lock(s.mutex);
    auto it = find_covering(s.ranges, addr(p));
    return it != s.ranges.end() && addr(p) < it->first + it->second;
}

std::size_t live_allocation_count()
{
    auto& r = registry();
    std::shared_lock lock(r.mutex);
    return r.live.size();
}

std::size_t tombstone_count()
{
    return g_tombstone_count.load(pspl::sync::relaxed);
}

} // namespace pspl::debug
