// Write-conflict detector for parallel regions.
//
// parallel_for / parallel_reduce / for_each_batch_simd open a *region*; the
// dispatcher tags each functor invocation with its iteration index, and
// every View element access inside the region records its address.  When
// two distinct iteration indices touch the same element the detector
// snapshots the element's bytes; at region end any snapshotted element
// whose bytes changed was written by at least one of the touching
// iterations -- the cross-batch write conflict that fusing kernels over the
// batch index can introduce -- and the region aborts with both iteration
// indices and the view label.
//
// Genuinely shared *read-only* data (the factorized matrix every batch
// entry consumes) is naturally tolerated: its bytes never change, so the
// snapshot comparison stays silent.  Per-thread staging scratch is exempted
// via registry::mark_scratch, since reuse of a staging buffer by successive
// chunks on one thread is not a race.  Limits (documented in
// docs/DEBUGGING.md): a conflict where the second writer stores the same
// bytes, or a write-then-read pair whose value is stable afterwards, is not
// flagged -- the CI TSan job cross-validates this detector exactly because
// it is a lightweight single-pass shadow, not a full happens-before engine.
#pragma once

#include "debug/check.hpp"

#include <cstddef>

namespace pspl::debug {

/// Open/close a conflict-detection region.  Regions nest: only the
/// outermost dispatcher owns detection; inner dispatches (a parallel_for
/// issued from inside a kernel) keep attributing accesses to the outer
/// iteration.
bool region_begin(const char* label);
void region_end(bool owner);

/// Iteration tag for the current thread (owner dispatcher only).
void set_iteration(std::size_t iter);

/// Record one element access at `p` of `bytes` bytes from view `label`.
/// Called by View::operator() (via instrument.hpp) when a region is open.
void record_access(const void* p, std::size_t bytes, const char* label);

bool region_active();

/// RAII wrapper used by the dispatch layer.
class RegionGuard
{
public:
    explicit RegionGuard(const char* label)
    {
        if constexpr (check_enabled) {
            m_owner = region_begin(label);
        }
    }
    ~RegionGuard()
    {
        if constexpr (check_enabled) {
            region_end(m_owner);
        }
    }
    RegionGuard(const RegionGuard&) = delete;
    RegionGuard& operator=(const RegionGuard&) = delete;

    bool owner() const { return m_owner; }

private:
    bool m_owner = false;
};

} // namespace pspl::debug
