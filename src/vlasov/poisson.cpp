#include "vlasov/poisson.hpp"

#include "parallel/macros.hpp"

#include <algorithm>
#include <numeric>

namespace pspl::vlasov {

Poisson1DPeriodic::Poisson1DPeriodic(const bsplines::BSplineBasis& basis_x)
    : m_length(basis_x.length())
{
    PSPL_EXPECT(basis_x.is_periodic(),
                "Poisson1DPeriodic: basis must be periodic");
    const std::size_t n = basis_x.nbasis();
    const auto pts = basis_x.interpolation_points();

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return pts[a] < pts[b]; });

    m_order = View1D<int>("poisson_order", n);
    m_dx = View1D<double>("poisson_dx", n);
    for (std::size_t s = 0; s < n; ++s) {
        m_order(s) = static_cast<int>(order[s]);
        const double here = pts[order[s]];
        const double next = s + 1 < n ? pts[order[s + 1]]
                                      : pts[order[0]] + m_length;
        m_dx(s) = next - here;
    }
}

void Poisson1DPeriodic::solve(const View1D<double>& rho,
                              const View1D<double>& efield) const
{
    const std::size_t nn = n();
    PSPL_EXPECT(rho.extent(0) == nn && efield.extent(0) == nn,
                "Poisson1DPeriodic: extent mismatch");

    // Mean charge (dx-weighted so non-uniform point spacing is handled).
    double mean = 0.0;
    for (std::size_t s = 0; s < nn; ++s) {
        mean += rho(static_cast<std::size_t>(m_order(s))) * m_dx(s);
    }
    mean /= m_length;

    // Cumulative trapezoid integral in sorted order (spectrally accurate on
    // periodic data), then remove the mean of E.
    double acc = 0.0;
    efield(static_cast<std::size_t>(m_order(0))) = 0.0;
    for (std::size_t s = 0; s + 1 < nn; ++s) {
        const auto i = static_cast<std::size_t>(m_order(s));
        const auto inext = static_cast<std::size_t>(m_order(s + 1));
        acc += 0.5 * ((rho(i) - mean) + (rho(inext) - mean)) * m_dx(s);
        efield(inext) = acc;
    }
    double esum = 0.0;
    for (std::size_t s = 0; s < nn; ++s) {
        const auto i = static_cast<std::size_t>(m_order(s));
        esum += efield(i) * m_dx(s);
    }
    esum /= m_length;
    for (std::size_t s = 0; s < nn; ++s) {
        const auto i = static_cast<std::size_t>(m_order(s));
        efield(i) -= esum;
    }
}

double Poisson1DPeriodic::field_energy(const View1D<double>& efield) const
{
    double e2 = 0.0;
    for (std::size_t s = 0; s < n(); ++s) {
        const auto i = static_cast<std::size_t>(m_order(s));
        e2 += efield(i) * efield(i) * m_dx(s);
    }
    return 0.5 * e2;
}

} // namespace pspl::vlasov
