// 1D1V Vlasov-Poisson solver by Strang splitting -- the paper's motivating
// physics (GYSELA solves 5D Vlasov + 3D Poisson; this is the standard
// reduced benchmark system) built entirely from the library's batched
// spline advections:
//
//     df/dt + v df/dx + E(x,t) df/dv = 0,   dE/dx = rho - <rho>,
//     rho(x) = integral f dv.
//
// One step: x half step (batch over v), field solve, v full step (batch
// over x), x half step. Diagnostics (mass, momentum, kinetic/field energy,
// L2 norm) use the spline quadrature weights.
#pragma once

#include "advection/semi_lagrangian.hpp"
#include "advection/transpose.hpp"
#include "bsplines/basis.hpp"
#include "fft/spectral_poisson.hpp"
#include "parallel/view.hpp"
#include "vlasov/poisson.hpp"

#include <cstddef>
#include <optional>

namespace pspl::vlasov {

struct Diagnostics {
    double time = 0.0;
    double mass = 0.0;
    double momentum = 0.0;
    double kinetic_energy = 0.0;
    double field_energy = 0.0;
    double l2_norm = 0.0;
};

class VlasovPoisson1D1V
{
public:
    struct Config {
        core::BuilderVersion version = core::BuilderVersion::FusedSpmv;
        bool fuse_transpose = false;
        /// Use the FFT-based field solve instead of the quadrature one
        /// (uniform x grids only; GYSELA's Poisson solver is FFT-based).
        bool spectral_poisson = false;
    };

    /// Periodic basis in x; periodic basis in v spanning [-vmax, vmax]
    /// (the distribution must effectively vanish at the v boundary).
    VlasovPoisson1D1V(bsplines::BSplineBasis basis_x,
                      bsplines::BSplineBasis basis_v, double dt);
    VlasovPoisson1D1V(bsplines::BSplineBasis basis_x,
                      bsplines::BSplineBasis basis_v, double dt,
                      Config config);

    std::size_t nx() const { return m_adv_x->nx(); }
    std::size_t nv() const { return m_adv_v->nx(); }
    const View1D<double>& points_x() const { return m_adv_x->points(); }
    const View1D<double>& points_v() const { return m_adv_v->points(); }
    double dt() const { return m_dt; }
    double time() const { return m_time; }

    /// Distribution function f(j, i) at (v_j, x_i), x contiguous. Mutable
    /// access for setting initial conditions.
    const View2D<double>& f() const { return m_f; }

    /// Electric field at the x points (updated every step).
    const View1D<double>& efield() const { return m_efield; }

    /// Initialize f(v, x) from a callable f0(x, v) and reset time.
    template <class F0>
    void initialize(F0&& f0)
    {
        for (std::size_t j = 0; j < nv(); ++j) {
            for (std::size_t i = 0; i < nx(); ++i) {
                m_f(j, i) = f0(points_x()(i), points_v()(j));
            }
        }
        m_time = 0.0;
        update_field();
    }

    /// Advance one Strang-split step.
    void step();

    /// Advance `nsteps`; returns the diagnostics after the last step.
    Diagnostics run(std::size_t nsteps);

    /// Current integral diagnostics.
    Diagnostics diagnostics() const;

private:
    void update_field();

    double m_dt = 0.0;
    double m_time = 0.0;
    std::optional<advection::BatchedAdvection1D> m_adv_x; ///< dt/2, batch v
    std::optional<advection::BatchedAdvection1D> m_adv_v; ///< dt, batch x
    Poisson1DPeriodic m_poisson;
    std::optional<fft::SpectralPoisson1D> m_spectral; ///< when configured
    View2D<double> m_f;      ///< (nv, nx)
    View2D<double> m_ft;     ///< (nx, nv) scratch for the v advection
    View1D<double> m_efield; ///< shared with m_adv_v's velocity view
    View1D<double> m_rho;
    View1D<double> m_wv;     ///< v-quadrature weights (basis integrals)
    View1D<double> m_wx;     ///< x-quadrature weights
};

} // namespace pspl::vlasov
