#include "vlasov/vlasov_poisson.hpp"

#include "parallel/macros.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace pspl::vlasov {

namespace {

/// Per-point quadrature widths (periodic midpoint rule): the gap to the
/// next point in sorted order. Equals length/n on uniform grids.
View1D<double> point_weights(const bsplines::BSplineBasis& basis)
{
    const std::size_t n = basis.nbasis();
    const auto pts = basis.interpolation_points();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return pts[a] < pts[b]; });
    View1D<double> w("point_weights", n);
    for (std::size_t s = 0; s < n; ++s) {
        const double here = pts[order[s]];
        const double next = s + 1 < n ? pts[order[s + 1]]
                                      : pts[order[0]] + basis.length();
        w(order[s]) = next - here;
    }
    return w;
}

} // namespace

VlasovPoisson1D1V::VlasovPoisson1D1V(bsplines::BSplineBasis basis_x,
                                     bsplines::BSplineBasis basis_v,
                                     double dt)
    : VlasovPoisson1D1V(std::move(basis_x), std::move(basis_v), dt, Config())
{
}

VlasovPoisson1D1V::VlasovPoisson1D1V(bsplines::BSplineBasis basis_x,
                                     bsplines::BSplineBasis basis_v,
                                     double dt, Config config)
    : m_dt(dt), m_poisson(basis_x)
{
    PSPL_EXPECT(basis_x.is_periodic() && basis_v.is_periodic(),
                "VlasovPoisson1D1V: both bases must be periodic");
    advection::BatchedAdvection1D::Config cfg1;
    cfg1.version = config.version;
    cfg1.fuse_transpose = config.fuse_transpose;

    const std::size_t nx_ = basis_x.nbasis();
    const std::size_t nv_ = basis_v.nbasis();

    // x advection: speed v_j per row (fixed); build it first to read the
    // v interpolation points.
    View1D<double> vx("vlasov_vx", nv_);
    m_adv_x.emplace(basis_x, vx, 0.5 * dt, cfg1);
    m_efield = View1D<double>("vlasov_efield", nx_);
    m_adv_v.emplace(basis_v, m_efield, dt, cfg1);
    // The acceleration term is -E df/dv in electron normalization; the
    // advection speed per x column is -E(x_i). We store E and negate when
    // updating the shared velocity view.
    for (std::size_t j = 0; j < nv_; ++j) {
        vx(j) = m_adv_v->points()(j);
    }

    if (config.spectral_poisson) {
        m_spectral.emplace(basis_x);
    }
    m_f = View2D<double>("vlasov_f", nv_, nx_);
    m_ft = View2D<double>("vlasov_ft", nx_, nv_);
    m_rho = View1D<double>("vlasov_rho", nx_);
    m_wx = point_weights(basis_x);
    m_wv = point_weights(basis_v);
}

void VlasovPoisson1D1V::update_field()
{
    const std::size_t nx_ = nx();
    const std::size_t nv_ = nv();
    for (std::size_t i = 0; i < nx_; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < nv_; ++j) {
            acc += m_f(j, i) * m_wv(j);
        }
        m_rho(i) = acc;
    }
    if (m_spectral) {
        m_spectral->solve(m_rho, m_efield);
    } else {
        m_poisson.solve(m_rho, m_efield);
    }
}

void VlasovPoisson1D1V::step()
{
    m_adv_x->step(m_f); // x half step
    update_field();
    // v advection speed is the electric field: dv/dt = E(x) for electrons
    // with q/m = 1 normalization (sign folded into the initial condition
    // convention; Landau/two-stream results are sign-symmetric).
    advection::transpose("pspl::vlasov::transpose_fwd", m_f, m_ft);
    m_adv_v->step(m_ft);
    advection::transpose("pspl::vlasov::transpose_bwd", m_ft, m_f);
    m_adv_x->step(m_f); // x half step
    m_time += m_dt;
}

Diagnostics VlasovPoisson1D1V::run(std::size_t nsteps)
{
    for (std::size_t s = 0; s < nsteps; ++s) {
        step();
    }
    return diagnostics();
}

Diagnostics VlasovPoisson1D1V::diagnostics() const
{
    Diagnostics d;
    d.time = m_time;
    const std::size_t nx_ = nx();
    const std::size_t nv_ = nv();
    for (std::size_t j = 0; j < nv_; ++j) {
        const double v = m_adv_v->points()(j);
        const double wv = m_wv(j);
        for (std::size_t i = 0; i < nx_; ++i) {
            const double w = wv * m_wx(i);
            const double fv = m_f(j, i);
            d.mass += fv * w;
            d.momentum += v * fv * w;
            d.kinetic_energy += 0.5 * v * v * fv * w;
            d.l2_norm += fv * fv * w;
        }
    }
    d.l2_norm = std::sqrt(d.l2_norm);
    d.field_energy = m_poisson.field_energy(m_efield);
    return d;
}

} // namespace pspl::vlasov
