// 1-D periodic Poisson/electric-field solver for Vlasov-Poisson systems:
//     dE/dx = rho(x) - <rho>,   <E> = 0.
// rho is given at the spline interpolation points of a periodic basis
// (which are a cyclic rotation of sorted order for Greville points); the
// field is integrated in sorted order and returned at the same points.
//
// This is the Poisson substrate of the paper's motivating application
// ("solving 5D Vlasov and 3D Poisson equations"); a 1-D field solve
// suffices for the 1D1V benchmarks.
#pragma once

#include "bsplines/basis.hpp"
#include "parallel/view.hpp"

#include <cstddef>
#include <vector>

namespace pspl::vlasov {

class Poisson1DPeriodic
{
public:
    Poisson1DPeriodic() = default;

    explicit Poisson1DPeriodic(const bsplines::BSplineBasis& basis_x);

    std::size_t n() const { return m_dx.is_allocated() ? m_dx.extent(0) : 0; }

    /// Solve dE/dx = rho - <rho> with zero-mean E. `rho` and `efield` are
    /// indexed like the basis interpolation points (rho(i) at point i).
    void solve(const View1D<double>& rho, const View1D<double>& efield) const;

    /// 0.5 * integral E^2 dx (midpoint rule on the sorted grid).
    double field_energy(const View1D<double>& efield) const;

private:
    View1D<int> m_order;  ///< sorted-order permutation of the points
    View1D<double> m_dx;  ///< cell width assigned to each sorted point
    double m_length = 0.0;
};

} // namespace pspl::vlasov
