// Solver configuration and per-column convergence results for the iterative
// (mini-Ginkgo) path. The stopping rule matches the paper (§III-B):
// relative residual reduction ||A x - b|| / ||b|| < tolerance (1e-15).
#pragma once

#include <cstddef>

namespace pspl::iterative {

struct Config {
    double tolerance = 1e-15;       ///< relative residual target
    std::size_t max_iterations = 1000;
    std::size_t restart = 30;       ///< GMRES restart length
};

struct ColumnResult {
    std::size_t iterations = 0;
    double relative_residual = 0.0;
    bool converged = false;
};

/// Aggregate over the columns of one multi-RHS solve.
struct SolveStats {
    std::size_t max_iterations = 0;
    std::size_t total_iterations = 0;
    double worst_residual = 0.0;
    std::size_t columns = 0;
    bool all_converged = true;

    void absorb(const ColumnResult& r)
    {
        if (r.iterations > max_iterations) {
            max_iterations = r.iterations;
        }
        total_iterations += r.iterations;
        if (r.relative_residual > worst_residual) {
            worst_residual = r.relative_residual;
        }
        ++columns;
        all_converged = all_converged && r.converged;
    }

    void merge(const SolveStats& o)
    {
        if (o.max_iterations > max_iterations) {
            max_iterations = o.max_iterations;
        }
        total_iterations += o.total_iterations;
        if (o.worst_residual > worst_residual) {
            worst_residual = o.worst_residual;
        }
        columns += o.columns;
        all_converged = all_converged && o.all_converged;
    }

    double mean_iterations() const
    {
        return columns ? static_cast<double>(total_iterations)
                                 / static_cast<double>(columns)
                       : 0.0;
    }
};

} // namespace pspl::iterative
