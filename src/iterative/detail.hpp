// Shared serial vector kernels for the per-column iterative solvers.
#pragma once

#include "sparse/csr.hpp"

#include <cmath>
#include <cstddef>
#include <span>

namespace pspl::iterative::detail {

inline void csr_apply(const sparse::Csr& a, const double* PSPL_RESTRICT x,
                      double* PSPL_RESTRICT y)
{
    const auto& row_ptr = a.row_ptr();
    const auto& col_idx = a.col_idx();
    const auto& values = a.values();
    const std::size_t n = a.nrows();
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            const auto ks = static_cast<std::size_t>(k);
            acc += values(ks) * x[static_cast<std::size_t>(col_idx(ks))];
        }
        y[i] = acc;
    }
}

inline double dot(std::span<const double> a, std::span<const double> b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc += a[i] * b[i];
    }
    return acc;
}

inline double norm2(std::span<const double> a)
{
    return std::sqrt(dot(a, a));
}

inline void axpy(double alpha, std::span<const double> x, std::span<double> y)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] += alpha * x[i];
    }
}

/// y = x + beta * y
inline void xpby(std::span<const double> x, double beta, std::span<double> y)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        y[i] = x[i] + beta * y[i];
    }
}

inline void copy(std::span<const double> src, std::span<double> dst)
{
    for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = src[i];
    }
}

inline void scale(double alpha, std::span<double> x)
{
    for (double& v : x) {
        v *= alpha;
    }
}

} // namespace pspl::iterative::detail
