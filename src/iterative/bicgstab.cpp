#include "iterative/bicgstab.hpp"

#include "iterative/detail.hpp"

#include <cmath>
#include <vector>

namespace pspl::iterative {

ColumnResult bicgstab_solve(const sparse::Csr& a, const Preconditioner* precond,
                            std::span<const double> b, std::span<double> x,
                            const Config& cfg)
{
    using namespace detail;
    const std::size_t n = a.nrows();
    std::vector<double> r(n);
    std::vector<double> rhat(n);
    std::vector<double> p(n, 0.0);
    std::vector<double> v(n, 0.0);
    std::vector<double> phat(n);
    std::vector<double> s(n);
    std::vector<double> shat(n);
    std::vector<double> t(n);

    const double bnorm = norm2(b);
    ColumnResult result;
    if (bnorm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = 0.0;
        }
        result.converged = true;
        return result;
    }

    csr_apply(a, x.data(), r.data());
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - r[i];
    }
    copy(r, rhat);

    double relres = norm2(r) / bnorm;
    if (relres < cfg.tolerance) {
        result.converged = true;
        result.relative_residual = relres;
        return result;
    }

    double rho = 1.0;
    double alpha = 1.0;
    double omega = 1.0;

    for (std::size_t it = 1; it <= cfg.max_iterations; ++it) {
        result.iterations = it;
        const double rho_new = dot(rhat, r);
        if (rho_new == 0.0 || omega == 0.0) {
            break; // breakdown
        }
        const double beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta * (p - omega * v)
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        if (precond != nullptr) {
            precond->apply(p, phat);
        } else {
            copy(p, phat);
        }
        csr_apply(a, phat.data(), v.data());
        const double rhat_v = dot(rhat, v);
        if (rhat_v == 0.0) {
            break; // breakdown
        }
        alpha = rho / rhat_v;
        for (std::size_t i = 0; i < n; ++i) {
            s[i] = r[i] - alpha * v[i];
        }
        relres = norm2(s) / bnorm;
        if (relres < cfg.tolerance) {
            axpy(alpha, phat, x);
            result.converged = true;
            copy(s, r);
            break;
        }
        if (precond != nullptr) {
            precond->apply(s, shat);
        } else {
            copy(s, shat);
        }
        csr_apply(a, shat.data(), t.data());
        const double tt = dot(t, t);
        if (tt == 0.0) {
            break; // breakdown
        }
        omega = dot(t, s) / tt;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        relres = norm2(r) / bnorm;
        if (relres < cfg.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.relative_residual = relres;
    return result;
}

} // namespace pspl::iterative
