// Preconditioner interface for the Krylov solvers. Ginkgo ships a family of
// "sophisticated preconditioners" (§II-C-2); this build provides the
// paper's block-Jacobi plus ILU(0) for comparison.
#pragma once

#include <span>

namespace pspl::iterative {

class Preconditioner
{
public:
    virtual ~Preconditioner() = default;

    /// z = M^{-1} r.
    virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

} // namespace pspl::iterative
