#include "iterative/bicg.hpp"

#include "iterative/detail.hpp"

#include <cmath>
#include <vector>

namespace pspl::iterative {

namespace {

/// y = A^T x (serial scatter over the CSR rows).
void csr_apply_transpose(const sparse::Csr& a, const double* PSPL_RESTRICT x,
                         double* PSPL_RESTRICT y)
{
    const auto& row_ptr = a.row_ptr();
    const auto& col_idx = a.col_idx();
    const auto& values = a.values();
    const std::size_t n = a.nrows();
    for (std::size_t j = 0; j < a.ncols(); ++j) {
        y[j] = 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double xi = x[i];
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            const auto ks = static_cast<std::size_t>(k);
            y[static_cast<std::size_t>(col_idx(ks))] += values(ks) * xi;
        }
    }
}

} // namespace

ColumnResult bicg_solve(const sparse::Csr& a, const Preconditioner* precond,
                        std::span<const double> b, std::span<double> x,
                        const Config& cfg)
{
    using namespace detail;
    const std::size_t n = a.nrows();
    std::vector<double> r(n);
    std::vector<double> rt(n);
    std::vector<double> z(n);
    std::vector<double> zt(n);
    std::vector<double> p(n, 0.0);
    std::vector<double> pt(n, 0.0);
    std::vector<double> q(n);
    std::vector<double> qt(n);

    const double bnorm = norm2(b);
    ColumnResult result;
    if (bnorm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = 0.0;
        }
        result.converged = true;
        return result;
    }

    csr_apply(a, x.data(), r.data());
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - r[i];
        rt[i] = r[i]; // shadow residual
    }
    double relres = norm2(r) / bnorm;
    if (relres < cfg.tolerance) {
        result.converged = true;
        result.relative_residual = relres;
        return result;
    }

    double rho = 1.0;
    for (std::size_t it = 1; it <= cfg.max_iterations; ++it) {
        result.iterations = it;
        // z = M^{-1} r ; zt = M^{-T} rt (block-Jacobi is applied as-is: the
        // transpose of a block-diagonal inverse is the blockwise transpose,
        // which for this symmetric-enough use is approximated by M^{-1} --
        // standard practice for Jacobi-type preconditioners in BiCG).
        if (precond != nullptr) {
            precond->apply(r, z);
            precond->apply(rt, zt);
        } else {
            copy(r, z);
            copy(rt, zt);
        }
        const double rho_new = dot(zt, r);
        if (rho_new == 0.0) {
            break; // breakdown
        }
        const double beta = rho_new / rho;
        rho = rho_new;
        if (it == 1) {
            copy(z, p);
            copy(zt, pt);
        } else {
            xpby(z, beta, p);
            xpby(zt, beta, pt);
        }
        csr_apply(a, p.data(), q.data());
        csr_apply_transpose(a, pt.data(), qt.data());
        const double ptq = dot(pt, q);
        if (ptq == 0.0) {
            break; // breakdown
        }
        const double alpha = rho / ptq;
        axpy(alpha, p, x);
        axpy(-alpha, q, r);
        axpy(-alpha, qt, rt);

        relres = norm2(r) / bnorm;
        if (relres < cfg.tolerance) {
            result.converged = true;
            break;
        }
    }
    result.relative_residual = relres;
    return result;
}

} // namespace pspl::iterative
