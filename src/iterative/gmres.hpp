// Right-preconditioned restarted GMRES(m) for one right-hand side. This is
// the solver the paper uses on CPUs for the Ginkgo path (§III-B), working
// around the upstream BiCGStab OpenMP issue (ginkgo#1563).
#pragma once

#include "iterative/preconditioner.hpp"
#include "iterative/stop.hpp"
#include "sparse/csr.hpp"

#include <span>

namespace pspl::iterative {

ColumnResult gmres_solve(const sparse::Csr& a, const Preconditioner* precond,
                         std::span<const double> b, std::span<double> x,
                         const Config& cfg);

} // namespace pspl::iterative
