#include "iterative/cg.hpp"

#include "iterative/detail.hpp"

#include <vector>

namespace pspl::iterative {

ColumnResult cg_solve(const sparse::Csr& a, const Preconditioner* precond,
                      std::span<const double> b, std::span<double> x,
                      const Config& cfg)
{
    using namespace detail;
    const std::size_t n = a.nrows();
    std::vector<double> r(n);
    std::vector<double> z(n);
    std::vector<double> p(n);
    std::vector<double> q(n);

    const double bnorm = norm2(b);
    ColumnResult result;
    if (bnorm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = 0.0;
        }
        result.converged = true;
        return result;
    }

    csr_apply(a, x.data(), r.data());
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - r[i];
    }
    if (precond != nullptr) {
        precond->apply(r, z);
    } else {
        copy(r, z);
    }
    copy(z, p);
    double rz = dot(r, z);

    double relres = norm2(r) / bnorm;
    if (relres < cfg.tolerance) {
        result.converged = true;
        result.relative_residual = relres;
        return result;
    }

    for (std::size_t it = 1; it <= cfg.max_iterations; ++it) {
        csr_apply(a, p.data(), q.data());
        const double pq = dot(p, q);
        if (pq == 0.0) {
            break; // breakdown
        }
        const double alpha = rz / pq;
        axpy(alpha, p, x);
        axpy(-alpha, q, r);

        result.iterations = it;
        relres = norm2(r) / bnorm;
        if (relres < cfg.tolerance) {
            result.converged = true;
            break;
        }

        if (precond != nullptr) {
            precond->apply(r, z);
        } else {
            copy(r, z);
        }
        const double rz_new = dot(r, z);
        const double beta = rz_new / rz;
        rz = rz_new;
        xpby(z, beta, p);
    }
    result.relative_residual = relres;
    return result;
}

} // namespace pspl::iterative
