#include "iterative/ilu0.hpp"

#include "parallel/deep_copy.hpp"
#include "parallel/macros.hpp"

#include <vector>

namespace pspl::iterative {

Ilu0::Ilu0(const sparse::Csr& a)
{
    const std::size_t n = a.nrows();
    PSPL_EXPECT(a.ncols() == n, "Ilu0: matrix must be square");

    // Deep-copy the CSR (pattern shared, values owned).
    View1D<double> values("ilu0_values", a.nnz());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
        values(k) = a.values()(k);
    }
    m_lu = sparse::Csr(n, n, a.row_ptr(), a.col_idx(), values);
    m_diag = View1D<int>("ilu0_diag", n);

    const auto& row_ptr = m_lu.row_ptr();
    const auto& col_idx = m_lu.col_idx();
    auto& vals = values;

    // Locate diagonals.
    for (std::size_t i = 0; i < n; ++i) {
        int dpos = -1;
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            if (col_idx(static_cast<std::size_t>(k)) == static_cast<int>(i)) {
                dpos = k;
                break;
            }
        }
        PSPL_EXPECT(dpos >= 0, "Ilu0: missing diagonal entry");
        m_diag(i) = dpos;
    }

    // IKJ-variant ILU(0) with a column->position scatter index per row.
    std::vector<int> pos(n, -1);
    for (std::size_t i = 1; i < n; ++i) {
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            pos[static_cast<std::size_t>(
                    col_idx(static_cast<std::size_t>(k)))] = k;
        }
        for (int kk = row_ptr(i); kk < row_ptr(i + 1); ++kk) {
            const auto kcol = static_cast<std::size_t>(
                    col_idx(static_cast<std::size_t>(kk)));
            if (kcol >= i) {
                break; // row is sorted; only the strictly-lower part
            }
            const double pivot =
                    vals(static_cast<std::size_t>(m_diag(kcol)));
            PSPL_EXPECT(pivot != 0.0, "Ilu0: zero pivot");
            const double lik = vals(static_cast<std::size_t>(kk)) / pivot;
            vals(static_cast<std::size_t>(kk)) = lik;
            // Update the remainder of row i against row kcol's upper part.
            for (int kj = m_diag(kcol) + 1; kj < row_ptr(kcol + 1); ++kj) {
                const auto jcol = static_cast<std::size_t>(
                        col_idx(static_cast<std::size_t>(kj)));
                const int p = pos[jcol];
                if (p >= 0) {
                    vals(static_cast<std::size_t>(p)) -=
                            lik * vals(static_cast<std::size_t>(kj));
                }
            }
        }
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            pos[static_cast<std::size_t>(
                    col_idx(static_cast<std::size_t>(k)))] = -1;
        }
    }
}

void Ilu0::apply(std::span<const double> r, std::span<double> z) const
{
    const std::size_t n = m_lu.nrows();
    const auto& row_ptr = m_lu.row_ptr();
    const auto& col_idx = m_lu.col_idx();
    const auto& vals = m_lu.values();

    // Forward: L z = r with unit-diagonal L (strictly-lower entries).
    for (std::size_t i = 0; i < n; ++i) {
        double acc = r[i];
        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
            const auto j = static_cast<std::size_t>(
                    col_idx(static_cast<std::size_t>(k)));
            if (j >= i) {
                break;
            }
            acc -= vals(static_cast<std::size_t>(k)) * z[j];
        }
        z[i] = acc;
    }
    // Backward: U z = z.
    for (std::size_t i = n; i-- > 0;) {
        double acc = z[i];
        const int dpos = m_diag(i);
        for (int k = dpos + 1; k < row_ptr(i + 1); ++k) {
            acc -= vals(static_cast<std::size_t>(k))
                   * z[static_cast<std::size_t>(
                           col_idx(static_cast<std::size_t>(k)))];
        }
        z[i] = acc / vals(static_cast<std::size_t>(dpos));
    }
}

} // namespace pspl::iterative
