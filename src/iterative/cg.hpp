// Preconditioned Conjugate Gradient for one right-hand side (SPD systems).
// One of the mini-Ginkgo solver set (paper §II-B-2 lists BiCG, BiCGStab, CG,
// GMRES); usable for the uniform-spline collocation matrices, which are SPD.
#pragma once

#include "iterative/preconditioner.hpp"
#include "iterative/stop.hpp"
#include "sparse/csr.hpp"

#include <span>

namespace pspl::iterative {

/// Solve a x = b starting from the initial guess in `x`; returns the
/// iteration count and achieved relative residual. `precond` may be null.
ColumnResult cg_solve(const sparse::Csr& a, const Preconditioner* precond,
                      std::span<const double> b, std::span<double> x,
                      const Config& cfg);

} // namespace pspl::iterative
