// Block-Jacobi preconditioner (the paper's Ginkgo configuration, §III-B):
// the matrix diagonal is partitioned into dense blocks of at most
// max_block_size rows; each block is LU-factorized once and applied as
// z = diag(B_0^{-1}, ..., B_{k-1}^{-1}) r.
#pragma once

#include "iterative/preconditioner.hpp"
#include "parallel/view.hpp"
#include "sparse/csr.hpp"

#include <cstddef>
#include <span>

namespace pspl::iterative {

class BlockJacobi : public Preconditioner
{
public:
    BlockJacobi() = default;

    /// Build from a CSR matrix. `max_block_size` in [1, 32] as in the paper;
    /// blocks are contiguous row ranges of equal size (the last may be
    /// smaller).
    BlockJacobi(const sparse::Csr& a, std::size_t max_block_size);

    std::size_t nblocks() const { return m_sizes.is_allocated() ? m_sizes.extent(0) : 0; }
    std::size_t max_block_size() const { return m_max_block_size; }

    /// v <- M^{-1} v for one column stored contiguously.
    void apply_inplace(std::span<double> v) const;

    /// z <- M^{-1} r.
    void apply(std::span<const double> r, std::span<double> z) const override;

private:
    std::size_t m_max_block_size = 0;
    View1D<int> m_offsets;    ///< nblocks+1 row offsets
    View1D<int> m_sizes;      ///< nblocks block sizes
    View3D<double> m_factors; ///< (nblocks, bs_max, bs_max) LU factors
    View2D<int> m_ipiv;       ///< (nblocks, bs_max)
};

} // namespace pspl::iterative
