#include "iterative/jacobi.hpp"

#include "hostlapack/getrf.hpp"
#include "parallel/macros.hpp"

#include <algorithm>

namespace pspl::iterative {

BlockJacobi::BlockJacobi(const sparse::Csr& a, std::size_t max_block_size)
    : m_max_block_size(max_block_size)
{
    PSPL_EXPECT(max_block_size >= 1 && max_block_size <= 32,
                "BlockJacobi: max_block_size must be in [1, 32]");
    const std::size_t n = a.nrows();
    const std::size_t nb = (n + max_block_size - 1) / max_block_size;

    m_offsets = View1D<int>("jacobi_offsets", nb + 1);
    m_sizes = View1D<int>("jacobi_sizes", nb);
    m_factors = View3D<double>("jacobi_factors", nb, max_block_size,
                               max_block_size);
    m_ipiv = View2D<int>("jacobi_ipiv", nb, max_block_size);

    for (std::size_t k = 0; k <= nb; ++k) {
        m_offsets(k) = static_cast<int>(std::min(k * max_block_size, n));
    }
    for (std::size_t k = 0; k < nb; ++k) {
        const auto lo = static_cast<std::size_t>(m_offsets(k));
        const auto hi = static_cast<std::size_t>(m_offsets(k + 1));
        const std::size_t bs = hi - lo;
        m_sizes(k) = static_cast<int>(bs);

        // Extract the dense diagonal block, then LU-factorize it in place.
        View2D<double> block("jacobi_block", bs, bs);
        for (std::size_t i = 0; i < bs; ++i) {
            for (std::size_t j = 0; j < bs; ++j) {
                block(i, j) = a.at(lo + i, lo + j);
            }
        }
        View1D<int> piv("jacobi_piv", bs);
        const int info = hostlapack::getrf(block, piv);
        PSPL_EXPECT(info == 0, "BlockJacobi: singular diagonal block");
        for (std::size_t i = 0; i < bs; ++i) {
            for (std::size_t j = 0; j < bs; ++j) {
                m_factors(k, i, j) = block(i, j);
            }
            m_ipiv(k, i) = piv(i);
        }
    }
}

void BlockJacobi::apply_inplace(std::span<double> v) const
{
    const std::size_t nb = nblocks();
    for (std::size_t k = 0; k < nb; ++k) {
        const auto lo = static_cast<std::size_t>(m_offsets(k));
        const auto bs = static_cast<std::size_t>(m_sizes(k));
        double* seg = v.data() + lo;
        // Apply row interchanges.
        for (std::size_t i = 0; i < bs; ++i) {
            const auto p = static_cast<std::size_t>(m_ipiv(k, i));
            if (p != i) {
                std::swap(seg[i], seg[p]);
            }
        }
        // Forward (unit lower) and backward (upper) substitution.
        for (std::size_t i = 1; i < bs; ++i) {
            double acc = seg[i];
            for (std::size_t j = 0; j < i; ++j) {
                acc -= m_factors(k, i, j) * seg[j];
            }
            seg[i] = acc;
        }
        for (std::size_t i = bs; i-- > 0;) {
            double acc = seg[i];
            for (std::size_t j = i + 1; j < bs; ++j) {
                acc -= m_factors(k, i, j) * seg[j];
            }
            seg[i] = acc / m_factors(k, i, i);
        }
    }
}

void BlockJacobi::apply(std::span<const double> r, std::span<double> z) const
{
    std::copy(r.begin(), r.end(), z.begin());
    apply_inplace(z);
}

} // namespace pspl::iterative
