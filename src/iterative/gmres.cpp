#include "iterative/gmres.hpp"

#include "iterative/detail.hpp"

#include <cmath>
#include <vector>

namespace pspl::iterative {

ColumnResult gmres_solve(const sparse::Csr& a, const Preconditioner* precond,
                         std::span<const double> b, std::span<double> x,
                         const Config& cfg)
{
    using namespace detail;
    const std::size_t n = a.nrows();
    const std::size_t m = cfg.restart;

    // Krylov basis (m+1 vectors) and Hessenberg matrix in column-major-ish
    // flat storage; Givens rotations for the least-squares solve.
    std::vector<std::vector<double>> v(m + 1, std::vector<double>(n));
    std::vector<std::vector<double>> z(m, std::vector<double>(n));
    std::vector<double> h((m + 1) * m, 0.0);
    std::vector<double> cs(m, 0.0);
    std::vector<double> sn(m, 0.0);
    std::vector<double> g(m + 1, 0.0);
    std::vector<double> w(n);
    auto hess = [&](std::size_t i, std::size_t j) -> double& {
        return h[i * m + j];
    };

    const double bnorm = norm2(b);
    ColumnResult result;
    if (bnorm == 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = 0.0;
        }
        result.converged = true;
        return result;
    }

    double relres = 0.0;
    std::size_t total_it = 0;
    while (total_it < cfg.max_iterations) {
        // r = b - A x
        csr_apply(a, x.data(), v[0].data());
        for (std::size_t i = 0; i < n; ++i) {
            v[0][i] = b[i] - v[0][i];
        }
        const double beta = norm2(v[0]);
        relres = beta / bnorm;
        if (relres < cfg.tolerance) {
            result.converged = true;
            break;
        }
        scale(1.0 / beta, v[0]);
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = beta;

        std::size_t k = 0; // number of Arnoldi steps taken this cycle
        for (; k < m && total_it < cfg.max_iterations; ++k) {
            ++total_it;
            result.iterations = total_it;
            // Right preconditioning: w = A M^{-1} v_k.
            if (precond != nullptr) {
                precond->apply(v[k], z[k]);
            } else {
                copy(v[k], z[k]);
            }
            csr_apply(a, z[k].data(), w.data());
            // Modified Gram-Schmidt.
            for (std::size_t i = 0; i <= k; ++i) {
                hess(i, k) = dot(w, v[i]);
                axpy(-hess(i, k), v[i], w);
            }
            hess(k + 1, k) = norm2(w);
            if (hess(k + 1, k) != 0.0) {
                copy(w, v[k + 1]);
                scale(1.0 / hess(k + 1, k), v[k + 1]);
            }
            // Apply previous Givens rotations to the new column.
            for (std::size_t i = 0; i < k; ++i) {
                const double t1 = cs[i] * hess(i, k) + sn[i] * hess(i + 1, k);
                const double t2 = -sn[i] * hess(i, k) + cs[i] * hess(i + 1, k);
                hess(i, k) = t1;
                hess(i + 1, k) = t2;
            }
            // New rotation annihilating hess(k+1, k).
            const double denom = std::hypot(hess(k, k), hess(k + 1, k));
            if (denom == 0.0) {
                cs[k] = 1.0;
                sn[k] = 0.0;
            } else {
                cs[k] = hess(k, k) / denom;
                sn[k] = hess(k + 1, k) / denom;
            }
            hess(k, k) = cs[k] * hess(k, k) + sn[k] * hess(k + 1, k);
            hess(k + 1, k) = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] = cs[k] * g[k];

            relres = std::abs(g[k + 1]) / bnorm;
            if (relres < cfg.tolerance) {
                ++k;
                break;
            }
        }

        // Solve the k x k triangular system and update x += M^{-1} V y,
        // where z already stores M^{-1} v_i.
        std::vector<double> y(k, 0.0);
        for (std::size_t i = k; i-- > 0;) {
            double acc = g[i];
            for (std::size_t j = i + 1; j < k; ++j) {
                acc -= hess(i, j) * y[j];
            }
            y[i] = acc / hess(i, i);
        }
        for (std::size_t i = 0; i < k; ++i) {
            axpy(y[i], z[i], x);
        }
        if (relres < cfg.tolerance) {
            result.converged = true;
            break;
        }
        if (k == 0) {
            break; // no progress possible
        }
    }
    result.relative_residual = relres;
    return result;
}

} // namespace pspl::iterative
