#include "iterative/chunked.hpp"

#include "iterative/bicg.hpp"
#include "iterative/bicgstab.hpp"
#include "iterative/cg.hpp"
#include "iterative/gmres.hpp"
#include "iterative/ilu0.hpp"
#include "debug/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/parallel.hpp"
#include "parallel/profiling.hpp"

#include <algorithm>
#include <span>

namespace pspl::iterative {

const char* to_string(IterativeKind kind)
{
    switch (kind) {
    case IterativeKind::CG:
        return "CG";
    case IterativeKind::BiCG:
        return "BiCG";
    case IterativeKind::BiCGStab:
        return "BiCGStab";
    case IterativeKind::GMRES:
        return "GMRES";
    }
    return "?";
}

ChunkedIterativeSolver::ChunkedIterativeSolver(sparse::Csr a,
                                               IterativeKind kind, Config cfg,
                                               std::size_t cols_per_chunk,
                                               std::size_t max_block_size,
                                               bool use_ilu0)
    : m_a(std::move(a))
    , m_kind(kind)
    , m_cfg(cfg)
    , m_cols_per_chunk(cols_per_chunk)
{
    PSPL_EXPECT(m_cols_per_chunk >= 1, "ChunkedIterativeSolver: empty chunk");
    if (use_ilu0) {
        m_precond = std::make_shared<const Ilu0>(m_a);
    } else if (max_block_size > 0) {
        m_precond = std::make_shared<const BlockJacobi>(m_a, max_block_size);
    }
}

template <class BView>
SolveStats ChunkedIterativeSolver::solve_impl(const BView& b) const
{
    const std::size_t n = m_a.nrows();
    PSPL_EXPECT(b.extent(0) == n, "solve_inplace: RHS row count mismatch");
    const std::size_t nrhs = b.extent(1);
    const std::size_t main_chunk_size = std::min(m_cols_per_chunk, nrhs);
    const std::size_t nchunks =
            (nrhs + main_chunk_size - 1) / main_chunk_size;

    const sparse::Csr a = m_a;
    const Preconditioner* precond = m_precond.get();
    const Config cfg = m_cfg;
    const IterativeKind kind = m_kind;

    SolveStats stats;
    View1D<int> iters("chunk_iters", main_chunk_size);
    View1D<double> resid("chunk_resid", main_chunk_size);
    View1D<int> conv("chunk_conv", main_chunk_size);

    // Persistent per-thread staging for the contiguous column copy (the
    // paper's b_buffer) and the solution vector: reserved once, reused by
    // every chunk of every solve on this host thread -- no allocation
    // inside the dispatch body.
    WorkspaceArena& arena = host_workspace_arena();
    arena.reserve(
            static_cast<std::size_t>(DefaultExecutionSpace::concurrency()),
            2 * n * sizeof(double));
    std::byte* const abase = arena.data();
    const std::size_t astride = arena.slot_stride_bytes();
    debug::ScratchGuard scratch(arena.data(), arena.size_bytes());

    profiling::ScopedRegion region("pspl_splines_solve_iterative");
    for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t begin = c * main_chunk_size;
        const std::size_t end = std::min(begin + main_chunk_size, nrhs);
        const std::size_t width = end - begin;

        parallel_for(
                "pspl::iterative::chunk_solve", width, [=](std::size_t j) {
                    const std::size_t col = begin + j;
                    // Copy the column to this thread's arena slot (the
                    // paper's b_buffer); its values double as the initial
                    // guess.
                    double* const buf = reinterpret_cast<double*>(
                            abase
                            + astride
                                      * static_cast<std::size_t>(
                                              DefaultExecutionSpace::
                                                      thread_rank()));
                    const std::span<double> rhs(buf, n);
                    const std::span<double> x(buf + n, n);
                    for (std::size_t i = 0; i < n; ++i) {
                        rhs[i] = b(i, col);
                        x[i] = rhs[i];
                    }
                    ColumnResult r;
                    switch (kind) {
                    case IterativeKind::CG:
                        r = cg_solve(a, precond, rhs, x, cfg);
                        break;
                    case IterativeKind::BiCG:
                        r = bicg_solve(a, precond, rhs, x, cfg);
                        break;
                    case IterativeKind::BiCGStab:
                        r = bicgstab_solve(a, precond, rhs, x, cfg);
                        break;
                    case IterativeKind::GMRES:
                        r = gmres_solve(a, precond, rhs, x, cfg);
                        break;
                    }
                    for (std::size_t i = 0; i < n; ++i) {
                        b(i, col) = x[i];
                    }
                    iters(j) = static_cast<int>(r.iterations);
                    resid(j) = r.relative_residual;
                    conv(j) = r.converged ? 1 : 0;
                });

        for (std::size_t j = 0; j < width; ++j) {
            ColumnResult r;
            r.iterations = static_cast<std::size_t>(iters(j));
            r.relative_residual = resid(j);
            r.converged = conv(j) != 0;
            stats.absorb(r);
        }
    }
    return stats;
}

SolveStats
ChunkedIterativeSolver::solve_inplace(const View2D<double, LayoutRight>& b) const
{
    return solve_impl(b);
}

SolveStats
ChunkedIterativeSolver::solve_inplace(const View2D<double, LayoutStride>& b) const
{
    return solve_impl(b);
}

} // namespace pspl::iterative
