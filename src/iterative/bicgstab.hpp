// Preconditioned BiCGStab for one right-hand side. This is the solver the
// paper uses on GPUs for the Ginkgo path (§III-B): it handles the
// non-symmetric matrices produced by non-uniform splines.
#pragma once

#include "iterative/preconditioner.hpp"
#include "iterative/stop.hpp"
#include "sparse/csr.hpp"

#include <span>

namespace pspl::iterative {

ColumnResult bicgstab_solve(const sparse::Csr& a, const Preconditioner* precond,
                            std::span<const double> b, std::span<double> x,
                            const Config& cfg);

} // namespace pspl::iterative
