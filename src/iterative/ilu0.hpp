// ILU(0): incomplete LU factorization with zero fill-in on the CSR pattern.
// A stronger preconditioner than block-Jacobi for banded matrices -- on a
// banded matrix with no fill the factorization is exact, so Krylov solvers
// converge in O(1) iterations; the paper's periodic corners are the only
// entries it approximates.
#pragma once

#include "iterative/preconditioner.hpp"
#include "parallel/view.hpp"
#include "sparse/csr.hpp"

#include <span>

namespace pspl::iterative {

class Ilu0 : public Preconditioner
{
public:
    /// Factorize on the sparsity pattern of `a`. Requires a non-zero
    /// diagonal in every row (spline collocation matrices satisfy this).
    explicit Ilu0(const sparse::Csr& a);

    /// z = U^{-1} L^{-1} r (unit-diagonal L).
    void apply(std::span<const double> r, std::span<double> z) const override;

    const sparse::Csr& factors() const { return m_lu; }

private:
    sparse::Csr m_lu;      ///< same pattern as A, factored values
    View1D<int> m_diag;    ///< position of the diagonal entry in each row
};

} // namespace pspl::iterative
