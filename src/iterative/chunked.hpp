// Chunked multi-RHS iterative solve driver, mirroring the paper's Ginkgo
// integration (Listing 3): the right-hand-side block is pipelined along the
// batch direction in chunks of `cols_per_chunk` columns (8192 on CPU, 65535
// on GPU in the paper -- the GPU limit being a hardware grid constraint),
// each chunk is copied to a contiguous buffer, solved, and copied back.
// The previous content of each column seeds the initial guess, as in the
// paper where the previous time step's solution is reused.
#pragma once

#include "iterative/jacobi.hpp"
#include "iterative/preconditioner.hpp"
#include "iterative/stop.hpp"
#include "parallel/view.hpp"
#include "sparse/csr.hpp"

#include <cstddef>
#include <memory>

namespace pspl::iterative {

enum class IterativeKind {
    CG,
    BiCG,
    BiCGStab,
    GMRES,
};

const char* to_string(IterativeKind kind);

class ChunkedIterativeSolver
{
public:
    /// `max_block_size` = 0 disables preconditioning; otherwise a
    /// block-Jacobi preconditioner with that block size is built once.
    /// `use_ilu0` replaces it with an ILU(0) factorization.
    ChunkedIterativeSolver(sparse::Csr a, IterativeKind kind, Config cfg,
                           std::size_t cols_per_chunk,
                           std::size_t max_block_size, bool use_ilu0 = false);

    /// Solve A x = b in place for every column of the (n, nrhs) block `b`,
    /// chunk by chunk, parallel over columns within a chunk. The entry
    /// values of `b` double as initial guesses.
    SolveStats solve_inplace(const View2D<double, LayoutRight>& b) const;
    SolveStats solve_inplace(const View2D<double, LayoutStride>& b) const;

    const sparse::Csr& matrix() const { return m_a; }
    IterativeKind kind() const { return m_kind; }
    std::size_t cols_per_chunk() const { return m_cols_per_chunk; }

private:
    template <class BView>
    SolveStats solve_impl(const BView& b) const;

    sparse::Csr m_a;
    IterativeKind m_kind;
    Config m_cfg;
    std::size_t m_cols_per_chunk;
    std::shared_ptr<const Preconditioner> m_precond; ///< null when disabled
};

} // namespace pspl::iterative
