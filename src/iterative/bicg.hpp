// Preconditioned BiCG (bi-conjugate gradient) for one right-hand side --
// the fourth solver of the paper's Ginkgo set (§II-B-2 lists "BiCG,
// BiCGStab, CG, and GMRES"). Requires products with A^T, which the CSR
// structure provides via a transposed apply.
#pragma once

#include "iterative/preconditioner.hpp"
#include "iterative/stop.hpp"
#include "sparse/csr.hpp"

#include <span>

namespace pspl::iterative {

ColumnResult bicg_solve(const sparse::Csr& a, const Preconditioner* precond,
                        std::span<const double> b, std::span<double> x,
                        const Config& cfg);

} // namespace pspl::iterative
