// COO (COOrdinate list) sparse storage, the format the paper chooses for the
// Schur corner blocks "in order to avoid implementing kernels for both CSR
// and CSC formats" (Listing 5). All accessors are usable inside parallel
// kernels; iteration over nnz() entries replaces the dense GEMV loops.
//
// The container is templated over the stored value type: the FP64 solve
// ladder uses BasicCoo<double> (aliased to the historical name Coo), and the
// mixed-precision pipeline keeps FP32 mirrors of the corner blocks as
// BasicCoo<float>, built once at setup by narrowing the FP64 entries.
#pragma once

#include "parallel/macros.hpp"
#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::sparse {

template <class T>
class BasicCoo
{
public:
    using value_type = T;
    using IdxType = View1D<int>;
    using ValueType = View1D<T>;

    BasicCoo() = default;

    BasicCoo(std::size_t nrows, std::size_t ncols, IdxType rows_idx,
             IdxType cols_idx, ValueType values)
        : m_nrows(nrows)
        , m_ncols(ncols)
        , m_rows_idx(std::move(rows_idx))
        , m_cols_idx(std::move(cols_idx))
        , m_values(std::move(values))
    {
    }

    PSPL_FUNCTION std::size_t nnz() const { return m_values.extent(0); }
    PSPL_FUNCTION std::size_t nrows() const { return m_nrows; }
    PSPL_FUNCTION std::size_t ncols() const { return m_ncols; }
    PSPL_FUNCTION const IdxType& rows_idx() const { return m_rows_idx; }
    PSPL_FUNCTION const IdxType& cols_idx() const { return m_cols_idx; }
    PSPL_FUNCTION const ValueType& values() const { return m_values; }

    /// Extract the entries of a dense FP64 matrix with |a_ij| > threshold,
    /// stored at this container's precision (values are narrowed for
    /// T = float -- the setup-time conversion of the mixed pipeline).
    /// The paper uses the thresholding to exploit the exponential decay of
    /// beta = Q^{-1} gamma: a (999,1) block keeps only ~48 nonzeros.
    static BasicCoo from_dense(const View2D<double>& a, double threshold = 0.0);

    /// Scatter back to a dense matrix (testing / debugging aid).
    View2D<T> to_dense() const;

    /// y -= this * x  (the fused-kernel SpMV of Listing 6, serial, one RHS).
    template <class XView, class YView>
    PSPL_INLINE_FUNCTION void spmv_sub(const XView& x, const YView& y) const
    {
        for (std::size_t nz = 0; nz < nnz(); ++nz) {
            const auto r = static_cast<std::size_t>(m_rows_idx(nz));
            const auto c = static_cast<std::size_t>(m_cols_idx(nz));
            y(r) -= m_values(nz) * x(c);
        }
    }

private:
    std::size_t m_nrows = 0;
    std::size_t m_ncols = 0;
    IdxType m_rows_idx;
    IdxType m_cols_idx;
    ValueType m_values;
};

extern template class BasicCoo<double>;
extern template class BasicCoo<float>;

/// Historical name of the FP64 instantiation (the solve ladder's format).
using Coo = BasicCoo<double>;

} // namespace pspl::sparse
