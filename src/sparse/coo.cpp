#include "sparse/coo.hpp"

#include <cmath>
#include <vector>

namespace pspl::sparse {

template <class T>
BasicCoo<T> BasicCoo<T>::from_dense(const View2D<double>& a, double threshold)
{
    const std::size_t nrows = a.extent(0);
    const std::size_t ncols = a.extent(1);
    std::vector<int> rows;
    std::vector<int> cols;
    std::vector<double> vals;
    for (std::size_t i = 0; i < nrows; ++i) {
        for (std::size_t j = 0; j < ncols; ++j) {
            if (std::abs(a(i, j)) > threshold) {
                rows.push_back(static_cast<int>(i));
                cols.push_back(static_cast<int>(j));
                vals.push_back(a(i, j));
            }
        }
    }
    IdxType rows_idx("coo_rows", rows.size());
    IdxType cols_idx("coo_cols", cols.size());
    ValueType values("coo_vals", vals.size());
    for (std::size_t k = 0; k < vals.size(); ++k) {
        rows_idx(k) = rows[k];
        cols_idx(k) = cols[k];
        values(k) = static_cast<T>(vals[k]);
    }
    return BasicCoo(nrows, ncols, rows_idx, cols_idx, values);
}

template <class T>
View2D<T> BasicCoo<T>::to_dense() const
{
    View2D<T> a("coo_dense", m_nrows, m_ncols);
    for (std::size_t nz = 0; nz < nnz(); ++nz) {
        a(static_cast<std::size_t>(m_rows_idx(nz)),
          static_cast<std::size_t>(m_cols_idx(nz))) += m_values(nz);
    }
    return a;
}

template class BasicCoo<double>;
template class BasicCoo<float>;

} // namespace pspl::sparse
