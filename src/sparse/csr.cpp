#include "sparse/csr.hpp"

#include <cmath>
#include <vector>

namespace pspl::sparse {

Csr Csr::from_dense(const View2D<double>& a, double threshold)
{
    const std::size_t nrows = a.extent(0);
    const std::size_t ncols = a.extent(1);
    std::vector<int> rp(nrows + 1, 0);
    std::vector<int> ci;
    std::vector<double> vals;
    for (std::size_t i = 0; i < nrows; ++i) {
        for (std::size_t j = 0; j < ncols; ++j) {
            if (std::abs(a(i, j)) > threshold) {
                ci.push_back(static_cast<int>(j));
                vals.push_back(a(i, j));
            }
        }
        rp[i + 1] = static_cast<int>(vals.size());
    }
    View1D<int> row_ptr("csr_row_ptr", nrows + 1);
    View1D<int> col_idx("csr_col_idx", ci.size());
    View1D<double> values("csr_values", vals.size());
    for (std::size_t i = 0; i <= nrows; ++i) {
        row_ptr(i) = rp[i];
    }
    for (std::size_t k = 0; k < vals.size(); ++k) {
        col_idx(k) = ci[k];
        values(k) = vals[k];
    }
    return Csr(nrows, ncols, row_ptr, col_idx, values);
}

View2D<double> Csr::to_dense() const
{
    View2D<double> a("csr_dense", m_nrows, m_ncols);
    for (std::size_t i = 0; i < m_nrows; ++i) {
        for (int k = m_row_ptr(i); k < m_row_ptr(i + 1); ++k) {
            a(i, static_cast<std::size_t>(m_col_idx(static_cast<std::size_t>(k))))
                    += m_values(static_cast<std::size_t>(k));
        }
    }
    return a;
}

double Csr::at(std::size_t i, std::size_t j) const
{
    for (int k = m_row_ptr(i); k < m_row_ptr(i + 1); ++k) {
        if (m_col_idx(static_cast<std::size_t>(k)) == static_cast<int>(j)) {
            return m_values(static_cast<std::size_t>(k));
        }
    }
    return 0.0;
}

} // namespace pspl::sparse
