// CSR (Compressed Sparse Row) storage, the format the paper's Ginkgo path
// stores the full spline matrix A in (§III-B). Used by the iterative
// solvers; supports single- and multi-RHS products.
#pragma once

#include "parallel/macros.hpp"
#include "parallel/parallel.hpp"
#include "parallel/view.hpp"

#include <cstddef>

namespace pspl::sparse {

class Csr
{
public:
    Csr() = default;

    Csr(std::size_t nrows, std::size_t ncols, View1D<int> row_ptr,
        View1D<int> col_idx, View1D<double> values)
        : m_nrows(nrows)
        , m_ncols(ncols)
        , m_row_ptr(std::move(row_ptr))
        , m_col_idx(std::move(col_idx))
        , m_values(std::move(values))
    {
    }

    PSPL_FUNCTION std::size_t nrows() const { return m_nrows; }
    PSPL_FUNCTION std::size_t ncols() const { return m_ncols; }
    PSPL_FUNCTION std::size_t nnz() const { return m_values.extent(0); }
    PSPL_FUNCTION const View1D<int>& row_ptr() const { return m_row_ptr; }
    PSPL_FUNCTION const View1D<int>& col_idx() const { return m_col_idx; }
    PSPL_FUNCTION const View1D<double>& values() const { return m_values; }

    static Csr from_dense(const View2D<double>& a, double threshold = 0.0);

    View2D<double> to_dense() const;

    /// Entry (i, j) by binary search over the row (0 if structurally zero).
    double at(std::size_t i, std::size_t j) const;

    /// y = A x for one RHS (serial; both may be strided rank-1 views).
    template <class XView, class YView>
    void apply(const XView& x, const YView& y) const
    {
        for (std::size_t i = 0; i < m_nrows; ++i) {
            double acc = 0.0;
            for (int k = m_row_ptr(i); k < m_row_ptr(i + 1); ++k) {
                acc += m_values(static_cast<std::size_t>(k))
                       * x(static_cast<std::size_t>(
                               m_col_idx(static_cast<std::size_t>(k))));
            }
            y(i) = acc;
        }
    }

    /// Y = A X for a block of RHS stored as (nrows, ncols_rhs) views,
    /// parallel over the RHS (batch) index, matching the paper's layout
    /// where the batch index is contiguous.
    template <class Exec = DefaultExecutionSpace, class XView, class YView>
    void apply_block(const XView& x, const YView& y) const
    {
        const std::size_t ncols_rhs = x.extent(1);
        const auto row_ptr = m_row_ptr;
        const auto col_idx = m_col_idx;
        const auto values = m_values;
        const std::size_t nrows = m_nrows;
        parallel_for(
                "pspl::sparse::csr_apply_block", RangePolicy<Exec>(ncols_rhs),
                [=](std::size_t col) {
                    for (std::size_t i = 0; i < nrows; ++i) {
                        double acc = 0.0;
                        for (int k = row_ptr(i); k < row_ptr(i + 1); ++k) {
                            acc += values(static_cast<std::size_t>(k))
                                   * x(static_cast<std::size_t>(col_idx(
                                               static_cast<std::size_t>(k))),
                                       col);
                        }
                        y(i, col) = acc;
                    }
                });
    }

private:
    std::size_t m_nrows = 0;
    std::size_t m_ncols = 0;
    View1D<int> m_row_ptr; ///< size nrows+1
    View1D<int> m_col_idx; ///< size nnz
    View1D<double> m_values;
};

} // namespace pspl::sparse
