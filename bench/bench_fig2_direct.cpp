// Figure 2 (top row, a-c) reproduction: achieved GLUPS of the full 1-D
// batched advection (build + interpolate, Algorithm 2) with the direct
// (Kokkos-kernels analogue) spline path, scanning the batch size Nv at
// Nx = 1024 for degrees 3/4/5 on uniform and non-uniform meshes.
//
// Paper shape to reproduce: GLUPS grows with Nv until the device saturates;
// uniform splines beat non-uniform; degree 3 uniform is fastest; and the
// direct path beats the iterative path everywhere (see
// bench_fig2_iterative).
//
// Defaults sweep Nv in {100, 1000, 10000}; PSPL_BENCH_FULL=1 extends to
// 100000 as in the paper.
#include "advection/semi_lagrangian.hpp"
#include "bench/common.hpp"
#include "parallel/view.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

namespace {

using namespace pspl;

constexpr std::size_t kNx = 1024;

std::vector<std::size_t> nv_sweep()
{
    std::vector<std::size_t> nv = {100, 1000, 10000};
    if (bench::full_scale()) {
        nv.push_back(100000);
    }
    return nv;
}

advection::BatchedAdvection1D make_advection(int degree, bool uniform,
                                             std::size_t nv)
{
    const auto basis = bench::make_basis(degree, uniform, kNx);
    const auto v = advection::uniform_velocities(nv, -1.0, 1.0);
    return advection::BatchedAdvection1D(basis, v, 1e-3);
}

View2D<double> make_f(const advection::BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = 1.0 + 0.1 * std::sin(6.28 * adv.points()(i));
        }
    }
    return f;
}

void bm_advection(benchmark::State& state)
{
    const int degree = static_cast<int>(state.range(0));
    const bool uniform = state.range(1) != 0;
    const auto nv = static_cast<std::size_t>(state.range(2));
    auto adv = make_advection(degree, uniform, nv);
    auto f = make_f(adv);
    for (auto _ : state) {
        adv.step(f);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kNx * nv));
}

} // namespace

BENCHMARK(bm_advection)
        ->ArgNames({"degree", "uniform", "Nv"})
        ->Args({3, 1, 1000})
        ->Args({3, 0, 1000})
        ->Args({5, 1, 1000})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    std::printf("\nFig. 2 (a-c) analog -- 1D batched advection GLUPS, direct "
                "spline path, Nx = %zu\n\n",
                kNx);
    perf::Table table({"mesh", "degree", "Nv", "time/step", "GLUPS"});
    for (const bool uniform : {true, false}) {
        for (const int degree : {3, 4, 5}) {
            for (const std::size_t nv : nv_sweep()) {
                auto adv = make_advection(degree, uniform, nv);
                auto f = make_f(adv);
                adv.step(f); // warm-up
                const int reps = nv <= 1000 ? 5 : 3;
                const double t =
                        bench::median_seconds(reps, [&] { adv.step(f); });
                table.add_row({uniform ? "uniform" : "non-uniform",
                               std::to_string(degree), std::to_string(nv),
                               perf::fmt_time(t),
                               perf::fmt(perf::glups(kNx, nv, t), 4)});
            }
        }
    }
    std::printf("%s\nPaper shape: GLUPS rises with Nv; uniform > "
                "non-uniform; degree 3 uniform fastest.\n",
                table.str().c_str());
    return 0;
}
