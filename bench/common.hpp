// Shared helpers for the benchmark harnesses: basis construction, RHS block
// filling, environment-controlled problem sizes and repetition timing.
//
// Sizes default to laptop-friendly values; set PSPL_BENCH_FULL=1 to run the
// paper's full (Nx, Nv) = (1000, 100000) configuration.
#pragma once

#include "bsplines/basis.hpp"
#include "bsplines/knots.hpp"
#include "debug/check.hpp"
#include "parallel/execution.hpp"
#include "parallel/profiling.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"
#include "perf/hardware.hpp"
#include "perf/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>
#include <numbers>

namespace pspl::bench {

/// Guard against polluting benchmark numbers with instrumented builds: a
/// bench TU compiled with PSPL_CHECK=ON refuses to start (the checked hot
/// paths cost orders of magnitude more than the measured kernels), unless
/// PSPL_ALLOW_CHECKED_BENCH=1 explicitly overrides for smoke runs.  The
/// flag is also recorded in every emitted --json record so committed
/// BENCH_*.json artifacts are self-describing.
inline void require_unchecked()
{
    if constexpr (pspl::debug::check_enabled) {
        const char* allow = std::getenv("PSPL_ALLOW_CHECKED_BENCH");
        if (allow == nullptr || allow[0] != '1') {
            std::fprintf(stderr,
                         "pspl: bench refused: compiled with PSPL_CHECK=ON; "
                         "instrumented timings are not comparable. Rebuild "
                         "with PSPL_CHECK=OFF or set "
                         "PSPL_ALLOW_CHECKED_BENCH=1 for a smoke run.\n");
            std::exit(EXIT_FAILURE);
        }
    }
}

// Every bench TU includes this header; run the guard before main().
inline const bool bench_check_guard = (require_unchecked(), true);

inline bool full_scale()
{
    const char* env = std::getenv("PSPL_BENCH_FULL");
    return env != nullptr && env[0] == '1';
}

inline std::size_t env_size(const char* name, std::size_t fallback)
{
    if (const char* env = std::getenv(name)) {
        const long long v = std::atoll(env);
        if (v > 0) {
            return static_cast<std::size_t>(v);
        }
    }
    return fallback;
}

inline double env_double(const char* name, double fallback)
{
    if (const char* env = std::getenv(name)) {
        const double v = std::atof(env);
        if (v > 0.0) {
            return v;
        }
    }
    return fallback;
}

inline bsplines::BSplineBasis make_basis(int degree, bool uniform,
                                         std::size_t ncells)
{
    if (uniform) {
        return bsplines::BSplineBasis::uniform(degree, ncells, 0.0, 1.0);
    }
    return bsplines::BSplineBasis::non_uniform(
            degree, bsplines::stretched_breaks(ncells, 0.0, 1.0, 0.5));
}

/// Deterministic white noise in [-1, 1) (splitmix64 hash).
inline double hash_noise(std::size_t i, std::size_t j)
{
    std::uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull
                      ^ (j + 1) * 0xBF58476D1CE4E5B9ull;
    h ^= h >> 31;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 29;
    return static_cast<double>(h >> 11) * (1.0 / 4503599627370496.0) - 1.0;
}

/// Interpolation values with a full spectrum: smooth waves plus noise.
/// A pure sine would be a near-eigenvector of the (circulant-like)
/// collocation matrix and make Krylov solvers converge unrealistically
/// fast, so iteration-count experiments need spectrally rich data.
template <class BView>
void fill_rhs(const bsplines::BSplineBasis& basis, const BView& b)
{
    const auto pts = basis.interpolation_points();
    const std::size_t n = b.extent(0);
    const std::size_t batch = b.extent(1);
    for (std::size_t i = 0; i < n; ++i) {
        const double base = std::sin(2.0 * std::numbers::pi * pts[i])
                            + 0.4 * std::cos(34.0 * pts[i] + 0.5);
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = base + 0.3 * hash_noise(i, j)
                      + 1e-4 * static_cast<double>(j % 97);
        }
    }
}

/// Plain white-noise fill for kernels that do not need a basis.
template <class BView>
void fill_rhs_raw(const BView& b)
{
    for (std::size_t i = 0; i < b.extent(0); ++i) {
        for (std::size_t j = 0; j < b.extent(1); ++j) {
            b(i, j) = hash_noise(i, j);
        }
    }
}

/// Backend selection behind the `--backend <name>` flag shared by all bench
/// harnesses: sets PSPL_BACKEND for this process before the first dispatch
/// caches the selection, so one binary produces records for any backend of
/// the matrix (`bench_table3 --backend threads --json out.json`). Must be
/// consumed at the top of main(), before any parallel dispatch or
/// concurrency query. Like --json / --trace, the flag is removed from argv
/// before benchmark::Initialize.
struct BackendChoice {
    std::string name; ///< requested name; empty = build default

    static BackendChoice from_args(int& argc, char** argv)
    {
        BackendChoice choice;
        for (int i = 1; i < argc; ++i) {
            const char* value = nullptr;
            int consumed = 0;
            if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
                value = argv[i + 1];
                consumed = 2;
            } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
                value = argv[i] + 10;
                consumed = 1;
            }
            if (consumed == 0) {
                continue;
            }
            choice.name = value;
            for (int j = i; j + consumed < argc; ++j) {
                argv[j] = argv[j + consumed];
            }
            argc -= consumed;
            break;
        }
        if (!choice.name.empty()) {
            ::setenv("PSPL_BACKEND", choice.name.c_str(), 1);
            Backend parsed;
            if (!parse_backend(choice.name.c_str(), parsed)) {
                std::fprintf(stderr,
                             "bench: unknown --backend '%s' "
                             "(serial|openmp|threads)\n",
                             choice.name.c_str());
                std::exit(EXIT_FAILURE);
            }
        }
        return choice;
    }
};

/// Warmup-and-repeat control shared by the summary sweeps: `--repeats <n>`
/// sets the minimum number of timed runs per case and `--min-time <sec>`
/// keeps adding runs until their summed wall time reaches the floor, so
/// short reduced-size cases (CI smoke) still get a stable median instead
/// of one noisy sample. Both flags are consumed before
/// benchmark::Initialize, like --json / --trace.
struct TimingControl {
    double min_time = 0.0; ///< total measured seconds to accumulate
    int repeats = 3;       ///< minimum timed runs per case

    static TimingControl from_args(int& argc, char** argv)
    {
        TimingControl ctl;
        for (int i = 1; i < argc;) {
            const char* value = nullptr;
            bool is_min_time = false;
            int consumed = 0;
            if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
                value = argv[i + 1];
                is_min_time = true;
                consumed = 2;
            } else if (std::strncmp(argv[i], "--min-time=", 11) == 0) {
                value = argv[i] + 11;
                is_min_time = true;
                consumed = 1;
            } else if (std::strcmp(argv[i], "--repeats") == 0
                       && i + 1 < argc) {
                value = argv[i + 1];
                consumed = 2;
            } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
                value = argv[i] + 10;
                consumed = 1;
            }
            if (consumed == 0) {
                ++i;
                continue;
            }
            if (is_min_time) {
                const double v = std::atof(value);
                if (v >= 0.0) {
                    ctl.min_time = v;
                }
            } else {
                const int v = std::atoi(value);
                if (v > 0) {
                    ctl.repeats = v;
                }
            }
            for (int j = i; j + consumed < argc; ++j) {
                argv[j] = argv[j + consumed];
            }
            argc -= consumed;
        }
        return ctl;
    }
};

/// Outcome of one stable timing: the median of `repeats` timed runs.
struct TimedResult {
    double seconds = 0.0; ///< median wall time of the timed runs
    int repeats = 0;      ///< timed runs actually taken (recorded in JSON)
};

/// One untimed warmup call, then timed runs of f() until both the repeat
/// floor and the min-time floor are met (capped so a pathological
/// min-time cannot hang a harness). Returns the median and the run count.
template <class F>
TimedResult stable_seconds(const TimingControl& ctl, F&& f)
{
    constexpr int max_reps = 1000;
    f(); // warmup: touch code paths, fault pages, spin the arena up
    std::vector<double> times;
    double total = 0.0;
    const int floor_reps = ctl.repeats > 0 ? ctl.repeats : 1;
    while ((static_cast<int>(times.size()) < floor_reps
            || total < ctl.min_time)
           && static_cast<int>(times.size()) < max_reps) {
        profiling::Timer t;
        f();
        const double s = t.seconds();
        times.push_back(s);
        total += s;
    }
    std::sort(times.begin(), times.end());
    return {times[times.size() / 2], static_cast<int>(times.size())};
}

/// Machine-readable result sink behind the `--json <path>` flag shared by
/// all bench harnesses: each record is one benchmark result (name, problem
/// parameters, wall time, derived bandwidth...) and the file is a plain
/// JSON array of flat objects, so committed BENCH_*.json artifacts diff
/// cleanly and feed plotting scripts without a parser dependency.
class JsonReport
{
public:
    JsonReport() = default;
    explicit JsonReport(std::string path) : m_path(std::move(path)) {}

    /// Consumes `--json <path>` or `--json=<path>` from argv (the flag must
    /// be removed before benchmark::Initialize, which rejects unknown
    /// flags). Returns a disabled report when the flag is absent.
    static JsonReport from_args(int& argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string path;
            int consumed = 0;
            if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
                path = argv[i + 1];
                consumed = 2;
            } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
                path = argv[i] + 7;
                consumed = 1;
            }
            if (consumed > 0) {
                for (int j = i; j + consumed < argc; ++j) {
                    argv[j] = argv[j + consumed];
                }
                argc -= consumed;
                return JsonReport(std::move(path));
            }
        }
        return JsonReport();
    }

    bool enabled() const { return !m_path.empty(); }

    /// Timed-run count recorded with every subsequent add() (schema v3
    /// info field; 0 = the harness did not report it). Call before each
    /// add() when --min-time makes the count vary per case.
    void set_repeats(int repeats) { m_repeats = repeats; }

    /// JSON number literal (%.17g survives a double round-trip).
    static std::string num(double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    }

    static std::string num(std::size_t v) { return std::to_string(v); }
    static std::string num(int v) { return std::to_string(v); }

    /// JSON string literal (quotes and escapes the payload).
    static std::string str(const std::string& s)
    {
        std::string out = "\"";
        for (const char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
            }
            out += c;
        }
        out += '"';
        return out;
    }

    /// One record: `fields` is an ordered list of key -> preformatted JSON
    /// value pairs (use num()/str()).
    void add(const std::string& bench_name,
             std::vector<std::pair<std::string, std::string>> fields)
    {
        if (!enabled()) {
            return;
        }
        std::string rec = "{\"bench\": " + str(bench_name);
        // Provenance: whether this binary carried the instrumentation layer
        // (it should never be "true" for committed BENCH_*.json artifacts),
        // plus the runtime execution configuration -- thread count, pin
        // state, tile policy and NUMA topology -- so every record is
        // self-describing about how it was run (schema v2 fields).
        rec += std::string(", \"pspl_check\": ")
               + (pspl::debug::check_enabled ? "true" : "false");
        // v4: which execution space produced this record (the runtime
        // PSPL_BACKEND / --backend selection); thread count comes from the
        // same selected space, so it is correct for every backend, not
        // just OpenMP.
        rec += ", \"backend\": " + str(DefaultExecutionSpace::name());
        rec += ", \"threads\": "
               + std::to_string(DefaultExecutionSpace::concurrency());
        rec += std::string(", \"pinned\": ")
               + (threads_pinned() ? "true" : "false");
        rec += ", \"tile\": " + str(TilePolicy::from_env().describe());
        rec += ", \"numa_nodes\": "
               + std::to_string(perf::numa_node_count());
        // v3: how many timed runs produced this row's median (stability
        // provenance for the --min-time / --repeats control).
        rec += ", \"repeats\": " + std::to_string(m_repeats);
        for (const auto& [key, value] : fields) {
            rec += ", " + str(key) + ": " + value;
        }
        rec += "}";
        m_records.push_back(std::move(rec));
    }

    /// Writes the accumulated array; no-op when disabled. The final record
    /// embeds the structured perf report (host spec, memory high-water mark,
    /// every profiling span with derived bandwidth) so one --json file is a
    /// complete, self-describing run artifact.
    void write() const
    {
        if (!enabled()) {
            return;
        }
        std::FILE* f = std::fopen(m_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "JsonReport: cannot open %s\n",
                         m_path.c_str());
            return;
        }
        std::fputs("[\n", f);
        for (std::size_t i = 0; i < m_records.size(); ++i) {
            std::fprintf(f, "  %s,\n", m_records[i].c_str());
        }
        std::fprintf(f,
                     "  {\"bench\": \"perf_report\", \"report\": %s}\n]\n",
                     pspl::perf::report_json().c_str());
        std::fclose(f);
        std::printf("JSON results written to %s (%zu records)\n",
                    m_path.c_str(), m_records.size() + 1);
    }

private:
    std::string m_path;
    std::vector<std::string> m_records;
    int m_repeats = 0;
};

/// Chrome-trace sink behind the `--trace <path>` flag: when requested, the
/// bench harness enables profiling for its timed section and dumps every
/// recorded span as a chrome://tracing / Perfetto-loadable JSON file on
/// write(). Like --json, the flag is consumed before benchmark::Initialize.
class ChromeTrace
{
public:
    ChromeTrace() = default;
    explicit ChromeTrace(std::string path) : m_path(std::move(path)) {}

    /// Consumes `--trace <path>` or `--trace=<path>` from argv.
    static ChromeTrace from_args(int& argc, char** argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string path;
            int consumed = 0;
            if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
                path = argv[i + 1];
                consumed = 2;
            } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
                path = argv[i] + 8;
                consumed = 1;
            }
            if (consumed > 0) {
                for (int j = i; j + consumed < argc; ++j) {
                    argv[j] = argv[j + consumed];
                }
                argc -= consumed;
                return ChromeTrace(std::move(path));
            }
        }
        return ChromeTrace();
    }

    bool enabled() const { return !m_path.empty(); }

    /// Dumps the trace; no-op when disabled.
    void write() const
    {
        if (!enabled()) {
            return;
        }
        if (profiling::write_chrome_trace(m_path)) {
            std::printf("Chrome trace written to %s (load via "
                        "chrome://tracing or ui.perfetto.dev)\n",
                        m_path.c_str());
        } else {
            std::fprintf(stderr, "ChromeTrace: cannot write %s\n",
                         m_path.c_str());
        }
    }

private:
    std::string m_path;
};

/// Median wall time of `reps` calls to f().
template <class F>
double median_seconds(int reps, F&& f)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        profiling::Timer t;
        f();
        times.push_back(t.seconds());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

} // namespace pspl::bench
