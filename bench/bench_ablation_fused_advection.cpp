// Ablation: fused build->evaluate advection (the tentpole of the
// tile-resident coefficient streaming pipeline). The unfused Algorithm 2
// step moves f through two strided transposes, a batched solve and a
// coefficient re-read per step; the fused AdvectionPlan stages each batch
// tile's RHS strip in the workspace arena, solves it L2-resident and
// evaluates at the displaced feet straight from the strip -- the full-size
// coefficient array never exists.
//
// Three gates make this harness CI-meaningful rather than a demo:
//   * 0-ULP oracle (hard): at Precision::Double the fused step must be
//     bitwise identical to the unfused step on every backend.
//   * modeled-bytes (hard): summed span cost models of one fused step must
//     be strictly below the unfused step -- the fusion's whole point is
//     DRAM traffic, and the span cost models make it checkable.
//   * speedup floor (hard, PSPL_BENCH_MIN_SPEEDUP, default 0.75): the
//     fused path must never be a serious regression; below the 1.2x
//     target it warns. The committed full-scale baseline carries the
//     measured speedup, which compare_bench.py then gates within
//     tolerance.
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 runs the paper's
// (n, batch) = (1000, 100000). `--json <path>` emits machine-readable
// records; --min-time/--repeats control the timing harness; other flags
// are forwarded to google-benchmark.
#include "advection/advection_plan.hpp"
#include "advection/semi_lagrangian.hpp"
#include "bench/common.hpp"
#include "parallel/profiling.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

using namespace pspl;
using advection::BatchedAdvection1D;

constexpr std::size_t kNx = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// ULP distance via the monotonic lexicographic mapping of IEEE doubles.
std::uint64_t ulp_distance(double a, double b)
{
    const auto lex = [](double d) {
        std::uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
    };
    const std::uint64_t x = lex(a);
    const std::uint64_t y = lex(b);
    return x > y ? x - y : y - x;
}

BatchedAdvection1D make_advection(std::size_t nv, bool fused)
{
    const auto basis = bench::make_basis(3, true, kNx);
    const auto v = advection::uniform_velocities(nv, -1.0, 1.0);
    BatchedAdvection1D::Config cfg;
    cfg.version = core::BuilderVersion::FusedSpmvSimd;
    cfg.fuse_build_eval = fused ? BatchedAdvection1D::Config::Fuse::On
                                : BatchedAdvection1D::Config::Fuse::Off;
    return BatchedAdvection1D(basis, v, 1e-3, cfg);
}

View2D<double> make_f(const BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = 1.0 + 0.1 * std::sin(6.28 * adv.points()(i))
                      + 0.01 * bench::hash_noise(j, i);
        }
    }
    return f;
}

/// Modeled DRAM bytes of exactly one step: the sum of every *timed*
/// "pspl::" span's cost model. Attribution-only counter children (count 0;
/// schema-v5 counter_only) are excluded -- their bytes are already merged
/// into the timed parent by attribute_solve_cost, and double-counting them
/// would flatter neither path honestly.
template <class Exec>
double modeled_step_bytes(const BatchedAdvection1D& adv,
                          const View2D<double>& f)
{
    profiling::clear();
    profiling::set_enabled(true);
    adv.template step<Exec>(f);
    profiling::set_enabled(false);
    double bytes = 0.0;
    for (const auto& [label, stats] : profiling::snapshot()) {
        if (stats.count > 0 && label.rfind("pspl::", 0) == 0) {
            bytes += stats.bytes;
        }
    }
    return bytes;
}

void bm_step(benchmark::State& state)
{
    const auto nv = static_cast<std::size_t>(state.range(0));
    const bool fused = state.range(1) != 0;
    auto adv = make_advection(nv, fused);
    auto f = make_f(adv);
    for (auto _ : state) {
        adv.step(f);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kNx * nv));
}

struct Gates {
    std::uint64_t worst_ulp = 0;
    bool bytes_regressed = false;
    double min_speedup = 1e300;
};

template <class Exec>
void sweep_backend(std::size_t nv, const bench::TimingControl& timing,
                   perf::Table& table, bench::JsonReport& json, Gates& gates)
{
    const char* space = Exec::name();
    auto unfused = make_advection(nv, false);
    auto fused = make_advection(nv, true);
    if (!fused.fused_active()) {
        std::printf("%s: fused pipeline unavailable (reduced precision?) -- "
                    "skipping\n",
                    space);
        return;
    }

    auto fu = make_f(unfused);
    auto ff = make_f(fused);
    const double t_unfused =
            bench::stable_seconds(timing,
                                  [&] { unfused.template step<Exec>(fu); })
                    .seconds;
    const double t_fused =
            bench::stable_seconds(timing,
                                  [&] { fused.template step<Exec>(ff); })
                    .seconds;
    const double speedup = t_fused > 0.0 ? t_unfused / t_fused : 0.0;
    gates.min_speedup =
            speedup < gates.min_speedup ? speedup : gates.min_speedup;

    // Span-cost-model traffic of one step each.
    const double bytes_unfused = modeled_step_bytes<Exec>(unfused, fu);
    const double bytes_fused = modeled_step_bytes<Exec>(fused, ff);
    if (!(bytes_fused < bytes_unfused)) {
        gates.bytes_regressed = true;
    }

    // 0-ULP oracle: one step from identical initial values.
    auto ou = make_f(unfused);
    auto of = make_f(fused);
    unfused.template step<Exec>(ou);
    fused.template step<Exec>(of);
    std::uint64_t ulp = 0;
    for (std::size_t j = 0; j < nv; ++j) {
        for (std::size_t i = 0; i < kNx; ++i) {
            const std::uint64_t d = ulp_distance(ou(j, i), of(j, i));
            ulp = d > ulp ? d : ulp;
        }
    }
    gates.worst_ulp = ulp > gates.worst_ulp ? ulp : gates.worst_ulp;
    if (ulp > 0) {
        std::printf("FAIL: %s fused step is not bitwise identical to the "
                    "unfused step (max %llu ULP)\n",
                    space, static_cast<unsigned long long>(ulp));
    }

    for (const bool is_fused : {false, true}) {
        const double t = is_fused ? t_fused : t_unfused;
        const double bytes = is_fused ? bytes_fused : bytes_unfused;
        table.add_row(
                {space, is_fused ? "fused" : "unfused", perf::fmt_time(t),
                 perf::fmt(perf::glups(kNx, nv, t), 4),
                 perf::fmt(bytes * 1e-6, 1) + " MB",
                 is_fused ? perf::fmt(speedup, 2) + "x" : std::string("-"),
                 is_fused ? std::to_string(ulp) : std::string("-")});
        json.add("ablation_fused_advection",
                 {{"space", bench::JsonReport::str(space)},
                  {"path", bench::JsonReport::str(is_fused ? "fused"
                                                           : "unfused")},
                  {"n", bench::JsonReport::num(kNx)},
                  {"batch", bench::JsonReport::num(nv)},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"seconds", bench::JsonReport::num(t)},
                  {"model_bytes_per_step", bench::JsonReport::num(bytes)},
                  {"speedup_vs_unfused",
                   bench::JsonReport::num(is_fused ? speedup : 1.0)},
                  {"max_ulp_vs_unfused",
                   bench::JsonReport::num(is_fused
                                                  ? static_cast<double>(ulp)
                                                  : 0.0)}});
    }
}

} // namespace

BENCHMARK(bm_step)
        ->ArgNames({"Nv", "fused"})
        ->Args({1000, 0})
        ->Args({1000, 1})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    const auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    const auto timing = pspl::bench::TimingControl::from_args(argc, argv);
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t nv = batch_size();
    std::printf("\nFused build->evaluate advection ablation -- (Nx, Nv) = "
                "(%zu, %zu), degree 3 uniform, fused-spmv SIMD ladder\n\n",
                kNx, nv);
    perf::Table table({"backend", "path", "time/step", "GLUPS",
                       "model bytes/step", "speedup vs unfused",
                       "max ULP vs unfused"});
    Gates gates;
    sweep_backend<pspl::Serial>(nv, timing, table, json, gates);
#if defined(PSPL_ENABLE_OPENMP)
    sweep_backend<pspl::OpenMP>(nv, timing, table, json, gates);
#endif
    sweep_backend<pspl::Threads>(nv, timing, table, json, gates);
    std::printf("%s\n", table.str().c_str());

    json.write();
    trace.write();

    if (gates.min_speedup > 1e299) {
        // Every backend skipped (reduced-precision run): nothing to gate.
        std::printf("fused pipeline inactive; gates skipped\n");
        return 0;
    }
    int rc = 0;
    if (gates.worst_ulp != 0) {
        std::printf("GATE FAIL: fused vs unfused worst ULP %llu (target 0)\n",
                    static_cast<unsigned long long>(gates.worst_ulp));
        rc = 1;
    }
    if (gates.bytes_regressed) {
        std::printf("GATE FAIL: fused step does not move strictly fewer "
                    "modeled DRAM bytes than unfused\n");
        rc = 1;
    }
    const char* floor_env = std::getenv("PSPL_BENCH_MIN_SPEEDUP");
    const double floor = floor_env != nullptr && *floor_env != '\0'
                                 ? std::atof(floor_env)
                                 : 0.75;
    if (gates.min_speedup < floor) {
        std::printf("GATE FAIL: fused speedup %.2fx below hard floor %.2fx\n",
                    gates.min_speedup, floor);
        rc = 1;
    } else if (gates.min_speedup < 1.2) {
        std::printf("WARNING: fused speedup %.2fx below the 1.2x target "
                    "(full-scale baseline gates via compare_bench.py)\n",
                    gates.min_speedup);
    }
    std::printf("worst ULP %llu, min speedup %.2fx across backends\n",
                static_cast<unsigned long long>(gates.worst_ulp),
                gates.min_speedup);
    return rc;
}
