// Ablation: COO sparsification threshold for the Schur corner blocks
// (paper §IV-D). beta = Q^{-1} gamma decays exponentially away from the
// corner; a threshold of ~1e-15 keeps ~48 of 999 entries at machine
// accuracy. This sweep measures nnz, solve time and accuracy as the
// threshold varies, quantifying the paper's design point.
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "hostlapack/dense.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SchurSolver;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

void bm_threshold(benchmark::State& state)
{
    const double threshold = std::pow(10.0, -static_cast<double>(state.range(0)));
    const std::size_t batch = 2048;
    const auto basis = bench::make_basis(3, true, kN);
    SchurSolver::Options opts;
    opts.sparsify_threshold = threshold;
    SplineBuilder builder(basis, BuilderVersion::FusedSpmv, opts);
    View2D<double> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
    state.counters["beta_nnz"] = static_cast<double>(
            builder.solver().device_data().beta_coo.nnz());
}

} // namespace

BENCHMARK(bm_threshold)
        ->Arg(8)
        ->Arg(15)
        ->Arg(18)
        ->Unit(benchmark::kMillisecond)
        ->Name("spmv_build/threshold_1e_minus");

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t batch = bench::env_size("PSPL_BENCH_BATCH", 8192);
    const auto basis = bench::make_basis(3, true, kN);
    std::printf("\nCOO threshold ablation -- degree 3 uniform, (n, batch) = "
                "(%zu, %zu)\n\n",
                kN, batch);

    // Reference solution with dense corners (threshold 0 -> keep all).
    SchurSolver::Options dense_opts;
    dense_opts.sparsify_threshold = 0.0;
    SplineBuilder dense_builder(basis, BuilderVersion::Fused, dense_opts);
    View2D<double> ref("ref", kN, 1);
    bench::fill_rhs(basis, ref);
    dense_builder.build_inplace(ref);

    perf::Table table(
            {"threshold", "beta nnz", "lambda nnz", "time", "max |dx| vs dense"});
    for (const double threshold : {0.0, 1e-18, 1e-15, 1e-12, 1e-8, 1e-4}) {
        SchurSolver::Options opts;
        opts.sparsify_threshold = threshold;
        SplineBuilder builder(basis, BuilderVersion::FusedSpmv, opts);
        const auto& data = builder.solver().device_data();

        View2D<double> b("b", kN, batch);
        bench::fill_rhs(basis, b);
        builder.build_inplace(b);
        const double t =
                bench::median_seconds(3, [&] { builder.build_inplace(b); });

        View2D<double> one("one", kN, 1);
        bench::fill_rhs(basis, one);
        builder.build_inplace(one);
        double max_dx = 0.0;
        for (std::size_t i = 0; i < kN; ++i) {
            max_dx = std::max(max_dx, std::abs(one(i, 0) - ref(i, 0)));
        }

        char label[32];
        std::snprintf(label, sizeof(label), "%.0e", threshold);
        table.add_row({label, std::to_string(data.beta_coo.nnz()),
                       std::to_string(data.lambda_coo.nnz()),
                       perf::fmt_time(t), perf::fmt(max_dx, 16)});
    }
    std::printf("%s\nThe paper's ~1e-15 design point keeps tens of entries "
                "with zero accuracy loss; aggressive thresholds (1e-4) "
                "trade visible error for little extra speed.\n",
                table.str().c_str());
    return 0;
}
