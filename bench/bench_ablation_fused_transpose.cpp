// Ablation: transpose fusion. The paper (§V-C) suggests "further
// optimizations may be possible by fusing transpose kernels with spline
// building kernels"; this build implements that idea as a transpose-free
// advection step (one streaming copy + a zero-copy transposed view for the
// batched solve) and measures it against the standard Algorithm 2 path
// (two strided transposes).
#include "advection/semi_lagrangian.hpp"
#include "bench/common.hpp"
#include "parallel/profiling.hpp"
#include "parallel/view.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

namespace {

using namespace pspl;

constexpr std::size_t kNx = 1024;

advection::BatchedAdvection1D make_advection(std::size_t nv, bool fused)
{
    const auto basis = bench::make_basis(3, true, kNx);
    const auto v = advection::uniform_velocities(nv, -1.0, 1.0);
    advection::BatchedAdvection1D::Config cfg;
    cfg.fuse_transpose = fused;
    // This harness ablates *transpose* fusion in isolation: the fused
    // build->evaluate pipeline (bench_ablation_fused_advection) bypasses
    // the transposes altogether and would blank both rows.
    cfg.fuse_build_eval = advection::BatchedAdvection1D::Config::Fuse::Off;
    return advection::BatchedAdvection1D(basis, v, 1e-3, cfg);
}

View2D<double> make_f(const advection::BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = 1.0 + 0.1 * std::sin(6.28 * adv.points()(i));
        }
    }
    return f;
}

void bm_step(benchmark::State& state)
{
    const auto nv = static_cast<std::size_t>(state.range(0));
    const bool fused = state.range(1) != 0;
    auto adv = make_advection(nv, fused);
    auto f = make_f(adv);
    for (auto _ : state) {
        adv.step(f);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kNx * nv));
}

} // namespace

BENCHMARK(bm_step)
        ->ArgNames({"Nv", "fused"})
        ->Args({1000, 0})
        ->Args({1000, 1})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    const auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    const auto timing = pspl::bench::TimingControl::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t nv = bench::env_size("PSPL_BENCH_BATCH", 4000);
    std::printf("\nTranspose-fusion ablation -- 1D advection step, (Nx, Nv) "
                "= (%zu, %zu), degree 3 uniform, backend %s\n\n",
                kNx, nv, DefaultExecutionSpace::name());
    perf::Table table({"path", "time/step", "GLUPS", "solve time",
                       "transpose+copy time"});
    for (const bool fused : {false, true}) {
        auto adv = make_advection(nv, fused);
        auto f = make_f(adv);
        const double t =
                bench::stable_seconds(timing, [&] { adv.step(f); }).seconds;
        // Per-kernel breakdown of exactly one step.
        profiling::clear();
        profiling::set_enabled(true);
        adv.step(f);
        profiling::set_enabled(false);
        const double solve =
                profiling::total_seconds_matching("pspl_splines_solve");
        const double movement =
                profiling::total_seconds_matching("transpose")
                + profiling::total_seconds_matching("copy_f");
        table.add_row({fused ? "fused (copy + transposed view)"
                             : "standard (two transposes)",
                       perf::fmt_time(t),
                       perf::fmt(perf::glups(kNx, nv, t), 4),
                       perf::fmt_time(solve), perf::fmt_time(movement)});
    }
    std::printf("%s\nThe fused path trades two strided transposes for one "
                "streaming copy; the solve then reads contiguous rows, "
                "which also helps CPU caches (cf. bench_ablation_layout).\n",
                table.str().c_str());
    return 0;
}
