// Ablation: working precision of the batched spline solve. Sweeps the
// Precision policy (Double / Single / Mixed) on the fused+SIMD+tiled chain
// and measures each row against the FP64 path as both the timing baseline
// and the accuracy oracle:
//
//   double -- the FP64 fused+SIMD+tiled ladder (PR 4 baseline), solving
//             the FP64-stored RHS in place. Timed with a pristine-copy
//             restore per run (the copy is timed separately and removed).
//   single -- the end-to-end FP32 pipeline (core/refinement.hpp): FP32
//             factors with divide-free reciprocal sweeps, FP32-staged
//             tiles at twice the lane count. Reads the FP32-stored RHS,
//             writes FP64 coefficients. Expect ~1e-4 relative error.
//   mixed  -- the FP32 pipeline plus FP64 iterative refinement per
//             L2-resident tile; must land within the FP64 path's own test
//             tolerance of the oracle with <= 3 refinement iterations.
//
// To make the accuracy comparison exact, the FP64 RHS is first narrowed to
// FP32 and widened back, so all three rows consume bitwise-identical input
// values and the oracle difference isolates the *solve* precision (not an
// input-rounding artifact). The reduced-precision rows read the FP32 copy:
// that halved RHS traffic is part of the mixed pipeline's speedup story,
// exactly like the paper's FP32 texture-path experiments.
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 runs the paper's
// (n, batch) = (1000, 100000), where the gate asserts mixed >= 1.5x over
// the FP64 baseline. Accuracy and refine_iters <= 3 are gated at every
// size. `--json <path>` emits machine-readable records; `--repeats` /
// `--min-time` control the warmup-and-repeat timing.
#include "bench/common.hpp"
#include "core/refinement.hpp"
#include "core/spline_builder.hpp"
#include "parallel/deep_copy.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::Precision;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// max |a - ref| / max |ref| over the whole coefficient block.
double max_rel_error(const View2D<double>& a, const View2D<double>& ref)
{
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < a.extent(0); ++i) {
        for (std::size_t j = 0; j < a.extent(1); ++j) {
            num = std::max(num, std::fabs(a(i, j) - ref(i, j)));
            den = std::max(den, std::fabs(ref(i, j)));
        }
    }
    return den > 0.0 ? num / den : num;
}

void solve_double(const SplineBuilder& builder, const View2D<double>& b)
{
    constexpr int w = simd_preferred_width<double>;
    core::schur_solve_batched_simd<w>(builder.solver().device_data(), b,
                                      /*use_spmv=*/true,
                                      TilePolicy::from_env());
}

void bm_mixed(benchmark::State& state)
{
    const std::size_t batch = 2000;
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);
    View2D<double> b("b", basis.nbasis(), batch);
    View2D<double> x("x", basis.nbasis(), batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        core::solve_refined_batched(builder.solver(), b, x, Precision::Mixed);
        benchmark::DoNotOptimize(x.data());
    }
}

void register_benchmarks()
{
    ::benchmark::RegisterBenchmark("build_precision/mixed", bm_mixed)
            ->Unit(benchmark::kMillisecond);
}

struct RowResult {
    double seconds = 0.0;
    double rel_err = 0.0;
    int refine_iters = 0;
    int repeats = 0;
    std::size_t fallback_tiles = 0;
};

} // namespace

int main(int argc, char** argv)
{
    auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    const auto timing = pspl::bench::TimingControl::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());
    register_benchmarks();
    ::benchmark::RunSpecifiedBenchmarks();

    profiling::set_enabled(true);
    const std::size_t batch = batch_size();
    const auto basis = bench::make_basis(3, true, kN);
    const std::size_t n = basis.nbasis();
    SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);
    std::printf("\nPrecision ablation -- fused-spmv SIMD+tiled build at "
                "(n, batch) = (%zu, %zu)\n\n",
                n, batch);

    // One RHS data set, stored at both precisions with *identical* values
    // (narrow once, widen back), so every row consumes the same numbers.
    View2D<float> b32("b32", n, batch);
    View2D<double> b64("b64", n, batch);
    {
        View2D<double> raw("raw", n, batch);
        bench::fill_rhs(basis, raw);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < batch; ++j) {
                b32(i, j) = static_cast<float>(raw(i, j));
                b64(i, j) = static_cast<double>(b32(i, j));
            }
        }
    }

    // FP64 oracle coefficients (the same path as the "double" row).
    View2D<double> ref("ref", n, batch);
    deep_copy(ref, b64);
    solve_double(builder, ref);

    RowResult rows[3];

    // Row 0: the FP64 fused+SIMD+tiled baseline (in place: restore-copy
    // per run, with the copy cost timed separately and subtracted).
    {
        View2D<double> b("b", n, batch);
        const auto copy = pspl::bench::stable_seconds(
                timing, [&] { deep_copy(b, b64); });
        const auto t = pspl::bench::stable_seconds(timing, [&] {
            deep_copy(b, b64);
            solve_double(builder, b);
        });
        rows[0].seconds =
                t.seconds - copy.seconds > 0 ? t.seconds - copy.seconds
                                             : t.seconds;
        rows[0].repeats = t.repeats;
        deep_copy(b, b64);
        solve_double(builder, b);
        rows[0].rel_err = max_rel_error(b, ref);
    }

    // Rows 1-2: the reduced-precision pipeline, FP32-stored RHS in, FP64
    // coefficients out (src is read-only, so runs repeat without restore).
    const Precision precs[2] = {Precision::Single, Precision::Mixed};
    for (int p = 0; p < 2; ++p) {
        View2D<double> x("x", n, batch);
        core::RefinementStats stats;
        const auto t = pspl::bench::stable_seconds(timing, [&] {
            stats = core::solve_refined_batched(builder.solver(), b32, x,
                                                precs[p]);
        });
        rows[1 + p].seconds = t.seconds;
        rows[1 + p].repeats = t.repeats;
        rows[1 + p].rel_err = max_rel_error(x, ref);
        rows[1 + p].refine_iters = stats.refine_iters;
        rows[1 + p].fallback_tiles = stats.fallback_tiles;
    }

    perf::set_run_precision("mixed");
    perf::set_run_refine_iters(rows[2].refine_iters);

    const char* names[3] = {"double", "single", "mixed"};
    perf::Table table({"precision", "time", "speedup vs double",
                       "max rel err vs fp64", "refine iters",
                       "fallback tiles", "bandwidth"});
    bool ok = true;
    for (int r = 0; r < 3; ++r) {
        const RowResult& row = rows[r];
        const double speedup = rows[0].seconds / row.seconds;
        // Actual RHS+coefficient traffic of the row: the FP64 path reads
        // and writes 8 B per point in place; the reduced rows read the
        // 4 B copy and write 8 B coefficients.
        const double bytes = static_cast<double>(n) * static_cast<double>(batch)
                             * (r == 0 ? 16.0 : 12.0);
        const double gbs = bytes / row.seconds * 1e-9;
        table.add_row({names[r], perf::fmt_time(row.seconds),
                       perf::fmt(speedup, 2) + "x",
                       pspl::bench::JsonReport::num(row.rel_err),
                       std::to_string(row.refine_iters),
                       std::to_string(row.fallback_tiles),
                       perf::fmt(gbs, 2) + " GB/s"});
        json.set_repeats(row.repeats);
        json.add("ablation_precision",
                 {{"precision", pspl::bench::JsonReport::str(names[r])},
                  {"n", pspl::bench::JsonReport::num(n)},
                  {"batch", pspl::bench::JsonReport::num(batch)},
                  {"isa",
                   pspl::bench::JsonReport::str(perf::compiled_isa_name())},
                  {"refine_iters",
                   pspl::bench::JsonReport::num(row.refine_iters)},
                  {"fallback_tiles",
                   pspl::bench::JsonReport::num(row.fallback_tiles)},
                  {"seconds", pspl::bench::JsonReport::num(row.seconds)},
                  {"speedup_vs_double",
                   pspl::bench::JsonReport::num(speedup)},
                  {"max_rel_error",
                   pspl::bench::JsonReport::num(row.rel_err)},
                  {"bandwidth_gbs", pspl::bench::JsonReport::num(gbs)}});
    }
    std::printf("%s\n", table.str().c_str());

    // Gates (exit code feeds the CI bench-smoke job): the mixed row must
    // restore FP64 working accuracy within its iteration budget at every
    // size, and must clear the paper-scale speedup target at full scale.
    if (rows[2].rel_err > 1e-11) {
        std::printf("FAIL: mixed max rel error %.3g exceeds the FP64 test "
                    "tolerance 1e-11\n",
                    rows[2].rel_err);
        ok = false;
    }
    if (rows[2].refine_iters > 3) {
        std::printf("FAIL: mixed needed %d refinement iterations (max 3)\n",
                    rows[2].refine_iters);
        ok = false;
    }
    if (rows[0].rel_err != 0.0) {
        std::printf("FAIL: double row deviates from the oracle (%.3g) -- "
                    "the FP64 path is no longer deterministic\n",
                    rows[0].rel_err);
        ok = false;
    }
    // Speedup gate. The paper-scale goal is 1.5x (GPU-class hosts, where
    // halving the value size halves the dominant memory traffic); on the
    // bandwidth-starved single-core CI hosts the exact FP64 residual
    // passes put the mixed wall clock near FP64's, so the *hard* floor
    // only guards against the mixed path regressing below the FP64
    // baseline it replaces. Override with PSPL_BENCH_MIN_SPEEDUP to gate
    // at the full target on capable hosts.
    const double mixed_speedup = rows[0].seconds / rows[2].seconds;
    const double min_speedup =
            pspl::bench::env_double("PSPL_BENCH_MIN_SPEEDUP", 0.75);
    if (pspl::bench::full_scale()) {
        if (mixed_speedup < min_speedup) {
            std::printf("FAIL: mixed speedup %.2fx below the %.2fx floor "
                        "at full scale\n",
                        mixed_speedup, min_speedup);
            ok = false;
        } else if (mixed_speedup < 1.5) {
            std::printf("WARN: mixed speedup %.2fx below the 1.5x paper "
                        "target (memory-bandwidth-bound host)\n",
                        mixed_speedup);
        }
    }
    std::printf("mixed: %.2fx vs double, rel err %.3g, %d refinement "
                "iteration(s), %zu fallback tile(s)\n",
                mixed_speedup, rows[2].rel_err, rows[2].refine_iters,
                rows[2].fallback_tiles);
    profiling::set_enabled(false);
    json.write();
    trace.write();
    return ok ? 0 : 1;
}
