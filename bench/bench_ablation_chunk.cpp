// Ablation: cols_per_chunk in the chunked iterative driver (Listing 3). The
// paper pins 8192 on CPUs and 65535 on GPUs (the latter a hardware grid
// limit). This sweep shows the sensitivity: chunking bounds the buffer
// memory, and on a CPU the chunk size mainly trades loop overhead against
// working-set size.
#include "bench/common.hpp"
#include "core/iterative_spline_builder.hpp"
#include "parallel/view.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace pspl;
using core::IterativeSplineBuilder;
using iterative::IterativeKind;

constexpr std::size_t kN = 512;

IterativeSplineBuilder make_builder(std::size_t chunk)
{
    const auto basis = bench::make_basis(3, true, kN);
    IterativeSplineBuilder::Options opts;
    opts.kind = IterativeKind::BiCGStab;
    opts.config.tolerance = 1e-14;
    opts.cols_per_chunk = chunk;
    opts.max_block_size = 8;
    return IterativeSplineBuilder(basis, opts);
}

void bm_chunk(benchmark::State& state)
{
    const auto chunk = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = 2048;
    auto builder = make_builder(chunk);
    const auto basis = builder.basis();
    View2D<double> b("b", kN, batch);
    for (auto _ : state) {
        bench::fill_rhs(basis, b);
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kN * batch));
}

} // namespace

BENCHMARK(bm_chunk)
        ->Arg(64)
        ->Arg(512)
        ->Arg(2048)
        ->Unit(benchmark::kMillisecond)
        ->Name("iterative_build/cols_per_chunk");

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t batch = bench::env_size("PSPL_BENCH_BATCH", 4096);
    std::printf("\nChunk-size ablation -- BiCGStab spline build, (n, batch) "
                "= (%zu, %zu)\n\n",
                kN, batch);
    perf::Table table({"cols_per_chunk", "time", "iters", "buffer MB"});
    for (const std::size_t chunk : {std::size_t{64}, std::size_t{512},
                                    std::size_t{2048}, std::size_t{8192}}) {
        auto builder = make_builder(chunk);
        View2D<double> b("b", kN, batch);
        bench::fill_rhs(builder.basis(), b);
        builder.build_inplace(b); // warm-up
        iterative::SolveStats stats;
        const double t = bench::median_seconds(3, [&] {
            bench::fill_rhs(builder.basis(), b);
            stats = builder.build_inplace(b);
        });
        const double buffer_mb =
                static_cast<double>(std::min(chunk, batch) * kN) * 8.0 / 1e6;
        table.add_row({std::to_string(chunk), perf::fmt_time(t),
                       std::to_string(stats.max_iterations),
                       perf::fmt(buffer_mb, 1)});
    }
    std::printf("%s\nThe paper's motivation for chunking was GPU memory "
                "exhaustion at full batch; iteration counts are unaffected "
                "by the chunk size.\n",
                table.str().c_str());
    return 0;
}
