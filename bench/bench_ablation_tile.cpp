// Ablation: batch tile width x SIMD pack width. The tile-resident solve
// (core/batched_solve.hpp + parallel/tiling.hpp) stages an (n, tile) block
// of RHS columns into a per-thread arena slot and runs the whole fused
// Schur chain on it while it is L2-resident; this harness sweeps the tile
// width against the pack width on the fused-spmv chain and verifies every
// tiled result is *bitwise identical* (0 ULP) to the untiled dispatch.
//
// The expected shape of the result: the untiled SIMD path loads one
// isolated pack (W * 8 B) per matrix row with a batch-sized stride between
// rows -- a latency-bound pattern -- while the tiled gather sweeps
// (tile * 8 B) contiguous runs that the hardware stream prefetcher can
// follow. Tiles larger than L2 give the locality back; tiles near the pack
// width degenerate to the untiled pattern.
//
// `auto` rows resolve the tile from the L2 cache model, so their effective
// width is machine-dependent; it is emitted under the metric-named field
// "effective_tile_count" (never record identity) to keep reduced-size CI
// diffs against the committed full-scale baseline structural-noise free.
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 runs the paper's
// (n, batch) = (1000, 100000). `--json <path>` emits machine-readable
// records; other flags are forwarded to google-benchmark.
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// ULP distance via the monotonic lexicographic mapping of IEEE doubles.
std::uint64_t ulp_distance(double a, double b)
{
    const auto lex = [](double d) {
        std::uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
    };
    const std::uint64_t x = lex(a);
    const std::uint64_t y = lex(b);
    return x > y ? x - y : y - x;
}

/// The swept tile requests: "off" is the untiled reference, the explicit
/// widths ablate the blocking, "auto" is the L2 cache model (which falls
/// back to untiled past the L3 streaming guard -- at the paper's full
/// batch the auto row should match "off", at cache-resident batches it
/// should match the best explicit width).
struct TileCase {
    const char* request;
    TilePolicy policy;
};

std::vector<TileCase> tile_cases()
{
    return {{"off", TilePolicy::off()},
            {"32", TilePolicy::explicit_width(32)},
            {"128", TilePolicy::explicit_width(128)},
            {"512", TilePolicy::explicit_width(512)},
            {"2048", TilePolicy::explicit_width(2048)},
            {"auto", TilePolicy::automatic()}};
}

template <int W>
void solve_tiled(const SplineBuilder& builder, const View2D<double>& b,
                 const TilePolicy& policy)
{
    core::schur_solve_batched_simd<W>(builder.solver().device_data(), b,
                                      /*use_spmv=*/true, policy);
}

template <int W>
void bm_tile(benchmark::State& state)
{
    const std::size_t batch = batch_size();
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);
    const std::size_t tile = static_cast<std::size_t>(state.range(0));
    const TilePolicy policy = tile == 0 ? TilePolicy::off()
                                        : TilePolicy::explicit_width(tile);
    View2D<double> b("b", basis.nbasis(), batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        solve_tiled<W>(builder, b, policy);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetBytesProcessed(
            static_cast<int64_t>(state.iterations())
            * static_cast<int64_t>(basis.nbasis() * batch * sizeof(double)));
}

void register_benchmarks()
{
    // range(0) is the explicit tile width; 0 means untiled.
    ::benchmark::RegisterBenchmark("build_tiled/W8", bm_tile<8>)
            ->Arg(0)
            ->Arg(128)
            ->Unit(benchmark::kMillisecond);
}

/// One pack-width row group: untiled reference first (it is both the timed
/// baseline and the bitwise-identity oracle), then every tile case.
template <int W>
void sweep_width(std::size_t batch, perf::Table& table,
                 bench::JsonReport& json, std::uint64_t& worst_ulp)
{
    const auto basis = bench::make_basis(3, true, kN);
    const std::size_t n = basis.nbasis();
    SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);

    // Untiled reference coefficients: the 0-ULP oracle for every tile case.
    View2D<double> ref("ref", n, batch);
    bench::fill_rhs(basis, ref);
    solve_tiled<W>(builder, ref, TilePolicy::off());
    View2D<double> b("b", n, batch);

    double off_seconds = 0.0;
    for (const TileCase& tc : tile_cases()) {
        bench::fill_rhs(basis, b);
        solve_tiled<W>(builder, b, tc.policy); // warm-up
        const double t = bench::median_seconds(3, [&] {
            bench::fill_rhs(basis, b);
            solve_tiled<W>(builder, b, tc.policy);
        });
        const double fill =
                bench::median_seconds(3, [&] { bench::fill_rhs(basis, b); });
        const double solve = t - fill > 0 ? t - fill : t;
        // Bitwise-identity check on a fresh solve of the same values.
        bench::fill_rhs(basis, b);
        solve_tiled<W>(builder, b, tc.policy);
        std::uint64_t ulp = 0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < batch; ++j) {
                const std::uint64_t d = ulp_distance(ref(i, j), b(i, j));
                ulp = d > ulp ? d : ulp;
            }
        }
        worst_ulp = ulp > worst_ulp ? ulp : worst_ulp;
        if (std::strcmp(tc.request, "off") == 0) {
            off_seconds = solve;
        }
        const double speedup = off_seconds / solve;
        const double gbs = perf::achieved_bandwidth_gbs(n, batch, solve);
        const std::size_t eff = tc.policy.tile_cols(
                n, batch, sizeof(double), static_cast<std::size_t>(W));
        table.add_row({"W=" + std::to_string(W), tc.request,
                       std::to_string(eff), perf::fmt_time(solve),
                       perf::fmt(speedup, 2) + "x",
                       perf::fmt(gbs, 2) + " GB/s", std::to_string(ulp)});
        json.add("ablation_tile",
                 {{"width", bench::JsonReport::num(W)},
                  {"tile_request", bench::JsonReport::str(tc.request)},
                  {"n", bench::JsonReport::num(n)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"effective_tile_count",
                   bench::JsonReport::num(eff)},
                  {"seconds", bench::JsonReport::num(solve)},
                  {"speedup_vs_untiled", bench::JsonReport::num(speedup)},
                  {"bandwidth_gbs", bench::JsonReport::num(gbs)},
                  {"max_ulp_vs_untiled",
                   bench::JsonReport::num(static_cast<double>(ulp))}});
        if (ulp > 0) {
            std::printf("FAIL: W=%d tile=%s is not bitwise identical to the "
                        "untiled path (max %llu ULP)\n",
                        W, tc.request,
                        static_cast<unsigned long long>(ulp));
        }
    }
}

} // namespace

int main(int argc, char** argv)
{
    auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());
    register_benchmarks();
    ::benchmark::RunSpecifiedBenchmarks();

    // Profile the summary sweep so --json embeds the span report (with the
    // per-tile "tile_w=<cols>" bandwidth attribution) and --trace captures
    // a loadable timeline of the tile ladder.
    profiling::set_enabled(true);
    const std::size_t batch = batch_size();
    std::printf("\nTile-width ablation -- fused-spmv SIMD build at "
                "(n, batch) = (%zu, %zu), L2 = %zu KiB\n\n",
                kN, batch, l2_cache_bytes() / 1024);
    perf::Table table({"pack", "tile", "effective", "time",
                       "speedup vs untiled", "bandwidth (8B/pt)",
                       "max ULP vs untiled"});
    std::uint64_t worst_ulp = 0;
    sweep_width<2>(batch, table, json, worst_ulp);
    sweep_width<4>(batch, table, json, worst_ulp);
    sweep_width<8>(batch, table, json, worst_ulp);
    std::printf("%s\n", table.str().c_str());
    std::printf("worst-case ULP vs untiled across the sweep: %llu "
                "(target: 0, bitwise identical)\n",
                static_cast<unsigned long long>(worst_ulp));
    profiling::set_enabled(false);
    json.write();
    trace.write();
    return worst_ulp == 0 ? 0 : 1;
}
