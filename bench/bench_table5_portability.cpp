// Table V reproduction: achieved bandwidth of the spline building kernel per
// spline type per platform, and the Pennycook performance portability metric
// P(a, p, H) (Eq. 8).
//
// Two parts:
//  1. Validation of the metric machinery against the paper's own published
//     bandwidths (Icelake / A100 / MI250X), re-deriving the paper's P
//     values from Eq. 8-10 and Table II peaks.
//  2. Measurement on this build's platform set H = {Serial, OpenMP,
//     Threads} (every compiled host backend), using the paper's
//     8-bytes-per-point bandwidth model (§V-B) and the roofline from the
//     host peak specs (override with PSPL_PEAK_GFLOPS / PSPL_PEAK_BW_GBS).
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "parallel/profiling.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace pspl;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// Paper Table V: measured bandwidth (GB/s) per spline type per platform.
struct PaperRow {
    const char* label;
    int degree;
    bool uniform;
    double icelake_gbs;
    double a100_gbs;
    double mi250x_gbs;
    double paper_p;
};

constexpr PaperRow kPaperTable5[] = {
        {"uniform (Degree 3)", 3, true, 9.75, 268.6, 247.8, 0.086},
        {"uniform (Degree 4)", 4, true, 3.83, 252.6, 154.6, 0.043},
        {"uniform (Degree 5)", 5, true, 3.83, 251.3, 153.5, 0.043},
        {"non-uniform (Degree 3)", 3, false, 5.37, 208.4, 123.5, 0.051},
        {"non-uniform (Degree 4)", 4, false, 5.15, 169.9, 81.8, 0.044},
        {"non-uniform (Degree 5)", 5, false, 4.96, 142.2, 59.2, 0.038},
};

template <class Exec>
double measure_build_seconds(int degree, bool uniform, std::size_t batch)
{
    const auto basis = bench::make_basis(degree, uniform, kN);
    SplineBuilder builder(basis);
    View2D<double> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    builder.build_inplace<Exec>(b); // warm-up
    return bench::median_seconds(3, [&] { builder.build_inplace<Exec>(b); });
}

void bm_build_serial(benchmark::State& state)
{
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis);
    View2D<double> b("b", kN, 4096);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        builder.build_inplace<Serial>(b);
        benchmark::DoNotOptimize(b.data());
    }
}

} // namespace

BENCHMARK(bm_build_serial)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    // --- Part 1: re-derive the paper's P values from its bandwidths --------
    std::printf("\nTable V part 1 -- P(a,p,H) re-derived from the paper's "
                "published bandwidths and Table II peaks\n\n");
    const auto platforms = perf::paper_platforms();
    perf::Table t1({"spline", "Icelake %", "A100 %", "MI250X %",
                    "P (re-derived)", "P (paper)"});
    for (const auto& row : kPaperTable5) {
        // For a memory-bound kernel the bandwidth fraction IS the
        // architectural efficiency (Eq. 9 with the roofline at the memory
        // slope), which is how the paper evaluates Table V.
        const double e_ice =
                perf::bandwidth_fraction_percent(row.icelake_gbs, platforms[0]);
        const double e_a100 =
                perf::bandwidth_fraction_percent(row.a100_gbs, platforms[1]);
        const double e_mi =
                perf::bandwidth_fraction_percent(row.mi250x_gbs, platforms[2]);
        const double p = perf::pennycook_portability({e_ice, e_a100, e_mi});
        t1.add_row({row.label, perf::fmt(e_ice, 2), perf::fmt(e_a100, 2),
                    perf::fmt(e_mi, 2), perf::fmt(p, 3),
                    perf::fmt(row.paper_p, 3)});
    }
    std::printf("%s\n", t1.str().c_str());

    // --- Part 2: measured on this machine's backend set --------------------
    const std::size_t batch = batch_size();
    const auto host = perf::host_spec();
    std::printf("Table V part 2 -- measured spline build bandwidth on this "
                "host, (n, batch) = (%zu, %zu); host peaks: %.1f GFlops, "
                "%.1f GB/s\n\n",
                kN, batch, host.peak_gflops, host.peak_bw_gbs);
    perf::Table t2({"spline", "Serial GB/s", "Serial %", "OpenMP GB/s",
                    "OpenMP %", "Threads GB/s", "Threads %", "P(host set)"});
    for (const auto& row : kPaperTable5) {
        const double ts = measure_build_seconds<Serial>(row.degree,
                                                        row.uniform, batch);
        const double bw_s = perf::achieved_bandwidth_gbs(kN, batch, ts);
        const double e_s = perf::bandwidth_fraction_percent(bw_s, host);
#if defined(PSPL_ENABLE_OPENMP)
        const double tp = measure_build_seconds<OpenMP>(row.degree,
                                                        row.uniform, batch);
#else
        const double tp = ts;
#endif
        const double bw_p = perf::achieved_bandwidth_gbs(kN, batch, tp);
        const double e_p = perf::bandwidth_fraction_percent(bw_p, host);
        const double tt = measure_build_seconds<Threads>(row.degree,
                                                         row.uniform, batch);
        const double bw_t = perf::achieved_bandwidth_gbs(kN, batch, tt);
        const double e_t = perf::bandwidth_fraction_percent(bw_t, host);
        const double p = perf::pennycook_portability({e_s, e_p, e_t});
        t2.add_row({row.label, perf::fmt(bw_s, 2), perf::fmt(e_s, 2),
                    perf::fmt(bw_p, 2), perf::fmt(e_p, 2),
                    perf::fmt(bw_t, 2), perf::fmt(e_t, 2),
                    perf::fmt(p, 3)});
    }
    std::printf("%s\nPaper shape: uniform degree 3 achieves the best "
                "bandwidth; non-uniform and higher degrees degrade "
                "(gbtrs/pbtrs touch more matrix data per point).\n",
                t2.str().c_str());
    return 0;
}
