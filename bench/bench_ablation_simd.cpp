// Ablation: SIMD-across-batch pack width. The fused builder kernels run
// with W adjacent batch entries per iteration in simd<double, W> packs
// (parallel/simd.hpp); this harness sweeps the scalar fused kernel against
// W = 2/4/8 packs across degrees 3/4/5 on uniform and non-uniform grids --
// i.e. every Q-factor kind of the structure analysis (pttrs/pbtrs/gbtrs).
//
// The expected shape of the result: the Q-solve recurrences are serial in
// the matrix dimension, so the scalar kernel is latency-bound; packs put W
// independent columns behind each vector instruction and the kernel
// approaches the bandwidth roof instead. The table reports the effective
// vector width (scalar time / SIMD time) and verifies the SIMD coefficients
// match the scalar ones to <= 4 ULP.
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 runs the paper's
// (n, batch) = (1000, 100000). `--json <path>` emits machine-readable
// records; other flags are forwarded to google-benchmark.
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// ULP distance via the monotonic lexicographic mapping of IEEE doubles.
std::uint64_t ulp_distance(double a, double b)
{
    const auto lex = [](double d) {
        std::uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
    };
    const std::uint64_t x = lex(a);
    const std::uint64_t y = lex(b);
    return x > y ? x - y : y - x;
}

/// Solve with the explicit-width SIMD fused chain (W = 1 means the scalar
/// fused kernel, the ablation baseline).
template <int W>
void solve_w(const SplineBuilder& builder, const View2D<double>& b)
{
    if constexpr (W == 1) {
        builder.build_inplace(b);
    } else {
        core::schur_solve_batched_simd<W>(builder.solver().device_data(), b,
                                          /*use_spmv=*/false);
    }
}

template <int W>
void bm_simd_width(benchmark::State& state)
{
    const std::size_t batch = batch_size();
    const int degree = static_cast<int>(state.range(0));
    const bool uniform = state.range(1) != 0;
    const auto basis = bench::make_basis(degree, uniform, kN);
    SplineBuilder builder(basis, BuilderVersion::Fused);
    View2D<double> b("b", basis.nbasis(), batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        solve_w<W>(builder, b);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetBytesProcessed(
            static_cast<int64_t>(state.iterations())
            * static_cast<int64_t>(basis.nbasis() * batch * sizeof(double)));
}

void register_benchmarks()
{
    const auto add = [](const char* name, auto fn) {
        ::benchmark::RegisterBenchmark(name, fn)
                ->Args({3, 1})
                ->Args({5, 0})
                ->Unit(benchmark::kMillisecond);
    };
    add("build_simd/scalar", bm_simd_width<1>);
    add("build_simd/W2", bm_simd_width<2>);
    add("build_simd/W4", bm_simd_width<4>);
    add("build_simd/W8", bm_simd_width<8>);
}

struct SweepResult {
    double scalar_seconds = 0.0;
    double w4_seconds = 0.0;
};

/// One (degree, grid) row group of the summary table: time scalar vs packs,
/// check ULP agreement, record JSON.
SweepResult sweep_case(int degree, bool uniform, std::size_t batch,
                       perf::Table& table, bench::JsonReport& json)
{
    const auto basis = bench::make_basis(degree, uniform, kN);
    const std::size_t n = basis.nbasis();
    SplineBuilder builder(basis, BuilderVersion::Fused);
    const char* grid = uniform ? "uniform" : "non-uniform";

    // Scalar fused reference coefficients (for the ULP check) and time.
    View2D<double> ref("ref", n, batch);
    bench::fill_rhs(basis, ref);
    builder.build_inplace(ref);
    View2D<double> b("b", n, batch);

    const auto time_case = [&](auto solve) {
        bench::fill_rhs(basis, b);
        solve(); // warm-up (and the ULP payload: b now holds coefficients)
        const double t = bench::median_seconds(5, [&] {
            bench::fill_rhs(basis, b);
            solve();
        });
        const double fill =
                bench::median_seconds(3, [&] { bench::fill_rhs(basis, b); });
        return t - fill > 0 ? t - fill : t;
    };

    SweepResult result;
    const auto run_width = [&](int w, auto solve) {
        const double t = time_case(solve);
        // ULP check on a fresh solve of the same values.
        bench::fill_rhs(basis, b);
        solve();
        std::uint64_t ulp = 0;
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < batch; ++j) {
                const std::uint64_t d = ulp_distance(ref(i, j), b(i, j));
                ulp = d > ulp ? d : ulp;
            }
        }
        if (w == 1) {
            result.scalar_seconds = t;
        }
        if (w == 4) {
            result.w4_seconds = t;
        }
        const double speedup = result.scalar_seconds / t;
        const double gbs = perf::achieved_bandwidth_gbs(n, batch, t);
        table.add_row(
                {"deg " + std::to_string(degree) + " " + grid,
                 w == 1 ? "scalar" : "W=" + std::to_string(w),
                 perf::fmt_time(t), perf::fmt(speedup, 2) + "x",
                 w == 1 ? "-"
                        : perf::fmt(perf::simd_lane_efficiency_percent(
                                            result.scalar_seconds, t, w),
                                    0) + "%",
                 perf::fmt(gbs, 2) + " GB/s", std::to_string(ulp)});
        json.add("ablation_simd",
                 {{"degree", bench::JsonReport::num(degree)},
                  {"uniform", uniform ? "true" : "false"},
                  {"width", bench::JsonReport::num(w)},
                  {"n", bench::JsonReport::num(n)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"seconds", bench::JsonReport::num(t)},
                  {"speedup_vs_scalar", bench::JsonReport::num(speedup)},
                  {"bandwidth_gbs", bench::JsonReport::num(gbs)},
                  {"max_ulp_vs_scalar",
                   bench::JsonReport::num(static_cast<double>(ulp))}});
        if (ulp > 4) {
            std::printf("FAIL: W=%d deg=%d %s exceeds 4 ULP (max %llu)\n", w,
                        degree, grid,
                        static_cast<unsigned long long>(ulp));
        }
    };

    run_width(1, [&] { solve_w<1>(builder, b); });
    run_width(2, [&] { solve_w<2>(builder, b); });
    run_width(4, [&] { solve_w<4>(builder, b); });
    run_width(8, [&] { solve_w<8>(builder, b); });
    return result;
}

} // namespace

int main(int argc, char** argv)
{
    auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());
    register_benchmarks();
    ::benchmark::RunSpecifiedBenchmarks();

    // Profile the summary sweep so --json embeds the span report and
    // --trace captures a loadable timeline of the pack-width ladder.
    profiling::set_enabled(true);
    const std::size_t batch = batch_size();
    std::printf("\nSIMD pack-width ablation -- fused build at (n, batch) = "
                "(%zu, %zu)\n\n",
                kN, batch);
    perf::Table table({"case", "width", "time", "speedup vs scalar",
                       "lane efficiency", "bandwidth (8B/pt)",
                       "max ULP vs scalar"});
    SweepResult acceptance;
    for (const int degree : {3, 4, 5}) {
        for (const bool uniform : {true, false}) {
            const auto r = sweep_case(degree, uniform, batch, table, json);
            if (degree == 3 && uniform) {
                acceptance = r;
            }
        }
    }
    std::printf("%s\n", table.str().c_str());
    const double w4_speedup = acceptance.w4_seconds > 0.0
            ? acceptance.scalar_seconds / acceptance.w4_seconds
            : 0.0;
    std::printf("degree-3 uniform W=4 speedup vs scalar fused: %.2fx "
                "(target >= 1.5x)\n",
                w4_speedup);
    std::printf("effective vector width at W=4: %.2f lanes of 4\n",
                perf::effective_vector_width(acceptance.scalar_seconds,
                                             acceptance.w4_seconds));
    profiling::set_enabled(false);
    json.write();
    trace.write();
    return 0;
}
