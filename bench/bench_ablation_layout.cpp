// Ablation: RHS memory layout. The paper keeps the batch index contiguous
// (GPU-coalesced) and notes (§V-A) that this is hostile to CPU caches:
// "For a better cache usage, it is ideal to parallelize over the
//  non-contiguous dimension ... This requires a layout abstraction which
//  remains as a future work."
// The View layer here *is* that abstraction, so the experiment the paper
// defers can be run: build splines on a (n, batch) block stored LayoutRight
// (batch contiguous, paper layout) vs LayoutLeft (RHS-column contiguous,
// CPU-friendly).
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "parallel/view.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

template <class Layout>
void bm_layout(benchmark::State& state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, BuilderVersion::FusedSpmv);
    View<double, 2, Layout> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kN * batch));
}

} // namespace

BENCHMARK(bm_layout<LayoutRight>)
        ->Arg(1024)
        ->Arg(8192)
        ->Unit(benchmark::kMillisecond)
        ->Name("build/batch_contiguous_LayoutRight");
BENCHMARK(bm_layout<LayoutLeft>)
        ->Arg(1024)
        ->Arg(8192)
        ->Unit(benchmark::kMillisecond)
        ->Name("build/rhs_contiguous_LayoutLeft");

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t batch = bench::env_size(
            "PSPL_BENCH_BATCH", bench::full_scale() ? 100000 : 20000);
    std::printf("\nLayout ablation -- fused-spmv build at (n, batch) = "
                "(%zu, %zu), degree 3 uniform\n\n",
                kN, batch);
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, BuilderVersion::FusedSpmv);

    perf::Table table({"layout", "time", "bandwidth (8B/pt)"});
    {
        View<double, 2, LayoutRight> b("b", kN, batch);
        bench::fill_rhs(basis, b);
        builder.build_inplace(b);
        const double t =
                bench::median_seconds(5, [&] { builder.build_inplace(b); });
        table.add_row({"batch contiguous (paper/GPU)", perf::fmt_time(t),
                       perf::fmt(perf::achieved_bandwidth_gbs(kN, batch, t), 2)
                               + " GB/s"});
    }
    {
        View<double, 2, LayoutLeft> b("b", kN, batch);
        bench::fill_rhs(basis, b);
        builder.build_inplace(b);
        const double t =
                bench::median_seconds(5, [&] { builder.build_inplace(b); });
        table.add_row({"RHS contiguous (CPU-friendly)", perf::fmt_time(t),
                       perf::fmt(perf::achieved_bandwidth_gbs(kN, batch, t), 2)
                               + " GB/s"});
    }
    std::printf("%s\nExpected on CPUs: the RHS-contiguous layout wins, "
                "confirming the paper's future-work hypothesis.\n",
                table.str().c_str());
    return 0;
}
