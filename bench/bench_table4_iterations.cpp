// Table IV reproduction: iteration counts of the Ginkgo-analogue solvers for
// the spline system at (Nx, Nv) = (1000, 100000), tolerance 1e-15, with a
// block-Jacobi preconditioner.
//
// Paper values:
//                        | GMRES | BiCGStab
//   uniform (degree 3)   |  17   |  10
//   uniform (degree 4)   |  22   |  14
//   uniform (degree 5)   |  30   |  21
//   nonuniform (degree 3)|  24   |  14
//   nonuniform (degree 4)|  32   |  21
//   nonuniform (degree 5)|  41   |  28
//
// Iteration counts are independent of the batch size (each column solves the
// same matrix), so a reduced batch reproduces the paper's numbers' *shape*
// exactly: growth with degree and with non-uniformity.
#include "bench/common.hpp"
#include "core/iterative_spline_builder.hpp"
#include "parallel/view.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace {

using namespace pspl;
using core::IterativeSplineBuilder;
using iterative::IterativeKind;

constexpr std::size_t kN = 1000;

std::size_t iterations_for(int degree, bool uniform, IterativeKind kind,
                           std::size_t batch, std::size_t block_size)
{
    const auto basis = bench::make_basis(degree, uniform, kN);
    IterativeSplineBuilder::Options opts;
    opts.kind = kind;
    opts.config.tolerance = 1e-15;
    opts.config.max_iterations = 2000;
    opts.max_block_size = block_size;
    IterativeSplineBuilder builder(basis, opts);
    View2D<double> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    const auto stats = builder.build_inplace(b);
    return stats.max_iterations;
}

void bm_iterative_solve(benchmark::State& state)
{
    const int degree = static_cast<int>(state.range(0));
    const auto kind = state.range(1) != 0 ? IterativeKind::BiCGStab
                                          : IterativeKind::GMRES;
    const auto basis = bench::make_basis(degree, true, kN);
    IterativeSplineBuilder::Options opts;
    opts.kind = kind;
    opts.config.tolerance = 1e-15;
    IterativeSplineBuilder builder(basis, opts);
    View2D<double> b("b", kN, 16);
    for (auto _ : state) {
        bench::fill_rhs(basis, b);
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
}

} // namespace

BENCHMARK(bm_iterative_solve)
        ->ArgNames({"degree", "bicgstab"})
        ->Args({3, 1})
        ->Args({5, 1})
        ->Args({3, 0})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t batch = bench::env_size("PSPL_BENCH_BATCH", 64);
    std::printf("\nTable IV analog -- iterations to ||Ax-b||/||b|| < 1e-15, "
                "n = %zu, block-Jacobi(8)\n\n",
                kN);
    perf::Table table({"spline", "GMRES bJ(1)", "BiCGStab bJ(1)",
                       "GMRES bJ(8)", "BiCGStab bJ(8)", "paper GMRES",
                       "paper BiCGStab"});
    const char* paper[6][2] = {{"17", "10"}, {"22", "14"}, {"30", "21"},
                               {"24", "14"}, {"32", "21"}, {"41", "28"}};
    int row = 0;
    for (const bool uniform : {true, false}) {
        for (const int degree : {3, 4, 5}) {
            const auto g1 = iterations_for(degree, uniform,
                                           IterativeKind::GMRES, batch, 1);
            const auto b1 = iterations_for(degree, uniform,
                                           IterativeKind::BiCGStab, batch, 1);
            const auto g8 = iterations_for(degree, uniform,
                                           IterativeKind::GMRES, batch, 8);
            const auto b8 = iterations_for(degree, uniform,
                                           IterativeKind::BiCGStab, batch, 8);
            std::string label = uniform ? "uniform (Degree " : "non-uniform (Degree ";
            label += std::to_string(degree) + ")";
            table.add_row({label, std::to_string(g1), std::to_string(b1),
                           std::to_string(g8), std::to_string(b8),
                           paper[row][0], paper[row][1]});
            ++row;
        }
    }
    std::printf("%s\nShape to hold: counts grow with spline degree; GMRES "
                "needs more iterations than BiCGStab (each BiCGStab "
                "iteration does two matrix-vector products); block-Jacobi "
                "block size interpolates between the bJ(1) and bJ(8) "
                "columns.\nKnown divergence: the paper reports higher "
                "counts on non-uniform grids; Greville-collocated spline "
                "matrices are uniformly well conditioned, so this build's "
                "counts are grid-independent (see EXPERIMENTS.md).\n",
                table.str().c_str());
    return 0;
}
