// Figure 2 (bottom row, d-f) reproduction: achieved GLUPS of the 1-D
// batched advection with the iterative (Ginkgo analogue) spline path,
// scanning Nv at Nx = 1024 for degrees 3/4/5, uniform and non-uniform.
//
// Paper configuration (§III-B / §V-A): GMRES on CPUs with cols_per_chunk =
// 8192, BiCGStab on GPUs with 65535; block-Jacobi preconditioner; tolerance
// 1e-15. Both solvers are swept here since this build has a single (CPU)
// device. Paper shape: the iterative path is slower than the direct path
// everywhere, degrades with spline degree (more iterations), and is nearly
// identical for uniform vs non-uniform meshes.
//
// Defaults sweep Nv in {100, 1000}; PSPL_BENCH_FULL=1 extends to 10000.
#include "advection/semi_lagrangian.hpp"
#include "bench/common.hpp"
#include "parallel/view.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

namespace {

using namespace pspl;
using iterative::IterativeKind;

constexpr std::size_t kNx = 1024;

std::vector<std::size_t> nv_sweep()
{
    std::vector<std::size_t> nv = {100, 1000};
    if (bench::full_scale()) {
        nv.push_back(10000);
    }
    return nv;
}

advection::BatchedAdvection1D make_advection(int degree, bool uniform,
                                             std::size_t nv,
                                             IterativeKind kind)
{
    const auto basis = bench::make_basis(degree, uniform, kNx);
    const auto v = advection::uniform_velocities(nv, -1.0, 1.0);
    advection::BatchedAdvection1D::Config cfg;
    cfg.method = advection::BatchedAdvection1D::Method::Iterative;
    cfg.iterative.kind = kind;
    cfg.iterative.config.tolerance = 1e-15;
    cfg.iterative.cols_per_chunk = 8192; // paper CPU chunk size
    cfg.iterative.max_block_size = 8;
    return advection::BatchedAdvection1D(basis, v, 1e-3, cfg);
}

View2D<double> make_f(const advection::BatchedAdvection1D& adv)
{
    View2D<double> f("f", adv.nv(), adv.nx());
    for (std::size_t j = 0; j < adv.nv(); ++j) {
        for (std::size_t i = 0; i < adv.nx(); ++i) {
            f(j, i) = 1.0 + 0.1 * std::sin(6.28 * adv.points()(i));
        }
    }
    return f;
}

void bm_iterative_advection(benchmark::State& state)
{
    const int degree = static_cast<int>(state.range(0));
    const auto kind = state.range(1) != 0 ? IterativeKind::BiCGStab
                                          : IterativeKind::GMRES;
    auto adv = make_advection(degree, true, 100, kind);
    auto f = make_f(adv);
    for (auto _ : state) {
        adv.step(f);
        benchmark::DoNotOptimize(f.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(kNx * 100));
}

} // namespace

BENCHMARK(bm_iterative_advection)
        ->ArgNames({"degree", "bicgstab"})
        ->Args({3, 1})
        ->Args({3, 0})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    std::printf("\nFig. 2 (d-f) analog -- 1D batched advection GLUPS, "
                "iterative spline path, Nx = %zu, tol 1e-15\n\n",
                kNx);
    perf::Table table({"solver", "mesh", "degree", "Nv", "time/step",
                       "GLUPS", "iters"});
    for (const auto kind : {IterativeKind::GMRES, IterativeKind::BiCGStab}) {
        for (const bool uniform : {true, false}) {
            for (const int degree : {3, 4, 5}) {
                for (const std::size_t nv : nv_sweep()) {
                    auto adv = make_advection(degree, uniform, nv, kind);
                    auto f = make_f(adv);
                    iterative::SolveStats stats = adv.step(f); // warm-up
                    const double t = bench::median_seconds(
                            nv <= 100 ? 3 : 1,
                            [&] { stats = adv.step(f); });
                    table.add_row(
                            {to_string(kind),
                             uniform ? "uniform" : "non-uniform",
                             std::to_string(degree), std::to_string(nv),
                             perf::fmt_time(t),
                             perf::fmt(perf::glups(kNx, nv, t), 5),
                             std::to_string(stats.max_iterations)});
                }
            }
        }
    }
    std::printf("%s\nPaper shape: iterative well below direct; GLUPS drops "
                "as degree (iteration count) grows; uniform and non-uniform "
                "nearly overlap.\n",
                table.str().c_str());
    return 0;
}
