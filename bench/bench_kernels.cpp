// Per-kernel microbenchmarks of the batched-serial solvers -- the
// counterpart of the paper's §IV per-kernel profiling with Nsight
// systems/compute (pttrs 2.941 ms, two gemms 3.795/4.423 ms, getrs 6.5 us
// at (1000, 100000) on A100). One benchmark per solver kernel, all at the
// same (n, batch) working set, so relative kernel costs can be compared
// directly with the paper's Gantt-chart numbers.
#include "batched/batched.hpp"
#include "bench/common.hpp"
#include "hostlapack/gbtrf.hpp"
#include "hostlapack/getrf.hpp"
#include "hostlapack/gttrf.hpp"
#include "hostlapack/pbtrf.hpp"
#include "hostlapack/pttrf.hpp"
#include "parallel/parallel.hpp"
#include "parallel/subview.hpp"
#include "sparse/coo.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace pspl;

std::size_t bench_n()
{
    return bench::env_size("PSPL_BENCH_N", 1000);
}

std::size_t bench_batch()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 8192);
}

View2D<double> rhs_block(std::size_t n, std::size_t batch)
{
    View2D<double> b("b", n, batch);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < batch; ++j) {
            b(i, j) = bench::hash_noise(i, j);
        }
    }
    return b;
}

void bm_pttrs(benchmark::State& state)
{
    const std::size_t n = bench_n();
    const std::size_t batch = bench_batch();
    View1D<double> d("d", n);
    View1D<double> e("e", n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 2.0 / 3.0;
        if (i + 1 < n) {
            e(i) = 1.0 / 6.0;
        }
    }
    hostlapack::pttrf(d, e);
    auto b = rhs_block(n, batch);
    for (auto _ : state) {
        parallel_for("pttrs", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialPttrs<>::invoke(d, e, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

void bm_gttrs(benchmark::State& state)
{
    const std::size_t n = bench_n();
    const std::size_t batch = bench_batch();
    View1D<double> dl("dl", n - 1);
    View1D<double> d("d", n);
    View1D<double> du("du", n - 1);
    View1D<double> du2("du2", n - 2);
    View1D<int> ipiv("ipiv", n);
    for (std::size_t i = 0; i < n; ++i) {
        d(i) = 0.6;
        if (i + 1 < n) {
            dl(i) = 0.2;
            du(i) = 0.15;
        }
    }
    hostlapack::gttrf(dl, d, du, du2, ipiv);
    auto b = rhs_block(n, batch);
    for (auto _ : state) {
        parallel_for("gttrs", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialGttrs<>::invoke(dl, d, du, du2, ipiv, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

void bm_pbtrs(benchmark::State& state)
{
    const std::size_t n = bench_n();
    const std::size_t kd = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = bench_batch();
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j <= std::min(n - 1, i + kd); ++j) {
            a(i, j) = 0.1;
            a(j, i) = 0.1;
        }
        a(i, i) = 1.0;
    }
    auto sym = hostlapack::pack_sym_band(a, kd);
    hostlapack::pbtrf(sym);
    const auto ab = sym.ab;
    auto b = rhs_block(n, batch);
    for (auto _ : state) {
        parallel_for("pbtrs", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialPbtrs<>::invoke(ab, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

void bm_gbtrs(benchmark::State& state)
{
    const std::size_t n = bench_n();
    const auto klu = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = bench_batch();
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t jlo = i > klu ? i - klu : 0;
        const std::size_t jhi = std::min(n - 1, i + klu);
        for (std::size_t j = jlo; j <= jhi; ++j) {
            a(i, j) = 0.1;
        }
        a(i, i) = 1.0;
    }
    auto band = hostlapack::pack_band(a, klu, klu);
    View1D<int> ipiv("ipiv", n);
    hostlapack::gbtrf(band, ipiv);
    const auto ab = band.ab;
    auto b = rhs_block(n, batch);
    for (auto _ : state) {
        parallel_for("gbtrs", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialGbtrs<>::invoke(ab, static_cast<int>(klu),
                                           static_cast<int>(klu), ipiv, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

void bm_getrs_small(benchmark::State& state)
{
    // The Schur-complement solve: a tiny k x k dense system per RHS. The
    // paper reports this kernel as negligible (6.5 us); verify it stays so.
    const auto k = static_cast<std::size_t>(state.range(0));
    const std::size_t batch = bench_batch();
    View2D<double> a("a", k, k);
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            a(i, j) = (i == j) ? 2.0 : 0.3;
        }
    }
    View1D<int> ipiv("ipiv", k);
    hostlapack::getrf(a, ipiv);
    auto b = rhs_block(k, batch);
    for (auto _ : state) {
        parallel_for("getrs", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialGetrs<>::invoke(a, ipiv, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(k * batch));
}

void bm_spmv_coo(benchmark::State& state)
{
    // Corner-block SpMV: ~50 nonzeros against a (n) vector, like the
    // sparsified beta block.
    const std::size_t n = bench_n();
    const std::size_t nnz = 50;
    const std::size_t batch = bench_batch();
    View2D<double> dense("dense", n, 1);
    for (std::size_t i = 0; i < nnz; ++i) {
        dense(i * (n / nnz), 0) = 0.01;
    }
    const auto coo = sparse::Coo::from_dense(dense, 0.0);
    auto x = rhs_block(1, batch);
    auto y = rhs_block(n, batch);
    for (auto _ : state) {
        parallel_for("spmv", batch, [=](std::size_t i) {
            auto xc = subview(x, ALL, i);
            auto yc = subview(y, ALL, i);
            batched::SerialSpmvCoo::invoke(-1.0, coo, xc, yc);
        });
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(nnz * batch));
}

} // namespace

BENCHMARK(bm_pttrs)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_gttrs)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_pbtrs)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_gbtrs)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_getrs_small)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_spmv_coo)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
