// 2-D tensor-product spline build throughput: the N-D construction the
// paper describes in §II-B ("For N-D splines, N equations ... batched over
// the other dimensions") measured as two batched 1-D solves + transposes.
// Reports GLUPS over the (nx * ny) plane and the per-phase breakdown.
#include "bench/common.hpp"
#include "core/spline_builder_2d.hpp"
#include "parallel/profiling.hpp"
#include "parallel/view.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

namespace {

using namespace pspl;
using core::SplineBuilder2D;

SplineBuilder2D make_builder(int degree, std::size_t n)
{
    return SplineBuilder2D(bench::make_basis(degree, true, n),
                           bench::make_basis(degree, true, n));
}

void fill_plane(const SplineBuilder2D& builder, const View2D<double>& v)
{
    const auto px = builder.basis_x().interpolation_points();
    const auto py = builder.basis_y().interpolation_points();
    for (std::size_t i = 0; i < v.extent(0); ++i) {
        for (std::size_t j = 0; j < v.extent(1); ++j) {
            v(i, j) = std::sin(6.28 * px[i]) * std::cos(6.28 * py[j])
                      + 0.1 * bench::hash_noise(i, j);
        }
    }
}

void bm_build2d(benchmark::State& state)
{
    const int degree = static_cast<int>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    auto builder = make_builder(degree, n);
    View2D<double> v("v", n, n);
    fill_plane(builder, v);
    for (auto _ : state) {
        builder.build_inplace(v);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * n));
}

} // namespace

BENCHMARK(bm_build2d)
        ->ArgNames({"degree", "n"})
        ->Args({3, 256})
        ->Args({3, 512})
        ->Args({5, 256})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    const auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    (void)backend;
    const auto timing = pspl::bench::TimingControl::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t n = bench::env_size("PSPL_BENCH_N", 512);
    std::printf("\n2D tensor-product spline build, (nx, ny) = (%zu, %zu), "
                "backend %s\n\n",
                n, n, DefaultExecutionSpace::name());
    perf::Table table({"degree", "time/build", "GLUPS", "x-solve", "y-solve",
                       "transposes"});
    for (const int degree : {3, 4, 5}) {
        auto builder = make_builder(degree, n);
        View2D<double> v("v", n, n);
        fill_plane(builder, v);
        const double t =
                bench::stable_seconds(timing,
                                      [&] { builder.build_inplace(v); })
                        .seconds;
        profiling::clear();
        profiling::set_enabled(true);
        builder.build_inplace(v);
        profiling::set_enabled(false);
        const double solve =
                profiling::total_seconds_matching("pspl_splines_solve");
        const double transposes =
                profiling::total_seconds_matching("spline2d_transpose");
        table.add_row({std::to_string(degree), perf::fmt_time(t),
                       perf::fmt(perf::glups(n, n, t), 4),
                       perf::fmt_time(0.5 * solve), perf::fmt_time(0.5 * solve),
                       perf::fmt_time(transposes)});
    }
    std::printf("%s\nBoth 1-D passes run the same batched kernels as the 1-D "
                "benches; the y pass pays two extra transposes (cf. "
                "bench_ablation_fused_transpose).\n",
                table.str().c_str());
    return 0;
}
