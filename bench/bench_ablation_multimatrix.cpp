// Ablation: single-matrix multi-RHS vs multi-matrix batched solving.
// §II-B of the paper: "this use case is quite unique and most performance
// portable libraries are not optimized for this problem. In general, most
// of the batched solvers are optimized to deal with multiple matrices as
// well as multiple right-hand sides."
//
// This bench quantifies the difference the paper exploits: when the matrix
// is fixed, it is factorized ONCE on the host and only the O(n) solve runs
// per batch entry; the generic multi-matrix path must factorize (O(n^3)
// dense, or O(n*k^2) banded) per entry. Measured here with dense
// SerialGetrf+SerialGetrs per entry vs one shared factorization.
#include "batched/batched.hpp"
#include "bench/common.hpp"
#include "hostlapack/getrf.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/parallel.hpp"
#include "parallel/subview.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace pspl;

/// One well-conditioned dense matrix.
View2D<double> dense_matrix(std::size_t n)
{
    View2D<double> a("a", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            a(i, j) = bench::hash_noise(i, j);
        }
        a(i, i) += 4.0;
    }
    return a;
}

void bm_single_matrix(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto batch = static_cast<std::size_t>(state.range(1));
    auto lu = dense_matrix(n);
    View1D<int> ipiv("ipiv", n);
    hostlapack::getrf(lu, ipiv); // amortized once
    View2D<double> b("b", n, batch);
    bench::fill_rhs_raw(b);
    for (auto _ : state) {
        parallel_for("solve", batch, [=](std::size_t i) {
            auto col = subview(b, ALL, i);
            batched::SerialGetrs<>::invoke(lu, ipiv, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

void bm_multi_matrix(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto batch = static_cast<std::size_t>(state.range(1));
    const auto a0 = dense_matrix(n);
    View3D<double> mats("mats", batch, n, n);
    View2D<int> ipivs("ipivs", batch, n);
    View2D<double> b("b", n, batch);
    bench::fill_rhs_raw(b);
    for (auto _ : state) {
        // The generic batched mode: each entry owns (and must factorize)
        // its matrix.
        state.PauseTiming();
        for (std::size_t e = 0; e < batch; ++e) {
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    mats(e, i, j) = a0(i, j);
                }
            }
        }
        state.ResumeTiming();
        parallel_for("factor_solve", batch, [=](std::size_t e) {
            auto a = subview(mats, e, ALL, ALL);
            auto piv = subview(ipivs, e, ALL);
            batched::SerialGetrf<>::invoke(a, piv);
            auto col = subview(b, ALL, e);
            batched::SerialGetrs<>::invoke(a, piv, col);
        });
        benchmark::DoNotOptimize(b.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations())
                            * static_cast<int64_t>(n * batch));
}

} // namespace

BENCHMARK(bm_single_matrix)
        ->ArgNames({"n", "batch"})
        ->Args({64, 512})
        ->Args({128, 512})
        ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_multi_matrix)
        ->ArgNames({"n", "batch"})
        ->Args({64, 512})
        ->Args({128, 512})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    std::printf("\nSingle-matrix vs multi-matrix batched solve (dense "
                "getrf/getrs)\n\n");
    perf::Table table({"n", "batch", "single-matrix solve",
                       "multi-matrix factor+solve", "ratio"});
    for (const std::size_t n : {std::size_t{64}, std::size_t{128}}) {
        const std::size_t batch = 256;
        auto lu = dense_matrix(n);
        View1D<int> ipiv("ipiv", n);
        hostlapack::getrf(lu, ipiv);
        View2D<double> b("b", n, batch);
        bench::fill_rhs_raw(b);
        const double t_single = bench::median_seconds(5, [&] {
            parallel_for("solve", batch, [=](std::size_t i) {
                auto col = subview(b, ALL, i);
                batched::SerialGetrs<>::invoke(lu, ipiv, col);
            });
        });

        const auto a0 = dense_matrix(n);
        View3D<double> mats("mats", batch, n, n);
        View2D<int> ipivs("ipivs", batch, n);
        const double t_multi = bench::median_seconds(3, [&] {
            for (std::size_t e = 0; e < batch; ++e) {
                for (std::size_t i = 0; i < n; ++i) {
                    for (std::size_t j = 0; j < n; ++j) {
                        mats(e, i, j) = a0(i, j);
                    }
                }
            }
            parallel_for("factor_solve", batch, [=](std::size_t e) {
                auto a = subview(mats, e, ALL, ALL);
                auto piv = subview(ipivs, e, ALL);
                batched::SerialGetrf<>::invoke(a, piv);
                auto col = subview(b, ALL, e);
                batched::SerialGetrs<>::invoke(a, piv, col);
            });
        });
        table.add_row({std::to_string(n), std::to_string(batch),
                       perf::fmt_time(t_single), perf::fmt_time(t_multi),
                       perf::fmt(t_multi / t_single, 1) + "x"});
    }
    std::printf("%s\nThe O(n^3)-per-entry factorization dwarfs the O(n^2) "
                "solve: this is why the paper's fixed-matrix problem "
                "deserves (and gets) its own solver path with one host-side "
                "factorization.\n",
                table.str().c_str());
    return 0;
}
