// Ablation: preconditioner choice for the iterative spline path. The paper
// pins block-Jacobi with max_block_size tunable in [1, 32]; this sweep
// quantifies that knob and adds ILU(0) (exact on the banded part of the
// spline matrix, approximate only at the periodic corners) as the upper
// bound on what a pattern-based preconditioner can do.
#include "bench/common.hpp"
#include "core/iterative_spline_builder.hpp"
#include "parallel/view.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace {

using namespace pspl;
using core::IterativeSplineBuilder;
using iterative::IterativeKind;

constexpr std::size_t kN = 1000;

IterativeSplineBuilder make_builder(int degree, std::size_t block_size,
                                    bool ilu0)
{
    const auto basis = bench::make_basis(degree, true, kN);
    IterativeSplineBuilder::Options opts;
    opts.kind = IterativeKind::BiCGStab;
    opts.config.tolerance = 1e-15;
    opts.max_block_size = block_size == 0 && !ilu0 ? 0 : block_size;
    opts.use_ilu0 = ilu0;
    return IterativeSplineBuilder(basis, opts);
}

void bm_precond(benchmark::State& state)
{
    const auto bs = static_cast<std::size_t>(state.range(0));
    const bool ilu0 = state.range(1) != 0;
    auto builder = make_builder(3, bs == 0 ? 1 : bs, ilu0);
    View2D<double> b("b", kN, 256);
    for (auto _ : state) {
        bench::fill_rhs(builder.basis(), b);
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
}

} // namespace

BENCHMARK(bm_precond)
        ->ArgNames({"block", "ilu0"})
        ->Args({1, 0})
        ->Args({8, 0})
        ->Args({0, 1})
        ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();

    const std::size_t batch = bench::env_size("PSPL_BENCH_BATCH", 512);
    std::printf("\nPreconditioner ablation -- BiCGStab spline build, n = %zu, "
                "batch = %zu, tol 1e-15\n\n",
                kN, batch);
    perf::Table table({"degree", "preconditioner", "iters", "time"});
    for (const int degree : {3, 5}) {
        struct Case {
            const char* label;
            std::size_t bs;
            bool ilu0;
        };
        const Case cases[] = {{"none", 0, false},
                              {"block-Jacobi(1)", 1, false},
                              {"block-Jacobi(8)", 8, false},
                              {"block-Jacobi(32)", 32, false},
                              {"ILU(0)", 0, true}};
        for (const auto& c : cases) {
            const auto basis = bench::make_basis(degree, true, kN);
            IterativeSplineBuilder::Options opts;
            opts.kind = IterativeKind::BiCGStab;
            opts.config.tolerance = 1e-15;
            opts.max_block_size = c.bs;
            opts.use_ilu0 = c.ilu0;
            IterativeSplineBuilder builder(basis, opts);
            View2D<double> b("b", kN, batch);
            bench::fill_rhs(basis, b);
            builder.build_inplace(b); // warm-up
            iterative::SolveStats stats;
            const double t = bench::median_seconds(3, [&] {
                bench::fill_rhs(basis, b);
                stats = builder.build_inplace(b);
            });
            table.add_row({std::to_string(degree), c.label,
                           std::to_string(stats.max_iterations),
                           perf::fmt_time(t)});
        }
    }
    std::printf("%s\nILU(0) collapses the iteration count (the band "
                "factorization is exact; only the periodic corners are "
                "approximated) at a higher per-iteration cost; the paper's "
                "block-Jacobi sits between plain Jacobi and ILU(0).\n",
                table.str().c_str());
    return 0;
}
