// Table III reproduction: impact of the optimization ladder on the spline
// building kernel. The paper measures the solve phase of a degree-3 uniform
// spline at (n, batch) = (1000, 100000) with 10 iterations on Icelake, A100
// and MI250X:
//
//            |  Icelake  |  A100    |  MI250X
//   Original | 145.8 ms  | 11.39 ms | 16.14 ms
//   Fusion   | 112.1 ms  |  5.06 ms | 11.34 ms
//   spmv     |  82.0 ms  |  2.98 ms |  3.22 ms
//
// This harness measures the same three versions on the host backends and
// prints the analogous table plus the modelled ideal memory traffic
// (the paper's 0.8 GB perfect-cache figure, §IV-B).
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 switches to the paper's
// 100000. `--benchmark_*` flags are forwarded to google-benchmark.
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "parallel/deep_copy.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

void bm_builder_version(benchmark::State& state, BuilderVersion version)
{
    const std::size_t batch = batch_size();
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, version);
    View2D<double> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetBytesProcessed(
            static_cast<int64_t>(state.iterations())
            * static_cast<int64_t>(kN * batch * sizeof(double)));
    state.counters["points"] = static_cast<double>(kN * batch);
}

} // namespace

int main(int argc, char** argv)
{
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());

    const std::size_t batch = batch_size();
    ::benchmark::RegisterBenchmark(
            "spline_build/original",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::Baseline);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/kernel_fusion",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::Fused);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/gemv_to_spmv",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSpmv);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/kernel_fusion_simd",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSimd);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/gemv_to_spmv_simd",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSpmvSimd);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RunSpecifiedBenchmarks();

    // ---- Paper-shaped summary (Table III) ----------------------------------
    const auto basis = bench::make_basis(3, true, kN);
    View2D<double> b("b", kN, batch);

    std::printf("\nTable III analog -- spline build at (n, batch) = (%zu, "
                "%zu), degree 3 uniform\n",
                kN, batch);
    const double ideal_gb = static_cast<double>(kN) * static_cast<double>(batch)
                            * 8.0 * 1e-9;
    std::printf("perfect-cache RHS traffic (paper's 0.8 GB figure): %.3f GB "
                "per solve\n\n",
                ideal_gb);

    perf::Table table({"Version", "Time", "Speedup vs original",
                       "Bandwidth (8B/pt model)"});
    double baseline_time = 0.0;
    for (const auto version :
         {BuilderVersion::Baseline, BuilderVersion::Fused,
          BuilderVersion::FusedSpmv, BuilderVersion::FusedSimd,
          BuilderVersion::FusedSpmvSimd}) {
        SplineBuilder builder(basis, version);
        bench::fill_rhs(basis, b);
        builder.build_inplace(b); // warm-up
        // Profile only the timed section; every kernel span recorded below
        // nests under a per-version root so the snapshot/trace separates the
        // optimization ladder rungs.
        profiling::set_enabled(true);
        double t = 0.0;
        {
            profiling::ScopedSpan version_span(to_string(version));
            t = bench::median_seconds(5, [&] {
                bench::fill_rhs(basis, b);
                builder.build_inplace(b);
            });
        }
        profiling::set_enabled(false);
        // Subtract nothing: fill time is part of the measured lambda, so
        // measure fill alone and remove it.
        const double fill = bench::median_seconds(
                3, [&] { bench::fill_rhs(basis, b); });
        const double solve = t - fill > 0 ? t - fill : t;
        if (version == BuilderVersion::Baseline) {
            baseline_time = solve;
        }
        const double gbs = perf::achieved_bandwidth_gbs(kN, batch, solve);
        table.add_row({to_string(version), perf::fmt_time(solve),
                       perf::fmt(baseline_time / solve, 2) + "x",
                       perf::fmt(gbs, 2) + " GB/s"});
        json.add("table3_spline_build",
                 {{"version", bench::JsonReport::str(to_string(version))},
                  {"n", bench::JsonReport::num(kN)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"degree", bench::JsonReport::num(3)},
                  {"uniform", "true"},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"seconds", bench::JsonReport::num(solve)},
                  {"speedup_vs_baseline",
                   bench::JsonReport::num(baseline_time / solve)},
                  {"bandwidth_gbs", bench::JsonReport::num(gbs)}});
    }
    std::printf("%s\nPaper speedups: fusion 1.30x/2.25x/1.42x, spmv "
                "1.78x/3.82x/5.01x cumulative (Icelake/A100/MI250X).\n",
                table.str().c_str());

    // Per-kernel span breakdown: every profiled region recorded under a
    // version root above becomes one flat record, so CI can diff the kernel
    // decomposition (and its modelled bytes/flops) across commits.
    for (const auto& [path, stats] : profiling::snapshot_tree()) {
        const auto slash = path.find('/');
        if (slash == std::string::npos) {
            continue; // version roots are already covered by the table rows
        }
        json.add("table3_spans",
                 {{"version", bench::JsonReport::str(path.substr(0, slash))},
                  {"span", bench::JsonReport::str(path.substr(slash + 1))},
                  {"n", bench::JsonReport::num(kN)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"count", bench::JsonReport::num(
                                    static_cast<std::size_t>(stats.count))},
                  {"seconds", bench::JsonReport::num(stats.total_seconds)},
                  {"bytes", bench::JsonReport::num(stats.bytes)},
                  {"flops", bench::JsonReport::num(stats.flops)},
                  {"achieved_bw_gbs",
                   bench::JsonReport::num(stats.achieved_bw_gbs())}});
    }
    json.write();
    trace.write();
    return 0;
}
