// Table III reproduction: impact of the optimization ladder on the spline
// building kernel. The paper measures the solve phase of a degree-3 uniform
// spline at (n, batch) = (1000, 100000) with 10 iterations on Icelake, A100
// and MI250X:
//
//            |  Icelake  |  A100    |  MI250X
//   Original | 145.8 ms  | 11.39 ms | 16.14 ms
//   Fusion   | 112.1 ms  |  5.06 ms | 11.34 ms
//   spmv     |  82.0 ms  |  2.98 ms |  3.22 ms
//
// This harness measures the same three versions on the host backends and
// prints the analogous table plus the modelled ideal memory traffic
// (the paper's 0.8 GB perfect-cache figure, §IV-B).
//
// Defaults use batch = 20000; PSPL_BENCH_FULL=1 switches to the paper's
// 100000. `--benchmark_*` flags are forwarded to google-benchmark.
#include "bench/common.hpp"
#include "core/spline_builder.hpp"
#include "parallel/deep_copy.hpp"
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdint>
#include <cstring>

namespace {

using namespace pspl;
using core::BuilderVersion;
using core::SplineBuilder;

constexpr std::size_t kN = 1000;

std::size_t batch_size()
{
    return bench::env_size("PSPL_BENCH_BATCH",
                           bench::full_scale() ? 100000 : 20000);
}

/// ULP distance via the monotonic lexicographic mapping of IEEE doubles.
std::uint64_t ulp_distance(double a, double b)
{
    const auto lex = [](double d) {
        std::uint64_t u;
        std::memcpy(&u, &d, sizeof(u));
        return (u & 0x8000000000000000ull) != 0 ? ~u
                                                : u | 0x8000000000000000ull;
    };
    const std::uint64_t ua = lex(a);
    const std::uint64_t ub = lex(b);
    return ua > ub ? ua - ub : ub - ua;
}

void bm_builder_version(benchmark::State& state, BuilderVersion version)
{
    const std::size_t batch = batch_size();
    const auto basis = bench::make_basis(3, true, kN);
    SplineBuilder builder(basis, version);
    View2D<double> b("b", kN, batch);
    bench::fill_rhs(basis, b);
    for (auto _ : state) {
        builder.build_inplace(b);
        benchmark::DoNotOptimize(b.data());
    }
    state.SetBytesProcessed(
            static_cast<int64_t>(state.iterations())
            * static_cast<int64_t>(kN * batch * sizeof(double)));
    state.counters["points"] = static_cast<double>(kN * batch);
}

} // namespace

int main(int argc, char** argv)
{
    auto backend = pspl::bench::BackendChoice::from_args(argc, argv);
    auto json = pspl::bench::JsonReport::from_args(argc, argv);
    auto trace = pspl::bench::ChromeTrace::from_args(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    std::printf("compiled ISA: %s\n", perf::compiled_isa_summary().c_str());
    std::printf("execution space: %s (%d threads)\n",
                DefaultExecutionSpace::name(),
                DefaultExecutionSpace::concurrency());

    const std::size_t batch = batch_size();
    ::benchmark::RegisterBenchmark(
            "spline_build/original",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::Baseline);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/kernel_fusion",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::Fused);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/gemv_to_spmv",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSpmv);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/kernel_fusion_simd",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSimd);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RegisterBenchmark(
            "spline_build/gemv_to_spmv_simd",
            [](benchmark::State& s) {
                bm_builder_version(s, BuilderVersion::FusedSpmvSimd);
            })
            ->Unit(benchmark::kMillisecond);
    ::benchmark::RunSpecifiedBenchmarks();

    // ---- Paper-shaped summary (Table III) ----------------------------------
    const auto basis = bench::make_basis(3, true, kN);
    View2D<double> b("b", kN, batch);

    std::printf("\nTable III analog -- spline build at (n, batch) = (%zu, "
                "%zu), degree 3 uniform\n",
                kN, batch);
    const double ideal_gb = static_cast<double>(kN) * static_cast<double>(batch)
                            * 8.0 * 1e-9;
    std::printf("perfect-cache RHS traffic (paper's 0.8 GB figure): %.3f GB "
                "per solve\n\n",
                ideal_gb);

    perf::Table table({"Version", "Time", "Speedup vs original",
                       "Bandwidth (8B/pt model)"});
    double baseline_time = 0.0;
    for (const auto version :
         {BuilderVersion::Baseline, BuilderVersion::Fused,
          BuilderVersion::FusedSpmv, BuilderVersion::FusedSimd,
          BuilderVersion::FusedSpmvSimd}) {
        SplineBuilder builder(basis, version);
        bench::fill_rhs(basis, b);
        builder.build_inplace(b); // warm-up
        // Profile only the timed section; every kernel span recorded below
        // nests under a per-version root so the snapshot/trace separates the
        // optimization ladder rungs.
        profiling::set_enabled(true);
        double t = 0.0;
        {
            profiling::ScopedSpan version_span(to_string(version));
            t = bench::median_seconds(5, [&] {
                bench::fill_rhs(basis, b);
                builder.build_inplace(b);
            });
        }
        profiling::set_enabled(false);
        // Subtract nothing: fill time is part of the measured lambda, so
        // measure fill alone and remove it.
        const double fill = bench::median_seconds(
                3, [&] { bench::fill_rhs(basis, b); });
        const double solve = t - fill > 0 ? t - fill : t;
        if (version == BuilderVersion::Baseline) {
            baseline_time = solve;
        }
        const double gbs = perf::achieved_bandwidth_gbs(kN, batch, solve);
        table.add_row({to_string(version), perf::fmt_time(solve),
                       perf::fmt(baseline_time / solve, 2) + "x",
                       perf::fmt(gbs, 2) + " GB/s"});
        json.add("table3_spline_build",
                 {{"version", bench::JsonReport::str(to_string(version))},
                  {"n", bench::JsonReport::num(kN)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"degree", bench::JsonReport::num(3)},
                  {"uniform", "true"},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"seconds", bench::JsonReport::num(solve)},
                  {"speedup_vs_baseline",
                   bench::JsonReport::num(baseline_time / solve)},
                  {"bandwidth_gbs", bench::JsonReport::num(gbs)}});
    }
    std::printf("%s\nPaper speedups: fusion 1.30x/2.25x/1.42x, spmv "
                "1.78x/3.82x/5.01x cumulative (Icelake/A100/MI250X).\n",
                table.str().c_str());

    // Per-kernel span breakdown: every profiled region recorded under a
    // version root above becomes one flat record, so CI can diff the kernel
    // decomposition (and its modelled bytes/flops) across commits.
    for (const auto& [path, stats] : profiling::snapshot_tree()) {
        const auto slash = path.find('/');
        if (slash == std::string::npos) {
            continue; // version roots are already covered by the table rows
        }
        json.add("table3_spans",
                 {{"version", bench::JsonReport::str(path.substr(0, slash))},
                  {"span", bench::JsonReport::str(path.substr(slash + 1))},
                  {"n", bench::JsonReport::num(kN)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"count", bench::JsonReport::num(
                                    static_cast<std::size_t>(stats.count))},
                  {"seconds", bench::JsonReport::num(stats.total_seconds)},
                  {"bytes", bench::JsonReport::num(stats.bytes)},
                  {"flops", bench::JsonReport::num(stats.flops)},
                  {"achieved_bw_gbs",
                   bench::JsonReport::num(stats.achieved_bw_gbs())}});
    }

    // ---- Backend cross-check (schema v4) -----------------------------------
    // The same solves on every compiled execution space, bypassing the
    // runtime PSPL_BACKEND selection via the builder's per-call template
    // parameter. Serial is the bitwise oracle: every version of the ladder
    // must reproduce its coefficients to 0 ULP on every backend (hard
    // failure otherwise -- a scheduling-dependent result would invalidate
    // the portability claim). Timing uses the ladder's top rung; with
    // PSPL_BENCH_BACKEND_GATE=1 the Threads pool must additionally land
    // within PSPL_BENCH_BACKEND_SLACK (default 0.15) of OpenMP wall-clock.
    std::printf("\nBackend cross-check -- gemv_to_spmv_simd solve per "
                "execution space, 0-ULP oracle: Serial\n\n");
    constexpr BuilderVersion kLadder[]
            = {BuilderVersion::Baseline, BuilderVersion::Fused,
               BuilderVersion::FusedSpmv, BuilderVersion::FusedSimd,
               BuilderVersion::FusedSpmvSimd};
    View2D<double> ref("ref", kN, batch);
    bool identity_ok = true;
    double serial_seconds = 0.0;
    double openmp_seconds = 0.0;
    double threads_seconds = 0.0;
    perf::Table bt({"Backend", "Threads", "Time (spmv_simd)",
                    "Speedup vs Serial", "max ULP vs Serial (ladder)"});
    const auto run_backend = [&](auto exec, int nthreads, double& t_out) {
        using Exec = decltype(exec);
        // Bitwise identity across the whole ladder: one solve per version
        // from identical inputs, compared element-wise against the Serial
        // oracle solve of the same version.
        std::uint64_t ulp = 0;
        for (const auto version : kLadder) {
            SplineBuilder builder(basis, version);
            bench::fill_rhs(basis, ref);
            builder.build_inplace<Serial>(ref);
            bench::fill_rhs(basis, b);
            builder.build_inplace<Exec>(b);
            for (std::size_t i = 0; i < kN; ++i) {
                for (std::size_t j = 0; j < batch; ++j) {
                    const std::uint64_t d = ulp_distance(ref(i, j), b(i, j));
                    ulp = d > ulp ? d : ulp;
                }
            }
        }
        SplineBuilder builder(basis, BuilderVersion::FusedSpmvSimd);
        bench::fill_rhs(basis, b);
        builder.build_inplace<Exec>(b); // warm-up
        const double t = bench::median_seconds(5, [&] {
            bench::fill_rhs(basis, b);
            builder.build_inplace<Exec>(b);
        });
        const double fill = bench::median_seconds(
                3, [&] { bench::fill_rhs(basis, b); });
        const double solve = t - fill > 0 ? t - fill : t;
        t_out = solve;
        const double speedup
                = serial_seconds > 0.0 ? serial_seconds / solve : 1.0;
        bt.add_row({Exec::name(), std::to_string(nthreads),
                    perf::fmt_time(solve), perf::fmt(speedup, 2) + "x",
                    std::to_string(ulp)});
        json.add("table3_backend_solve",
                 {{"space", bench::JsonReport::str(Exec::name())},
                  {"version", bench::JsonReport::str("gemv_to_spmv_simd")},
                  {"n", bench::JsonReport::num(kN)},
                  {"batch", bench::JsonReport::num(batch)},
                  {"isa", bench::JsonReport::str(perf::compiled_isa_name())},
                  {"seconds", bench::JsonReport::num(solve)},
                  {"speedup_vs_serial", bench::JsonReport::num(speedup)},
                  {"max_ulp_vs_serial",
                   bench::JsonReport::num(static_cast<double>(ulp))}});
        if (ulp != 0) {
            identity_ok = false;
            std::printf("FAIL: %s diverges from Serial by %llu ULP\n",
                        Exec::name(),
                        static_cast<unsigned long long>(ulp));
        }
    };
    run_backend(Serial{}, Serial::concurrency(), serial_seconds);
#if defined(PSPL_ENABLE_OPENMP)
    run_backend(OpenMP{}, OpenMP::concurrency(), openmp_seconds);
#endif
    run_backend(Threads{}, Threads::concurrency(), threads_seconds);
    std::printf("%s\n", bt.str().c_str());
    if (!identity_ok) {
        return 1;
    }
    const char* gate_env = std::getenv("PSPL_BENCH_BACKEND_GATE");
    if (gate_env != nullptr && gate_env[0] == '1' && openmp_seconds > 0.0) {
        const double slack
                = bench::env_double("PSPL_BENCH_BACKEND_SLACK", 0.15);
        if (threads_seconds > openmp_seconds * (1.0 + slack)) {
            std::printf("FAIL: Threads %.4fs exceeds OpenMP %.4fs by more "
                        "than %.0f%%\n",
                        threads_seconds, openmp_seconds, slack * 100.0);
            return 1;
        }
        std::printf("backend gate: Threads %.4fs within %.0f%% of OpenMP "
                    "%.4fs\n",
                    threads_seconds, slack * 100.0, openmp_seconds);
    }
    (void)threads_seconds;

    json.write();
    trace.write();
    return 0;
}
