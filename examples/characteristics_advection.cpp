// Mirror of the paper's artifact example (examples/characteristics_advection
// in the DDC repository): run a batched 1-D semi-Lagrangian advection for a
// number of time steps and report per-region timings like `kp_reader`.
//
//   $ ./characteristics_advection [nonuniform(0|1)] [degree] [nx] [nv]
//                                 [steps] [iterative(0|1)]
//
// The first two arguments match the paper's workflow (Appendix D):
// "The first and second arguments to the executable are the non-uniformity
//  of mesh and degree of splines."
// The last switches between the direct (Kokkos-kernels analogue, default)
// and iterative (Ginkgo analogue) spline paths, mirroring the artifact's
// -DDDC_SPLINES_SOLVER=LAPACK|GINKGO build option.
#include "advection/semi_lagrangian.hpp"
#include "bsplines/knots.hpp"
#include "parallel/profiling.hpp"
#include "perf/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

int main(int argc, char** argv)
{
    const bool nonuniform = argc > 1 && std::atoi(argv[1]) != 0;
    const int degree = argc > 2 ? std::atoi(argv[2]) : 3;
    const std::size_t nx =
            argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1000;
    const std::size_t nv =
            argc > 4 ? static_cast<std::size_t>(std::atoll(argv[4])) : 2000;
    const int steps = argc > 5 ? std::atoi(argv[5]) : 10;
    const bool iterative = argc > 6 && std::atoi(argv[6]) != 0;

    using pspl::bsplines::BSplineBasis;
    const auto basis =
            nonuniform ? BSplineBasis::non_uniform(
                                 degree, pspl::bsplines::stretched_breaks(
                                                 nx, 0.0, 1.0, 0.5))
                       : BSplineBasis::uniform(degree, nx, 0.0, 1.0);
    const auto v = pspl::advection::uniform_velocities(nv, -1.0, 1.0);
    const double dt = 0.2 / static_cast<double>(nx);

    pspl::advection::BatchedAdvection1D::Config cfg;
    if (iterative) {
        cfg.method = pspl::advection::BatchedAdvection1D::Method::Iterative;
        cfg.iterative.kind = pspl::iterative::IterativeKind::BiCGStab;
        cfg.iterative.config.tolerance = 1e-15;
    }
    pspl::advection::BatchedAdvection1D adv(basis, v, dt, cfg);
    std::printf("1D batched advection: %s degree-%d splines, (Nx, Nv) = "
                "(%zu, %zu), %d steps, %s solver\n",
                nonuniform ? "non-uniform" : "uniform", degree, nx, nv, steps,
                iterative ? "iterative (Ginkgo-analogue)"
                          : "direct (Kokkos-kernels-analogue)");

    // Initial condition: shifted Gaussian bump per velocity row.
    pspl::View2D<double> f("f", nv, nx);
    for (std::size_t j = 0; j < nv; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
            const double x = adv.points()(i);
            f(j, i) = std::exp(-100.0 * (x - 0.5) * (x - 0.5))
                      + 0.1 * std::sin(2.0 * std::numbers::pi * x);
        }
    }

    pspl::profiling::clear();
    pspl::profiling::set_enabled(true);
    pspl::profiling::Timer timer;
    for (int s = 0; s < steps; ++s) {
        adv.step(f);
    }
    const double elapsed = timer.seconds();
    pspl::profiling::set_enabled(false);

    // kp_reader-style region report.
    std::printf("\n%-45s %12s %6s %14s\n", "(Region/Kernel)", "Total Time",
                "Count", "Avg per Call");
    for (const auto& [label, stats] : pspl::profiling::snapshot()) {
        std::printf("%-45s %10.6f s %6llu %12.6f s\n", label.c_str(),
                    stats.total_seconds,
                    static_cast<unsigned long long>(stats.count),
                    stats.avg_seconds());
    }

    const double per_step = elapsed / static_cast<double>(steps);
    std::printf("\nTotal: %.4f s (%.4f s/step), %.4f GLUPS\n", elapsed,
                per_step, pspl::perf::glups(nx, nv, per_step));
    return 0;
}
