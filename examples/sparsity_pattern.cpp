// Reproduce Fig. 1 and Table I of the paper: print the sparsity pattern of
// the periodic spline collocation matrix and the sub-matrix classification
// (hence the LAPACK solver choice) for every degree/uniformity combination.
//
//   $ ./sparsity_pattern [n]
#include "bsplines/collocation.hpp"
#include "bsplines/knots.hpp"
#include "core/matrix_structure.hpp"
#include "core/schur_solver.hpp"
#include "perf/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv)
{
    using pspl::bsplines::BSplineBasis;
    const std::size_t n =
            argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
                     : 20;

    // --- Fig. 1: matrix A for degree-3 uniform splines -----------------------
    const auto cubic = BSplineBasis::uniform(3, n, 0.0, 1.0);
    const auto a = pspl::bsplines::collocation_matrix(cubic);
    std::printf("Fig. 1 -- sparsity of A, degree 3 uniform, n = %zu\n\n%s\n",
                n, pspl::bsplines::sparsity_pattern(a).c_str());

    // --- Table I: sub-matrix Q type per degree and uniformity ----------------
    pspl::perf::Table table(
            {"Degree", "Uniform (solver)", "Non-uniform (solver)"});
    for (const int degree : {3, 4, 5}) {
        std::string row[2];
        for (const bool uniform : {true, false}) {
            const auto basis =
                    uniform ? BSplineBasis::uniform(degree, 64, 0.0, 1.0)
                            : BSplineBasis::non_uniform(
                                      degree, pspl::bsplines::stretched_breaks(
                                                      64, 0.0, 1.0, 0.5));
            const auto m = pspl::bsplines::collocation_matrix(basis);
            // SchurSolver verifies positive definiteness at factorization.
            const pspl::core::SchurSolver solver(m);
            const auto& s = solver.structure();
            std::string desc = to_string(solver.kind());
            desc += " (k=" + std::to_string(s.corner_width)
                    + ", kl=" + std::to_string(s.kl)
                    + ", ku=" + std::to_string(s.ku)
                    + (s.q_symmetric ? ", sym" : "") + ")";
            row[uniform ? 0 : 1] = desc;
        }
        table.add_row({std::to_string(degree), row[0], row[1]});
    }
    std::printf("Table I -- sub-matrix Q classification (n = 64)\n\n%s\n",
                table.str().c_str());

    // --- Corner-block sparsity (paper SS IV-D numbers) ------------------------
    const auto big = BSplineBasis::uniform(3, 1000, 0.0, 1.0);
    const auto abig = pspl::bsplines::collocation_matrix(big);
    const pspl::core::SchurSolver solver(abig);
    const auto& d = solver.device_data();
    std::printf("n = 1000 uniform degree 3: beta block (%zu,%zu) keeps %zu "
                "nonzeros after thresholding; lambda keeps %zu (paper: 48 "
                "and 2).\n",
                d.beta_dense.extent(0), d.beta_dense.extent(1),
                d.beta_coo.nnz(), d.lambda_coo.nnz());
    return 0;
}
