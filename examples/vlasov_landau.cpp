// 1D1V Vlasov-Poisson with a Landau-damping initial condition -- the kind of
// kinetic workload GYSELA's intro motivates, driven through the library's
// VlasovPoisson1D1V module (Strang-split batched spline advections + the
// periodic field solver).
//
//   $ ./vlasov_landau [nx] [nv] [steps]
//
// Prints the electric-field energy time trace; for k = 0.5, alpha = 0.01 the
// linear Landau damping rate is gamma ~ -0.153, visible as the slope of the
// log-energy envelope and fitted from the peaks at the end.
#include "vlasov/vlasov_poisson.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

int main(int argc, char** argv)
{
    using pspl::bsplines::BSplineBasis;
    using pspl::vlasov::VlasovPoisson1D1V;

    const std::size_t nx =
            argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 64;
    const std::size_t nv =
            argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 128;
    const int steps = argc > 3 ? std::atoi(argv[3]) : 150;

    const double k = 0.5;
    const double alpha = 0.01;
    const double lx = 2.0 * std::numbers::pi / k;
    const double vmax = 6.0;
    const double dt = 0.1;

    const auto basis_x = BSplineBasis::uniform(3, nx, 0.0, lx);
    const auto basis_v = BSplineBasis::uniform(3, nv, -vmax, vmax);
    VlasovPoisson1D1V sim(basis_x, basis_v, dt);
    const double norm = 1.0 / std::sqrt(2.0 * std::numbers::pi);
    sim.initialize([=](double x, double v) {
        return norm * std::exp(-0.5 * v * v)
               * (1.0 + alpha * std::cos(k * x));
    });

    const auto d0 = sim.diagnostics();
    std::printf("# Landau damping: k=%.2f alpha=%.3f (Nx, Nv)=(%zu, %zu) "
                "dt=%.2f\n# initial mass %.6f momentum %.2e\n# t  "
                "field_energy\n",
                k, alpha, nx, nv, dt, d0.mass, d0.momentum);

    std::vector<double> peak_t;
    std::vector<double> peak_e;
    double prev2 = 0.0;
    double prev1 = 0.0;
    for (int s = 0; s < steps; ++s) {
        sim.step();
        const double energy = sim.diagnostics().field_energy;
        if (s % 5 == 0) {
            std::printf("%6.2f  %.6e\n", sim.time(), energy);
        }
        if (s >= 2 && prev1 > prev2 && prev1 > energy) {
            peak_t.push_back(sim.time() - dt);
            peak_e.push_back(prev1);
        }
        prev2 = prev1;
        prev1 = energy;
    }
    const auto d1 = sim.diagnostics();
    std::printf("# mass drift %.2e, momentum drift %.2e, L2 ratio %.6f\n",
                std::abs(d1.mass - d0.mass) / d0.mass,
                std::abs(d1.momentum - d0.momentum), d1.l2_norm / d0.l2_norm);
    if (peak_t.size() >= 2) {
        const double gamma = 0.5 * std::log(peak_e.back() / peak_e.front())
                             / (peak_t.back() - peak_t.front());
        std::printf("# fitted damping rate gamma = %.4f (linear theory: "
                    "-0.153 at k=0.5)\n",
                    gamma);
    }
    return 0;
}
