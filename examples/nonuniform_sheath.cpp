// The motivation for non-uniform splines in the new GYSELA (paper §II-A,
// ref [30]): a plasma-sheath-like profile with a steep gradient region needs
// locally refined cells. Compare interpolation error of a uniform grid vs a
// non-uniform grid refined around the steep layer, at equal cell count.
//
//   $ ./nonuniform_sheath [ncells]
#include "bsplines/knots.hpp"
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/subview.hpp"
#include "perf/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace {

/// Steep periodic layer at x0 = 0.7 (width ~0.008) over a smooth
/// background -- the sheath-entrance-like steep-gradient region that
/// motivates non-uniform meshes in GYSELA. (The feature must be periodic
/// on [0, 1): a bare tanh step would put an artificial discontinuity at
/// the domain seam.)
double sheath_profile(double x)
{
    const double d = (x - 0.7) / 0.008;
    const double layer = std::exp(-0.5 * d * d);
    const double background = std::sin(2.0 * M_PI * x);
    return 0.5 * layer + 0.2 * background;
}

double max_error(const pspl::bsplines::BSplineBasis& basis)
{
    const std::size_t n = basis.nbasis();
    pspl::View2D<double> b("b", n, 1);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < n; ++i) {
        b(i, 0) = sheath_profile(pts[i]);
    }
    pspl::core::SplineBuilder builder(basis);
    builder.build_inplace(b);
    pspl::core::SplineEvaluator eval(basis);
    const auto coeffs = pspl::subview(b, pspl::ALL, std::size_t{0});
    double err = 0.0;
    for (int s = 0; s < 20000; ++s) {
        const double x = static_cast<double>(s) / 20000.0;
        err = std::max(err, std::abs(eval(x, coeffs) - sheath_profile(x)));
    }
    return err;
}

} // namespace

int main(int argc, char** argv)
{
    using pspl::bsplines::BSplineBasis;
    const std::size_t ncells =
            argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;

    std::printf("Sheath-like profile: Gaussian layer of width 0.008 at x = 0.7\n");
    std::printf("Cells: %zu, comparing uniform vs refined grids (degree 3)\n\n",
                ncells);

    pspl::perf::Table table({"grid", "solver", "max error"});
    {
        const auto basis = BSplineBasis::uniform(3, ncells, 0.0, 1.0);
        pspl::core::SplineBuilder builder(basis);
        table.add_row({"uniform", to_string(builder.solver().kind()),
                       pspl::perf::fmt(max_error(basis), 8)});
    }
    for (const double ratio : {4.0, 16.0, 64.0}) {
        const auto breaks = pspl::bsplines::refined_breaks(ncells, 0.0, 1.0,
                                                           0.7, ratio);
        const auto basis = BSplineBasis::non_uniform(3, breaks);
        pspl::core::SplineBuilder builder(basis);
        table.add_row({"refined x" + std::to_string(static_cast<int>(ratio)),
                       to_string(builder.solver().kind()),
                       pspl::perf::fmt(max_error(basis), 8)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("The refined grids resolve the layer with the same cell "
                "budget; their collocation matrices are general banded and "
                "are solved with the batched gbtrs kernel (Table I).\n");
    return 0;
}
