// Quickstart: build a periodic spline through samples of a function,
// evaluate it off-grid, and report the interpolation error.
//
//   $ ./quickstart [degree] [ncells]
//
// Walks through the three core objects of the public API:
//   BSplineBasis  -- the periodic basis (uniform here),
//   SplineBuilder -- turns interpolation values into coefficients by
//                    solving the fixed collocation matrix (Schur +
//                    batched-serial kernels under the hood),
//   SplineEvaluator -- reconstructs s(x) anywhere.
#include "core/spline_builder.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/subview.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

int main(int argc, char** argv)
{
    const int degree = argc > 1 ? std::atoi(argv[1]) : 3;
    const std::size_t ncells =
            argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
                     : 128;

    auto f = [](double x) {
        return std::sin(2.0 * std::numbers::pi * x)
               + 0.3 * std::cos(6.0 * std::numbers::pi * x);
    };

    // 1. A periodic uniform B-spline basis on [0, 1).
    const auto basis =
            pspl::bsplines::BSplineBasis::uniform(degree, ncells, 0.0, 1.0);

    // 2. Sample f at the interpolation (Greville) points. The builder works
    //    on (n, batch) blocks; batch = 1 here.
    pspl::View2D<double> values("values", basis.nbasis(), 1);
    const auto pts = basis.interpolation_points();
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        values(i, 0) = f(pts[i]);
    }

    // 3. Build the spline coefficients in place. The solver kind is chosen
    //    automatically from the matrix structure (Table I of the paper).
    pspl::core::SplineBuilder builder(basis);
    builder.build_inplace(values);
    std::printf("basis: degree %d, %zu cells, solver = %s\n", degree, ncells,
                to_string(builder.solver().kind()));

    // 4. Evaluate off-grid and measure the max error.
    pspl::core::SplineEvaluator eval(basis);
    const auto coeffs = pspl::subview(values, pspl::ALL, std::size_t{0});
    double max_err = 0.0;
    for (int s = 0; s < 10000; ++s) {
        const double x = static_cast<double>(s) / 10000.0;
        max_err = std::max(max_err, std::abs(eval(x, coeffs) - f(x)));
    }
    std::printf("max |spline - f| on 10000 samples: %.3e\n", max_err);
    std::printf("expected order: h^%d ~ %.3e\n", degree + 1,
                std::pow(1.0 / static_cast<double>(ncells), degree + 1));
    return max_err < 1e-3 ? 0 : 1;
}
