// Guiding-center-like 2-D rotation test: rigid-body advection of a Gaussian
// blob, df/dt + v(x,y).grad f = 0 with v = omega * (-y, x), using the
// library's Strang-split BatchedAdvection2D -- exactly the structure GYSELA
// uses for its poloidal-plane advection (two batched 1-D spline
// interpolations per step). After a full revolution the blob must return to
// its starting position up to interpolation diffusion.
//
//   $ ./guiding_center [n] [steps_per_turn]
#include "advection/semi_lagrangian_2d.hpp"
#include "advection/transpose.hpp"
#include "core/spline_builder_2d.hpp"
#include "core/spline_evaluator_2d.hpp"
#include "parallel/deep_copy.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

int main(int argc, char** argv)
{
    using pspl::View1D;
    using pspl::View2D;
    using pspl::advection::BatchedAdvection2D;
    using pspl::bsplines::BSplineBasis;

    const std::size_t n =
            argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 96;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

    const double omega = 2.0 * std::numbers::pi; // one turn per unit time
    const double dt = 1.0 / static_cast<double>(steps);

    const auto basis = BSplineBasis::uniform(3, n, -1.0, 1.0);

    // Rigid rotation: vx = -omega*y on each y row, vy = +omega*x on each x
    // column. The velocity views are shared with the solver, so they could
    // be updated between steps for time-dependent fields.
    View1D<double> vx("vx", n);
    View1D<double> vy("vy", n);
    BatchedAdvection2D adv(basis, basis, vx, vy, dt);
    for (std::size_t k = 0; k < n; ++k) {
        vx(k) = -omega * adv.points_y()(k);
        vy(k) = omega * adv.points_x()(k);
    }

    // f(j, i) on (y_j, x_i): Gaussian blob off-center.
    View2D<double> f("f", n, n);
    auto blob = [](double x, double y) {
        const double dx = x - 0.4;
        const double dy = y;
        return std::exp(-(dx * dx + dy * dy) / 0.02);
    };
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            f(j, i) = blob(adv.points_x()(i), adv.points_y()(j));
        }
    }
    const auto f0 = pspl::clone(f);

    auto total_mass = [&]() {
        double m = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
                m += f(j, i);
            }
        }
        return m;
    };
    const double mass0 = total_mass();

    for (int s = 0; s < steps; ++s) {
        adv.step(f);
    }

    double max_err = 0.0;
    double l2 = 0.0;
    double ref = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const double d = f(j, i) - f0(j, i);
            max_err = std::max(max_err, std::abs(d));
            l2 += d * d;
            ref += f0(j, i) * f0(j, i);
        }
    }
    const double rel_l2 = std::sqrt(l2 / ref);
    const double mass_drift = std::abs(total_mass() - mass0)
                              / std::abs(mass0);

    std::printf("guiding-center rotation: n=%zu, %d steps per turn\n", n,
                steps);
    std::printf("after one full revolution:\n");
    std::printf("  max |f - f0|      = %.3e\n", max_err);
    std::printf("  relative L2 error = %.3e\n", rel_l2);
    std::printf("  mass drift        = %.3e\n", mass_drift);

    // Demonstrate the 2-D tensor-product spline API on the final state:
    // interpolate f and report its integral (conserved quantity).
    pspl::core::SplineBuilder2D builder2(basis, basis);
    View2D<double> coeffs("coeffs", n, n);
    // build_inplace wants (x, y) ordering: transpose from (y, x).
    pspl::advection::transpose("t3", f, coeffs);
    builder2.build_inplace(coeffs);
    pspl::core::SplineEvaluator2D eval2(basis, basis);
    std::printf("  spline integral   = %.6f (initial-blob analytic ~ %.6f)\n",
                eval2.integrate(coeffs), 0.02 * std::numbers::pi);

    return rel_l2 < 0.2 ? 0 : 1;
}
