// Unit tests for COO (Listing 5 storage) and CSR sparse matrices.
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace pspl;

View2D<double> sample_dense()
{
    View2D<double> a("a", 4, 5);
    a(0, 0) = 1.0;
    a(0, 4) = 2.0;
    a(1, 2) = -3.0;
    a(2, 1) = 1e-18; // below typical thresholds
    a(3, 3) = 4.0;
    return a;
}

TEST(Coo, FromDenseKeepsAllNonzerosAtZeroThreshold)
{
    const auto a = sample_dense();
    const auto coo = sparse::Coo::from_dense(a, 0.0);
    EXPECT_EQ(coo.nnz(), 5u);
    EXPECT_EQ(coo.nrows(), 4u);
    EXPECT_EQ(coo.ncols(), 5u);
}

TEST(Coo, ThresholdDropsTinyEntries)
{
    const auto a = sample_dense();
    const auto coo = sparse::Coo::from_dense(a, 1e-15);
    EXPECT_EQ(coo.nnz(), 4u);
}

TEST(Coo, ToDenseRoundTrip)
{
    const auto a = sample_dense();
    const auto coo = sparse::Coo::from_dense(a, 0.0);
    const auto back = coo.to_dense();
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            EXPECT_DOUBLE_EQ(back(i, j), a(i, j));
        }
    }
}

TEST(Coo, SpmvSubSubtractsProduct)
{
    const auto a = sample_dense();
    const auto coo = sparse::Coo::from_dense(a, 0.0);
    View1D<double> x("x", 5);
    for (std::size_t j = 0; j < 5; ++j) {
        x(j) = static_cast<double>(j) + 1.0;
    }
    View1D<double> y("y", 4);
    for (std::size_t i = 0; i < 4; ++i) {
        y(i) = 100.0;
    }
    coo.spmv_sub(x, y);
    // Expected: y_i = 100 - sum_j a(i,j) x_j
    EXPECT_DOUBLE_EQ(y(0), 100.0 - (1.0 * 1.0 + 2.0 * 5.0));
    EXPECT_DOUBLE_EQ(y(1), 100.0 - (-3.0 * 3.0));
    EXPECT_NEAR(y(2), 100.0, 1e-12);
    EXPECT_DOUBLE_EQ(y(3), 100.0 - 4.0 * 4.0);
}

TEST(Coo, EmptyMatrix)
{
    View2D<double> zero("z", 3, 3);
    const auto coo = sparse::Coo::from_dense(zero, 0.0);
    EXPECT_EQ(coo.nnz(), 0u);
    View1D<double> x("x", 3);
    View1D<double> y("y", 3);
    y(1) = 5.0;
    coo.spmv_sub(x, y); // no-op
    EXPECT_DOUBLE_EQ(y(1), 5.0);
}

TEST(Csr, FromDenseStructure)
{
    const auto a = sample_dense();
    const auto csr = sparse::Csr::from_dense(a, 1e-15);
    EXPECT_EQ(csr.nnz(), 4u);
    EXPECT_EQ(csr.row_ptr()(0), 0);
    EXPECT_EQ(csr.row_ptr()(4), 4);
    EXPECT_DOUBLE_EQ(csr.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(csr.at(0, 4), 2.0);
    EXPECT_DOUBLE_EQ(csr.at(1, 2), -3.0);
    EXPECT_DOUBLE_EQ(csr.at(2, 1), 0.0); // dropped
    EXPECT_DOUBLE_EQ(csr.at(3, 3), 4.0);
    EXPECT_DOUBLE_EQ(csr.at(3, 0), 0.0); // structural zero
}

TEST(Csr, ToDenseRoundTrip)
{
    const auto a = sample_dense();
    const auto csr = sparse::Csr::from_dense(a, 0.0);
    const auto back = csr.to_dense();
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 5; ++j) {
            EXPECT_DOUBLE_EQ(back(i, j), a(i, j));
        }
    }
}

TEST(Csr, ApplySingleRhs)
{
    const auto a = sample_dense();
    const auto csr = sparse::Csr::from_dense(a, 0.0);
    View1D<double> x("x", 5);
    for (std::size_t j = 0; j < 5; ++j) {
        x(j) = static_cast<double>(j) - 2.0;
    }
    View1D<double> y("y", 4);
    csr.apply(x, y);
    for (std::size_t i = 0; i < 4; ++i) {
        double ref = 0.0;
        for (std::size_t j = 0; j < 5; ++j) {
            ref += a(i, j) * x(j);
        }
        EXPECT_NEAR(y(i), ref, 1e-14);
    }
}

template <class Exec>
class CsrBlockTyped : public ::testing::Test
{
};

#if defined(PSPL_ENABLE_OPENMP)
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::OpenMP, pspl::Threads>;
#else
using ExecSpaces = ::testing::Types<pspl::Serial, pspl::Threads>;
#endif
TYPED_TEST_SUITE(CsrBlockTyped, ExecSpaces);

TYPED_TEST(CsrBlockTyped, ApplyBlockMatchesColumnwiseApply)
{
    const std::size_t n = 20;
    const std::size_t nrhs = 7;
    View2D<double> dense("d", n, n);
    for (std::size_t i = 0; i < n; ++i) {
        dense(i, i) = 2.0;
        dense(i, (i + 1) % n) = -0.5;
        dense((i + 3) % n, i) = 0.25;
    }
    const auto csr = sparse::Csr::from_dense(dense, 0.0);
    View2D<double> x("x", n, nrhs);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) {
            x(i, j) = std::sin(static_cast<double>(i * nrhs + j));
        }
    }
    View2D<double> y("y", n, nrhs);
    csr.apply_block<TypeParam>(x, y);
    for (std::size_t j = 0; j < nrhs; ++j) {
        View1D<double> xc("xc", n);
        View1D<double> yc("yc", n);
        for (std::size_t i = 0; i < n; ++i) {
            xc(i) = x(i, j);
        }
        csr.apply(xc, yc);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(y(i, j), yc(i), 1e-14);
        }
    }
}

} // namespace
