// Tests for the mixed-precision refinement driver (core/refinement.hpp):
// accuracy of the Mixed pipeline against the FP64 ladder, the Single
// fast path, the refinement-stall -> FP64 fallback (exercised by poisoning
// the FP32 factors), precision policy parsing, and tile-width behaviour.
#include "bsplines/basis.hpp"
#include "core/batched_solve.hpp"
#include "core/precision.hpp"
#include "core/refinement.hpp"
#include "core/spline_builder.hpp"
#include "parallel/tiling.hpp"
#include "parallel/view.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace {

using namespace pspl;
using core::Precision;
using core::RefinementOptions;
using core::RefinementStats;
using core::SplineBuilder;

constexpr std::size_t kCells = 64;
// Not a multiple of the 64-column strip width: exercises partial strips
// and masked pack tails alongside full super-pack strips.
constexpr std::size_t kBatch = 300;

struct Problem {
    bsplines::BSplineBasis basis;
    SplineBuilder builder;
    View2D<double> b;
    View2D<double> oracle;

    Problem()
        : basis(bsplines::BSplineBasis::uniform(3, kCells, 0.0, 1.0)),
          builder(basis, core::BuilderVersion::FusedSpmvSimd),
          b("b", basis.nbasis(), kBatch),
          oracle("oracle", basis.nbasis(), kBatch)
    {
        for (std::size_t i = 0; i < b.extent(0); ++i) {
            for (std::size_t j = 0; j < kBatch; ++j) {
                const double s = static_cast<double>(i)
                                 / static_cast<double>(b.extent(0));
                b(i, j) = std::sin(6.28318530717958648 * s * (1.0 + 0.01 * j))
                          + 1e-3 * static_cast<double>(j);
            }
        }
        for (std::size_t i = 0; i < b.extent(0); ++i) {
            for (std::size_t j = 0; j < kBatch; ++j) {
                oracle(i, j) = b(i, j);
            }
        }
        constexpr int w = simd_preferred_width<double>;
        core::schur_solve_batched_simd<w>(builder.solver().device_data(),
                                          oracle, /*use_spmv=*/true,
                                          TilePolicy::automatic());
    }

    double rel_err(const View2D<double>& x) const
    {
        double num = 0.0;
        double den = 0.0;
        for (std::size_t i = 0; i < x.extent(0); ++i) {
            for (std::size_t j = 0; j < x.extent(1); ++j) {
                num = std::max(num, std::fabs(x(i, j) - oracle(i, j)));
                den = std::max(den, std::fabs(oracle(i, j)));
            }
        }
        return den > 0.0 ? num / den : num;
    }
};

TEST(Refinement, MixedRestoresFp64Accuracy)
{
    Problem p;
    View2D<double> x("x", p.b.extent(0), kBatch);
    const RefinementStats stats = core::solve_refined_batched(
            p.builder.solver(), p.b, x, Precision::Mixed);
    EXPECT_LE(p.rel_err(x), 1e-11);
    EXPECT_LE(stats.refine_iters, 3);
    EXPECT_EQ(stats.fallback_tiles, 0u);
    EXPECT_GT(stats.tiles, 0u);
}

TEST(Refinement, MixedFromFloatSourceRestoresItsOwnOracle)
{
    // FP32 input: the refined solution must match the FP64 solve of the
    // *narrowed* RHS (that is the system actually posed).
    Problem p;
    View2D<float> b32("b32", p.b.extent(0), kBatch);
    View2D<double> widened("widened", p.b.extent(0), kBatch);
    for (std::size_t i = 0; i < p.b.extent(0); ++i) {
        for (std::size_t j = 0; j < kBatch; ++j) {
            b32(i, j) = static_cast<float>(p.b(i, j));
            widened(i, j) = static_cast<double>(b32(i, j));
        }
    }
    constexpr int w = simd_preferred_width<double>;
    core::schur_solve_batched_simd<w>(p.builder.solver().device_data(),
                                      widened, true,
                                      TilePolicy::automatic());
    View2D<double> x("x", p.b.extent(0), kBatch);
    const RefinementStats stats = core::solve_refined_batched(
            p.builder.solver(), b32, x, Precision::Mixed);
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < x.extent(0); ++i) {
        for (std::size_t j = 0; j < kBatch; ++j) {
            num = std::max(num, std::fabs(x(i, j) - widened(i, j)));
            den = std::max(den, std::fabs(widened(i, j)));
        }
    }
    EXPECT_LE(num / den, 1e-11);
    EXPECT_LE(stats.refine_iters, 3);
}

TEST(Refinement, SinglePathIsFp32Accurate)
{
    Problem p;
    View2D<double> x("x", p.b.extent(0), kBatch);
    const RefinementStats stats = core::solve_refined_batched(
            p.builder.solver(), p.b, x, Precision::Single);
    const double err = p.rel_err(x);
    EXPECT_LE(err, 1e-4);  // FP32 working accuracy
    EXPECT_GT(err, 1e-13); // and genuinely not the FP64 path
    EXPECT_EQ(stats.refine_iters, 0);
}

TEST(Refinement, PoisonedFloatFactorsFallBackToFp64)
{
    // Corrupt the FP32 factors so the FP32 solve is garbage: refinement
    // cannot contract, the stall detector must trip, and every tile must
    // re-solve on the FP64 ladder -- still producing FP64-accurate output.
    Problem p;
    const core::SchurFloatFactors& sf = p.builder.solver().float_factors();
    ASSERT_GT(sf.pt_dinv.size(), 0u); // periodic cubic -> PTTRS factors
    for (std::size_t i = 0; i < sf.pt_dinv.size(); ++i) {
        sf.pt_dinv(i) = sf.pt_dinv(i) * 32.0f + 7.0f;
    }
    View2D<double> x("x", p.b.extent(0), kBatch);
    const RefinementStats stats = core::solve_refined_batched(
            p.builder.solver(), p.b, x, Precision::Mixed);
    EXPECT_GT(stats.fallback_tiles, 0u);
    EXPECT_LE(p.rel_err(x), 1e-11);
}

TEST(Refinement, ExplicitTileWidthsAgree)
{
    // One strip, a partial strip, and wider-than-batch: every explicit
    // width must produce the same FP64-accurate answer, with the expected
    // tile count.
    Problem p;
    for (const std::size_t tc : {std::size_t{64}, std::size_t{96},
                                 std::size_t{512}}) {
        View2D<double> x("x", p.b.extent(0), kBatch);
        const RefinementStats stats = core::solve_refined_batched(
                p.builder.solver(), p.b, x, Precision::Mixed, {},
                TilePolicy::explicit_width(tc));
        EXPECT_LE(p.rel_err(x), 1e-11) << "tile " << tc;
        EXPECT_EQ(stats.tiles, (kBatch + tc - 1) / tc) << "tile " << tc;
    }
}

TEST(Refinement, TightTargetStaysWithinIterationBudget)
{
    Problem p;
    RefinementOptions opt;
    opt.rel_residual_target = 1e-14;
    opt.max_iters = 3;
    View2D<double> x("x", p.b.extent(0), kBatch);
    const RefinementStats stats = core::solve_refined_batched(
            p.builder.solver(), p.b, x, Precision::Mixed, opt);
    EXPECT_LE(stats.refine_iters, 3);
    EXPECT_LE(p.rel_err(x), 1e-11);
}

TEST(Precision, ParseSpellings)
{
    using core::parse_precision;
    EXPECT_EQ(parse_precision("double"), Precision::Double);
    EXPECT_EQ(parse_precision("Double"), Precision::Double);
    EXPECT_EQ(parse_precision("single"), Precision::Single);
    EXPECT_EQ(parse_precision("FLOAT"), Precision::Single);
    EXPECT_EQ(parse_precision("fp32"), Precision::Single);
    EXPECT_EQ(parse_precision("mixed"), Precision::Mixed);
    EXPECT_EQ(parse_precision("MiXeD"), Precision::Mixed);
    // Unrecognized input must never silently degrade accuracy.
    EXPECT_EQ(parse_precision(""), Precision::Double);
    EXPECT_EQ(parse_precision("half"), Precision::Double);
    EXPECT_EQ(core::to_string(Precision::Mixed), std::string("mixed"));
}

TEST(Precision, BuilderPlumbing)
{
    Problem p;
    EXPECT_EQ(p.builder.precision(), core::precision_from_env());
    p.builder.set_precision(Precision::Mixed);
    EXPECT_EQ(p.builder.precision(), Precision::Mixed);
    p.builder.set_precision(Precision::Double);
    EXPECT_EQ(p.builder.precision(), Precision::Double);
}

} // namespace
