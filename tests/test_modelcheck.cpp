// Exhaustive interleaving verification of the thread-pool concurrency
// protocols (ctest label: modelcheck).
//
// Two suites:
//   * ModelCheckSelf   -- the checker must be able to *find* known weak
//     behaviours (store buffering under relaxed, message passing without
//     release, ABBA deadlock) and must prove classic SC guarantees; this
//     calibrates trust in the litmus results below.
//   * ModelCheckLitmus -- every protocol litmus from
//     tests/modelcheck_litmus.hpp passes exhaustive exploration with the
//     production memory orders.
//
// Exploration bounds come from the environment (PSPL_MC_MAX_EXECUTIONS,
// PSPL_MC_PREEMPTION_BOUND, PSPL_MC_MAX_STEPS, PSPL_MC_NO_SLEEP_SETS);
// unset means exhaustive, which is the CI default.

#include "modelcheck_litmus.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace mc = pspl::mc;

namespace {

// Print the exploration statistics so CI logs document the interleaving
// counts each guarantee rests on.
void report(const char* name, const mc::Result& r)
{
    std::printf("[   MC   ] %-28s %llu executions, %llu pruned, %llu transitions%s\n",
                name,
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.pruned),
                static_cast<unsigned long long>(r.transitions),
                r.hit_execution_bound ? " (execution bound hit)" : " (exhaustive)");
    std::fflush(stdout);
}

void expect_pass(const char* name, void (*prog)(mc::Sim&))
{
    const mc::Options opts = mc::Options::from_env();
    const mc::Result r = mc::explore(prog, opts);
    report(name, r);
    EXPECT_FALSE(r.failed) << r.failure_kind << "\n" << r.failure;
    if (opts.max_executions == 0) {
        EXPECT_FALSE(r.hit_execution_bound);
    }
    EXPECT_GE(r.executions, 1u);
}

} // namespace

// ---------------------------------------------------------------------------
// Checker self-calibration.
// ---------------------------------------------------------------------------

TEST(ModelCheckSelf, FindsStoreBufferingWeakBehaviour)
{
    // Classic SB: with relaxed accesses the outcome r1 == r2 == 0 is
    // allowed, so an assertion forbidding it must fail.
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::atomic<int> x{0, "x"};
            mc::atomic<int> y{0, "y"};
            mc::atomic<int> r1{0, "r1"};
            mc::atomic<int> r2{0, "r2"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            st->x.store(1, pspl::sync::relaxed);
            st->r1.store(st->y.load(pspl::sync::relaxed), pspl::sync::relaxed);
        });
        sim.thread([st] {
            st->y.store(1, pspl::sync::relaxed);
            st->r2.store(st->x.load(pspl::sync::relaxed), pspl::sync::relaxed);
        });
        sim.on_exit([st] {
            const int r1 = st->r1.load(pspl::sync::relaxed);
            const int r2 = st->r2.load(pspl::sync::relaxed);
            MC_ASSERT(r1 + r2 != 0);
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.sb_relaxed", r);
    EXPECT_TRUE(r.failed);
    EXPECT_STREQ(r.failure_kind.c_str(), "assert");
}

TEST(ModelCheckSelf, SeqCstForbidsStoreBuffering)
{
    // Same program with seq_cst: r1 == r2 == 0 is forbidden; the checker
    // must prove the assertion over every interleaving.
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::atomic<int> x{0, "x"};
            mc::atomic<int> y{0, "y"};
            mc::atomic<int> r1{0, "r1"};
            mc::atomic<int> r2{0, "r2"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            st->x.store(1);
            st->r1.store(st->y.load(), pspl::sync::relaxed);
        });
        sim.thread([st] {
            st->y.store(1);
            st->r2.store(st->x.load(), pspl::sync::relaxed);
        });
        sim.on_exit([st] {
            const int r1 = st->r1.load(pspl::sync::relaxed);
            const int r2 = st->r2.load(pspl::sync::relaxed);
            MC_ASSERT(r1 + r2 != 0);
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.sb_seq_cst", r);
    EXPECT_FALSE(r.failed) << r.failure;
}

TEST(ModelCheckSelf, FindsMessagePassingRaceWithoutRelease)
{
    // MP with a relaxed flag store: the consumer's payload read races.
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::plain<int> data{0};
            mc::atomic<int> flag{0, "flag"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            st->data = 1;
            st->flag.store(1, pspl::sync::relaxed);
        });
        sim.thread([st] {
            if (st->flag.load(pspl::sync::acquire) == 1) {
                const int v = st->data;
                MC_ASSERT(v == 1);
            }
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.mp_relaxed", r);
    EXPECT_TRUE(r.failed);
    EXPECT_STREQ(r.failure_kind.c_str(), "race");
}

TEST(ModelCheckSelf, MessagePassingWithReleasePasses)
{
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::plain<int> data{0};
            mc::atomic<int> flag{0, "flag"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            st->data = 1;
            st->flag.store(1, pspl::sync::release);
        });
        sim.thread([st] {
            if (st->flag.load(pspl::sync::acquire) == 1) {
                const int v = st->data;
                MC_ASSERT(v == 1);
            }
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.mp_release", r);
    EXPECT_FALSE(r.failed) << r.failure;
}

TEST(ModelCheckSelf, FindsAbbaDeadlock)
{
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::mutex a;
            mc::mutex b;
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            std::lock_guard<mc::mutex> la(st->a);
            std::lock_guard<mc::mutex> lb(st->b);
        });
        sim.thread([st] {
            std::lock_guard<mc::mutex> lb(st->b);
            std::lock_guard<mc::mutex> la(st->a);
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.abba", r);
    EXPECT_TRUE(r.failed);
    EXPECT_STREQ(r.failure_kind.c_str(), "deadlock");
}

TEST(ModelCheckSelf, CountsDependentInterleavings)
{
    // Two conflicting stores to one location: exactly two orders, and
    // sleep sets must not prune either of them.
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::atomic<int> x{0, "x"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] { st->x.store(1, pspl::sync::relaxed); });
        sim.thread([st] { st->x.store(2, pspl::sync::relaxed); });
        sim.on_exit([st] {
            const int v = st->x.load(pspl::sync::relaxed);
            MC_ASSERT(v == 1 || v == 2);
        });
    };
    const mc::Result r = mc::explore(prog);
    report("self.two_stores", r);
    EXPECT_FALSE(r.failed) << r.failure;
    EXPECT_EQ(r.executions, 2u);
}

TEST(ModelCheckSelf, SleepSetsPruneIndependentInterleavings)
{
    // Four pairwise-independent stores: every raw interleaving (each
    // thread contributes 3 visible ops counting its Start, so C(6,3) = 20
    // schedules) collapses to a single Mazurkiewicz trace under sleep
    // sets.
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::atomic<int> a{0, "a"};
            mc::atomic<int> b{0, "b"};
            mc::atomic<int> c{0, "c"};
            mc::atomic<int> d{0, "d"};
        };
        auto st = std::make_shared<St>();
        sim.thread([st] {
            st->a.store(1, pspl::sync::relaxed);
            st->b.store(1, pspl::sync::relaxed);
        });
        sim.thread([st] {
            st->c.store(1, pspl::sync::relaxed);
            st->d.store(1, pspl::sync::relaxed);
        });
    };
    mc::Options no_por;
    no_por.sleep_sets = false;
    const mc::Result raw = mc::explore(prog, no_por);
    report("self.indep_raw", raw);
    EXPECT_FALSE(raw.failed) << raw.failure;
    EXPECT_EQ(raw.executions, 20u);

    const mc::Result por = mc::explore(prog);
    report("self.indep_por", por);
    EXPECT_FALSE(por.failed) << por.failure;
    EXPECT_LT(por.executions, 20u);
}

TEST(ModelCheckSelf, FlagsUnlockByNonOwner)
{
    auto prog = [](mc::Sim& sim) {
        struct St {
            mc::mutex m;
        };
        auto st = std::make_shared<St>();
        sim.thread([st] { st->m.unlock(); });
    };
    const mc::Result r = mc::explore(prog);
    report("self.bad_unlock", r);
    EXPECT_TRUE(r.failed);
    EXPECT_STREQ(r.failure_kind.c_str(), "lock-error");
}

// ---------------------------------------------------------------------------
// Protocol litmus programs (production templates, production orders).
// ---------------------------------------------------------------------------

TEST(ModelCheckLitmus, EpochPublishMakesPayloadVisible)
{
    expect_pass("L1.epoch_publish", litmus::epoch_publish);
}

TEST(ModelCheckLitmus, EpochDrainOrdersChunkResults)
{
    expect_pass("L2.epoch_drain", litmus::epoch_drain);
}

TEST(ModelCheckLitmus, QuiescentRefillDoesNotRaceWorkers)
{
    expect_pass("L3.quiescent_refill", litmus::quiescent_refill);
}

TEST(ModelCheckLitmus, DequeOwnerThiefExactlyOnce)
{
    expect_pass("L4.deque_1v1", litmus::deque_1v1);
}

TEST(ModelCheckLitmus, DequeOwnerTwoThievesExactlyOnce)
{
    expect_pass("L5.deque_2thief", litmus::deque_2thief);
}

TEST(ModelCheckLitmus, NestedInlineChunkEffectsVisible)
{
    expect_pass("L6.nested_inline", litmus::nested_inline);
}

TEST(ModelCheckLitmus, ExceptionRecordedThenPoolReused)
{
    expect_pass("L7.exception_recovery", litmus::exception_recovery);
}

TEST(ModelCheckLitmus, SingleThreadDrain)
{
    expect_pass("L8.single_thread", litmus::single_thread_drain);
}

TEST(ModelCheckLitmus, ProfilerChunkPublishedPrefix)
{
    expect_pass("L9.chunk_prefix", litmus::chunk_published_prefix);
}
