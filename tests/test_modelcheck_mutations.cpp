// Mutation matrix for the concurrency protocols (ctest labels:
// modelcheck, mutation). Each KillRow weakens exactly one annotated
// memory-order site (sync::Site) and re-runs the litmus that depends on
// it: the model checker MUST find a failing interleaving, otherwise the
// checker has lost the ability to defend that site and this test fails.
//
// SurvivorRows are weakenings the checker provably cannot or should not
// flag, kept in-tree so the boundary of the guarantee is executable
// documentation rather than folklore:
//   * deque_steal_top_load: the epoch-pool specialization of the Chase-Lev
//     deque has no concurrent owner push/grow (chunks are refilled only at
//     quiescence), which removes the race this load's strength guards in
//     the general deque.
//   * epoch_enter: the enter increment is ordered by the release chain of
//     the subsequent chunk_done/leave; plain coherence already forbids the
//     dispatcher from missing it. The acq_rel annotation is defensive.
//   * deque_pop_cas: the pop-side CAS only resolves the last-element race,
//     and RMW atomicity alone (a CAS always sees the newest top) decides
//     the winner; the epoch specialization's buffer is written solely at
//     quiescent reset, so no payload edge rides on this order either.
//     Note the asymmetry with deque_steal_cas below: the *steal* CAS is a
//     kill row, because removing its seq_cst store breaks the SC floor
//     under the owner's pop-side top load.
//
// If a survivor row ever starts failing, the model got sharper: promote
// the row to the kill table.

#include "modelcheck_litmus.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <ostream>

namespace mc = pspl::mc;
using pspl::sync::Site;

namespace {

const char* order_name(std::memory_order mo)
{
    switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
    default: return "consume";
    }
}

struct Row {
    const char* site_name;
    Site site;
    std::memory_order weak;
    const char* litmus_name;
    void (*litmus)(mc::Sim&);
};

std::ostream& operator<<(std::ostream& os, const Row& row)
{
    return os << row.site_name << "->" << order_name(row.weak) << " vs "
              << row.litmus_name;
}

std::string row_name(const testing::TestParamInfo<Row>& info)
{
    std::string n = std::string(info.param.site_name) + "_to_"
                    + order_name(info.param.weak);
    return n;
}

mc::Result run_mutated(const Row& row)
{
    mc::Options opts = mc::Options::from_env();
    opts.mutations.push_back({row.site, row.weak});
    return mc::explore(row.litmus, opts);
}

void report(const Row& row, const mc::Result& r)
{
    std::printf("[   MC   ] %s->%s (%s): %s after %llu executions%s%s\n",
                row.site_name, order_name(row.weak), row.litmus_name,
                r.failed ? "caught" : "survived",
                static_cast<unsigned long long>(r.executions),
                r.failed ? " as " : "",
                r.failed ? r.failure_kind.c_str() : "");
    std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// Kill rows: the checker must flag every one of these weakenings.
// ---------------------------------------------------------------------------
const Row kKillRows[] = {
    // Epoch protocol (EpochGate).
    {"epoch_publish", Site::epoch_publish, std::memory_order_relaxed,
     "L1.epoch_publish", litmus::epoch_publish},
    {"epoch_poll", Site::epoch_poll, std::memory_order_relaxed,
     "L1.epoch_publish", litmus::epoch_publish},
    {"epoch_chunk_done", Site::epoch_chunk_done, std::memory_order_relaxed,
     "L2.epoch_drain", litmus::epoch_drain},
    {"epoch_leave", Site::epoch_leave, std::memory_order_relaxed,
     "L3.quiescent_refill", litmus::quiescent_refill},
    {"epoch_quiescent_poll", Site::epoch_quiescent_poll,
     std::memory_order_relaxed, "L3.quiescent_refill",
     litmus::quiescent_refill},
    // Chase-Lev pop/steal Dekker.
    {"deque_pop_top_load", Site::deque_pop_top_load,
     std::memory_order_relaxed, "L5.deque_2thief", litmus::deque_2thief},
    {"deque_pop_top_load", Site::deque_pop_top_load,
     std::memory_order_acquire, "L5.deque_2thief", litmus::deque_2thief},
    {"deque_pop_bottom_store", Site::deque_pop_bottom_store,
     std::memory_order_relaxed, "L5.deque_2thief", litmus::deque_2thief},
    {"deque_pop_bottom_store", Site::deque_pop_bottom_store,
     std::memory_order_release, "L5.deque_2thief", litmus::deque_2thief},
    {"deque_steal_bottom_load", Site::deque_steal_bottom_load,
     std::memory_order_relaxed, "L5.deque_2thief", litmus::deque_2thief},
    {"deque_steal_bottom_load", Site::deque_steal_bottom_load,
     std::memory_order_acquire, "L5.deque_2thief", litmus::deque_2thief},
    // The steal CAS must be seq_cst: its success is a store to top, and
    // only seq_cst stores anchor the SC floor that keeps the owner's
    // pop-side top load from reading stale. Anything weaker lets the
    // owner duplicate a stolen chunk.
    {"deque_steal_cas", Site::deque_steal_cas, std::memory_order_relaxed,
     "L5.deque_2thief", litmus::deque_2thief},
    {"deque_steal_cas", Site::deque_steal_cas, std::memory_order_acq_rel,
     "L5.deque_2thief", litmus::deque_2thief},
    // Profiler chunk list.
    {"chunk_count_publish", Site::chunk_count_publish,
     std::memory_order_relaxed, "L9.chunk_prefix",
     litmus::chunk_published_prefix},
    {"chunk_count_read", Site::chunk_count_read, std::memory_order_relaxed,
     "L9.chunk_prefix", litmus::chunk_published_prefix},
    {"chunk_link_publish", Site::chunk_link_publish,
     std::memory_order_relaxed, "L9.chunk_prefix",
     litmus::chunk_published_prefix},
    {"chunk_link_read", Site::chunk_link_read, std::memory_order_relaxed,
     "L9.chunk_prefix", litmus::chunk_published_prefix},
};

// ---------------------------------------------------------------------------
// Survivor rows: documented boundary of the model (see file comment).
// ---------------------------------------------------------------------------
const Row kSurvivorRows[] = {
    {"deque_steal_top_load", Site::deque_steal_top_load,
     std::memory_order_relaxed, "L5.deque_2thief", litmus::deque_2thief},
    {"epoch_enter", Site::epoch_enter, std::memory_order_relaxed,
     "L3.quiescent_refill", litmus::quiescent_refill},
    {"deque_pop_cas", Site::deque_pop_cas, std::memory_order_relaxed,
     "L5.deque_2thief", litmus::deque_2thief},
};

class MutationKill : public testing::TestWithParam<Row> {
};

class MutationSurvivor : public testing::TestWithParam<Row> {
};

} // namespace

TEST_P(MutationKill, WeakeningIsCaught)
{
    const Row& row = GetParam();
    const mc::Result r = run_mutated(row);
    report(row, r);
    EXPECT_TRUE(r.failed)
            << row << " survived exploration (" << r.executions
            << " executions): the checker no longer defends this site";
}

TEST_P(MutationSurvivor, DocumentedSurvivorStillPasses)
{
    const Row& row = GetParam();
    const mc::Result r = run_mutated(row);
    report(row, r);
    EXPECT_FALSE(r.failed)
            << row << " is now caught:\n"
            << r.failure
            << "\nThe model got sharper -- promote this row to kKillRows.";
}

INSTANTIATE_TEST_SUITE_P(Matrix, MutationKill, testing::ValuesIn(kKillRows),
                         row_name);

INSTANTIATE_TEST_SUITE_P(Matrix, MutationSurvivor,
                         testing::ValuesIn(kSurvivorRows), row_name);
