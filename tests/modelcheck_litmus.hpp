// Litmus programs for the concurrency model checker: each function builds
// one small, deterministic concurrent program out of the *production*
// protocol templates (EpochGate, BasicChaseLevDeque, BasicEventChunkList)
// instantiated with mc::ModelSync, so the code being verified is the code
// the thread pool and profiler actually run.
//
// Shared between tests/test_modelcheck.cpp (every litmus must pass
// exhaustive exploration) and tests/test_modelcheck_mutations.cpp (each
// deliberately weakened memory order must make at least one litmus fail).
// The protocol -> property -> killing-mutation table lives in
// docs/STATIC_ANALYSIS.md.
//
// These programs are the model-checked ports of the pool scenarios that
// previously only TSan audited (the threads-backend leg of the CI tsan
// job, tests/test_threadpool.cpp): a TSan pass covers the schedules the
// OS happened to produce on one run; here the same protocol code is
// proven over EVERY schedule and EVERY C++-allowed reads-from choice.
//   SingletonIsReusedAcrossDispatches -> L2/L7 (drain + epoch reuse)
//   NestedDispatchRunsInline          -> L6
//   ExceptionPropagatesToDispatcher   -> L7
//   WorkerRanksAreStableAndInRange    -> L4/L5 (steal exactly-once)
//   epoch refill between dispatches   -> L3
//   profiler span merge               -> L9
#pragma once

#include "debug/modelcheck/mc.hpp"
#include "parallel/chase_lev.hpp"
#include "parallel/epoch_gate.hpp"
#include "parallel/event_chunks.hpp"

#include <cstddef>
#include <memory>

namespace litmus {

namespace mc = pspl::mc;

using Gate = pspl::detail::EpochGate<mc::ModelSync>;
using Deque = pspl::detail::BasicChaseLevDeque<mc::ModelSync>;
// Capacity 2 so three appends exercise the chunk-link rollover.
using ChunkList = pspl::detail::BasicEventChunkList<int, 2, mc::ModelSync>;

// -----------------------------------------------------------------------
// L1: the publish edge. The dispatcher's plain refill write must be
// visible to a worker whose acquire poll observed the epoch.
// Kills: epoch_publish->relaxed, epoch_poll->relaxed.
// -----------------------------------------------------------------------
inline void epoch_publish(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::plain<int> payload{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // dispatcher
        st->payload = 42;
        st->gate.publish(1);
    });
    sim.thread([st] { // worker
        st->gate.enter();
        while (!st->gate.active()) {
            mc::yield();
        }
        const int v = st->payload;
        MC_ASSERT(v == 42);
        st->gate.chunk_done();
        st->gate.leave();
    });
    sim.on_exit([st] { MC_ASSERT(!st->gate.active()); });
}

// -----------------------------------------------------------------------
// L2: the drain edge. A chunk's plain result write must be visible to the
// dispatcher once its acquire poll sees remaining == 0.
// Kills: epoch_chunk_done->relaxed.
// -----------------------------------------------------------------------
inline void epoch_drain(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::plain<int> result{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // dispatcher
        st->gate.publish(1);
        while (st->gate.active()) {
            mc::yield();
        }
        const int r = st->result;
        MC_ASSERT(r == 7);
        while (!st->gate.quiescent()) {
            mc::yield();
        }
    });
    sim.thread([st] { // worker
        st->gate.enter();
        while (!st->gate.active()) {
            mc::yield();
        }
        st->result = 7;
        st->gate.chunk_done();
        st->gate.leave();
    });
    sim.on_exit([st] { MC_ASSERT(st->gate.quiescent()); });
}

// -----------------------------------------------------------------------
// L3: the quiescence edge. The dispatcher's *next* refill write must not
// race the worker's reads from the previous epoch. Crucially the worker
// keeps reading shared state AFTER its last chunk_done -- in the real
// work() loop a worker past its final chunk still polls active() and can
// touch the deque buffer in a trailing steal attempt -- so the read is
// covered only by the leave release edge, not by chunk_done's.
// Kills: epoch_leave->relaxed, epoch_quiescent_poll->relaxed.
// -----------------------------------------------------------------------
inline void quiescent_refill(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::plain<int> buf{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // dispatcher
        st->buf = 1;
        st->gate.publish(1);
        while (st->gate.active()) {
            mc::yield();
        }
        while (!st->gate.quiescent()) {
            mc::yield();
        }
        st->buf = 2; // next epoch's quiescent refill
    });
    sim.thread([st] { // worker
        st->gate.enter();
        while (!st->gate.active()) {
            mc::yield();
        }
        const int v = st->buf;
        MC_ASSERT(v == 1);
        st->gate.chunk_done();
        // Trailing shared read between the last chunk_done and leave, as
        // in the tail of ThreadPool::work(): only leave orders it before
        // the dispatcher's refill.
        const int v2 = st->buf;
        MC_ASSERT(v2 == 1);
        st->gate.leave();
    });
    sim.on_exit([st] { MC_ASSERT(static_cast<int>(st->buf) == 2); });
}

// -----------------------------------------------------------------------
// Deque tally state: exactly-once bookkeeping through relaxed atomics so
// the tallies themselves add no synchronization to the protocol under
// test.
// -----------------------------------------------------------------------
struct DequeSt {
    Deque dq;
    mc::atomic<int> t0{0, "take0"};
    mc::atomic<int> t1{0, "take1"};
    mc::atomic<int> t2{0, "take2"};

    explicit DequeSt(std::size_t nchunks)
    {
        const std::size_t chunks[3] = {0, 1, 2};
        dq.reset(chunks, nchunks);
    }

    void take(std::size_t c)
    {
        mc::atomic<int>& t = c == 0 ? t0 : c == 1 ? t1 : t2;
        t.fetch_add(1, pspl::sync::relaxed);
    }

    int takes(int c)
    {
        mc::atomic<int>& t = c == 0 ? t0 : c == 1 ? t1 : t2;
        return t.load(pspl::sync::relaxed);
    }
};

// -----------------------------------------------------------------------
// L4: owner + one thief over two chunks; every chunk executed exactly
// once. The small sanity configuration.
// -----------------------------------------------------------------------
inline void deque_1v1(mc::Sim& sim)
{
    auto st = std::make_shared<DequeSt>(2);
    sim.thread([st] { // owner
        std::size_t c;
        while (st->dq.pop(c)) {
            st->take(c);
        }
    });
    sim.thread([st] { // thief
        for (int i = 0; i < 2; ++i) {
            std::size_t c;
            if (st->dq.steal(c)) {
                st->take(c);
            }
        }
    });
    sim.on_exit([st] {
        MC_ASSERT(st->takes(0) == 1);
        MC_ASSERT(st->takes(1) == 1);
    });
}

// -----------------------------------------------------------------------
// L5: owner + two thieves over three chunks -- the configuration where
// the pop/steal Dekker (reserve bottom with a seq_cst store, then read
// top; steal reads both with seq_cst loads) is load-bearing. A stale top
// in pop, or a stale bottom in steal, lets the owner take a slot a thief
// has claimed (or vice versa): a chunk executes twice.
// Kills: deque_pop_top_load->{relaxed,acquire},
//        deque_pop_bottom_store->{relaxed,release},
//        deque_steal_bottom_load->{relaxed,acquire}.
// -----------------------------------------------------------------------
inline void deque_2thief(mc::Sim& sim)
{
    auto st = std::make_shared<DequeSt>(3);
    sim.thread([st] { // owner
        std::size_t c;
        while (st->dq.pop(c)) {
            st->take(c);
        }
    });
    for (int thief = 0; thief < 2; ++thief) {
        sim.thread([st] {
            for (int i = 0; i < 2; ++i) {
                std::size_t c;
                if (st->dq.steal(c)) {
                    st->take(c);
                }
            }
        });
    }
    sim.on_exit([st] {
        MC_ASSERT(st->takes(0) == 1);
        MC_ASSERT(st->takes(1) == 1);
        MC_ASSERT(st->takes(2) == 1);
    });
}

// -----------------------------------------------------------------------
// L6: nested-inline dispatch. A chunk body that itself dispatches runs
// the sub-chunks inline on the same worker (ThreadPool::run_inline); both
// sub-results must reach the dispatcher through the single chunk_done
// edge.
// -----------------------------------------------------------------------
inline void nested_inline(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::plain<int> r1{0};
        mc::plain<int> r2{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // dispatcher
        st->gate.publish(1);
        while (st->gate.active()) {
            mc::yield();
        }
        const int a = st->r1;
        const int b = st->r2;
        MC_ASSERT(a == 1 && b == 2);
        while (!st->gate.quiescent()) {
            mc::yield();
        }
    });
    sim.thread([st] { // worker: the chunk dispatches nested work inline
        st->gate.enter();
        while (!st->gate.active()) {
            mc::yield();
        }
        st->r1 = 1; // nested sub-chunk 0, executed inline
        st->r2 = 2; // nested sub-chunk 1, executed inline
        st->gate.chunk_done();
        st->gate.leave();
    });
}

// -----------------------------------------------------------------------
// L7: exception recovery then pool reuse. Epoch 1's chunk records an
// exception under the pool's mutex instead of producing a result; the
// epoch still drains, the dispatcher observes the recorded exception
// after the drain edge, and epoch 2 reuses the same gate and produces a
// normal result. The epoch_no atomic models the worker-wakeup
// cv/m_epoch handshake of ThreadPool::worker_loop.
// -----------------------------------------------------------------------
inline void exception_recovery(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::atomic<int> epoch_no{0, "epoch_no"};
        mc::mutex exc_mutex;
        mc::plain<int> exc{0};
        mc::plain<int> result{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // dispatcher: two epochs
        st->gate.publish(1);
        st->epoch_no.store(1, pspl::sync::release);
        while (st->gate.active()) {
            mc::yield();
        }
        int e;
        {
            std::lock_guard<mc::mutex> lk(st->exc_mutex);
            e = st->exc;
            st->exc = 0; // rethrow clears the slot
        }
        MC_ASSERT(e == 1);
        while (!st->gate.quiescent()) {
            mc::yield();
        }
        st->gate.publish(1);
        st->epoch_no.store(2, pspl::sync::release);
        while (st->gate.active()) {
            mc::yield();
        }
        const int r = st->result;
        MC_ASSERT(r == 42);
        while (!st->gate.quiescent()) {
            mc::yield();
        }
    });
    sim.thread([st] { // worker: throws in epoch 1, works in epoch 2
        while (st->epoch_no.load(pspl::sync::acquire) != 1) {
            mc::yield();
        }
        st->gate.enter();
        while (st->gate.active()) {
            // chunk throws; record_exception under the mutex
            {
                std::lock_guard<mc::mutex> lk(st->exc_mutex);
                st->exc = 1;
            }
            st->gate.chunk_done();
        }
        st->gate.leave();
        while (st->epoch_no.load(pspl::sync::acquire) != 2) {
            mc::yield();
        }
        st->gate.enter();
        while (st->gate.active()) {
            st->result = 42;
            st->gate.chunk_done();
        }
        st->gate.leave();
    });
    sim.on_exit([st] { MC_ASSERT(st->gate.quiescent()); });
}

// -----------------------------------------------------------------------
// L8: single-thread drain -- the fork-safety path where the dispatching
// thread executes every chunk itself because no worker ever wakes.
// -----------------------------------------------------------------------
inline void single_thread_drain(mc::Sim& sim)
{
    struct St {
        Gate gate;
        mc::plain<int> sum{0};
    };
    auto st = std::make_shared<St>();
    sim.thread([st] {
        st->gate.publish(2);
        while (st->gate.active()) {
            st->sum = static_cast<int>(st->sum) + 1;
            st->gate.chunk_done();
        }
        MC_ASSERT(st->gate.quiescent());
        MC_ASSERT(static_cast<int>(st->sum) == 2);
    });
}

// -----------------------------------------------------------------------
// L9: profiler chunk list. A producer appends three events across a
// capacity-2 chunk rollover while a reader walks the published prefix
// concurrently: the reader must observe a correct prefix, and following
// the chunk link must land on fully initialized memory.
// Kills: chunk_count_publish->relaxed, chunk_count_read->relaxed,
//        chunk_link_publish->relaxed, chunk_link_read->relaxed.
// -----------------------------------------------------------------------
inline void chunk_published_prefix(mc::Sim& sim)
{
    struct St {
        ChunkList list;
    };
    auto st = std::make_shared<St>();
    sim.thread([st] { // producer
        st->list.push(10);
        st->list.push(20);
        st->list.push(30);
    });
    sim.thread([st] { // concurrent snapshot reader
        int n = 0;
        int got[3] = {0, 0, 0};
        st->list.for_each([&](int v) {
            if (n < 3) {
                got[n] = v;
            }
            ++n;
        });
        MC_ASSERT(n <= 3);
        const int expect[3] = {10, 20, 30};
        for (int i = 0; i < n; ++i) {
            MC_ASSERT(got[i] == expect[i]);
        }
    });
    sim.on_exit([st] {
        int n = 0;
        int last = 0;
        st->list.for_each([&](int v) {
            ++n;
            last = v;
        });
        MC_ASSERT(n == 3);
        MC_ASSERT(last == 30);
    });
}

} // namespace litmus
