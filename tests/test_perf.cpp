// Tests for the performance-metric machinery: GLUPS, bandwidth, roofline,
// efficiencies and the Pennycook portability metric, cross-checked against
// the paper's own numbers where possible.
#include "perf/hardware.hpp"
#include "perf/metrics.hpp"
#include "perf/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace pspl::perf;

TEST(Metrics, GlupsDefinition)
{
    // Eq. 7: 1000 * 100000 points in 0.1 s -> 1 GLUPS.
    EXPECT_DOUBLE_EQ(glups(1000, 100000, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(glups(1024, 100, 1.0), 1024.0 * 100.0 * 1e-9);
}

TEST(Metrics, BandwidthDefinition)
{
    // 1000 x 100000 doubles = 0.8 GB moved; in 1 s -> 0.8 GB/s.
    EXPECT_NEAR(achieved_bandwidth_gbs(1000, 100000, 1.0), 0.8, 1e-12);
    // Paper Table III spmv on A100: 2.98 ms per iteration-> ~268 GB/s
    // (the paper's Table V value 268.6 GB/s).
    const double t = 2.98e-3;
    EXPECT_NEAR(achieved_bandwidth_gbs(1000, 100000, t), 268.456, 0.1);
}

TEST(Metrics, BandwidthFractionAgainstPeak)
{
    // Paper Table V: 268.6 GB/s on A100 = 17.3 % of 1555 GB/s.
    const auto a100 = a100_spec();
    EXPECT_NEAR(bandwidth_fraction_percent(268.6, a100), 17.27, 0.05);
    const auto icelake = icelake_spec();
    EXPECT_NEAR(bandwidth_fraction_percent(9.75, icelake), 4.76, 0.02);
}

TEST(Metrics, RooflineIsMinOfComputeAndMemory)
{
    const HardwareSpec spec{"X", 100.0, 10.0};
    // Memory bound: 1 flop/byte -> 10 GFlops.
    EXPECT_DOUBLE_EQ(roofline_attainable_gflops(spec, 1.0), 10.0);
    // Compute bound: 100 flops/byte -> capped at 100 GFlops.
    EXPECT_DOUBLE_EQ(roofline_attainable_gflops(spec, 100.0), 100.0);
    // Crossover at B/F ratio.
    EXPECT_DOUBLE_EQ(roofline_attainable_gflops(spec, 10.0), 100.0);
}

TEST(Metrics, EfficiencyPercent)
{
    EXPECT_DOUBLE_EQ(architectural_efficiency_percent(5.0, 10.0), 50.0);
    EXPECT_DOUBLE_EQ(architectural_efficiency_percent(10.0, 10.0), 100.0);
}

TEST(Metrics, PennycookHarmonicMean)
{
    // Harmonic mean of equal values is that value.
    EXPECT_NEAR(pennycook_portability({50.0, 50.0, 50.0}), 0.5, 1e-12);
    // Hand-checked: H(10%, 20%) = 2 / (10 + 5) = 0.1333...
    EXPECT_NEAR(pennycook_portability({10.0, 20.0}), 2.0 / 15.0, 1e-12);
    // Unsupported platform zeroes the metric (Eq. 8's "otherwise" branch).
    EXPECT_DOUBLE_EQ(pennycook_portability({50.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(pennycook_portability({}), 0.0);
}

TEST(Metrics, PennycookReproducesPaperTableV)
{
    // Table V row "uniform (Degree 3)": efficiencies 4.38 %, 17.3 %, 15.5 %
    // yield P = 0.086.
    const double p = pennycook_portability({4.38, 17.3, 15.5});
    EXPECT_NEAR(p, 0.086, 0.002);
    // Row "non-uniform (Degree 5)": 2.42 %, 9.15 %, 3.7 % -> 0.038.
    const double p2 = pennycook_portability({2.42, 9.15, 3.7});
    EXPECT_NEAR(p2, 0.038, 0.002);
}

TEST(Hardware, TableIISpecs)
{
    const auto ice = icelake_spec();
    EXPECT_EQ(ice.name, "Icelake");
    EXPECT_DOUBLE_EQ(ice.peak_gflops, 3174.4);
    EXPECT_DOUBLE_EQ(ice.peak_bw_gbs, 204.8);
    EXPECT_NEAR(ice.bf_ratio(), 0.064, 0.001);

    const auto a100 = a100_spec();
    EXPECT_NEAR(a100.bf_ratio(), 0.160, 0.001);
    const auto mi = mi250x_spec();
    EXPECT_NEAR(mi.bf_ratio(), 0.060, 0.001);

    const auto set = paper_platforms();
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[1].name, "A100");
}

TEST(Hardware, HostSpecRespectsEnvironment)
{
    setenv("PSPL_PEAK_GFLOPS", "123.5", 1);
    setenv("PSPL_PEAK_BW_GBS", "45.25", 1);
    const auto h = host_spec();
    EXPECT_DOUBLE_EQ(h.peak_gflops, 123.5);
    EXPECT_DOUBLE_EQ(h.peak_bw_gbs, 45.25);
    unsetenv("PSPL_PEAK_GFLOPS");
    unsetenv("PSPL_PEAK_BW_GBS");
    const auto d = host_spec();
    EXPECT_GT(d.peak_gflops, 0.0);
    EXPECT_GT(d.peak_bw_gbs, 0.0);
}

TEST(KernelModel, FlopCountsScaleWithDegree)
{
    const auto u3 = spline_builder_model(3, true);
    const auto u5 = spline_builder_model(5, true);
    const auto n3 = spline_builder_model(3, false);
    const auto n5 = spline_builder_model(5, false);
    EXPECT_GT(u5.flops_per_point, u3.flops_per_point);
    EXPECT_GT(n5.flops_per_point, n3.flops_per_point);
    // Non-uniform costs more than uniform at equal degree (gbtrs vs pttrs).
    EXPECT_GT(n3.flops_per_point, u3.flops_per_point);
    // All memory bound on every paper platform: intensity below B/F
    // crossover.
    for (const auto& spec : paper_platforms()) {
        const double attainable =
                roofline_attainable_gflops(spec, u3.flops_per_byte());
        EXPECT_LT(attainable, spec.peak_gflops);
    }
}

TEST(Report, FormatHelpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt_time(2.5e-9), "2.50 ns");
    EXPECT_EQ(fmt_time(3.2e-6), "3.20 us");
    EXPECT_EQ(fmt_time(11.39e-3), "11.39 ms");
    EXPECT_EQ(fmt_time(2.0), "2.000 s");
}

TEST(Report, TableRendering)
{
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"beta-very-long", "2.5"});
    const auto s = t.str();
    // Header, separator, two rows.
    EXPECT_NE(s.find("| name"), std::string::npos);
    EXPECT_NE(s.find("| beta-very-long | 2.5"), std::string::npos);
    std::size_t lines = 0;
    for (const char c : s) {
        lines += (c == '\n');
    }
    EXPECT_EQ(lines, 4u);
}

TEST(Report, TableRejectsRaggedRows)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

} // namespace
