// Tests for Hermite-boundary splines (clamped odd degree): exactness for
// polynomials, prescribed boundary derivatives, convergence order, and the
// higher-order basis derivative machinery behind them.
#include "bsplines/knots.hpp"
#include "core/hermite_builder.hpp"
#include "core/matrix_structure.hpp"
#include "core/spline_evaluator.hpp"
#include "parallel/deep_copy.hpp"
#include "parallel/subview.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace {

using namespace pspl;
using bsplines::BSplineBasis;
using core::HermiteSplineBuilder;
using core::SplineEvaluator;

// ---------------------------------------------------------------------------
// eval_deriv_order
// ---------------------------------------------------------------------------

TEST(DerivOrder, OrderZeroIsBasisEval)
{
    const auto basis = BSplineBasis::uniform(4, 16, 0.0, 1.0);
    double v1[6];
    double v2[6];
    const long j1 = basis.eval_basis(0.321, v1);
    const long j2 = basis.eval_deriv_order(0.321, 0, v2);
    EXPECT_EQ(j1, j2);
    for (int r = 0; r <= 4; ++r) {
        EXPECT_DOUBLE_EQ(v1[r], v2[r]);
    }
}

TEST(DerivOrder, OrderOneMatchesEvalDeriv)
{
    for (const int degree : {2, 3, 5}) {
        const auto basis = BSplineBasis::uniform(degree, 20, 0.0, 2.0);
        double v1[8];
        double v2[8];
        const double x = 0.7731;
        const long j1 = basis.eval_deriv(x, v1);
        const long j2 = basis.eval_deriv_order(x, 1, v2);
        EXPECT_EQ(j1, j2);
        for (int r = 0; r <= degree; ++r) {
            EXPECT_NEAR(v1[r], v2[r], 1e-11) << "degree " << degree;
        }
    }
}

TEST(DerivOrder, SecondDerivativeMatchesFiniteDifference)
{
    const auto basis = BSplineBasis::uniform(5, 24, 0.0, 1.0);
    double d2[8];
    double vp[8];
    double vm[8];
    double v0[8];
    const double h = 1e-5;
    const double x = 0.3571; // away from break points
    const long j = basis.eval_deriv_order(x, 2, d2);
    const long jp = basis.eval_basis(x + h, vp);
    const long jm = basis.eval_basis(x - h, vm);
    const long j0 = basis.eval_basis(x, v0);
    ASSERT_EQ(j, j0);
    ASSERT_EQ(jp, jm);
    ASSERT_EQ(jp, j0);
    for (int r = 0; r <= 5; ++r) {
        const double fd = (vp[r] - 2.0 * v0[r] + vm[r]) / (h * h);
        EXPECT_NEAR(d2[r], fd, 5e-3) << "r=" << r;
    }
}

TEST(DerivOrder, DerivativesSumToZero)
{
    // Partition of unity differentiates to zero for every order >= 1.
    const auto basis = BSplineBasis::clamped_uniform(5, 16, 0.0, 1.0);
    for (const int m : {1, 2}) {
        for (int s = 1; s < 30; ++s) {
            const double x = static_cast<double>(s) / 31.0;
            double dv[8];
            basis.eval_deriv_order(x, m, dv);
            double sum = 0.0;
            for (int r = 0; r <= 5; ++r) {
                sum += dv[r];
            }
            EXPECT_NEAR(sum, 0.0, 1e-8) << "m=" << m << " x=" << x;
        }
    }
}

// ---------------------------------------------------------------------------
// HermiteSplineBuilder
// ---------------------------------------------------------------------------

class HermiteParam : public ::testing::TestWithParam<std::tuple<int, bool>>
{
protected:
    BSplineBasis make(std::size_t ncells) const
    {
        const auto [degree, uniform] = GetParam();
        if (uniform) {
            return BSplineBasis::clamped_uniform(degree, ncells, 0.0, 2.0);
        }
        return BSplineBasis::clamped_non_uniform(
                degree, bsplines::stretched_breaks(ncells, 0.0, 2.0, 0.4));
    }
};

TEST_P(HermiteParam, RhsLayoutAndConditionCounts)
{
    const auto [degree, uniform] = GetParam();
    (void)uniform;
    const auto basis = make(20);
    HermiteSplineBuilder builder(basis);
    EXPECT_EQ(builder.nderivs(),
              static_cast<std::size_t>((degree - 1) / 2));
    EXPECT_EQ(builder.value_points().size(), 21u);
    EXPECT_EQ(2 * builder.nderivs() + 21u, basis.nbasis());
    // No periodic corners in the Hermite matrix.
    EXPECT_EQ(builder.solver().device_data().k, 0u);
}

TEST_P(HermiteParam, ReproducesPolynomialsExactly)
{
    // A degree-p spline space contains all polynomials of degree <= p on a
    // clamped basis; Hermite interpolation of such a polynomial (values +
    // exact derivatives) must reproduce it to round-off.
    const auto [degree, uniform] = GetParam();
    (void)uniform;
    const auto basis = make(12);
    HermiteSplineBuilder builder(basis);
    auto poly = [&](double x, int m) {
        // f = x^degree + 2x^2 - x + 1 and its derivatives.
        double value = 0.0;
        switch (m) {
        case 0:
            value = std::pow(x, degree) + 2.0 * x * x - x + 1.0;
            break;
        case 1:
            value = degree * std::pow(x, degree - 1) + 4.0 * x - 1.0;
            break;
        case 2:
            value = degree * (degree - 1) * std::pow(x, degree - 2) + 4.0;
            break;
        default:
            value = degree * (degree - 1) * (degree - 2)
                    * std::pow(x, degree - 3);
            break;
        }
        return value;
    };
    View2D<double> b("b", basis.nbasis(), 1);
    auto col = subview(b, ALL, std::size_t{0});
    builder.fill_rhs(poly, col);
    builder.build_inplace(b);

    SplineEvaluator eval(basis);
    for (int s = 0; s <= 200; ++s) {
        const double x = 2.0 * static_cast<double>(s) / 200.0;
        EXPECT_NEAR(eval(x, col), poly(x, 0), 1e-9) << "x=" << x;
    }
    // Boundary derivatives are honoured exactly.
    EXPECT_NEAR(eval.deriv(0.0, col), poly(0.0, 1), 1e-9);
    EXPECT_NEAR(eval.deriv(2.0, col), poly(2.0, 1), 1e-9);
}

TEST_P(HermiteParam, InterpolatesValuesAtBreakPoints)
{
    const auto basis = make(24);
    HermiteSplineBuilder builder(basis);
    auto f = [](double x, int m) {
        switch (m) {
        case 0:
            return std::sin(2.0 * x) + 0.3 * x;
        case 1:
            return 2.0 * std::cos(2.0 * x) + 0.3;
        case 2:
            return -4.0 * std::sin(2.0 * x);
        default:
            return -8.0 * std::cos(2.0 * x);
        }
    };
    View2D<double> b("b", basis.nbasis(), 1);
    auto col = subview(b, ALL, std::size_t{0});
    builder.fill_rhs(f, col);
    builder.build_inplace(b);
    SplineEvaluator eval(basis);
    for (const double x : builder.value_points()) {
        EXPECT_NEAR(eval(x, col), f(x, 0), 1e-10);
    }
    EXPECT_NEAR(eval.deriv(basis.xmin(), col), f(basis.xmin(), 1), 1e-9);
    EXPECT_NEAR(eval.deriv(basis.xmax(), col), f(basis.xmax(), 1), 1e-9);
}

TEST_P(HermiteParam, ConvergesAtExpectedOrder)
{
    const auto [degree, uniform] = GetParam();
    auto max_err = [&](std::size_t ncells) {
        const auto basis =
                uniform ? BSplineBasis::clamped_uniform(degree, ncells, 0.0,
                                                        2.0)
                        : BSplineBasis::clamped_non_uniform(
                                  degree, bsplines::stretched_breaks(
                                                  ncells, 0.0, 2.0, 0.4));
        HermiteSplineBuilder builder(basis);
        auto f = [](double x, int m) {
            switch (m) {
            case 0:
                return std::exp(-x) * std::sin(3.0 * x);
            case 1:
                return std::exp(-x)
                       * (3.0 * std::cos(3.0 * x) - std::sin(3.0 * x));
            case 2:
                return std::exp(-x)
                       * (-6.0 * std::cos(3.0 * x) - 8.0 * std::sin(3.0 * x));
            default:
                return 0.0;
            }
        };
        View2D<double> b("b", basis.nbasis(), 1);
        auto col = subview(b, ALL, std::size_t{0});
        builder.fill_rhs(f, col);
        builder.build_inplace(b);
        SplineEvaluator eval(basis);
        double err = 0.0;
        for (int s = 0; s <= 1500; ++s) {
            const double x = 2.0 * static_cast<double>(s) / 1500.0;
            err = std::max(err, std::abs(eval(x, col) - f(x, 0)));
        }
        return err;
    };
    const double e1 = max_err(24);
    const double e2 = max_err(48);
    EXPECT_GT(e1 / e2, std::pow(2.0, degree + 1) / 4.0)
            << "e1=" << e1 << " e2=" << e2;
}

TEST_P(HermiteParam, BatchedColumnsSolveIndependently)
{
    const auto basis = make(16);
    HermiteSplineBuilder builder(basis);
    const std::size_t batch = 6;
    View2D<double> b("b", basis.nbasis(), batch);
    for (std::size_t j = 0; j < batch; ++j) {
        const double phase = 0.2 * static_cast<double>(j);
        auto col = subview(b, ALL, j);
        builder.fill_rhs(
                [&](double x, int m) {
                    return m == 0 ? std::cos(x + phase)
                           : m == 1 ? -std::sin(x + phase)
                           : m == 2 ? -std::cos(x + phase)
                                    : std::sin(x + phase);
                },
                col);
    }
    // Reference: column 3 solved alone.
    View2D<double> one("one", basis.nbasis(), 1);
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        one(i, 0) = b(i, 3);
    }
    builder.build_inplace(b);
    builder.build_inplace(one);
    for (std::size_t i = 0; i < basis.nbasis(); ++i) {
        EXPECT_DOUBLE_EQ(b(i, 3), one(i, 0));
    }
}

INSTANTIATE_TEST_SUITE_P(OddDegrees, HermiteParam,
                         ::testing::Combine(::testing::Values(3, 5),
                                            ::testing::Bool()),
                         [](const auto& info) {
                             const int d = std::get<0>(info.param);
                             const bool u = std::get<1>(info.param);
                             return std::string("deg") + std::to_string(d)
                                    + (u ? "_uniform" : "_nonuniform");
                         });

TEST(HermiteBuilder, RejectsPeriodicAndEvenDegree)
{
    const auto periodic = BSplineBasis::uniform(3, 16, 0.0, 1.0);
    EXPECT_DEATH(HermiteSplineBuilder{periodic}, "clamped");
    const auto even = BSplineBasis::clamped_uniform(4, 16, 0.0, 1.0);
    EXPECT_DEATH(HermiteSplineBuilder{even}, "odd");
}

} // namespace
